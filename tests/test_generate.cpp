// Unit tests for src/generate: graph generators, batch-update generation,
// temporal streams and the paper's replay protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "generate/temporal_replay.hpp"
#include "graph/stats.hpp"

namespace lfpr {
namespace {

TEST(Rmat, ProducesRequestedEdges) {
  Rng rng(1);
  const auto es = generateRmat(8, 1000, rng);
  EXPECT_EQ(es.size(), 1000u);
  for (const Edge& e : es) {
    EXPECT_LT(e.src, 256u);
    EXPECT_LT(e.dst, 256u);
    EXPECT_NE(e.src, e.dst);  // generator skips loops
  }
}

TEST(Rmat, EdgesAreDistinct) {
  Rng rng(2);
  const auto es = generateRmat(8, 800, rng);
  std::set<Edge> s(es.begin(), es.end());
  EXPECT_EQ(s.size(), es.size());
}

TEST(Rmat, IsDeterministic) {
  Rng a(3), b(3);
  EXPECT_EQ(generateRmat(7, 300, a), generateRmat(7, 300, b));
}

TEST(Rmat, SkewedDegreeDistribution) {
  Rng rng(4);
  const auto es = generateRmat(10, 8000, rng);
  const auto g = CsrGraph::fromEdges(1024, es);
  const auto s = computeStats(g);
  // RMAT with web parameters concentrates edges: the max degree should be
  // far above the average.
  EXPECT_GT(s.maxOutDegree, 5 * s.avgOutDegree);
}

TEST(Rmat, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(generateRmat(0, 10, rng), std::invalid_argument);
  EXPECT_THROW(generateRmat(8, 10, rng, 0.5, 0.5, 0.5, 0.5), std::invalid_argument);
}

TEST(WebGraph, DegreeRegimeAndLocality) {
  Rng rng(30);
  const auto es = generateWebGraph(8000, 200, 20.0, rng);
  const auto g = CsrGraph::fromEdges(8000, es);
  const auto s = computeStats(g);
  // Mean out-degree lands near the requested value.
  EXPECT_GT(s.avgOutDegree, 12.0);
  EXPECT_LT(s.avgOutDegree, 30.0);
  // Heavy-tailed in-degree (hub pages attract the global 5% of links).
  EXPECT_GT(static_cast<double>(s.maxInDegree), 3.0 * s.avgOutDegree);
  // Locality: most links stay within the source's host block.
  EdgeId local = 0;
  for (const Edge& e : es)
    if (e.src / 200 == e.dst / 200) ++local;
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(es.size()), 0.6);
}

TEST(WebGraph, NoSelfLoopsNoDuplicates) {
  Rng rng(31);
  const auto es = generateWebGraph(2000, 100, 10.0, rng);
  std::set<Edge> distinct(es.begin(), es.end());
  EXPECT_EQ(distinct.size(), es.size());
  for (const Edge& e : es) EXPECT_NE(e.src, e.dst);
}

TEST(WebGraph, IsDeterministic) {
  Rng a(32), b(32);
  EXPECT_EQ(generateWebGraph(1000, 50, 8.0, a), generateWebGraph(1000, 50, 8.0, b));
}

TEST(WebGraph, RejectsBadArguments) {
  Rng rng(33);
  EXPECT_THROW(generateWebGraph(1, 10, 5.0, rng), std::invalid_argument);
  EXPECT_THROW(generateWebGraph(100, 0, 5.0, rng), std::invalid_argument);
  EXPECT_THROW(generateWebGraph(100, 10, 0.5, rng), std::invalid_argument);
}

TEST(ErdosRenyi, ExactEdgeCountNoLoopsNoDups) {
  Rng rng(5);
  const auto es = generateErdosRenyi(100, 500, rng);
  EXPECT_EQ(es.size(), 500u);
  std::set<Edge> s(es.begin(), es.end());
  EXPECT_EQ(s.size(), 500u);
  for (const Edge& e : es) EXPECT_NE(e.src, e.dst);
}

TEST(ErdosRenyi, RejectsImpossibleRequest) {
  Rng rng(1);
  EXPECT_THROW(generateErdosRenyi(3, 7, rng), std::invalid_argument);  // max 6
  EXPECT_THROW(generateErdosRenyi(1, 1, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, DegreesAndSize) {
  Rng rng(6);
  const auto es = generateBarabasiAlbert(200, 3, rng);
  const auto g = CsrGraph::fromEdges(200, es);
  // Every non-seed vertex contributes exactly 3 out-edges.
  for (VertexId v = 4; v < 200; ++v) EXPECT_EQ(g.outDegree(v), 3u);
  // Preferential attachment: someone in the seed set gets rich.
  const auto s = computeStats(g);
  EXPECT_GT(s.maxInDegree, 10u);
}

TEST(BarabasiAlbert, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(generateBarabasiAlbert(3, 3, rng), std::invalid_argument);
  EXPECT_THROW(generateBarabasiAlbert(10, 0, rng), std::invalid_argument);
}

TEST(Grid, StructureAndShortcuts) {
  Rng rng(7);
  const auto es = generateGrid(10, 10, 0.0, rng);
  // 10x10 grid: 9*10 horizontal + 10*9 vertical = 180 directed edges.
  EXPECT_EQ(es.size(), 180u);
  const auto withShortcuts = generateGrid(10, 10, 0.5, rng);
  EXPECT_GT(withShortcuts.size(), 180u);
}

TEST(Grid, RejectsEmpty) {
  Rng rng(1);
  EXPECT_THROW(generateGrid(0, 5, 0.0, rng), std::invalid_argument);
}

TEST(KmerChains, LowDegreeConnectedChains) {
  Rng rng(8);
  const auto es = generateKmerChains(1000, 0.5, rng);
  EXPECT_GE(es.size(), 999u);   // at least the backbone chain
  EXPECT_LE(es.size(), 1600u);  // plus at most ~50% branches
  const auto g = CsrGraph::fromEdges(1000, symmetrize(es));
  const auto s = computeStats(g);
  EXPECT_GT(s.avgOutDegree, 1.5);
  EXPECT_LT(s.avgOutDegree, 4.0);
}

TEST(Symmetrize, AddsReverseEdges) {
  const std::vector<Edge> es = {{0, 1}, {1, 2}};
  const auto sym = symmetrize(es);
  const std::vector<Edge> expect = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  EXPECT_EQ(sym, expect);
}

TEST(Symmetrize, SelfLoopNotDoubled) {
  const std::vector<Edge> es = {{1, 1}};
  EXPECT_EQ(symmetrize(es).size(), 1u);
}

TEST(Symmetrize, IdempotentOnSymmetricInput) {
  const std::vector<Edge> es = {{0, 1}, {1, 0}};
  EXPECT_EQ(symmetrize(es), es);
}

TEST(AppendSelfLoops, AddsOnePerVertex) {
  std::vector<Edge> es = {{0, 1}};
  appendSelfLoops(es, 3);
  EXPECT_EQ(es.size(), 4u);
  const auto g = CsrGraph::fromEdges(3, es);
  EXPECT_EQ(computeStats(g).numSelfLoops, 3u);
  EXPECT_EQ(computeStats(g).numDeadEnds, 0u);
}

TEST(TemporalStream, SizeOrderAndDuplicates) {
  Rng rng(9);
  const auto stream = generateTemporalStream(500, 5000, 0.4, rng);
  EXPECT_EQ(stream.size(), 5000u);
  for (std::size_t i = 1; i < stream.size(); ++i)
    EXPECT_LE(stream[i - 1].time, stream[i].time);
  // Duplicates must exist (|E_T| > |E| in Table 1).
  std::unordered_set<Edge, EdgeHash> distinct;
  for (const auto& e : stream) distinct.insert({e.src, e.dst});
  EXPECT_LT(distinct.size(), stream.size());
  EXPECT_GT(distinct.size(), stream.size() / 4);
}

TEST(TemporalStream, NoSelfLoops) {
  Rng rng(10);
  for (const auto& e : generateTemporalStream(100, 2000, 0.3, rng))
    EXPECT_NE(e.src, e.dst);
}

class BatchGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    auto edges = generateErdosRenyi(200, 2000, rng);
    appendSelfLoops(edges, 200);
    graph_ = DynamicDigraph::fromEdges(200, edges);
  }
  DynamicDigraph graph_{0};
};

TEST_F(BatchGenTest, EqualMixOfDeletionsAndInsertions) {
  Rng rng(12);
  const auto batch = generateBatch(graph_, 100, rng);
  EXPECT_EQ(batch.deletions.size(), 50u);
  EXPECT_EQ(batch.insertions.size(), 50u);
}

TEST_F(BatchGenTest, DeletionsExistInsertionsAbsent) {
  Rng rng(13);
  const auto batch = generateBatch(graph_, 200, rng);
  for (const Edge& e : batch.deletions) EXPECT_TRUE(graph_.hasEdge(e.src, e.dst));
  for (const Edge& e : batch.insertions) {
    EXPECT_FALSE(graph_.hasEdge(e.src, e.dst));
    EXPECT_NE(e.src, e.dst);
  }
}

TEST_F(BatchGenTest, NoDuplicatesWithinBatch) {
  Rng rng(14);
  const auto batch = generateBatch(graph_, 300, rng);
  std::set<Edge> dels(batch.deletions.begin(), batch.deletions.end());
  std::set<Edge> inss(batch.insertions.begin(), batch.insertions.end());
  EXPECT_EQ(dels.size(), batch.deletions.size());
  EXPECT_EQ(inss.size(), batch.insertions.size());
}

TEST_F(BatchGenTest, SelfLoopsProtectedFromDeletion) {
  Rng rng(15);
  const auto batch = generateBatch(graph_, 500, rng);
  for (const Edge& e : batch.deletions) EXPECT_NE(e.src, e.dst);
}

TEST_F(BatchGenTest, FractionClampsToAtLeastOne) {
  Rng rng(16);
  const auto batch = generateBatchFraction(graph_, 1e-12, rng);
  EXPECT_GE(batch.size(), 1u);
}

TEST_F(BatchGenTest, ApplyThenInvertRestores) {
  Rng rng(17);
  const auto before = graph_.edges();
  const auto batch = generateBatch(graph_, 100, rng);
  graph_.applyBatch(batch);
  graph_.applyBatch(batch.inverted());
  EXPECT_EQ(graph_.edges(), before);
}

TEST_F(BatchGenTest, DeterministicGivenSeed) {
  Rng a(18), b(18);
  const auto ba = generateBatch(graph_, 60, a);
  const auto bb = generateBatch(graph_, 60, b);
  EXPECT_EQ(ba.deletions, bb.deletions);
  EXPECT_EQ(ba.insertions, bb.insertions);
}

TEST(BatchGen, EmptyAndTinyGraphs) {
  DynamicDigraph g(1);
  Rng rng(19);
  EXPECT_TRUE(generateBatch(g, 10, rng).empty());
  DynamicDigraph g2(0);
  EXPECT_TRUE(generateBatch(g2, 10, rng).empty());
}

TEST(TemporalReplay, ProtocolShapes) {
  Rng rng(20);
  TemporalEdgeListData data;
  data.numVertices = 300;
  data.edges = generateTemporalStream(300, 10000, 0.4, rng);
  const auto replay = makeTemporalReplay(data, 0.9, 1e-3);  // batch = 10 edges
  EXPECT_EQ(replay.numTemporalEdges, 10000u);
  EXPECT_GT(replay.numStaticEdges, 0u);
  EXPECT_LE(replay.numStaticEdges, replay.numTemporalEdges);
  // ~1000 trailing edges in batches of 10.
  EXPECT_EQ(replay.batches.size(), 100u);
  for (const auto& b : replay.batches) {
    EXPECT_TRUE(b.deletions.empty());  // insert-only protocol
    EXPECT_LE(b.insertions.size(), 10u);
  }
  // Initial graph has self-loops everywhere (no dead ends).
  const auto s = computeStats(replay.initial.toCsr());
  EXPECT_EQ(s.numDeadEnds, 0u);
  EXPECT_EQ(s.numSelfLoops, replay.initial.numVertices());
}

TEST(TemporalReplay, MaxBatchesLimits) {
  Rng rng(21);
  TemporalEdgeListData data;
  data.numVertices = 100;
  data.edges = generateTemporalStream(100, 2000, 0.3, rng);
  const auto replay = makeTemporalReplay(data, 0.5, 1e-2, 5);
  EXPECT_EQ(replay.batches.size(), 5u);
}

TEST(TemporalReplay, RejectsBadFractions) {
  TemporalEdgeListData data;
  EXPECT_THROW(makeTemporalReplay(data, -0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(makeTemporalReplay(data, 0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace lfpr
