// Tests for the vertex-dynamic extension (the paper's Section 6 future
// work): rank rescaling for vertex insertions/removals, and end-to-end
// vertex churn driven through the Dynamic Frontier engine.
#include <gtest/gtest.h>

#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/vertex_dynamic.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions testOptions() {
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  return opt;
}

TEST(ExpandRanks, PreservesMassAndOrdering) {
  const std::vector<double> ranks = {0.5, 0.3, 0.2};
  const auto out = expandRanksForNewVertices(ranks, 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NEAR(rankSum(out), 1.0, 1e-12);
  EXPECT_GT(out[0], out[1]);
  EXPECT_GT(out[1], out[2]);
  EXPECT_NEAR(out[3], 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(out[4], 1.0 / 5.0, 1e-12);
}

TEST(ExpandRanks, NoopWhenSizeUnchanged) {
  const std::vector<double> ranks = {0.6, 0.4};
  EXPECT_EQ(expandRanksForNewVertices(ranks, 2), ranks);
}

TEST(ExpandRanks, FromEmpty) {
  const auto out = expandRanksForNewVertices({}, 4);
  ASSERT_EQ(out.size(), 4u);
  for (double r : out) EXPECT_NEAR(r, 0.25, 1e-12);
}

TEST(ExpandRanks, RejectsShrinking) {
  const std::vector<double> ranks = {0.5, 0.5};
  EXPECT_THROW(expandRanksForNewVertices(ranks, 1), std::invalid_argument);
}

TEST(RemoveRanks, CompactsAndRenormalizes) {
  const std::vector<double> ranks = {0.4, 0.3, 0.2, 0.1};
  const std::vector<VertexId> removed = {1, 3};
  std::vector<VertexId> remap;
  const auto out = removeVertexRanks(ranks, removed, &remap);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(rankSum(out), 1.0, 1e-12);
  EXPECT_NEAR(out[0] / out[1], 0.4 / 0.2, 1e-12);  // proportions kept
  ASSERT_EQ(remap.size(), 4u);
  EXPECT_EQ(remap[0], 0u);
  EXPECT_EQ(remap[1], kNoVertex);
  EXPECT_EQ(remap[2], 1u);
  EXPECT_EQ(remap[3], kNoVertex);
}

TEST(RemoveRanks, RejectsOutOfRange) {
  const std::vector<double> ranks = {1.0};
  const std::vector<VertexId> removed = {5};
  EXPECT_THROW(removeVertexRanks(ranks, removed), std::out_of_range);
}

TEST(RemoveRanks, RemovingEverythingYieldsEmpty) {
  const std::vector<double> ranks = {0.5, 0.5};
  const std::vector<VertexId> removed = {0, 1};
  EXPECT_TRUE(removeVertexRanks(ranks, removed).empty());
}

TEST(VertexDynamic, AddVertexEndToEndViaDFLF) {
  // Build a graph, converge; then add a vertex with a few links, rescale
  // ranks, and run DFLF with the new vertex's edges as the batch. The
  // result must match a cold static solve on the grown graph.
  Rng rng(1);
  constexpr VertexId n = 512;
  auto es = generateErdosRenyi(n, 4000, rng);
  appendSelfLoops(es, n);
  const auto opt = testOptions();

  auto prevGraph = DynamicDigraph::fromEdges(n, es);
  const auto prevCsr = prevGraph.toCsr();
  PageRankOptions warm = opt;
  warm.tolerance = 1e-15;  // below tau_f: keeps the frontier noise-free
  const auto prevRanks = staticBB(prevCsr, warm).ranks;

  // Grow the vertex set by one; the newcomer links to/from a few vertices
  // and gets its self-loop.
  constexpr VertexId newV = n;
  DynamicDigraph grown(n + 1);
  for (const Edge& e : prevGraph.edges()) grown.addEdge(e.src, e.dst);
  // prev snapshot *with* the empty new vertex (same vertex set for the
  // engine; the new vertex exists but has no edges yet except none).
  const auto prevGrownCsr = grown.toCsr();

  BatchUpdate batch;
  batch.insertions = {{newV, newV}, {newV, 3}, {newV, 7}, {5, newV}, {9, newV}};
  grown.applyBatch(batch);
  const auto currCsr = grown.toCsr();

  const auto warmRanks = expandRanksForNewVertices(prevRanks, n + 1);
  const auto r = dfLF(prevGrownCsr, currCsr, batch, warmRanks, opt);
  ASSERT_TRUE(r.converged);

  const auto ref = referenceRanks(currCsr);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
}

TEST(VertexDynamic, RemoveVertexEndToEndViaDFLF) {
  Rng rng(2);
  constexpr VertexId n = 512;
  auto es = generateErdosRenyi(n, 4000, rng);
  appendSelfLoops(es, n);
  const auto opt = testOptions();

  auto graph = DynamicDigraph::fromEdges(n, es);
  PageRankOptions warm = opt;
  warm.tolerance = 1e-15;
  const auto ranks = staticBB(graph.toCsr(), warm).ranks;

  // Remove vertex `victim`: first delete its incident edges (an edge
  // batch on the unchanged vertex set), then compact ids.
  constexpr VertexId victim = 100;
  const auto prevCsr = graph.toCsr();
  BatchUpdate batch;
  for (VertexId w : prevCsr.out(victim)) batch.deletions.push_back({victim, w});
  for (VertexId u : prevCsr.in(victim))
    if (u != victim) batch.deletions.push_back({u, victim});
  graph.applyBatch(batch);
  const auto currCsr = graph.toCsr();

  const auto detached = dfLF(prevCsr, currCsr, batch, ranks, opt);
  ASSERT_TRUE(detached.converged);

  // Compact: drop the isolated vertex from graph and ranks.
  std::vector<VertexId> remap;
  const std::vector<VertexId> removed = {victim};
  auto compactRanks = removeVertexRanks(detached.ranks, removed, &remap);
  DynamicDigraph compact(n - 1);
  for (const Edge& e : graph.edges())
    if (e.src != victim && e.dst != victim)
      compact.addEdge(remap[e.src], remap[e.dst]);
  compact.ensureSelfLoops();

  // The compacted warm ranks must let ND converge to the compact graph's
  // reference quickly and accurately.
  const auto compactCsr = compact.toCsr();
  const auto r = ndLF(compactCsr, compactRanks, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(compactCsr)), 1e-6);
}

}  // namespace
}  // namespace lfpr
