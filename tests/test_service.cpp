// Service-layer tests (PR 6): the RankService's epoch/RCU snapshot swap
// must never show readers torn, rolled-back, or unconverged ranks; the
// grace period must actually reclaim retired snapshots; crash-stopped
// steps must leave readers on the last published epoch; and continuous
// ingest must agree with an offline batch solve within the §4.5 error
// bounds. The SnapshotBox stress tests run the classic torn-read
// experiment (every snapshot internally self-consistent under a
// publisher firehose) and are in the TSan preset via the `service`
// suite filter.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"
#include "service/rank_service.hpp"
#include "service/snapshot_box.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

constexpr VertexId kVertices = VertexId{1} << 10;

CsrGraph makeTestGraph(std::uint64_t seed) {
  Rng rng(seed);
  auto edges = generateRmat(10, 8 * kVertices, rng);
  appendSelfLoops(edges, kVertices);
  return DynamicDigraph::fromEdges(kVertices, edges).toCsr();
}

ServiceOptions smallServiceOptions() {
  ServiceOptions opt;
  opt.solver.numThreads = 4;
  opt.solver.chunkSize = 64;
  return opt;
}

std::unique_ptr<RankSnapshot> patternSnapshot(std::uint64_t epoch,
                                              std::size_t n) {
  auto snap = std::make_unique<RankSnapshot>();
  snap->epoch = epoch;
  snap->converged = true;
  snap->ranks.assign(n, static_cast<double>(epoch));
  return snap;
}

// ---------------------------------------------------------------------
// SnapshotBox: swap, immutability, grace-period reclamation.

TEST(SnapshotBox, AcquireSeesLatestPublish) {
  SnapshotBox box;
  EXPECT_FALSE(box.acquire());  // nothing published yet
  box.publish(patternSnapshot(1, 8));
  {
    const SnapshotView v = box.acquire();
    ASSERT_TRUE(v);
    EXPECT_EQ(v->epoch, 1u);
  }
  box.publish(patternSnapshot(2, 8));
  const SnapshotView v = box.acquire();
  EXPECT_EQ(v->epoch, 2u);
}

TEST(SnapshotBox, HeldViewSurvivesPublishesUnchanged) {
  SnapshotBox box;
  box.publish(patternSnapshot(1, 64));
  const SnapshotView held = box.acquire();
  const std::vector<double> before = held->ranks;
  for (std::uint64_t e = 2; e <= 50; ++e) box.publish(patternSnapshot(e, 64));
  // The pinned snapshot is bit-for-bit what it was at acquire: no
  // publish mutated or reclaimed it under the reader.
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_EQ(held->ranks, before);
  // And the grace period held it: epoch 1 is retired but not freed.
  EXPECT_GE(box.retiredCount(), 1u);
}

TEST(SnapshotBox, GracePeriodReclaimsAfterRelease) {
  SnapshotBox box;
  box.publish(patternSnapshot(1, 8));
  SnapshotView held = box.acquire();
  for (std::uint64_t e = 2; e <= 10; ++e) box.publish(patternSnapshot(e, 8));
  EXPECT_GE(box.retiredCount(), 1u);
  held.reset();
  // Reclamation happens on the publisher's next publish; with every
  // reader quiescent the whole retire list (including the snapshot
  // retired by this very publish) drains.
  box.publish(patternSnapshot(11, 8));
  EXPECT_EQ(box.retiredCount(), 0u);
  EXPECT_EQ(box.reclaimedCount(), 10u);
}

TEST(SnapshotBox, QuiescentReadersReclaimEverything) {
  SnapshotBox box;
  for (std::uint64_t e = 1; e <= 100; ++e) {
    box.publish(patternSnapshot(e, 8));
    const SnapshotView v = box.acquire();
    EXPECT_EQ(v->epoch, e);
  }
  // Every view was released before the next publish: at most the most
  // recent retiree can still be pending.
  EXPECT_LE(box.retiredCount(), 1u);
  EXPECT_GE(box.reclaimedCount(), 98u);
}

TEST(SnapshotBox, NestedAcquiresShareThePin) {
  SnapshotBox box;
  box.publish(patternSnapshot(1, 8));
  const SnapshotView outer = box.acquire();
  {
    const SnapshotView inner = box.acquire();
    EXPECT_EQ(inner->epoch, outer->epoch);
  }
  // Inner release must not unpin the outer view.
  box.publish(patternSnapshot(2, 8));
  EXPECT_EQ(outer->epoch, 1u);
  EXPECT_EQ(outer->ranks[0], 1.0);
}

// The torn-read experiment: a publisher firehose against readers that
// verify every acquired snapshot is internally self-consistent (all
// elements equal the epoch) and per-reader epochs never go backwards.
// Any torn read, rollback, or use-after-reclaim shows up as a value
// mismatch here — and as a race under TSan.
TEST(SnapshotBoxStress, NoTornReadsUnderPublishFirehose) {
  SnapshotBox box;
  box.publish(patternSnapshot(1, 64));
  constexpr int kReaders = 4;
  constexpr std::uint64_t kPublishes = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t lastEpoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const SnapshotView v = box.acquire();
        if (!v) continue;
        const std::uint64_t e = v->epoch;
        if (e < lastEpoch) violations.fetch_add(1);
        lastEpoch = e;
        for (const double r : v->ranks)
          if (r != static_cast<double>(e)) violations.fetch_add(1);
      }
    });
  }
  for (std::uint64_t e = 2; e <= kPublishes; ++e)
    box.publish(patternSnapshot(e, 64));
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
  // With all readers quiescent, one more publish drains the retire list
  // down to (at most) its own predecessor.
  box.publish(patternSnapshot(kPublishes + 1, 64));
  EXPECT_LE(box.retiredCount(), 1u);
}

// ---------------------------------------------------------------------
// RankService: lifecycle, epochs, certificates.

TEST(Service, InitialSolvePublishesEpochOne) {
  const auto graph = makeTestGraph(11);
  RankService service(graph, smallServiceOptions());
  EXPECT_EQ(service.waitForEpoch(1), 1u);
  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v);
  EXPECT_EQ(v->epoch, 1u);
  EXPECT_TRUE(v->converged);
  // §4.5 certificate: published with the bound of the solve's options.
  const auto& solver = smallServiceOptions().solver;
  EXPECT_DOUBLE_EQ(v->toleranceBound,
                   asyncToleranceBound(solver.tolerance, solver.alpha));
  // The initial solve is a real PageRank: matches the reference solver.
  EXPECT_LT(linfNorm(v->ranks, referenceRanks(graph)), 1e-6);
}

TEST(Service, IngestQueryEquivalentToOfflineSolve) {
  const auto initial = makeTestGraph(12);
  RankService service(initial, smallServiceOptions());

  // Offline twin: same batches folded into a DynamicDigraph.
  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();

  Rng rng(13);
  for (int b = 0; b < 6; ++b) {
    const auto batch = generateBatch(offline, 150, rng);
    offline.applyBatch(batch);
    ASSERT_TRUE(service.submit(batch));
  }
  service.waitIdle();

  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v);
  EXPECT_TRUE(v->converged);
  EXPECT_EQ(v->batchesApplied, 6u);
  // Continuous ingest agrees with an offline solve of the final graph
  // well within the §4.5 certificate (default tolerance 1e-10 puts the
  // bound near 6.7e-10; drift across warm-started steps stays below it).
  const auto reference = referenceRanks(offline.toCsr());
  EXPECT_LT(linfNorm(v->ranks, reference), v->toleranceBound);

  const auto st = service.staleness();
  EXPECT_EQ(st.pendingBatches, 0u);
  EXPECT_EQ(st.pendingEdges, 0u);
  EXPECT_GE(st.epoch, 1u);
  EXPECT_GE(st.ageMs, 0.0);
}

TEST(Service, TopKMatchesFullSort) {
  const auto graph = makeTestGraph(14);
  RankService service(graph, smallServiceOptions());
  service.waitForEpoch(1);

  const SnapshotView v = service.snapshot();
  const auto top = v->topK(10);
  ASSERT_EQ(top.size(), 10u);
  // Descending, and each entry matches the vector it came from.
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].second, top[i].second);
  for (const auto& [vertex, rank] : top)
    EXPECT_EQ(rank, v->ranks[vertex]);
  // The k-th entry dominates everything outside the top-k set.
  std::vector<bool> inTop(v->ranks.size(), false);
  for (const auto& [vertex, rank] : top) inTop[vertex] = true;
  for (std::size_t u = 0; u < v->ranks.size(); ++u) {
    if (!inTop[u]) {
      EXPECT_LE(v->ranks[u], top.back().second);
    }
  }
  // Convenience accessors answer from the same published state.
  EXPECT_EQ(service.rank(top[0].first), top[0].second);
}

TEST(Service, ReadersKeepLastEpochAcrossCrashedSteps) {
  const auto initial = makeTestGraph(15);
  ServiceOptions opt = smallServiceOptions();
  opt.maxRecoveryAttempts = 1;
  // Solve 0 (initial) is healthy. Solves 1 and 2 — the first dynamic
  // step and its one recovery attempt — lose every worker almost
  // immediately, so the step fails and nothing may be published. Solve 3
  // (the carried full re-solve on the next step) is healthy again.
  std::atomic<int> crashedSolves{0};
  opt.faultFactory = [&](std::uint64_t solveIndex)
      -> std::unique_ptr<FaultInjector> {
    if (solveIndex == 1 || solveIndex == 2) {
      crashedSolves.fetch_add(1);
      return std::make_unique<FaultInjector>(
          4, makeCrashConfig(4, 4, /*minUpdates=*/1, /*maxUpdates=*/8,
                             /*seed=*/solveIndex));
    }
    return nullptr;
  };
  RankService service(initial, opt);
  service.waitForEpoch(1);
  const std::vector<double> epoch1 = service.ranks();

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(16);
  const auto batch1 = generateBatch(offline, 100, rng);
  offline.applyBatch(batch1);
  ASSERT_TRUE(service.submit(batch1));
  service.waitIdle();

  // The crashed step and its failed recovery must leave readers exactly
  // where they were: epoch 1, same ranks, nothing torn.
  EXPECT_EQ(crashedSolves.load(), 2);
  EXPECT_EQ(service.publishedEpoch(), 1u);
  EXPECT_EQ(service.ranks(), epoch1);
  auto st = service.stats();
  EXPECT_EQ(st.failedSteps, 1u);
  EXPECT_EQ(st.recoveries, 1u);
  // ...but the batch is still pending, honestly reported.
  EXPECT_EQ(service.staleness().pendingBatches, 1u);

  // Next batch triggers the carried full re-solve (healthy): epoch 2
  // reflects BOTH batches.
  const auto batch2 = generateBatch(offline, 100, rng);
  offline.applyBatch(batch2);
  ASSERT_TRUE(service.submit(batch2));
  service.waitIdle();
  EXPECT_EQ(service.publishedEpoch(), 2u);
  EXPECT_EQ(service.staleness().pendingBatches, 0u);
  const SnapshotView v = service.snapshot();
  EXPECT_TRUE(v->converged);
  EXPECT_LT(linfNorm(v->ranks, referenceRanks(offline.toCsr())),
            v->toleranceBound);
}

// ---------------------------------------------------------------------
// Engine routing (PR 8): incremental steps through the delta-push
// residual engine, explicitly or via the Auto mid-density band.

TEST(Service, DeltaPushStepEngineMatchesOfflineSolve) {
  const auto initial = makeTestGraph(40);
  ServiceOptions opt = smallServiceOptions();
  opt.stepEngine = ServiceOptions::StepEngine::DeltaPush;
  RankService service(initial, opt);

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(41);
  for (int b = 0; b < 6; ++b) {
    const auto batch = generateBatch(offline, 150, rng);
    offline.applyBatch(batch);
    ASSERT_TRUE(service.submit(batch));
  }
  service.waitIdle();

  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v);
  EXPECT_TRUE(v->converged);
  EXPECT_EQ(v->batchesApplied, 6u);
  // Every incremental step went through the push engine (the initial
  // full solve stays pull — its frontier is the whole graph).
  EXPECT_GT(service.stats().deltaPushSteps, 0u);
  // Push steps park up to tau of residual mass at every vertex, so the
  // drift allowance against the offline reference is wider than the
  // pull service's certificate check — same 16x rationale as the
  // delta-push sweeps in test_kernels.cpp.
  const auto reference = referenceRanks(offline.toCsr());
  EXPECT_LT(linfNorm(v->ranks, reference), 16.0 * v->toleranceBound);
}

TEST(Service, AutoRoutesMidBandBatchesToDeltaPush) {
  const auto initial = makeTestGraph(42);
  const double edges = static_cast<double>(
      DynamicDigraph::fromCsr(initial).toCsr().numEdges());
  ServiceOptions opt = smallServiceOptions();
  opt.stepEngine = ServiceOptions::StepEngine::Auto;
  RankService service(initial, opt);
  service.waitForEpoch(1);

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(43);

  // A batch inside the band: fraction in [1e-5, 1e-3] of graph edges.
  const auto midEdges = static_cast<std::size_t>(std::max(
      1.0, edges * ServiceOptions::kDeltaPushMaxFraction * 0.5));
  const auto mid = generateBatch(offline, midEdges, rng);
  offline.applyBatch(mid);
  ASSERT_TRUE(service.submit(mid));
  service.waitIdle();
  EXPECT_EQ(service.stats().deltaPushSteps, 1u) << "mid-band batch";

  // A batch far above the band routes back to the pull engine.
  const auto big = generateBatch(offline, 400, rng);
  offline.applyBatch(big);
  ASSERT_TRUE(service.submit(big));
  service.waitIdle();
  EXPECT_EQ(service.stats().deltaPushSteps, 1u) << "dense batch stayed pull";

  const SnapshotView v = service.snapshot();
  EXPECT_TRUE(v->converged);
  EXPECT_LT(linfNorm(v->ranks, referenceRanks(offline.toCsr())),
            16.0 * v->toleranceBound);
}

// ---------------------------------------------------------------------
// Monte Carlo engine routing (PR 9): approximate resident ranks plus
// personalized queries served through the snapshot, live under ingest.

TEST(Service, MonteCarloStepEngineTracksOfflineSolve) {
  const auto initial = makeTestGraph(50);
  ServiceOptions opt = smallServiceOptions();
  opt.stepEngine = ServiceOptions::StepEngine::MonteCarlo;
  opt.solver.mcWalksPerVertex = 64;
  RankService service(initial, opt);

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(51);
  for (int b = 0; b < 6; ++b) {
    const auto batch = generateBatch(offline, 150, rng);
    offline.applyBatch(batch);
    ASSERT_TRUE(service.submit(batch));
  }
  service.waitIdle();

  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v);
  EXPECT_TRUE(v->converged);
  EXPECT_EQ(v->batchesApplied, 6u);
  // Every step — the initial build included — went through the walk
  // engine, and the snapshot is flagged as a statistical estimate.
  EXPECT_GT(service.stats().monteCarloSteps, 0u);
  EXPECT_EQ(service.stats().deltaPushSteps, 0u);
  EXPECT_TRUE(v->monteCarlo);
  EXPECT_NE(v->mcFingerprint, 0u);
  EXPECT_EQ(v->toleranceBound,
            mcL1ErrorBound(opt.solver.alpha, opt.solver.mcWalksPerVertex));
  // The certificate is an L1 scale here, not the exact engines' L-inf.
  const auto reference = referenceRanks(offline.toCsr());
  EXPECT_LT(l1Norm(v->ranks, reference), v->toleranceBound);
}

TEST(Service, PprTopKServedWhileIngesting) {
  const auto initial = makeTestGraph(52);
  ServiceOptions opt = smallServiceOptions();
  opt.stepEngine = ServiceOptions::StepEngine::MonteCarlo;
  opt.solver.mcWalksPerVertex = 16;
  RankService service(initial, opt);
  service.waitForEpoch(1);

  // Readers hammer personalized queries while the writer streams
  // batches: every answer must come from a coherent published index —
  // sorted, root in its own support, per-entry bounds positive.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&service, &done, &answered, t] {
      std::uint64_t q = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto root =
            static_cast<VertexId>((q * 97 + static_cast<std::uint64_t>(t)) %
                                  kVertices);
        const auto top = service.pprTopK(root, 8);
        if (!top.empty()) {
          bool sawRoot = false;
          for (std::size_t i = 0; i < top.size(); ++i) {
            if (i > 0 && top[i - 1].score < top[i].score)
              ADD_FAILURE() << "unsorted pprTopK under ingest";
            if (top[i].errorBound <= 0.0)
              ADD_FAILURE() << "non-positive MC error bound";
            sawRoot |= top[i].vertex == root;
          }
          // Walks start at the root: it always carries >= R visits.
          if (!sawRoot) ADD_FAILURE() << "root " << root << " missing from "
                                         "its own personalized top-k";
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        ++q;
      }
    });
  }

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(53);
  for (int b = 0; b < 8; ++b) {
    const auto batch = generateBatch(offline, 100, rng);
    offline.applyBatch(batch);
    ASSERT_TRUE(service.submit(batch));
  }
  service.waitIdle();
  done.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GT(answered.load(), 0u) << "no personalized query ever answered";
  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v->monteCarlo);
  ASSERT_NE(v->ppr, nullptr);
  EXPECT_EQ(v->ppr->numRoots(), static_cast<std::size_t>(kVertices));
  // Exact-engine services never expose a PPR index.
  RankService exact(initial, smallServiceOptions());
  exact.waitForEpoch(1);
  EXPECT_TRUE(exact.pprTopK(0, 8).empty());
  EXPECT_EQ(exact.snapshot()->mcFingerprint, 0u);
}

TEST(Service, DeltaPushCrashedStepRecoversBeforePublish) {
  // A delta-push step that loses every worker must behave exactly like a
  // crashed pull step: nothing published until the service-level full
  // re-solve converges.
  const auto initial = makeTestGraph(44);
  ServiceOptions opt = smallServiceOptions();
  opt.stepEngine = ServiceOptions::StepEngine::DeltaPush;
  std::atomic<int> crashedSolves{0};
  opt.faultFactory =
      [&](std::uint64_t solveIndex) -> std::unique_ptr<FaultInjector> {
    if (solveIndex == 1) {  // the first (push) incremental step
      crashedSolves.fetch_add(1);
      return std::make_unique<FaultInjector>(
          4, makeCrashConfig(4, 4, /*minUpdates=*/1, /*maxUpdates=*/8,
                             /*seed=*/7));
    }
    return nullptr;
  };
  RankService service(initial, opt);
  service.waitForEpoch(1);

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(45);
  const auto batch = generateBatch(offline, 150, rng);
  offline.applyBatch(batch);
  ASSERT_TRUE(service.submit(batch));
  service.waitIdle();

  EXPECT_EQ(crashedSolves.load(), 1);
  EXPECT_GE(service.stats().recoveries, 1u);
  const SnapshotView v = service.snapshot();
  EXPECT_TRUE(v->converged);
  // The recovery full re-solve is a pull solve, so the ordinary
  // certificate check applies.
  EXPECT_LT(linfNorm(v->ranks, referenceRanks(offline.toCsr())),
            v->toleranceBound);
}

// Readers hammer the service while batches stream in: every observed
// snapshot is a published fixpoint (sums to 1 within its certificate,
// converged, monotone epoch). A torn swap or rolled-back publish would
// break the rank-sum or epoch invariants.
TEST(Service, ConcurrentReadersSeeOnlyConvergedSnapshots) {
  const auto initial = makeTestGraph(17);
  ServiceOptions opt = smallServiceOptions();
  opt.maxBatchesPerStep = 2;
  RankService service(initial, opt);

  constexpr int kReaders = 3;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t lastEpoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const SnapshotView v = service.snapshot();
        if (!v) continue;
        if (v->epoch < lastEpoch) violations.fetch_add(1);
        lastEpoch = v->epoch;
        if (v->epoch >= 1 && !v->converged) violations.fetch_add(1);
        // Rank mass is conserved by every published fixpoint; a torn
        // read mixing two epochs' ranks would not sum to 1.
        if (std::fabs(rankSum(v->ranks) - 1.0) > 1e-6)
          violations.fetch_add(1);
      }
    });
  }

  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(18);
  for (int b = 0; b < 10; ++b) {
    const auto batch = generateBatch(offline, 120, rng);
    offline.applyBatch(batch);
    ASSERT_TRUE(service.submit(batch));
  }
  service.waitIdle();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_LT(linfNorm(service.ranks(), referenceRanks(offline.toCsr())), 1e-6);
}

TEST(Service, StopAbortsInFlightSolvePromptly) {
  // A solver stop token already set: the engines exit at the first
  // boundary with honest flags.
  const auto graph = makeTestGraph(19);
  std::atomic<bool> stopNow{true};
  PageRankOptions opt;
  opt.numThreads = 2;
  opt.stopRequested = &stopNow;
  const auto r = staticLF(graph, opt);
  EXPECT_TRUE(r.stopped);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(std::isinf(r.toleranceBound));

  PageRankOptions wopt = opt;
  wopt.scheduling = SchedulingMode::Worklist;
  const auto rw = staticLF(graph, wopt);
  EXPECT_TRUE(rw.stopped);
  EXPECT_FALSE(rw.converged);

  const auto rb = staticBB(graph, opt);
  EXPECT_TRUE(rb.stopped);
  EXPECT_FALSE(rb.converged);

  // Service-level: stop() during ingest returns without publishing
  // anything partial; the last epoch stays queryable.
  RankService service(graph, smallServiceOptions());
  service.waitForEpoch(1);
  Rng rng(20);
  auto dyn = DynamicDigraph::fromCsr(graph);
  for (int b = 0; b < 4; ++b)
    (void)service.trySubmit(generateBatch(dyn, 100, rng));
  service.stop();
  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v);
  EXPECT_GE(v->epoch, 1u);
  EXPECT_TRUE(v->converged);
  // Stopped: no further submissions are accepted.
  EXPECT_FALSE(service.submit(generateBatch(dyn, 10, rng)));
}

TEST(Service, DrainAndStopFinishesQueuedWork) {
  const auto initial = makeTestGraph(21);
  RankService service(initial, smallServiceOptions());
  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(22);
  for (int b = 0; b < 5; ++b) {
    const auto batch = generateBatch(offline, 80, rng);
    offline.applyBatch(batch);
    ASSERT_TRUE(service.submit(batch));
  }
  service.drainAndStop();
  const auto st = service.stats();
  EXPECT_EQ(st.batchesApplied, 5u);
  EXPECT_EQ(service.staleness().pendingBatches, 0u);
  EXPECT_LT(linfNorm(service.ranks(), referenceRanks(offline.toCsr())), 1e-6);
}

}  // namespace
}  // namespace lfpr
