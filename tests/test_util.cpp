// Unit tests for src/util: RNG determinism and distribution sanity,
// summary statistics, table rendering, stopwatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace lfpr {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a(), b());
}

TEST(Rng, IsDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(5);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.between(3, 5);
    ASSERT_GE(x, 3u);
    ASSERT_LE(x, 5u);
    sawLo |= x == 3;
    sawHi |= x == 5;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(8);
  Rng child = parent.split();
  // Streams should not be identical in their prefix.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent() == child();
  EXPECT_LT(same, 4);
}

TEST(Stats, MeanBasics) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, GeomeanOfOneAndHundredIsTen) {
  const double xs[] = {1.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-9);
}

TEST(Stats, GeomeanSingleElement) {
  const double xs[] = {42.0};
  EXPECT_NEAR(geomean(xs), 42.0, 1e-9);
}

TEST(Stats, GeomeanToleratesZeros) {
  const double xs[] = {0.0, 1.0};
  EXPECT_GE(geomean(xs), 0.0);  // clamped, not NaN
}

TEST(Stats, StddevBasics) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  const double odd[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, MinMax) {
  const double xs[] = {5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
  EXPECT_DOUBLE_EQ(maxOf(xs), 5.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats rs;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.addRow({"alpha", Table::num(0.85, 2)});
  t.addRow({"tau", Table::sci(1e-10)});
  EXPECT_EQ(t.rowCount(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("0.85"), std::string::npos);
  EXPECT_NE(s.find("1.00e-10"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.elapsedMs();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.reset();
  EXPECT_LT(sw.elapsedMs(), 10.0);
}

TEST(Timer, ToMsConverts) {
  EXPECT_DOUBLE_EQ(toMs(std::chrono::nanoseconds(1'500'000)), 1.5);
}

}  // namespace
}  // namespace lfpr
