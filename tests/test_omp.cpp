// Tests for the OpenMP engine variants: they must agree with the native
// ThreadTeam engines (same algorithms, different runtime).
#include <gtest/gtest.h>

#include "generate/generators.hpp"
#include "harness/scenario.hpp"
#include "pagerank/omp_engines.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions testOptions() {
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  return opt;
}

DynamicScenario makeOmpScenario(std::uint64_t seed) {
  Rng rng(seed);
  auto es = generateRmat(9, 4000, rng);
  appendSelfLoops(es, 512);
  auto base = DynamicDigraph::fromEdges(512, es);
  return makeScenario(std::move(base), 1e-2, seed + 1, testOptions());
}

TEST(OmpEngines, Available) { EXPECT_TRUE(omp::available()); }

TEST(OmpEngines, ThreadsForRespectsOption) {
  PageRankOptions opt;
  opt.numThreads = 3;
  EXPECT_EQ(omp::threadsFor(opt), 3);
  opt.numThreads = 0;
  EXPECT_GE(omp::threadsFor(opt), 1);
}

TEST(OmpEngines, StaticEnginesMatchReference) {
  const auto scenario = makeOmpScenario(1);
  const auto ref = referenceRanks(scenario.curr);
  const auto bb = omp::staticBB(scenario.curr, testOptions());
  const auto lf = omp::staticLF(scenario.curr, testOptions());
  ASSERT_TRUE(bb.converged);
  ASSERT_TRUE(lf.converged);
  EXPECT_LT(linfNorm(bb.ranks, ref), 1e-9);
  EXPECT_LT(linfNorm(lf.ranks, ref), 1e-6);
}

TEST(OmpEngines, NdEnginesMatchNative) {
  const auto scenario = makeOmpScenario(2);
  const auto native = ndBB(scenario.curr, scenario.prevRanks, testOptions());
  const auto viaOmp = omp::ndBB(scenario.curr, scenario.prevRanks, testOptions());
  EXPECT_EQ(native.ranks, viaOmp.ranks);  // both synchronous Jacobi: bitwise
  const auto lf = omp::ndLF(scenario.curr, scenario.prevRanks, testOptions());
  ASSERT_TRUE(lf.converged);
  EXPECT_LT(linfNorm(lf.ranks, native.ranks), 1e-6);
}

TEST(OmpEngines, DfEnginesMatchReference) {
  const auto scenario = makeOmpScenario(3);
  const auto ref = referenceRanks(scenario.curr);
  const auto bb = omp::dfBB(scenario.prev, scenario.curr, scenario.batch,
                            scenario.prevRanks, testOptions());
  const auto lf = omp::dfLF(scenario.prev, scenario.curr, scenario.batch,
                            scenario.prevRanks, testOptions());
  ASSERT_TRUE(bb.converged);
  ASSERT_TRUE(lf.converged);
  EXPECT_LT(linfNorm(bb.ranks, ref), 1e-8);
  EXPECT_LT(linfNorm(lf.ranks, ref), 1e-6);
  EXPECT_GT(bb.affectedVertices, 0u);
  EXPECT_GT(lf.affectedVertices, 0u);
}

TEST(OmpEngines, WorklistSchedulingMatchesReference) {
  // The OpenMP LF engines share lfIterateWorker, so the worklist rings +
  // publish diet must behave identically inside an omp parallel region.
  const auto scenario = makeOmpScenario(7);
  const auto ref = referenceRanks(scenario.curr);
  auto opt = testOptions();
  opt.scheduling = SchedulingMode::Worklist;
  const auto lfStatic = omp::staticLF(scenario.curr, opt);
  const auto lfDf = omp::dfLF(scenario.prev, scenario.curr, scenario.batch,
                              scenario.prevRanks, opt);
  ASSERT_TRUE(lfStatic.converged);
  ASSERT_TRUE(lfDf.converged);
  EXPECT_LT(linfNorm(lfStatic.ranks, ref), 1e-6);
  EXPECT_LT(linfNorm(lfDf.ranks, ref), 1e-6);
}

TEST(OmpEngines, DfBBMatchesNativeDfBB) {
  // Same synchronous algorithm on two runtimes. Frontier expansion races
  // benignly within an iteration, so converged ranks (not the bitwise
  // trace) are the comparable artifact.
  const auto scenario = makeOmpScenario(4);
  const auto native = dfBB(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, testOptions());
  const auto viaOmp = omp::dfBB(scenario.prev, scenario.curr, scenario.batch,
                                scenario.prevRanks, testOptions());
  ASSERT_TRUE(native.converged);
  ASSERT_TRUE(viaOmp.converged);
  EXPECT_LT(linfNorm(native.ranks, viaOmp.ranks), 1e-9);
}

TEST(OmpEngines, RejectsBadRankVector) {
  const auto scenario = makeOmpScenario(5);
  const std::vector<double> bad(3, 0.0);
  EXPECT_THROW(omp::ndBB(scenario.curr, bad), std::invalid_argument);
  EXPECT_THROW(omp::ndLF(scenario.curr, bad), std::invalid_argument);
  EXPECT_THROW(
      omp::dfLF(scenario.prev, scenario.curr, scenario.batch, bad),
      std::invalid_argument);
}

TEST(OmpEngines, EmptyBatchIsCheap) {
  const auto scenario = makeOmpScenario(6);
  const auto r = omp::dfLF(scenario.prev, scenario.curr, BatchUpdate{},
                           scenario.prevRanks, testOptions());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.affectedVertices, 0u);
}

}  // namespace
}  // namespace lfpr
