// Unit tests for src/sched: lock-free chunk scheduling, thread team,
// instrumented barrier (wait accounting, breakage), fault injection,
// dirty-vertex work rings (worklist scheduling).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/barrier.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/fault.hpp"
#include "sched/thread_team.hpp"
#include "sched/work_ring.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

TEST(ChunkCursor, CoversRangeExactlyOnceSingleThread) {
  ChunkCursor cursor(100, 7);
  std::vector<int> hits(100, 0);
  std::size_t b = 0, e = 0;
  while (cursor.next(b, e))
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ChunkCursor, CoversRangeExactlyOnceMultiThread) {
  constexpr std::size_t kItems = 100000;
  ChunkCursor cursor(kItems, 64);
  std::vector<std::atomic<int>> hits(kItems);
  ThreadTeam team(8);
  team.run([&](int) {
    std::size_t b = 0, e = 0;
    while (cursor.next(b, e))
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ChunkCursor, EmptyRange) {
  ChunkCursor cursor(0, 8);
  std::size_t b = 0, e = 0;
  EXPECT_FALSE(cursor.next(b, e));
}

TEST(ChunkCursor, ZeroChunkSizeTreatedAsOne) {
  ChunkCursor cursor(3, 0);
  std::size_t b = 0, e = 0;
  int chunks = 0;
  while (cursor.next(b, e)) ++chunks;
  EXPECT_EQ(chunks, 3);
}

TEST(ChunkCursor, ResetAllowsReuse) {
  ChunkCursor cursor(10, 4);
  std::size_t b = 0, e = 0;
  while (cursor.next(b, e)) {
  }
  cursor.reset();
  EXPECT_TRUE(cursor.next(b, e));
  EXPECT_EQ(b, 0u);
}

TEST(ChunkCursor, LastChunkIsPartial) {
  ChunkCursor cursor(10, 4);
  std::size_t b = 0, e = 0;
  std::size_t last = 0;
  while (cursor.next(b, e)) last = e - b;
  EXPECT_EQ(last, 2u);
}

TEST(RoundCursorSet, RoundsAreIndependent) {
  RoundCursorSet rounds(50, 8, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    std::vector<int> hits(50, 0);
    std::size_t b = 0, e = 0;
    while (rounds.next(r, b, e))
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(RoundCursorSet, ConcurrentRoundsDoNotInterfere) {
  RoundCursorSet rounds(10000, 16, 4);
  std::vector<std::atomic<int>> hits(40000);
  ThreadTeam team(4);
  team.run([&](int tid) {
    // Each thread drains a different round concurrently.
    const auto r = static_cast<std::size_t>(tid);
    std::size_t b = 0, e = 0;
    while (rounds.next(r, b, e))
      for (std::size_t i = b; i < e; ++i) hits[r * 10000 + i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadTeam, RunsEveryThreadId) {
  ThreadTeam team(6);
  std::vector<std::atomic<int>> seen(6);
  team.run([&](int tid) { seen[static_cast<std::size_t>(tid)].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, ResolvesHardwareConcurrency) {
  EXPECT_GE(ThreadTeam(0).size(), 1);
  EXPECT_EQ(ThreadTeam(3).size(), 3);
}

TEST(ThreadTeam, PropagatesException) {
  ThreadTeam team(4);
  EXPECT_THROW(
      team.run([](int tid) {
        if (tid == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id worker;
  team.run([&](int) { worker = std::this_thread::get_id(); });
  EXPECT_EQ(worker, caller);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6, kPhases = 25;
  InstrumentedBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    for (int p = 0; p < kPhases; ++p) {
      counter.fetch_add(1);
      ASSERT_EQ(barrier.arriveAndWait(tid), InstrumentedBarrier::Status::Ok);
      // After the barrier, all kThreads increments of this phase are in.
      ASSERT_EQ(counter.load() % kThreads, 0);
      ASSERT_EQ(barrier.arriveAndWait(tid), InstrumentedBarrier::Status::Ok);
    }
  });
  EXPECT_EQ(counter.load(), kThreads * kPhases);
  EXPECT_FALSE(barrier.broken());
}

TEST(Barrier, AccountsWaitTime) {
  InstrumentedBarrier barrier(2);
  ThreadTeam team(2);
  team.run([&](int tid) {
    if (tid == 1) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    barrier.arriveAndWait(tid);
  });
  // Thread 0 waited for the sleeper.
  EXPECT_GE(barrier.waitTime(0), std::chrono::milliseconds(30));
  EXPECT_GE(barrier.totalWaitTime(), std::chrono::milliseconds(30));
}

TEST(Barrier, TimesOutWhenThreadNeverArrives) {
  InstrumentedBarrier barrier(2, std::chrono::milliseconds(100));
  ThreadTeam team(2);
  std::atomic<int> brokenCount{0};
  team.run([&](int tid) {
    if (tid == 1) return;  // crash-stop: never arrives
    if (barrier.arriveAndWait(tid) == InstrumentedBarrier::Status::Broken)
      brokenCount.fetch_add(1);
  });
  EXPECT_EQ(brokenCount.load(), 1);
  EXPECT_TRUE(barrier.broken());
}

TEST(Barrier, StaysBrokenForever) {
  InstrumentedBarrier barrier(2, std::chrono::milliseconds(50));
  ThreadTeam team(2);
  team.run([&](int tid) {
    if (tid == 1) return;
    barrier.arriveAndWait(tid);
  });
  ASSERT_TRUE(barrier.broken());
  // Even a full complement of arrivals now reports Broken immediately.
  EXPECT_EQ(barrier.arriveAndWait(0), InstrumentedBarrier::Status::Broken);
  EXPECT_EQ(barrier.arriveAndWait(1), InstrumentedBarrier::Status::Broken);
}

TEST(FaultInjector, NoFaultsAlwaysProceeds) {
  FaultInjector fault(4, FaultConfig{});
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(fault.onVertexProcessed(i % 4));
  EXPECT_EQ(fault.numCrashed(), 0);
  EXPECT_EQ(fault.delaysInjected(), 0u);
  EXPECT_EQ(fault.updatesObserved(), 1000u);
}

TEST(FaultInjector, CrashesAtScheduledUpdate) {
  FaultConfig cfg;
  cfg.crashAfterUpdates = {FaultConfig::noCrash, 10};
  FaultInjector fault(2, cfg);
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(fault.onVertexProcessed(1));
  EXPECT_FALSE(fault.onVertexProcessed(1));  // 10th update crashes
  EXPECT_TRUE(fault.crashed(1));
  EXPECT_FALSE(fault.crashed(0));
  EXPECT_FALSE(fault.onVertexProcessed(1));  // stays crashed
  EXPECT_TRUE(fault.onVertexProcessed(0));
  EXPECT_EQ(fault.numCrashed(), 1);
}

TEST(FaultInjector, InjectsDelaysAtRate) {
  FaultConfig cfg;
  cfg.delayProbability = 0.05;
  cfg.delayDuration = std::chrono::microseconds(1);
  FaultInjector fault(1, cfg);
  for (int i = 0; i < 4000; ++i) fault.onVertexProcessed(0);
  const auto delays = fault.delaysInjected();
  EXPECT_GT(delays, 100u);
  EXPECT_LT(delays, 400u);
}

TEST(FaultInjector, DelayActuallySleeps) {
  FaultConfig cfg;
  cfg.delayProbability = 1.0;
  cfg.delayDuration = std::chrono::microseconds(2000);
  FaultInjector fault(1, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  fault.onVertexProcessed(0);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::microseconds(1500));
}

TEST(MakeCrashConfig, SchedulesExactCount) {
  const auto cfg = makeCrashConfig(8, 3, 100, 1000, 42);
  ASSERT_EQ(cfg.crashAfterUpdates.size(), 8u);
  int scheduled = 0;
  for (const auto c : cfg.crashAfterUpdates) {
    if (c != FaultConfig::noCrash) {
      ++scheduled;
      EXPECT_GE(c, 100u);
      EXPECT_LT(c, 1000u);
    }
  }
  EXPECT_EQ(scheduled, 3);
}

TEST(MakeCrashConfig, ZeroCrashing) {
  const auto cfg = makeCrashConfig(4, 0, 0, 10, 1);
  for (const auto c : cfg.crashAfterUpdates) EXPECT_EQ(c, FaultConfig::noCrash);
}

TEST(MakeCrashConfig, ClampsToThreadCount) {
  const auto cfg = makeCrashConfig(4, 9, 0, 10, 1);
  int scheduled = 0;
  for (const auto c : cfg.crashAfterUpdates)
    if (c != FaultConfig::noCrash) ++scheduled;
  EXPECT_EQ(scheduled, 4);
}

TEST(MakeCrashConfig, IsDeterministic) {
  const auto a = makeCrashConfig(8, 3, 10, 100, 7);
  const auto b = makeCrashConfig(8, 3, 10, 100, 7);
  EXPECT_EQ(a.crashAfterUpdates, b.crashAfterUpdates);
}

// ----- WorkRing / WorklistScheduler (worklist scheduling) ----------------

TEST(WorkRing, FifoSingleThread) {
  WorkRing ring(8);
  EXPECT_GE(ring.capacity(), 8u);
  EXPECT_TRUE(ring.empty());
  for (VertexId v = 0; v < 8; ++v) EXPECT_TRUE(ring.tryPush(v));
  VertexId v = 0;
  for (VertexId want = 0; want < 8; ++want) {
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(ring.tryPop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(WorkRing, FullRingRefusesPush) {
  WorkRing ring(2);  // capacity rounds to 2
  ASSERT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.tryPush(1));
  EXPECT_TRUE(ring.tryPush(2));
  EXPECT_FALSE(ring.tryPush(3));
  VertexId v = 0;
  ASSERT_TRUE(ring.tryPop(v));
  EXPECT_TRUE(ring.tryPush(3));  // slot recycled after the pop
}

TEST(WorkRing, WrapsAroundManyTimes) {
  WorkRing ring(4);
  VertexId v = 0;
  for (VertexId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.tryPush(i));
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(WorkRing, ConcurrentProducersOneConsumerDeliverEverythingOnce) {
  constexpr int kProducers = 3;
  constexpr VertexId kPerProducer = 5000;
  WorkRing ring(kProducers * kPerProducer);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> produced{0};

  ThreadTeam team(kProducers + 1);
  team.run([&](int tid) {
    if (tid < kProducers) {
      for (VertexId i = 0; i < kPerProducer; ++i) {
        const VertexId v = static_cast<VertexId>(tid) * kPerProducer + i;
        while (!ring.tryPush(v)) std::this_thread::yield();
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      int got = 0;
      VertexId v = 0;
      while (got < kProducers * static_cast<int>(kPerProducer)) {
        if (ring.tryPop(v)) {
          seen[v].fetch_add(1, std::memory_order_relaxed);
          ++got;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(WorklistScheduler, PartitionCoversVertexRangeExactlyOnce) {
  for (const auto& [n, threads] : {std::pair<std::size_t, int>{100, 4},
                                  {7, 8},
                                  {4096, 3},
                                  {1, 1}}) {
    WorklistScheduler wl(n, threads, /*seedSweep=*/false);
    std::size_t covered = 0;
    for (int t = 0; t < wl.numThreads(); ++t) {
      EXPECT_LE(wl.ownedBegin(t), wl.ownedEnd(t));
      covered += wl.ownedEnd(t) - wl.ownedBegin(t);
      for (std::size_t v = wl.ownedBegin(t); v < wl.ownedEnd(t); ++v)
        EXPECT_EQ(wl.owner(v), t);
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(WorklistScheduler, EnqueueDeduplicatesUntilPopped) {
  WorklistScheduler wl(64, 2, /*seedSweep=*/false);
  wl.enqueue(5);
  wl.enqueue(5);  // dedup: still one in-flight entry
  VertexId v = 0;
  ASSERT_TRUE(wl.tryPop(wl.owner(5), v));
  EXPECT_EQ(v, 5u);
  EXPECT_FALSE(wl.tryPop(wl.owner(5), v));
  wl.enqueue(5);  // re-enqueue allowed after the pop
  ASSERT_TRUE(wl.tryPop(wl.owner(5), v));
  EXPECT_EQ(v, 5u);
}

TEST(WorklistScheduler, EnqueueRoutesToOwnerRing) {
  WorklistScheduler wl(100, 4, /*seedSweep=*/false);
  for (std::size_t v = 0; v < 100; ++v) wl.enqueue(v);
  std::vector<std::uint8_t> seen(100, 0);
  for (int t = 0; t < 4; ++t) {
    VertexId v = 0;
    while (wl.tryPop(t, v)) {
      EXPECT_EQ(wl.owner(v), t) << "vertex " << v << " popped from ring " << t;
      EXPECT_EQ(seen[v], 0);
      seen[v] = 1;
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 100);
}

TEST(WorklistScheduler, StealDrainsForeignRings) {
  WorklistScheduler wl(64, 4, /*seedSweep=*/false);
  wl.enqueue(2);   // ring 0
  wl.enqueue(63);  // ring 3
  std::vector<VertexId> got;
  VertexId v = 0;
  while (wl.trySteal(1, v)) got.push_back(v);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<VertexId>{2, 63}));
}

TEST(WorklistScheduler, ConcurrentMarkersNeverExceedOneEntryPerVertex) {
  // 4 markers hammer the same 32 vertices; each pop is matched against a
  // per-vertex in-flight counter. The dedup flag must keep every vertex
  // at <= 1 ring entry, and owner-sized rings must therefore never refuse
  // a push (WorklistScheduler::enqueue's overflow valve stays cold).
  constexpr std::size_t kN = 32;
  WorklistScheduler wl(kN, 2, /*seedSweep=*/false);
  std::atomic<bool> stop{false};
  std::vector<std::atomic<int>> inFlight(kN);

  ThreadTeam team(6);
  team.run([&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 1);
    if (tid < 4) {  // markers
      for (int i = 0; i < 20000; ++i)
        wl.enqueue(static_cast<std::size_t>(rng.uniform() * kN) % kN);
    } else {  // consumers (tids 4,5 drain rings 0,1)
      const int ring = tid - 4;
      VertexId v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (wl.tryPop(ring, v)) {
          const int entries = inFlight[v].fetch_add(1) + 1;
          EXPECT_EQ(entries, 1) << "vertex " << v;
          inFlight[v].fetch_sub(1);
        } else {
          std::this_thread::yield();
        }
      }
      while (wl.tryPop(ring, v)) {
      }
    }
    if (tid < 4) stop.store(true, std::memory_order_relaxed);
  });
}

}  // namespace
}  // namespace lfpr
