// Unit tests for src/sched: lock-free chunk scheduling, thread team,
// instrumented barrier (wait accounting, breakage), fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/barrier.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/fault.hpp"
#include "sched/thread_team.hpp"

namespace lfpr {
namespace {

TEST(ChunkCursor, CoversRangeExactlyOnceSingleThread) {
  ChunkCursor cursor(100, 7);
  std::vector<int> hits(100, 0);
  std::size_t b = 0, e = 0;
  while (cursor.next(b, e))
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ChunkCursor, CoversRangeExactlyOnceMultiThread) {
  constexpr std::size_t kItems = 100000;
  ChunkCursor cursor(kItems, 64);
  std::vector<std::atomic<int>> hits(kItems);
  ThreadTeam team(8);
  team.run([&](int) {
    std::size_t b = 0, e = 0;
    while (cursor.next(b, e))
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ChunkCursor, EmptyRange) {
  ChunkCursor cursor(0, 8);
  std::size_t b = 0, e = 0;
  EXPECT_FALSE(cursor.next(b, e));
}

TEST(ChunkCursor, ZeroChunkSizeTreatedAsOne) {
  ChunkCursor cursor(3, 0);
  std::size_t b = 0, e = 0;
  int chunks = 0;
  while (cursor.next(b, e)) ++chunks;
  EXPECT_EQ(chunks, 3);
}

TEST(ChunkCursor, ResetAllowsReuse) {
  ChunkCursor cursor(10, 4);
  std::size_t b = 0, e = 0;
  while (cursor.next(b, e)) {
  }
  cursor.reset();
  EXPECT_TRUE(cursor.next(b, e));
  EXPECT_EQ(b, 0u);
}

TEST(ChunkCursor, LastChunkIsPartial) {
  ChunkCursor cursor(10, 4);
  std::size_t b = 0, e = 0;
  std::size_t last = 0;
  while (cursor.next(b, e)) last = e - b;
  EXPECT_EQ(last, 2u);
}

TEST(RoundCursorSet, RoundsAreIndependent) {
  RoundCursorSet rounds(50, 8, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    std::vector<int> hits(50, 0);
    std::size_t b = 0, e = 0;
    while (rounds.next(r, b, e))
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(RoundCursorSet, ConcurrentRoundsDoNotInterfere) {
  RoundCursorSet rounds(10000, 16, 4);
  std::vector<std::atomic<int>> hits(40000);
  ThreadTeam team(4);
  team.run([&](int tid) {
    // Each thread drains a different round concurrently.
    const auto r = static_cast<std::size_t>(tid);
    std::size_t b = 0, e = 0;
    while (rounds.next(r, b, e))
      for (std::size_t i = b; i < e; ++i) hits[r * 10000 + i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadTeam, RunsEveryThreadId) {
  ThreadTeam team(6);
  std::vector<std::atomic<int>> seen(6);
  team.run([&](int tid) { seen[static_cast<std::size_t>(tid)].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, ResolvesHardwareConcurrency) {
  EXPECT_GE(ThreadTeam(0).size(), 1);
  EXPECT_EQ(ThreadTeam(3).size(), 3);
}

TEST(ThreadTeam, PropagatesException) {
  ThreadTeam team(4);
  EXPECT_THROW(
      team.run([](int tid) {
        if (tid == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id worker;
  team.run([&](int) { worker = std::this_thread::get_id(); });
  EXPECT_EQ(worker, caller);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6, kPhases = 25;
  InstrumentedBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    for (int p = 0; p < kPhases; ++p) {
      counter.fetch_add(1);
      ASSERT_EQ(barrier.arriveAndWait(tid), InstrumentedBarrier::Status::Ok);
      // After the barrier, all kThreads increments of this phase are in.
      ASSERT_EQ(counter.load() % kThreads, 0);
      ASSERT_EQ(barrier.arriveAndWait(tid), InstrumentedBarrier::Status::Ok);
    }
  });
  EXPECT_EQ(counter.load(), kThreads * kPhases);
  EXPECT_FALSE(barrier.broken());
}

TEST(Barrier, AccountsWaitTime) {
  InstrumentedBarrier barrier(2);
  ThreadTeam team(2);
  team.run([&](int tid) {
    if (tid == 1) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    barrier.arriveAndWait(tid);
  });
  // Thread 0 waited for the sleeper.
  EXPECT_GE(barrier.waitTime(0), std::chrono::milliseconds(30));
  EXPECT_GE(barrier.totalWaitTime(), std::chrono::milliseconds(30));
}

TEST(Barrier, TimesOutWhenThreadNeverArrives) {
  InstrumentedBarrier barrier(2, std::chrono::milliseconds(100));
  ThreadTeam team(2);
  std::atomic<int> brokenCount{0};
  team.run([&](int tid) {
    if (tid == 1) return;  // crash-stop: never arrives
    if (barrier.arriveAndWait(tid) == InstrumentedBarrier::Status::Broken)
      brokenCount.fetch_add(1);
  });
  EXPECT_EQ(brokenCount.load(), 1);
  EXPECT_TRUE(barrier.broken());
}

TEST(Barrier, StaysBrokenForever) {
  InstrumentedBarrier barrier(2, std::chrono::milliseconds(50));
  ThreadTeam team(2);
  team.run([&](int tid) {
    if (tid == 1) return;
    barrier.arriveAndWait(tid);
  });
  ASSERT_TRUE(barrier.broken());
  // Even a full complement of arrivals now reports Broken immediately.
  EXPECT_EQ(barrier.arriveAndWait(0), InstrumentedBarrier::Status::Broken);
  EXPECT_EQ(barrier.arriveAndWait(1), InstrumentedBarrier::Status::Broken);
}

TEST(FaultInjector, NoFaultsAlwaysProceeds) {
  FaultInjector fault(4, FaultConfig{});
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(fault.onVertexProcessed(i % 4));
  EXPECT_EQ(fault.numCrashed(), 0);
  EXPECT_EQ(fault.delaysInjected(), 0u);
  EXPECT_EQ(fault.updatesObserved(), 1000u);
}

TEST(FaultInjector, CrashesAtScheduledUpdate) {
  FaultConfig cfg;
  cfg.crashAfterUpdates = {FaultConfig::noCrash, 10};
  FaultInjector fault(2, cfg);
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(fault.onVertexProcessed(1));
  EXPECT_FALSE(fault.onVertexProcessed(1));  // 10th update crashes
  EXPECT_TRUE(fault.crashed(1));
  EXPECT_FALSE(fault.crashed(0));
  EXPECT_FALSE(fault.onVertexProcessed(1));  // stays crashed
  EXPECT_TRUE(fault.onVertexProcessed(0));
  EXPECT_EQ(fault.numCrashed(), 1);
}

TEST(FaultInjector, InjectsDelaysAtRate) {
  FaultConfig cfg;
  cfg.delayProbability = 0.05;
  cfg.delayDuration = std::chrono::microseconds(1);
  FaultInjector fault(1, cfg);
  for (int i = 0; i < 4000; ++i) fault.onVertexProcessed(0);
  const auto delays = fault.delaysInjected();
  EXPECT_GT(delays, 100u);
  EXPECT_LT(delays, 400u);
}

TEST(FaultInjector, DelayActuallySleeps) {
  FaultConfig cfg;
  cfg.delayProbability = 1.0;
  cfg.delayDuration = std::chrono::microseconds(2000);
  FaultInjector fault(1, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  fault.onVertexProcessed(0);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::microseconds(1500));
}

TEST(MakeCrashConfig, SchedulesExactCount) {
  const auto cfg = makeCrashConfig(8, 3, 100, 1000, 42);
  ASSERT_EQ(cfg.crashAfterUpdates.size(), 8u);
  int scheduled = 0;
  for (const auto c : cfg.crashAfterUpdates) {
    if (c != FaultConfig::noCrash) {
      ++scheduled;
      EXPECT_GE(c, 100u);
      EXPECT_LT(c, 1000u);
    }
  }
  EXPECT_EQ(scheduled, 3);
}

TEST(MakeCrashConfig, ZeroCrashing) {
  const auto cfg = makeCrashConfig(4, 0, 0, 10, 1);
  for (const auto c : cfg.crashAfterUpdates) EXPECT_EQ(c, FaultConfig::noCrash);
}

TEST(MakeCrashConfig, ClampsToThreadCount) {
  const auto cfg = makeCrashConfig(4, 9, 0, 10, 1);
  int scheduled = 0;
  for (const auto c : cfg.crashAfterUpdates)
    if (c != FaultConfig::noCrash) ++scheduled;
  EXPECT_EQ(scheduled, 4);
}

TEST(MakeCrashConfig, IsDeterministic) {
  const auto a = makeCrashConfig(8, 3, 10, 100, 7);
  const auto b = makeCrashConfig(8, 3, 10, 100, 7);
  EXPECT_EQ(a.crashAfterUpdates, b.crashAfterUpdates);
}

}  // namespace
}  // namespace lfpr
