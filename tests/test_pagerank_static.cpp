// Tests for the static engines (StaticBB / StaticLF) and the reference
// solver: closed-form correctness on tiny graphs, agreement with the
// reference on generated graphs, convergence semantics, scheduling knobs.
#include <gtest/gtest.h>

#include <numeric>

#include "generate/generators.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions testOptions() {
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  return opt;
}

CsrGraph rmatGraph(int scale, EdgeId edges, std::uint64_t seed) {
  Rng rng(seed);
  auto es = generateRmat(scale, edges, rng);
  appendSelfLoops(es, VertexId{1} << scale);
  return CsrGraph::fromEdges(VertexId{1} << scale, es);
}

TEST(StaticPageRank, EmptyGraph) {
  const CsrGraph g;
  EXPECT_TRUE(staticBB(g).converged);
  EXPECT_TRUE(staticLF(g).converged);
  EXPECT_TRUE(staticBB(g).ranks.empty());
}

TEST(StaticPageRank, SingleVertexWithSelfLoopHasRankOne) {
  const auto g = CsrGraph::fromEdges(1, std::vector<Edge>{{0, 0}});
  const auto r = staticBB(g, testOptions());
  ASSERT_EQ(r.ranks.size(), 1u);
  EXPECT_NEAR(r.ranks[0], 1.0, 1e-12);
  EXPECT_TRUE(r.converged);
}

// Two vertices, self-loops, plus 0 -> 1. Closed form with alpha = 0.85:
// r0 = 3/23, r1 = 20/23 (see the derivation in the test body).
TEST(StaticPageRank, TwoVertexChainMatchesClosedForm) {
  // r0 = 0.075 + 0.85*r0/2          => r0 = 0.075 / 0.575 = 3/23
  // r1 = 0.075 + 0.85*(r0/2 + r1)   => r1 = (0.075 + 0.425*r0)/0.15 = 20/23
  const auto g = CsrGraph::fromEdges(2, std::vector<Edge>{{0, 0}, {0, 1}, {1, 1}});
  for (const auto& r : {staticBB(g, testOptions()), staticLF(g, testOptions())}) {
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.ranks[0], 3.0 / 23.0, 1e-9);
    EXPECT_NEAR(r.ranks[1], 20.0 / 23.0, 1e-9);
  }
}

TEST(StaticPageRank, CycleIsUniform) {
  std::vector<Edge> es;
  constexpr VertexId n = 16;
  for (VertexId v = 0; v < n; ++v) {
    es.push_back({v, static_cast<VertexId>((v + 1) % n)});
    es.push_back({v, v});
  }
  const auto g = CsrGraph::fromEdges(n, es);
  const auto r = staticBB(g, testOptions());
  for (double x : r.ranks) EXPECT_NEAR(x, 1.0 / n, 1e-10);
}

TEST(StaticPageRank, RankMassConservedWithSelfLoops) {
  const auto g = rmatGraph(9, 4000, 1);
  const auto bb = staticBB(g, testOptions());
  const auto lf = staticLF(g, testOptions());
  EXPECT_NEAR(rankSum(bb.ranks), 1.0, 1e-9);
  // The asynchronous engine stops each vertex at per-vertex delta <= tau,
  // so total mass carries an O(n * tau / (1 - alpha)) residual.
  EXPECT_NEAR(rankSum(lf.ranks), 1.0, 1e-6);
}

TEST(StaticPageRank, DeadEndsLeakMassButDoNotCrash) {
  // Without self-loops, vertex 1 is a dead end; the solve must still
  // converge (mass simply leaks, Section 5.1.3 motivates the self-loops).
  const auto g = CsrGraph::fromEdges(2, std::vector<Edge>{{0, 1}});
  const auto r = staticBB(g, testOptions());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.ranks[0], 0.075, 1e-10);
  EXPECT_NEAR(r.ranks[1], 0.075 + 0.85 * 0.075, 1e-10);
  EXPECT_LT(rankSum(r.ranks), 1.0);
}

TEST(StaticPageRank, MatchesReferenceOnRmat) {
  const auto g = rmatGraph(10, 8000, 2);
  const auto ref = referenceRanks(g);
  EXPECT_LT(linfNorm(staticBB(g, testOptions()).ranks, ref), 1e-9);
  EXPECT_LT(linfNorm(staticLF(g, testOptions()).ranks, ref), 1e-6);
}

TEST(StaticPageRank, BBIsDeterministic) {
  const auto g = rmatGraph(9, 4000, 3);
  const auto a = staticBB(g, testOptions());
  const auto b = staticBB(g, testOptions());
  EXPECT_EQ(a.ranks, b.ranks);  // bitwise: synchronous Jacobi
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(StaticPageRank, LFAgreesWithBB) {
  const auto g = rmatGraph(9, 4000, 4);
  const auto bb = staticBB(g, testOptions());
  const auto lf = staticLF(g, testOptions());
  EXPECT_LT(linfNorm(bb.ranks, lf.ranks), 1e-6);
}

TEST(StaticPageRank, LFConvergesInFewerOrEqualIterations) {
  // Asynchronous (Gauss-Seidel-like) propagation uses fresher values, so
  // it should not need *more* sweeps than synchronous Jacobi. The LF
  // `iterations` metric is the highest round any thread *touched*, which
  // racing threads inflate under adversarial scheduling: on an
  // oversubscribed 1-CPU host a thread that drains empty chunk pools
  // while the others are preempted can run many rounds ahead (observed
  // ~1.6x in 25x stress runs at the seed). The guard is 2x + 5 — it
  // still catches the regression class where async needs multiples of
  // the synchronous sweep count.
  const auto g = rmatGraph(10, 8000, 5);
  const auto bb = staticBB(g, testOptions());
  const auto lf = staticLF(g, testOptions());
  EXPECT_LE(lf.iterations, 2 * bb.iterations + 5);
}

TEST(StaticPageRank, RespectsMaxIterations) {
  const auto g = rmatGraph(9, 4000, 6);
  auto opt = testOptions();
  opt.maxIterations = 3;
  const auto bb = staticBB(g, opt);
  EXPECT_FALSE(bb.converged);
  EXPECT_EQ(bb.iterations, 3);
  const auto lf = staticLF(g, opt);
  EXPECT_FALSE(lf.converged);
  EXPECT_LE(lf.iterations, 3);
}

TEST(StaticPageRank, LooserToleranceConvergesFaster) {
  const auto g = rmatGraph(9, 4000, 7);
  auto loose = testOptions();
  loose.tolerance = 1e-4;
  auto tight = testOptions();
  tight.tolerance = 1e-10;
  EXPECT_LT(staticBB(g, loose).iterations, staticBB(g, tight).iterations);
}

TEST(StaticPageRank, CountsRankUpdates) {
  const auto g = rmatGraph(8, 1000, 8);
  const auto r = staticBB(g, testOptions());
  EXPECT_EQ(r.rankUpdates,
            static_cast<std::uint64_t>(r.iterations) * g.numVertices());
}

TEST(StaticPageRank, ReportsBarrierWaitOnlyForBB) {
  const auto g = rmatGraph(9, 4000, 9);
  EXPECT_GE(staticBB(g, testOptions()).waitMs, 0.0);
  EXPECT_EQ(staticLF(g, testOptions()).waitMs, 0.0);
}

TEST(StaticPageRank, StaticScheduleAblationSingleThreadIsExact) {
  // One thread owning the whole range is sequential Gauss-Seidel.
  const auto g = rmatGraph(9, 4000, 10);
  auto opt = testOptions();
  opt.staticSchedule = true;
  opt.numThreads = 1;
  const auto r = staticLF(g, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(g)), 1e-9);
}

TEST(StaticPageRank, StaticScheduleAblationDriftsUnderOversubscription) {
  // The Eedi-style fixed partition has no pacing between threads: stripes
  // progress unevenly and per-vertex converged flags can latch while
  // neighbouring stripes still move, so accuracy degrades — Section 3.3.2's
  // motivation for dynamic chunk scheduling. Document: it terminates, and
  // its error can exceed the dynamic-schedule engine's by orders of
  // magnitude (the ablation bench quantifies this).
  const auto g = rmatGraph(9, 4000, 10);
  auto opt = testOptions();
  opt.staticSchedule = true;
  opt.numThreads = 8;
  const auto r = staticLF(g, opt);
  // Under pathological scheduling (sanitizer slowdown on few cores) the
  // fixed partition can also exhaust the round cap outright — stripes
  // whose owner finished cannot be re-marked — which is the same
  // documented weakness, so the tight accuracy check applies only when it
  // did converge. Unconditionally, though, the run must terminate with a
  // sane rank vector: every update is a contraction toward the fixpoint
  // from uniform init, so per-vertex ranks stay in (0, 1] and self-loop
  // mass conservation keeps the total near 1 even mid-convergence.
  ASSERT_EQ(r.ranks.size(), g.numVertices());
  for (double x : r.ranks) {
    ASSERT_GT(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
  EXPECT_NEAR(rankSum(r.ranks), 1.0, 0.2);
  if (r.converged) {
    EXPECT_LT(linfNorm(r.ranks, referenceRanks(g)), 0.1);  // bounded, not tight
  }
}

TEST(Reference, IsDeterministicAndNormalized) {
  const auto g = rmatGraph(8, 1000, 11);
  const auto a = referenceRanks(g);
  const auto b = referenceRanks(g);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(rankSum(a), 1.0, 1e-12);
}

TEST(Reference, HigherAlphaSpreadsLessUniformly) {
  const auto g = rmatGraph(8, 1000, 12);
  const auto low = referenceRanks(g, 0.5);
  const auto high = referenceRanks(g, 0.95);
  // With small alpha everything pulls toward 1/n; dispersion grows with
  // alpha.
  auto dispersion = [](const std::vector<double>& r) {
    double lo = 1.0, hi = 0.0;
    for (double x : r) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi - lo;
  };
  EXPECT_LT(dispersion(low), dispersion(high));
}

TEST(ErrorMetrics, Basics) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.5, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(linfNorm(a, b), 1.0);
  EXPECT_DOUBLE_EQ(l1Norm(a, b), 1.5);
  EXPECT_DOUBLE_EQ(rankSum(a), 6.0);
  EXPECT_THROW(linfNorm(a, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(l1Norm(a, std::vector<double>{1.0}), std::invalid_argument);
}

// ----- Parameterized sweeps: chunk sizes x thread counts -----------------

struct SweepParam {
  std::size_t chunkSize;
  int threads;
};

class StaticSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(StaticSweep, BothEnginesConvergeToReference) {
  const auto [chunk, threads] = GetParam();
  const auto g = rmatGraph(9, 4000, 13);
  const auto ref = referenceRanks(g);
  PageRankOptions opt;
  opt.chunkSize = chunk;
  opt.numThreads = threads;
  const auto bb = staticBB(g, opt);
  const auto lf = staticLF(g, opt);
  ASSERT_TRUE(bb.converged);
  ASSERT_TRUE(lf.converged);
  EXPECT_LT(linfNorm(bb.ranks, ref), 1e-9);
  EXPECT_LT(linfNorm(lf.ranks, ref), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ChunkAndThreads, StaticSweep,
    ::testing::Values(SweepParam{1, 1}, SweepParam{1, 4}, SweepParam{16, 2},
                      SweepParam{64, 4}, SweepParam{2048, 4}, SweepParam{2048, 8},
                      SweepParam{1 << 20, 4}, SweepParam{64, 8}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "chunk" + std::to_string(info.param.chunkSize) + "_t" +
             std::to_string(info.param.threads);
    });

// ----- Parameterized sweep: alpha ----------------------------------------

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, MatchesReference) {
  const double alpha = GetParam();
  const auto g = rmatGraph(9, 4000, 14);
  PageRankOptions opt;
  opt.alpha = alpha;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  const auto ref = referenceRanks(g, alpha);
  // Bounds derived from the stopping rule (see error.hpp): the engines
  // stop at per-vertex delta <= tau, which bounds the L-inf rank error by
  // tau * alpha / (1 - alpha) (synchronous) resp. tau / (1 - alpha)
  // (asynchronous per-vertex freeze). The 8x slack absorbs scheduling
  // jitter — measured worst cases sit within ~1x of the raw bounds.
  constexpr double kSlack = 8.0;
  EXPECT_LT(linfNorm(staticBB(g, opt).ranks, ref),
            kSlack * syncToleranceBound(opt.tolerance, alpha));
  EXPECT_LT(linfNorm(staticLF(g, opt).ranks, ref),
            kSlack * asyncToleranceBound(opt.tolerance, alpha));
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep, ::testing::Values(0.5, 0.7, 0.85, 0.95),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "alpha" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace lfpr
