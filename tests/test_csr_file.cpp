// The on-disk scale subsystem: CSR snapshot files (write → mmap-read
// bit-identical, corrupt files rejected with clear errors), temporal
// edge logs, the out-of-core replay stream (bit-equal to the in-memory
// protocol), and the LFPR_DATASET_DIR cache (second load must not
// regenerate).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <vector>

#include "generate/generators.hpp"
#include "generate/temporal_replay.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_log.hpp"
#include "harness/datasets.hpp"
#include "pagerank/detail/common.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

namespace fs = std::filesystem;
/// gtest-only substring assert (no gmock dependency: libgmock-dev is a
/// separate package on Debian/Ubuntu and the CI matrix should not need it).
void expectContains(const char* what, const std::string& needle) {
  EXPECT_NE(std::string(what).find(needle), std::string::npos)
      << "message '" << what << "' lacks '" << needle << "'";
}

class CsrFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lfpr-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static CsrGraph sampleGraph() {
    Rng rng(7);
    auto edges = generateRmat(10, 6000, rng);
    appendSelfLoops(edges, 1024);
    return CsrGraph::fromEdges(1024, edges);
  }

  /// Overwrite bytes[offset..] with `bytes` in an existing file.
  static void corrupt(const std::string& file, std::uint64_t offset,
                      std::span<const char> bytes) {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static void truncateFile(const std::string& file, std::uint64_t newSize) {
    fs::resize_file(file, newSize);
  }

  fs::path dir_;
};

// --- snapshot round trip ----------------------------------------------------

TEST_F(CsrFileTest, MapRoundTripIsBitIdentical) {
  const CsrGraph g = sampleGraph();
  writeCsrFile(path("g.csr"), g);
  const CsrGraph mapped = mapCsrFile(path("g.csr"));

  EXPECT_TRUE(mapped.isMapped());
  EXPECT_FALSE(g.isMapped());
  EXPECT_EQ(mapped.numVertices(), g.numVertices());
  EXPECT_EQ(mapped.numEdges(), g.numEdges());
  // operator== compares offsets, targets, in-adjacency and the invOutDeg
  // cache element-wise — bit-identical, not tolerance-based.
  EXPECT_TRUE(mapped == g);
  EXPECT_NO_THROW(mapped.validate());
}

TEST_F(CsrFileTest, ReadRoundTripOwnsItsArrays) {
  const CsrGraph g = sampleGraph();
  writeCsrFile(path("g.csr"), g);
  CsrGraph owned = readCsrFile(path("g.csr"));
  EXPECT_FALSE(owned.isMapped());
  EXPECT_TRUE(owned == g);
  // The owned copy must survive the file disappearing.
  fs::remove(path("g.csr"));
  EXPECT_NO_THROW(owned.validate());
}

TEST_F(CsrFileTest, DeadEndsAndEmptyGraphRoundTrip) {
  // A dead end (vertex 2) keeps its 0.0 contribution cache entry through
  // the file: the invariant validate() checks.
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 2}};
  const CsrGraph g = CsrGraph::fromEdges(3, edges);
  writeCsrFile(path("dead.csr"), g);
  const CsrGraph mapped = mapCsrFile(path("dead.csr"));
  EXPECT_TRUE(mapped == g);
  EXPECT_EQ(mapped.invOutDegree(2), 0.0);

  const CsrGraph empty = CsrGraph::fromEdges(0, {});
  writeCsrFile(path("empty.csr"), empty);
  EXPECT_TRUE(mapCsrFile(path("empty.csr")) == empty);
}

TEST_F(CsrFileTest, MappedSnapshotFeedsPullKernels) {
  const CsrGraph g = sampleGraph();
  writeCsrFile(path("g.csr"), g);
  const CsrGraph mapped = mapCsrFile(path("g.csr"));

  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    // Same arrays bit-for-bit => same kernel result bit-for-bit.
    EXPECT_EQ(detail::pullRank(mapped, ranks, v, 0.85, base),
              detail::pullRank(g, ranks, v, 0.85, base));
  }
  // The weighted layout derives from the mapped snapshot exactly as from
  // the in-memory one.
  const WeightedPullCsr fromMapped(mapped);
  EXPECT_NO_THROW(fromMapped.validateAgainst(g));
}

// --- snapshot rejection -----------------------------------------------------

TEST_F(CsrFileTest, RejectsBadMagic) {
  writeCsrFile(path("g.csr"), sampleGraph());
  corrupt(path("g.csr"), 0, std::span("XXXX", 4));
  try {
    mapCsrFile(path("g.csr"));
    FAIL() << "expected CsrFileError";
  } catch (const CsrFileError& e) {
    expectContains(e.what(), "bad magic");
    expectContains(e.what(), "g.csr");
  }
}

TEST_F(CsrFileTest, RejectsVersionSkew) {
  writeCsrFile(path("g.csr"), sampleGraph());
  const std::uint32_t future = kCsrFileVersion + 1;
  corrupt(path("g.csr"), offsetof(CsrFileHeader, version),
          {reinterpret_cast<const char*>(&future), sizeof(future)});
  try {
    mapCsrFile(path("g.csr"));
    FAIL() << "expected CsrFileError";
  } catch (const CsrFileError& e) {
    expectContains(e.what(), "version");
    expectContains(e.what(), std::to_string(future));
  }
}

TEST_F(CsrFileTest, RejectsTruncation) {
  const CsrGraph g = sampleGraph();
  writeCsrFile(path("g.csr"), g);
  const auto full = fs::file_size(path("g.csr"));

  truncateFile(path("g.csr"), full - 1);
  try {
    mapCsrFile(path("g.csr"));
    FAIL() << "expected CsrFileError";
  } catch (const CsrFileError& e) {
    expectContains(e.what(), "truncated");
  }

  truncateFile(path("g.csr"), sizeof(CsrFileHeader) / 2);
  try {
    mapCsrFile(path("g.csr"));
    FAIL() << "expected CsrFileError";
  } catch (const CsrFileError& e) {
    expectContains(e.what(), "truncated");
    expectContains(e.what(), "header");
  }
}

TEST_F(CsrFileTest, RejectsChecksumMismatch) {
  writeCsrFile(path("g.csr"), sampleGraph());
  // Flip one payload byte mid-file; size arithmetic stays valid, so only
  // the checksum can catch it.
  const auto full = fs::file_size(path("g.csr"));
  corrupt(path("g.csr"), sizeof(CsrFileHeader) + (full - sizeof(CsrFileHeader)) / 2,
          std::span("\x5a", 1));
  try {
    mapCsrFile(path("g.csr"));
    FAIL() << "expected CsrFileError";
  } catch (const CsrFileError& e) {
    expectContains(e.what(), "checksum");
  }
}

TEST_F(CsrFileTest, RejectsHeaderCountTamper) {
  writeCsrFile(path("g.csr"), sampleGraph());
  const std::uint64_t fewer = sampleGraph().numEdges() - 1;
  corrupt(path("g.csr"), offsetof(CsrFileHeader, numEdges),
          {reinterpret_cast<const char*>(&fewer), sizeof(fewer)});
  EXPECT_THROW(mapCsrFile(path("g.csr")), CsrFileError);
}

TEST_F(CsrFileTest, OversizedVertexCountNamesCountAndLimit) {
  // Regression: both loaders' >32-bit vertex-count rejection must name
  // the offending count AND the supported maximum — a bare "too big"
  // gave operators nothing to compare against their graph size.
  const std::uint64_t huge = std::uint64_t{1} << 33;
  const std::string limit = "4294967294";  // VertexId max - 1

  writeCsrFile(path("g.csr"), sampleGraph());
  corrupt(path("g.csr"), offsetof(CsrFileHeader, numVertices),
          {reinterpret_cast<const char*>(&huge), sizeof(huge)});
  try {
    mapCsrFile(path("g.csr"));
    FAIL() << "expected CsrFileError";
  } catch (const CsrFileError& e) {
    expectContains(e.what(), std::to_string(huge));
    expectContains(e.what(), limit);
  }
}

TEST_F(CsrFileTest, MissingFileErrorNamesThePath) {
  try {
    mapCsrFile(path("nope.csr"));
    FAIL() << "expected an error";
  } catch (const std::runtime_error& e) {
    expectContains(e.what(), "nope.csr");
  }
}

TEST_F(CsrFileTest, WriterLeavesNoPartialFileBehind) {
  // The writer publishes via rename: the target name either has the full
  // snapshot or nothing, even though a pid-suffixed .tmp existed
  // mid-write.
  writeCsrFile(path("g.csr"), sampleGraph());
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_EQ(entry.path().filename(), "g.csr")
        << "stray scratch file: " << entry.path();
  EXPECT_NO_THROW(mapCsrFile(path("g.csr")).validate());
}

// --- temporal edge log ------------------------------------------------------

TemporalEdgeListData sampleStream(EdgeId edges = 5000) {
  Rng rng(11);
  TemporalEdgeListData data;
  data.numVertices = 600;
  data.edges = generateTemporalStream(600, edges, 0.4, rng, 0.05, 30);
  return data;
}

TEST_F(CsrFileTest, EdgeLogRoundTripSortedByTime) {
  const auto data = sampleStream();
  writeTemporalEdgeLog(path("s.elog"), data);
  EXPECT_NO_THROW(verifyTemporalEdgeLog(path("s.elog")));

  const auto back = readTemporalEdgeLog(path("s.elog"));
  EXPECT_EQ(back.numVertices, data.numVertices);
  ASSERT_EQ(back.edges.size(), data.edges.size());
  // The log is stored stable-sorted by timestamp (the replay order).
  auto sorted = data.edges;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });
  EXPECT_EQ(back.edges, sorted);
}

TEST_F(CsrFileTest, EdgeLogHeaderCarriesStaticEdgeCount) {
  const auto data = sampleStream();
  writeTemporalEdgeLog(path("s.elog"), data);
  TemporalEdgeLogReader reader(path("s.elog"));

  std::unordered_set<Edge, EdgeHash> distinct;
  for (const auto& e : data.edges) distinct.insert({e.src, e.dst});
  EXPECT_EQ(reader.numStaticEdges(), distinct.size());
  EXPECT_EQ(reader.numEdges(), data.edges.size());
  EXPECT_EQ(reader.numVertices(), data.numVertices);
}

TEST_F(CsrFileTest, EdgeLogReaderStreamsChunksAndSeeks) {
  const auto data = sampleStream(1000);
  writeTemporalEdgeLog(path("s.elog"), data);
  const auto whole = readTemporalEdgeLog(path("s.elog"));

  TemporalEdgeLogReader reader(path("s.elog"));
  std::vector<TemporalEdge> streamed;
  std::vector<TemporalEdge> chunk(97);  // deliberately not a divisor
  std::size_t got;
  while ((got = reader.read(chunk)) != 0)
    streamed.insert(streamed.end(), chunk.begin(), chunk.begin() + got);
  EXPECT_EQ(streamed, whole.edges);

  reader.seek(500);
  ASSERT_EQ(reader.read(std::span(chunk.data(), 1)), 1u);
  EXPECT_EQ(chunk[0], whole.edges[500]);
  reader.seek(whole.edges.size());
  EXPECT_EQ(reader.read(chunk), 0u);
}

TEST_F(CsrFileTest, EdgeLogOversizedVertexCountNamesCountAndLimit) {
  // Same message-discipline regression as the CSR loader: the edge-log
  // vertex-count guard must name the count and the supported maximum
  // (the check runs before the checksum, so the tamper is reachable).
  writeTemporalEdgeLog(path("s.elog"), sampleStream());
  const std::uint64_t huge = std::uint64_t{1} << 33;
  corrupt(path("s.elog"), offsetof(EdgeLogHeader, numVertices),
          {reinterpret_cast<const char*>(&huge), sizeof(huge)});
  try {
    readTemporalEdgeLog(path("s.elog"));
    FAIL() << "expected EdgeLogError";
  } catch (const EdgeLogError& e) {
    expectContains(e.what(), std::to_string(huge));
    expectContains(e.what(), "4294967294");
  }
}

TEST_F(CsrFileTest, EdgeLogRejectsCorruption) {
  writeTemporalEdgeLog(path("s.elog"), sampleStream());

  corrupt(path("s.elog"), 0, std::span("ZZ", 2));
  EXPECT_THROW(TemporalEdgeLogReader r(path("s.elog")), EdgeLogError);

  writeTemporalEdgeLog(path("s.elog"), sampleStream());
  const std::uint32_t future = kEdgeLogVersion + 9;
  corrupt(path("s.elog"), offsetof(EdgeLogHeader, version),
          {reinterpret_cast<const char*>(&future), sizeof(future)});
  try {
    readTemporalEdgeLog(path("s.elog"));
    FAIL() << "expected EdgeLogError";
  } catch (const EdgeLogError& e) {
    expectContains(e.what(), "version");
  }

  writeTemporalEdgeLog(path("s.elog"), sampleStream());
  truncateFile(path("s.elog"), fs::file_size(path("s.elog")) - 8);
  EXPECT_THROW(verifyTemporalEdgeLog(path("s.elog")), EdgeLogError);

  writeTemporalEdgeLog(path("s.elog"), sampleStream());
  corrupt(path("s.elog"), sizeof(EdgeLogHeader) + 64, std::span("\x7e", 1));
  try {
    verifyTemporalEdgeLog(path("s.elog"));
    FAIL() << "expected EdgeLogError";
  } catch (const EdgeLogError& e) {
    expectContains(e.what(), "checksum");
  }
}

// --- out-of-core replay -----------------------------------------------------

TEST_F(CsrFileTest, StreamedReplayMatchesInMemoryReplay) {
  const auto data = sampleStream(4000);
  writeTemporalEdgeLog(path("s.elog"), data);

  for (const double fraction : {2e-3, 1e-2}) {
    for (const std::size_t cap : {std::size_t{0}, std::size_t{3}}) {
      const auto inMemory = makeTemporalReplay(data, 0.9, fraction, cap);
      const TemporalReplayStream stream(path("s.elog"), 0.9, fraction, cap);

      EXPECT_EQ(stream.numTemporalEdges(), inMemory.numTemporalEdges);
      EXPECT_EQ(stream.numStaticEdges(), inMemory.numStaticEdges);
      EXPECT_TRUE(stream.initial().toCsr() == inMemory.initial.toCsr());
      ASSERT_EQ(stream.numBatches(), inMemory.batches.size());

      auto cursor = stream.batches();
      BatchUpdate batch;
      std::size_t i = 0;
      while (cursor.next(batch)) {
        ASSERT_LT(i, inMemory.batches.size());
        EXPECT_TRUE(batch.deletions.empty());
        EXPECT_EQ(batch.insertions, inMemory.batches[i].insertions)
            << "fraction " << fraction << " cap " << cap << " batch " << i;
        ++i;
      }
      EXPECT_EQ(i, inMemory.batches.size());
    }
  }
}

TEST_F(CsrFileTest, ReplayCursorsAreIndependent) {
  const auto data = sampleStream(2000);
  writeTemporalEdgeLog(path("s.elog"), data);
  const TemporalReplayStream stream(path("s.elog"), 0.8, 1e-2, 0);

  auto a = stream.batches();
  auto b = stream.batches();
  BatchUpdate ba, bb;
  while (a.next(ba)) {
    ASSERT_TRUE(b.next(bb));  // b is not perturbed by a's progress
    EXPECT_EQ(ba.insertions, bb.insertions);
  }
  EXPECT_FALSE(b.next(bb));
}

// --- dataset cache ----------------------------------------------------------

class DatasetCacheTest : public CsrFileTest {
 protected:
  void SetUp() override {
    CsrFileTest::SetUp();
    const char* prev = std::getenv("LFPR_DATASET_DIR");
    if (prev != nullptr) saved_ = prev;
    ::setenv("LFPR_DATASET_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    if (saved_.empty())
      ::unsetenv("LFPR_DATASET_DIR");
    else
      ::setenv("LFPR_DATASET_DIR", saved_.c_str(), 1);
    CsrFileTest::TearDown();
  }

  /// A tiny spec whose build counts invocations — the cache contract is
  /// "generate once", observable as exactly one build call.
  DatasetSpec countingSpec(int* counter) {
    return DatasetSpec{"cache-probe", "web", "none", 0, 0, 0,
                       [counter](std::uint64_t seed) {
                         ++*counter;
                         Rng rng(seed);
                         auto edges = generateRmat(8, 1200, rng);
                         appendSelfLoops(edges, 256);
                         return DynamicDigraph::fromEdges(256, edges);
                       }};
  }

  std::string saved_;
};

TEST_F(DatasetCacheTest, SecondLoadHitsTheCacheWithoutRegenerating) {
  int builds = 0;
  const auto spec = countingSpec(&builds);

  bool generated = false;
  const CsrGraph first = loadDatasetCsr(spec, 2, 5, &generated);
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(generated);
  EXPECT_TRUE(first.isMapped());  // persisted and mapped even on the miss

  const CsrGraph second = loadDatasetCsr(spec, 2, 5, &generated);
  EXPECT_EQ(builds, 1) << "cache hit must not regenerate";
  EXPECT_FALSE(generated);
  EXPECT_TRUE(second.isMapped());
  EXPECT_TRUE(second == spec.build(5).toCsr());  // and it is the right graph
  builds = 0;

  // Different seed or scale = different key = fresh build.
  loadDatasetCsr(spec, 2, 6);
  EXPECT_EQ(builds, 1);
  loadDatasetCsr(spec, 1, 5);
  EXPECT_EQ(builds, 2);
}

TEST_F(DatasetCacheTest, GraphLoaderReconstructsFromSnapshotOnHit) {
  int builds = 0;
  const auto spec = countingSpec(&builds);

  const DynamicDigraph built = loadDatasetGraph(spec, 0, 3);
  EXPECT_EQ(builds, 1);
  const DynamicDigraph reloaded = loadDatasetGraph(spec, 0, 3);
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(reloaded.toCsr() == built.toCsr());
}

TEST_F(DatasetCacheTest, DisabledCacheRebuildsEveryTime) {
  ::unsetenv("LFPR_DATASET_DIR");
  int builds = 0;
  const auto spec = countingSpec(&builds);
  EXPECT_FALSE(loadDatasetCsr(spec, 0, 1).isMapped());
  loadDatasetCsr(spec, 0, 1);
  EXPECT_EQ(builds, 2);
}

TEST_F(DatasetCacheTest, TemporalLogIsWrittenOnceAndReplayable) {
  int builds = 0;
  const TemporalDatasetSpec spec{
      "cache-probe-temporal", "none", 0, 0, 0, [&builds](std::uint64_t seed) {
        ++builds;
        Rng rng(seed);
        TemporalEdgeListData data;
        data.numVertices = 200;
        data.edges = generateTemporalStream(200, 2000, 0.3, rng, 0.05, 10);
        return data;
      }};
  const std::string p1 = temporalLogPath(spec, 1, 2);
  const std::string p2 = temporalLogPath(spec, 1, 2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(builds, 1);
  EXPECT_NO_THROW(verifyTemporalEdgeLog(p1));
  const TemporalReplayStream stream(p1, 0.9, 1e-2, 2);
  EXPECT_EQ(stream.numBatches(), 2u);
}

}  // namespace
}  // namespace lfpr
