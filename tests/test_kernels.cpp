// Kernel-equivalence suite for the contribution-cached and weighted-
// layout pull kernels (PR 2).
//
// Two levels of equivalence, each with a derived bound — no magic 1e-6
// floors:
//
//  * Kernel level: a single pull evaluated through the cached / weighted
//    kernels must match a long-double evaluation of Equation 1 within an
//    IEEE-754 rounding envelope derived from the in-degree (each of the
//    d products contributes <= 1 ulp, the summation <= d ulps, the final
//    fma <= 2 ulps; everything is scaled by the exact value).
//  * Engine level: a full solve under either layout must land within the
//    stopping-rule bounds of error.hpp (syncToleranceBound for the
//    synchronous BB engines, asyncToleranceBound for the asynchronous LF
//    engines) of the reference ranks, across alpha/tolerance sweeps and
//    on dead-end-heavy graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "generate/generators.hpp"
#include "graph/pull_csr.hpp"
#include "harness/scenario.hpp"
#include "pagerank/detail/common.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

CsrGraph rmatGraph(int scale, EdgeId edges, std::uint64_t seed,
                   bool selfLoops = true) {
  Rng rng(seed);
  auto es = generateRmat(scale, edges, rng);
  if (selfLoops) appendSelfLoops(es, VertexId{1} << scale);
  return CsrGraph::fromEdges(VertexId{1} << scale, es);
}

/// Dead-end-heavy graph: only even vertices get self-loops, odd vertices
/// keep whatever out-edges the generator gave them (many end up with
/// out-degree 0 at low edge counts).
CsrGraph deadEndGraph(int scale, EdgeId edges, std::uint64_t seed) {
  Rng rng(seed);
  auto es = generateRmat(scale, edges, rng);
  const VertexId n = VertexId{1} << scale;
  for (VertexId v = 0; v < n; v += 2) es.push_back({v, v});
  return CsrGraph::fromEdges(n, es);
}

/// Equation 1 for one vertex in long double with per-edge division — the
/// semantics both optimized kernels must reproduce.
double referencePull(const CsrGraph& g, const std::vector<double>& ranks, VertexId v,
                     double alpha, double base) {
  long double sum = 0.0L;
  for (VertexId u : g.in(v))
    sum += static_cast<long double>(ranks[u]) /
           static_cast<long double>(g.outDegree(u));
  return static_cast<double>(static_cast<long double>(base) +
                             static_cast<long double>(alpha) * sum);
}

/// Rounding envelope for a d-term multiply-add pull of magnitude |exact|:
/// the cached reciprocal (1 ulp/term), the product (1 ulp/term), the
/// running sum (d ulps), and the base + alpha*sum tail (2 ulps), all
/// relative to the largest intermediate, which rank normalization keeps
/// within [|exact|, 1].
double kernelBound(std::size_t inDegree, double exact) {
  const double eps = std::numeric_limits<double>::epsilon();
  return static_cast<double>(3 * inDegree + 2) * eps * std::max(std::fabs(exact), 1.0e-300);
}

TEST(KernelEquivalence, CachedKernelMatchesReferencePull) {
  for (std::uint64_t seed : {21u, 22u}) {
    const auto g = rmatGraph(9, 4000, seed);
    std::vector<double> ranks(g.numVertices());
    Rng rng(seed + 100);
    for (double& r : ranks) r = rng.uniform();  // un-normalized: harder case
    const double base = 0.15 / static_cast<double>(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
      const double exact = referencePull(g, ranks, v, 0.85, base);
      const double got = detail::pullRank(g, ranks, v, 0.85, base);
      EXPECT_NEAR(got, exact, kernelBound(g.in(v).size(), exact)) << "vertex " << v;
    }
  }
}

TEST(KernelEquivalence, WeightedKernelMatchesCachedKernelExactly) {
  // Same multiplies in the same order, only gathered from a different
  // layout — the results must be bitwise identical.
  const auto g = deadEndGraph(9, 3000, 23);
  const WeightedPullCsr pull(g);
  pull.validateAgainst(g);
  std::vector<double> ranks(g.numVertices());
  Rng rng(24);
  for (double& r : ranks) r = rng.uniform();
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    EXPECT_EQ(detail::pullRank(pull, ranks, v, 0.85, base),
              detail::pullRank(g, ranks, v, 0.85, base))
        << "vertex " << v;
  }
}

TEST(KernelEquivalence, AtomicKernelsMatchPlainKernels) {
  const auto g = rmatGraph(8, 1500, 25);
  const WeightedPullCsr pull(g);
  std::vector<double> plain(g.numVertices());
  Rng rng(26);
  for (double& r : plain) r = rng.uniform();
  const AtomicF64Vector atomic{std::span<const double>(plain)};
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    EXPECT_EQ(detail::pullRank(g, plain, v, 0.85, base),
              detail::pullRank(g, atomic, v, 0.85, base));
    EXPECT_EQ(detail::pullRank(pull, plain, v, 0.85, base),
              detail::pullRank(pull, atomic, v, 0.85, base));
  }
}

TEST(KernelEquivalence, DeadEndContributionIsNeverRead) {
  // A dead end's invOutDegree is 0.0 by definition, and no in-list may
  // reference it (it has no out-edges), so kernels over a dead-end-heavy
  // graph stay finite.
  const auto g = deadEndGraph(8, 600, 27);
  g.validate();
  std::size_t deadEnds = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v)
    if (g.outDegree(v) == 0) {
      ++deadEnds;
      EXPECT_EQ(g.invOutDegree(v), 0.0);
    }
  ASSERT_GT(deadEnds, 0u) << "generator produced no dead ends; adjust seed";
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v)
    EXPECT_TRUE(std::isfinite(detail::pullRank(g, ranks, v, 0.85, base)));
}

// ----- Engine-level equivalence: layout x alpha x tolerance --------------

struct LayoutSweepParam {
  double alpha;
  double tolerance;
};

class LayoutSweep : public ::testing::TestWithParam<LayoutSweepParam> {};

TEST_P(LayoutSweep, BothLayoutsLandWithinDerivedBounds) {
  const auto [alpha, tolerance] = GetParam();
  const auto g = rmatGraph(9, 4000, 31);
  const auto ref = referenceRanks(g, alpha);
  // Same slack as the AlphaSweep in test_pagerank_static.cpp: scheduling
  // jitter on the async engines (rollback stores may each inject up to
  // one extra tolerance).
  constexpr double kSlack = 8.0;
  for (PullLayout layout : {PullLayout::Csr, PullLayout::Weighted}) {
    PageRankOptions opt;
    opt.alpha = alpha;
    opt.tolerance = tolerance;
    opt.numThreads = 4;
    opt.chunkSize = 64;
    opt.pullLayout = layout;
    const auto bb = staticBB(g, opt);
    ASSERT_TRUE(bb.converged);
    EXPECT_LT(linfNorm(bb.ranks, ref), kSlack * syncToleranceBound(tolerance, alpha))
        << "layout " << static_cast<int>(layout);
    // The asynchronous engine must land within bounds under both work
    // schedulers: the dense chunked sweep and the dirty-vertex worklist
    // with its plain-store publish diet (PR 5).
    for (SchedulingMode mode :
         {SchedulingMode::Chunked, SchedulingMode::Worklist}) {
      opt.scheduling = mode;
      const auto lf = staticLF(g, opt);
      ASSERT_TRUE(lf.converged);
      EXPECT_LT(linfNorm(lf.ranks, ref),
                kSlack * asyncToleranceBound(tolerance, alpha))
          << "layout " << static_cast<int>(layout) << " mode "
          << static_cast<int>(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaTolerance, LayoutSweep,
    ::testing::Values(LayoutSweepParam{0.5, 1e-10}, LayoutSweepParam{0.85, 1e-10},
                      LayoutSweepParam{0.95, 1e-10}, LayoutSweepParam{0.85, 1e-8},
                      LayoutSweepParam{0.85, 1e-12}),
    [](const ::testing::TestParamInfo<LayoutSweepParam>& info) {
      const int a = static_cast<int>(info.param.alpha * 100);
      const int t = static_cast<int>(-std::log10(info.param.tolerance) + 0.5);
      return "alpha" + std::to_string(a) + "_tol1e" + std::to_string(t);
    });

TEST(KernelEquivalence, WeightedLayoutOnDeadEndHeavyGraph) {
  const auto g = deadEndGraph(9, 3000, 33);
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  PageRankOptions weighted = opt;
  weighted.pullLayout = PullLayout::Weighted;
  const auto a = staticBB(g, opt);
  const auto b = staticBB(g, weighted);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  // Synchronous Jacobi with bitwise-identical kernels: results match
  // bitwise regardless of layout.
  EXPECT_EQ(a.ranks, b.ranks);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(KernelEquivalence, WeightedLayoutThroughDynamicEngines) {
  // DF/DT engines thread the layout through marking + iterate; equivalence
  // is within the async stopping-rule bound of the same engine under the
  // default layout (both sides also within it of the reference).
  const VertexId n = 1 << 9;
  Rng rng(35);
  auto es = generateRmat(9, 3000, rng);
  appendSelfLoops(es, n);
  const auto prev = CsrGraph::fromEdges(n, es);
  BatchUpdate batch;
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<VertexId>(rng.uniform() * n);
    const auto v = static_cast<VertexId>(rng.uniform() * n);
    const Edge e{std::min<VertexId>(u, n - 1), std::min<VertexId>(v, n - 1)};
    if (!prev.hasEdge(e.src, e.dst)) batch.insertions.push_back(e);
  }
  auto all = prev.edges();
  all.insert(all.end(), batch.insertions.begin(), batch.insertions.end());
  const auto curr = CsrGraph::fromEdges(n, all);

  const auto prevRanks = referenceRanks(prev);
  const auto ref = referenceRanks(curr);
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  PageRankOptions weighted = opt;
  weighted.pullLayout = PullLayout::Weighted;
  constexpr double kSlack = 8.0;
  const double bound = kSlack * asyncToleranceBound(opt.tolerance, opt.alpha);
  for (auto* fn : {&dfLF, &dtLF}) {
    const auto a = (*fn)(prev, curr, batch, prevRanks, opt, nullptr);
    const auto b = (*fn)(prev, curr, batch, prevRanks, weighted, nullptr);
    ASSERT_TRUE(a.converged);
    ASSERT_TRUE(b.converged);
    EXPECT_LT(linfNorm(a.ranks, ref), bound);
    EXPECT_LT(linfNorm(b.ranks, ref), bound);
  }
}

TEST(KernelEquivalence, WorklistSchedulingThroughDynamicEngines) {
  // Layout x scheduling through the ring-seeded marking phase: the
  // worklist runs of DF/DT must match the reference within the same
  // async stopping-rule bound as the dense runs, for both pull layouts.
  const VertexId n = 1 << 9;
  Rng rng(37);
  auto es = generateRmat(9, 3000, rng);
  appendSelfLoops(es, n);
  const auto prev = CsrGraph::fromEdges(n, es);
  BatchUpdate batch;
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<VertexId>(rng.uniform() * n);
    const auto v = static_cast<VertexId>(rng.uniform() * n);
    const Edge e{std::min<VertexId>(u, n - 1), std::min<VertexId>(v, n - 1)};
    if (!prev.hasEdge(e.src, e.dst)) batch.insertions.push_back(e);
  }
  auto all = prev.edges();
  all.insert(all.end(), batch.insertions.begin(), batch.insertions.end());
  const auto curr = CsrGraph::fromEdges(n, all);

  const auto prevRanks = referenceRanks(prev);
  const auto ref = referenceRanks(curr);
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  opt.scheduling = SchedulingMode::Worklist;
  constexpr double kSlack = 8.0;
  const double bound = kSlack * asyncToleranceBound(opt.tolerance, opt.alpha);
  for (PullLayout layout : {PullLayout::Csr, PullLayout::Weighted}) {
    opt.pullLayout = layout;
    for (auto* fn : {&dfLF, &dtLF}) {
      const auto r = (*fn)(prev, curr, batch, prevRanks, opt, nullptr);
      ASSERT_TRUE(r.converged) << "layout " << static_cast<int>(layout);
      EXPECT_LT(linfNorm(r.ranks, ref), bound)
          << "layout " << static_cast<int>(layout);
    }
  }
}

// ----- Delta-push equivalence: the residual engine against the same ------
// ----- long-double-derived bounds as the pull engines                ------

DynamicScenario deltaPushScenario(std::uint64_t seed, double fraction) {
  Rng rng(seed);
  auto es = generateRmat(10, 8000, rng);
  appendSelfLoops(es, 1024);
  auto base = DynamicDigraph::fromEdges(1024, es);
  PageRankOptions opt;
  opt.numThreads = 4;
  return makeScenario(std::move(base), fraction, seed + 1, opt);
}

TEST(KernelEquivalence, DeltaPushLandsWithinDerivedBounds) {
  // The residual engine's parked mass keeps the converged error within
  // asyncToleranceBound (tau/(1-alpha)), the same certificate the pull
  // engines report — across both pull layouts (used by the seed phase
  // only), thread counts, and batch fractions spanning the mid-density
  // band the engine targets. The batches contain deletions, so negative
  // residual mass is exercised too.
  //
  // Slack: 16x instead of the pull tests' 8x. The pull engines' error is
  // dominated by each vertex's final sub-tolerance jump; the push engine
  // additionally parks up to tau of residual at EVERY vertex at once,
  // and parked upstream mass compounds through high-in-degree vertices
  // ((I - alpha A)^{-1} amplifies the per-vertex tau by more than
  // 1/(1-alpha) in the l-inf norm when rows of A sum above 1). Observed
  // worst case is ~9x the certificate; 16x keeps the test sharp without
  // flaking.
  constexpr double kSlack = 16.0;
  std::uint64_t seed = 41;
  for (const double fraction : {1e-3, 1e-2}) {
    const auto scenario = deltaPushScenario(seed++, fraction);
    ASSERT_FALSE(scenario.batch.deletions.empty());
    const auto ref = referenceRanks(scenario.curr);
    for (PullLayout layout : {PullLayout::Csr, PullLayout::Weighted}) {
      for (const int threads : {1, 4}) {
        PageRankOptions opt;
        opt.numThreads = threads;
        opt.chunkSize = 64;
        opt.pullLayout = layout;
        const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                                 scenario.prevRanks, opt);
        ASSERT_TRUE(r.converged)
            << "layout " << static_cast<int>(layout) << " threads " << threads;
        EXPECT_LT(linfNorm(r.ranks, ref),
                  kSlack * asyncToleranceBound(opt.tolerance, opt.alpha))
            << "layout " << static_cast<int>(layout) << " threads " << threads;
        // Default (absolute-threshold) certificate.
        EXPECT_DOUBLE_EQ(r.toleranceBound,
                         asyncToleranceBound(opt.tolerance, opt.alpha));
      }
    }
  }
}

TEST(KernelEquivalence, DeltaPushThroughRunApproachDispatch) {
  const auto scenario = deltaPushScenario(47, 1e-2);
  const auto ref = referenceRanks(scenario.curr);
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  const auto r = runOnScenario(Approach::DeltaPush, scenario, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, ref),
            16.0 * asyncToleranceBound(opt.tolerance, opt.alpha));
  EXPECT_GT(r.affectedVertices, 0u);
}

TEST(KernelEquivalence, DeltaPushRelativeThresholdStaysWithinCertificate) {
  // Ligra-PRDelta-style relative activation threshold: looser than the
  // absolute tau, so the run converges against a *wider* certificate —
  // asyncToleranceBound(tolerance + pushRelativeTolerance) since ranks
  // never exceed 1 — and the result must both report and honour it.
  const auto scenario = deltaPushScenario(53, 1e-2);
  const auto ref = referenceRanks(scenario.curr);
  constexpr double kSlack = 16.0;  // same parked-mass rationale as above
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  opt.pushRelativeTolerance = 1e-8;
  const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, opt);
  ASSERT_TRUE(r.converged);
  const double cert =
      asyncToleranceBound(opt.tolerance + opt.pushRelativeTolerance, opt.alpha);
  EXPECT_DOUBLE_EQ(r.toleranceBound, cert);
  EXPECT_LT(linfNorm(r.ranks, ref), kSlack * cert);
}

TEST(KernelEquivalence, DeltaPushOnDeadEndHeavyGraph) {
  // Mass pushed into a dead end is applied and stops there (invOutDegree
  // is exactly 0.0) — the same leak semantics as the pull formulation,
  // so the two engine families still agree on the fixpoint.
  Rng rng(57);
  auto es = generateRmat(9, 1500, rng);
  const VertexId n = 1 << 9;
  for (VertexId v = 0; v < n; v += 2) es.push_back({v, v});
  auto base = DynamicDigraph::fromEdges(n, es);
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  const auto scenario = makeScenario(std::move(base), 1e-2, 58, opt);
  const auto ref = referenceRanks(scenario.curr);
  const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, ref),
            16.0 * asyncToleranceBound(opt.tolerance, opt.alpha));
}

}  // namespace
}  // namespace lfpr
