// Monte Carlo walk-store engine tests (PR 9). The engine is *approximate*
// by design, so the accuracy assertions compare against the advertised
// statistical bound mcL1ErrorBound(alpha, R) — never the exact engines'
// §4.5 certificates — while the structural assertions (walk shapes after
// dead-end truncation, whole-out-neighbourhood deletion, claim/repair
// bookkeeping) and the determinism contract (same seed + batch schedule
// => bit-identical walk store, regardless of thread count, across a
// service restart) are exact. All RNG is counter-based and seeded, so
// every "statistical" assertion here is deterministic in practice: a
// passing seed passes forever.
//
// The AccuracyDrift test doubles as the nightly mc-accuracy-drift lane:
// LFPR_MC_DRIFT_SCALE=1 lifts it from the tier-1 smoke size to the
// scale-1 dataset replay (see .github/workflows/nightly.yml).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "harness/datasets.hpp"
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/detail/monte_carlo.hpp"
#include "pagerank/error.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/reference.hpp"
#include "service/rank_service.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

namespace fs = std::filesystem;

constexpr VertexId kVertices = VertexId{1} << 10;

DynamicDigraph makeTestDigraph(std::uint64_t seed) {
  Rng rng(seed);
  auto edges = generateRmat(10, 8 * kVertices, rng);
  appendSelfLoops(edges, kVertices);
  return DynamicDigraph::fromEdges(kVertices, edges);
}

PageRankOptions mcOptions(int walksPerVertex, int numThreads = 4) {
  PageRankOptions opt;
  opt.numThreads = numThreads;
  opt.mcWalksPerVertex = walksPerVertex;
  opt.mcMaxWalkLength = 32;
  opt.mcSeed = 0x5eedULL;
  return opt;
}

/// Exact personalized PageRank for one root by dense power iteration:
/// p = (1 - alpha) e_root + alpha P^T p, P row-substochastic over the
/// out-adjacency (dead ends absorb) — the same absorbing model the
/// truncated walks estimate.
std::vector<double> exactPpr(const CsrGraph& g, VertexId root, double alpha) {
  const std::size_t n = g.numVertices();
  std::vector<double> p(n, 0.0), next(n);
  p[root] = 1.0;
  for (int it = 0; it < 200; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    next[root] += 1.0 - alpha;
    for (std::size_t u = 0; u < n; ++u) {
      const auto out = g.out(static_cast<VertexId>(u));
      if (out.empty() || p[u] == 0.0) continue;
      const double share = alpha * p[u] / static_cast<double>(out.size());
      for (const VertexId v : out) next[v] += share;
    }
    p.swap(next);
  }
  return p;
}

/// Live walk contents of the store: (len, verts-prefix) per walk. Two
/// stores with equal extracts are bit-identical where it matters (slots
/// past len[w] are scratch).
std::vector<std::vector<VertexId>> walkContents(
    const detail::MonteCarloState& st) {
  std::vector<std::vector<VertexId>> out(st.numWalks);
  for (std::uint32_t w = 0; w < st.numWalks; ++w) {
    const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
    out[w].assign(st.verts.begin() + static_cast<std::ptrdiff_t>(slice),
                  st.verts.begin() +
                      static_cast<std::ptrdiff_t>(slice + st.len[w]));
  }
  return out;
}

// ---------------------------------------------------------------------
// Global accuracy: the advertised statistical bound.

TEST(MonteCarlo, GlobalRanksWithinStatisticalBound) {
  const auto g = makeTestDigraph(90).toCsr();
  const auto opt = mcOptions(/*walksPerVertex=*/64);
  const auto result = monteCarlo(g, g, {}, opt);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.monteCarlo);
  EXPECT_EQ(result.toleranceBound, mcL1ErrorBound(opt.alpha, 64));

  const auto ref = referenceRanks(g, opt.alpha);
  EXPECT_LT(l1Norm(result.ranks, ref), result.toleranceBound);
  // Truncation at mcMaxWalkLength sheds only alpha^32 of the mass.
  EXPECT_NEAR(rankSum(result.ranks), 1.0, 0.05);
}

TEST(MonteCarlo, EmptyGraphConverges) {
  const CsrGraph empty;
  const auto result = monteCarlo(empty, empty, {}, mcOptions(8));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.monteCarlo);
  EXPECT_TRUE(result.ranks.empty());
}

// ---------------------------------------------------------------------
// Structural edge cases: dead ends, self-loops, emptied neighbourhoods.

TEST(MonteCarlo, DeadEndRootWalksStopAtRoot) {
  // Vertex 3 has no out-edges at all (no self-loop): every walk rooted
  // there must be the single-position walk {3}.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 3},
                                   {1, 3}, {0, 0}, {1, 1}, {2, 2}};
  const auto g = DynamicDigraph::fromEdges(4, edges).toCsr();
  const auto opt = mcOptions(/*walksPerVertex=*/32);

  detail::LfEngineState state(g.numVertices());
  const auto result =
      detail::lfMonteCarloStep(state, g, g, {}, opt, nullptr, "test");
  ASSERT_TRUE(result.converged);
  ASSERT_NE(state.monteCarlo, nullptr);

  const auto& st = *state.monteCarlo;
  const std::uint32_t perRoot = st.walksPerRoot();
  for (std::uint32_t i = 0; i < perRoot; ++i) {
    const std::uint32_t w = 3 * perRoot + i;
    EXPECT_EQ(st.len[w], 1) << "walk " << w << " left a dead end";
    EXPECT_EQ(st.verts[static_cast<std::size_t>(w) * st.stride], 3u);
  }
  // And no walk from anywhere continues *through* the dead end.
  for (std::uint32_t w = 0; w < st.numWalks; ++w) {
    const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
    for (std::size_t i = 0; i + 1 < st.len[w]; ++i)
      EXPECT_NE(st.verts[slice + i], 3u);
  }
  for (const double r : state.ranks.toVector()) EXPECT_TRUE(std::isfinite(r));
}

TEST(MonteCarlo, SelfLoopOnlyVertexKeepsItsWalks) {
  // Vertex 3's only out-edge is its self-loop: its walks never leave,
  // so its personalized distribution is a point mass at itself.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 0},
                                   {1, 1}, {2, 2}, {3, 3}};
  const auto g = DynamicDigraph::fromEdges(4, edges).toCsr();
  const auto opt = mcOptions(/*walksPerVertex=*/32);

  detail::LfEngineState state(g.numVertices());
  ASSERT_TRUE(
      detail::lfMonteCarloStep(state, g, g, {}, opt, nullptr, "test").converged);
  const auto& st = *state.monteCarlo;
  const std::uint32_t perRoot = st.walksPerRoot();
  for (std::uint32_t i = 0; i < perRoot; ++i) {
    const std::uint32_t w = 3 * perRoot + i;
    const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
    for (std::size_t j = 0; j < st.len[w]; ++j)
      EXPECT_EQ(st.verts[slice + j], 3u);
  }
  const auto index = detail::buildPprIndex(st);
  const auto top = index.topK(3, 2);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].vertex, 3u);
  EXPECT_EQ(top.size(), 1u) << "a point mass has exactly one support vertex";
}

TEST(MonteCarlo, WholeOutNeighbourhoodDeletionTruncatesAtVertex) {
  auto g = makeTestDigraph(91);
  const auto prev = g.toCsr();
  // One batch deletes EVERY out-edge of vertex 7 (self-loop included):
  // 7 becomes a dead end in one step, the hardest repair shape — every
  // walk visiting 7 must truncate exactly there.
  const VertexId u = 7;
  BatchUpdate batch;
  for (const VertexId v : prev.out(u)) batch.deletions.push_back({u, v});
  ASSERT_GE(batch.size(), 2u) << "seed must give vertex 7 several out-edges";
  g.applyBatch(batch);
  const auto curr = g.toCsr();
  ASSERT_EQ(curr.outDegree(u), 0u);

  const auto opt = mcOptions(/*walksPerVertex=*/64);
  detail::LfEngineState state(prev.numVertices());
  ASSERT_TRUE(detail::lfMonteCarloStep(state, prev, prev, {}, opt, nullptr,
                                       "test")
                  .converged);
  const auto result =
      detail::lfMonteCarloStep(state, prev, curr, batch, opt, nullptr, "test");
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.affectedVertices, 1u) << "every batch edge shares source 7";
  EXPECT_GT(result.rankUpdates, 0u) << "walks through 7 must be repaired";

  // u may now appear only as a walk's FINAL position.
  const auto& st = *state.monteCarlo;
  for (std::uint32_t w = 0; w < st.numWalks; ++w) {
    const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
    for (std::size_t i = 0; i + 1 < st.len[w]; ++i)
      EXPECT_NE(st.verts[slice + i], u) << "walk " << w << " walked out of a "
                                           "dead end";
  }
  // And the repaired store still estimates the new graph's ranks.
  EXPECT_LT(l1Norm(state.ranks.toVector(), referenceRanks(curr, opt.alpha)),
            mcL1ErrorBound(opt.alpha, opt.mcWalksPerVertex));
}

// ---------------------------------------------------------------------
// Determinism: the (seed, batch schedule) contract.

TEST(MonteCarlo, DeterministicAcrossRunsAndThreadCounts) {
  // Same seed + same batch schedule => bit-identical walk store, visit
  // counts, and ranks — run twice at 4 threads AND once at 1 thread
  // (claims are idempotent, visit updates are order-independent ±1.0
  // fetch-adds, so the interleaving cannot leak into the store).
  const auto runSchedule = [](int numThreads) {
    auto g = makeTestDigraph(92);
    const auto opt = mcOptions(/*walksPerVertex=*/8, numThreads);
    detail::LfEngineState state(g.numVertices());
    auto prev = g.toCsr();
    EXPECT_TRUE(detail::lfMonteCarloStep(state, prev, prev, {}, opt, nullptr,
                                         "test")
                    .converged);
    Rng rng(93);
    std::vector<std::uint64_t> fingerprints{state.monteCarlo->fingerprint()};
    for (int b = 0; b < 4; ++b) {
      const auto batch = generateBatch(g, 200, rng);
      g.applyBatch(batch);
      const auto curr = g.toCsr();
      EXPECT_TRUE(detail::lfMonteCarloStep(state, prev, curr, batch, opt,
                                           nullptr, "test")
                      .converged);
      fingerprints.push_back(state.monteCarlo->fingerprint());
      prev = curr;
    }
    return std::tuple(fingerprints, walkContents(*state.monteCarlo),
                      state.ranks.toVector());
  };

  const auto [fpA, walksA, ranksA] = runSchedule(4);
  const auto [fpB, walksB, ranksB] = runSchedule(4);
  const auto [fpC, walksC, ranksC] = runSchedule(1);
  EXPECT_EQ(fpA, fpB);
  EXPECT_EQ(walksA, walksB);
  EXPECT_EQ(ranksA, ranksB);
  EXPECT_EQ(fpA, fpC) << "thread count leaked into the walk store";
  EXPECT_EQ(walksA, walksC);
  EXPECT_EQ(ranksA, ranksC);
  // Epochs advanced: repairs actually changed the store along the way.
  EXPECT_NE(fpA.front(), fpA.back());
}

TEST(Service, MonteCarloRestartRebuildsIdenticalStore) {
  // Restart determinism end-to-end: run A ingests k batches through a
  // journaled MonteCarlo service (journal-only durability, one batch
  // per step); run B recovers from the same directory — initial build
  // plus k replayed repairs is the SAME epoch schedule, so the walk
  // store fingerprint and the published ranks must match bit-for-bit.
  const fs::path dir =
      fs::temp_directory_path() /
      ("lfpr-mc-restart-" + std::to_string(::getpid()));
  fs::create_directories(dir);

  ServiceOptions opt;
  opt.solver.numThreads = 4;
  opt.solver.mcWalksPerVertex = 8;
  opt.stepEngine = ServiceOptions::StepEngine::MonteCarlo;
  opt.maxBatchesPerStep = 1;
  opt.durability.directory = dir.string();
  opt.durability.fsync = FsyncPolicy::None;
  opt.durability.checkpointEverySolves = 0;  // journal-only: replay all

  const auto initial = makeTestDigraph(94).toCsr();
  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(95);

  std::uint64_t fpA = 0;
  std::vector<double> ranksA;
  {
    RankService service(initial, opt);
    for (int b = 0; b < 3; ++b) {
      const auto batch = generateBatch(offline, 150, rng);
      offline.applyBatch(batch);
      ASSERT_TRUE(service.submit(batch));
      service.waitIdle();  // one batch per epoch: fixed schedule
    }
    const SnapshotView v = service.snapshot();
    ASSERT_TRUE(v->monteCarlo);
    fpA = v->mcFingerprint;
    ranksA = v->ranks;
    ASSERT_NE(fpA, 0u);
  }
  {
    RankService service(initial, opt);
    service.waitIdle();  // recovery replays the journal, one batch/step
    const SnapshotView v = service.snapshot();
    ASSERT_TRUE(v->monteCarlo);
    EXPECT_EQ(v->mcFingerprint, fpA)
        << "replayed walk store diverged from the original";
    EXPECT_EQ(v->ranks, ranksA);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------
// Walk-store serialization (PR 10): the WalkStoreImage round trip is
// bit-exact AND resumable — a deserialized store repairs forward
// exactly like the original, which is what lets a restarted service
// continue Monte Carlo repairs instead of rebuilding.

TEST(MonteCarlo, WalkStoreImageRoundTripResumesRepairs) {
  auto g = makeTestDigraph(99);
  const auto opt = mcOptions(/*walksPerVertex=*/8);
  detail::LfEngineState state(g.numVertices());
  auto prev = g.toCsr();
  ASSERT_TRUE(
      detail::lfMonteCarloStep(state, prev, prev, {}, opt, nullptr, "test")
          .converged);
  Rng rng(100);
  // Two repairs first, so the image carries a non-zero walk epoch and
  // live delta chains — the shape a mid-life checkpoint would persist.
  for (int b = 0; b < 2; ++b) {
    const auto batch = generateBatch(g, 200, rng);
    g.applyBatch(batch);
    const auto curr = g.toCsr();
    ASSERT_TRUE(detail::lfMonteCarloStep(state, prev, curr, batch, opt,
                                         nullptr, "test")
                    .converged);
    prev = curr;
  }

  const auto img = detail::mcSerializeStore(*state.monteCarlo);
  EXPECT_EQ(img.epoch, 2u);
  EXPECT_EQ(img.numWalks, state.monteCarlo->numWalks);
  auto restored = detail::mcDeserializeStore(img);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->fingerprint(), state.monteCarlo->fingerprint());
  EXPECT_EQ(restored->epoch, state.monteCarlo->epoch);
  EXPECT_EQ(walkContents(*restored), walkContents(*state.monteCarlo));
  // Visit counts are recounted from the walks, never persisted; the
  // PPR visit index and delta chains ride along verbatim.
  EXPECT_EQ(restored->visits.toVector(), state.monteCarlo->visits.toVector());
  EXPECT_EQ(restored->indexOffsets, state.monteCarlo->indexOffsets);
  EXPECT_EQ(restored->indexWalks, state.monteCarlo->indexWalks);
  EXPECT_EQ(restored->deltaHead, state.monteCarlo->deltaHead);

  // Resumability: adopt the restored store into a fresh engine state
  // (ranks seeded the way recovery does, from the checkpointed vector)
  // and repair BOTH stores through one more batch — they must stay
  // bit-identical.
  detail::LfEngineState resumed(g.numVertices());
  resumed.seedRanks(state.ranks.toVector());
  resumed.monteCarlo = std::move(restored);
  resumed.monteCarloValid = true;

  const auto batch = generateBatch(g, 200, rng);
  g.applyBatch(batch);
  const auto curr = g.toCsr();
  ASSERT_TRUE(detail::lfMonteCarloStep(state, prev, curr, batch, opt, nullptr,
                                       "test")
                  .converged);
  ASSERT_TRUE(detail::lfMonteCarloStep(resumed, prev, curr, batch, opt,
                                       nullptr, "test")
                  .converged);
  EXPECT_EQ(resumed.monteCarlo->fingerprint(),
            state.monteCarlo->fingerprint())
      << "a deserialized store must repair exactly like the original";
  EXPECT_EQ(resumed.ranks.toVector(), state.ranks.toVector());
}

TEST(MonteCarlo, WalkStoreImageRejectsCorruptPayloads) {
  const auto g = makeTestDigraph(101).toCsr();
  const auto opt = mcOptions(/*walksPerVertex=*/2);
  detail::LfEngineState state(g.numVertices());
  ASSERT_TRUE(
      detail::lfMonteCarloStep(state, g, g, {}, opt, nullptr, "test").converged);
  const auto img = detail::mcSerializeStore(*state.monteCarlo);

  // The happy path still deserializes — the corruptions below are the
  // only deltas.
  ASSERT_NE(detail::mcDeserializeStore(img), nullptr);
  {
    auto bad = img;  // truncated segment blob (torn file shape)
    bad.segments.pop_back();
    EXPECT_THROW(detail::mcDeserializeStore(bad), std::runtime_error);
  }
  {
    auto bad = img;  // walk count disagrees with n * walksPerVertex
    bad.numWalks += 1;
    EXPECT_THROW(detail::mcDeserializeStore(bad), std::runtime_error);
  }
  {
    auto bad = img;  // trailing garbage after the visit index
    bad.visitIndex.push_back(std::byte{0x5a});
    EXPECT_THROW(detail::mcDeserializeStore(bad), std::runtime_error);
  }
  {
    auto bad = img;  // walk 0's length corrupted past the stride
    bad.segments[0] ^= std::byte{0xff};
    EXPECT_THROW(detail::mcDeserializeStore(bad), std::runtime_error);
  }
}

// ---------------------------------------------------------------------
// Personalized queries.

TEST(MonteCarlo, PprTopKMatchesExactPersonalizedRanks) {
  Rng rng(96);
  auto edges = generateRmat(5, 8 * 32, rng);
  appendSelfLoops(edges, 32);
  const auto g = DynamicDigraph::fromEdges(32, edges).toCsr();
  const auto opt = mcOptions(/*walksPerVertex=*/512);

  detail::LfEngineState state(g.numVertices());
  ASSERT_TRUE(
      detail::lfMonteCarloStep(state, g, g, {}, opt, nullptr, "test").converged);
  const auto index = detail::buildPprIndex(*state.monteCarlo);
  ASSERT_EQ(index.numRoots(), g.numVertices());

  for (const VertexId root : {VertexId{0}, VertexId{3}, VertexId{17}}) {
    const auto exact = exactPpr(g, root, opt.alpha);
    const auto top = index.topK(root, 5);
    ASSERT_FALSE(top.empty());
    for (std::size_t i = 1; i < top.size(); ++i)
      EXPECT_GE(top[i - 1].score, top[i].score);
    for (const auto& entry : top) {
      EXPECT_GT(entry.errorBound, 0.0);
      EXPECT_NEAR(entry.score, exact[entry.vertex], entry.errorBound)
          << "root " << root << " vertex " << entry.vertex;
    }
    // The walks start at root, so root is always in its own support.
    const auto full = index.topK(root, g.numVertices());
    double sum = 0.0;
    bool sawRoot = false;
    for (const auto& entry : full) {
      sum += entry.score;
      sawRoot |= entry.vertex == root;
    }
    EXPECT_TRUE(sawRoot);
    EXPECT_NEAR(sum, 1.0, 0.08);  // alpha^32 truncation + sampling noise
  }
  // Out-of-range root and k = 0 answer empty, not UB.
  EXPECT_TRUE(index.topK(static_cast<VertexId>(g.numVertices()), 3).empty());
  EXPECT_TRUE(index.topK(0, 0).empty());
}

// ---------------------------------------------------------------------
// Capacity guard.

TEST(MonteCarlo, WalkIdSpaceOverflowRejectedByName) {
  // 2^20 roots x 5000 walks = 5,242,880,000 walks > 2^32 - 1: the
  // constructor must refuse, naming the offending count (same message
  // discipline as the snapshot loaders' vertex-count guard).
  detail::McConfig cfg;
  cfg.walksPerVertex = 5000;
  try {
    detail::MonteCarloState state(std::size_t{1} << 20, cfg);
    FAIL() << "overflowing walk count was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5242880000"), std::string::npos) << what;
    EXPECT_NE(what.find("32-bit"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------
// Accuracy drift: replayed batches must not accumulate bias.

TEST(MonteCarlo, AccuracyDriftUnderReplayStaysBounded) {
  // Replays an edge stream through ONE resident store — the repair path
  // compounds here, so any bias (wrong truncation point, double-counted
  // visit, stale-claim mishandling) accumulates past the bound even
  // though each individual step looks fine. Tier-1 runs the smoke size;
  // the nightly lane sets LFPR_MC_DRIFT_SCALE=1 for the scale-1 dataset
  // (and LFPR_DATASET_DIR for its snapshot cache).
  const char* scaleEnv = std::getenv("LFPR_MC_DRIFT_SCALE");
  const int scale = scaleEnv != nullptr ? std::atoi(scaleEnv) : 0;

  DynamicDigraph g = scale >= 1
                         ? loadDatasetGraph(staticDatasets(scale).front(),
                                            scale, /*seed=*/1)
                         : makeTestDigraph(97);
  const int walksPerVertex = 64;
  const int numBatches = scale >= 1 ? 24 : 10;
  const int checkEvery = scale >= 1 ? 4 : 2;
  PageRankOptions opt = mcOptions(walksPerVertex);
  const double bound = mcL1ErrorBound(opt.alpha, walksPerVertex);

  detail::LfEngineState state(g.numVertices());
  auto prev = g.toCsr();
  ASSERT_TRUE(
      detail::lfMonteCarloStep(state, prev, prev, {}, opt, nullptr, "drift")
          .converged);
  Rng rng(98);
  for (int b = 1; b <= numBatches; ++b) {
    const auto batch = generateBatchFraction(g, 1e-4, rng);
    g.applyBatch(batch);
    const auto curr = g.toCsr();
    ASSERT_TRUE(detail::lfMonteCarloStep(state, prev, curr, batch, opt,
                                         nullptr, "drift")
                    .converged);
    prev = curr;
    if (b % checkEvery == 0 || b == numBatches) {
      const double l1 =
          l1Norm(state.ranks.toVector(), referenceRanks(curr, opt.alpha));
      EXPECT_LT(l1, bound) << "drift past the advertised bound after " << b
                           << " batches";
    }
  }
  EXPECT_EQ(state.monteCarlo->epoch, static_cast<std::uint64_t>(numBatches));
}

}  // namespace
}  // namespace lfpr
