// Unit tests for src/graph: CSR construction and invariants, dynamic
// digraph mutation and batch application, I/O round trips, statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr.hpp"
#include "graph/dynamic_digraph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace lfpr {
namespace {

std::vector<Edge> triangle() { return {{0, 1}, {1, 2}, {2, 0}}; }

TEST(CsrGraph, EmptyGraph) {
  const auto g = CsrGraph::fromEdges(0, {});
  EXPECT_EQ(g.numVertices(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(CsrGraph, VerticesWithoutEdges) {
  const auto g = CsrGraph::fromEdges(5, {});
  EXPECT_EQ(g.numVertices(), 5u);
  EXPECT_EQ(g.numEdges(), 0u);
  EXPECT_EQ(g.outDegree(3), 0u);
  EXPECT_EQ(g.inDegree(3), 0u);
}

TEST(CsrGraph, TriangleAdjacency) {
  const auto es = triangle();
  const auto g = CsrGraph::fromEdges(3, es);
  EXPECT_EQ(g.numEdges(), 3u);
  ASSERT_EQ(g.out(0).size(), 1u);
  EXPECT_EQ(g.out(0)[0], 1u);
  ASSERT_EQ(g.in(0).size(), 1u);
  EXPECT_EQ(g.in(0)[0], 2u);
  g.validate();
}

TEST(CsrGraph, DeduplicatesByDefault) {
  const std::vector<Edge> es = {{0, 1}, {0, 1}, {1, 0}};
  const auto g = CsrGraph::fromEdges(2, es);
  EXPECT_EQ(g.numEdges(), 2u);
}

TEST(CsrGraph, KeepsDuplicatesWhenAsked) {
  // dedup=false is only valid for already-unique inputs; check that a
  // unique input passes through unchanged.
  const auto es = triangle();
  const auto g = CsrGraph::fromEdges(3, es, /*dedup=*/false);
  EXPECT_EQ(g.numEdges(), 3u);
  g.validate();
}

TEST(CsrGraph, AdjacencyIsSorted) {
  const std::vector<Edge> es = {{0, 3}, {0, 1}, {0, 2}};
  const auto g = CsrGraph::fromEdges(4, es);
  const auto adj = g.out(0);
  EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
}

TEST(CsrGraph, HasEdge) {
  const auto g = CsrGraph::fromEdges(3, triangle());
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(7, 0));  // out of range is just "absent"
}

TEST(CsrGraph, SelfLoopCountsInBothDirections) {
  const std::vector<Edge> es = {{0, 0}, {0, 1}};
  const auto g = CsrGraph::fromEdges(2, es);
  EXPECT_EQ(g.outDegree(0), 2u);
  EXPECT_EQ(g.inDegree(0), 1u);
  EXPECT_TRUE(g.hasEdge(0, 0));
}

TEST(CsrGraph, EdgesRoundTrip) {
  const auto es = triangle();
  const auto g = CsrGraph::fromEdges(3, es);
  auto out = g.edges();
  auto sorted = es;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(out, sorted);
}

TEST(CsrGraph, OutOfRangeEndpointThrows) {
  const std::vector<Edge> es = {{0, 9}};
  EXPECT_THROW(CsrGraph::fromEdges(3, es), std::out_of_range);
}

TEST(CsrGraph, InOutDegreesConsistent) {
  const std::vector<Edge> es = {{0, 1}, {0, 2}, {1, 2}, {3, 2}};
  const auto g = CsrGraph::fromEdges(4, es);
  EdgeId outSum = 0, inSum = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    outSum += g.outDegree(v);
    inSum += g.inDegree(v);
  }
  EXPECT_EQ(outSum, g.numEdges());
  EXPECT_EQ(inSum, g.numEdges());
  EXPECT_EQ(g.inDegree(2), 3u);
}

TEST(CsrGraph, InvOutDegreeMatchesDegrees) {
  const std::vector<Edge> es = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 2}};
  const auto g = CsrGraph::fromEdges(4, es);
  EXPECT_EQ(g.invOutDegree(0), 1.0 / 3.0);
  EXPECT_EQ(g.invOutDegree(1), 1.0);
  EXPECT_EQ(g.invOutDegree(2), 1.0);  // only edge is the self-loop
  EXPECT_EQ(g.invOutDegree(3), 0.0);  // dead end: placeholder, never read
  EXPECT_EQ(g.invOutDegrees().size(), g.numVertices());
  g.validate();
}

TEST(CsrGraph, InvOutDegreeEmptyGraph) {
  const auto g = CsrGraph::fromEdges(0, {});
  EXPECT_TRUE(g.invOutDegrees().empty());
  g.validate();
  const auto h = CsrGraph::fromEdges(4, {});  // all vertices dead ends
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(h.invOutDegree(v), 0.0);
  h.validate();
}

TEST(CsrGraph, InvOutDegreeSelfLoopDeadEndElimination) {
  // The paper's dead-end handling (Section 5.1.3): a self-loop turns a
  // dead end into a degree-1 vertex whose whole contribution returns to
  // itself — weight exactly 1.0, not 0.
  const std::vector<Edge> es = {{0, 1}};
  auto dyn = DynamicDigraph::fromEdges(2, es);
  dyn.ensureSelfLoops();
  const auto g = dyn.toCsr();
  EXPECT_EQ(g.invOutDegree(0), 0.5);  // {0->0, 0->1}
  EXPECT_EQ(g.invOutDegree(1), 1.0);  // {1->1} only
  g.validate();
}

TEST(CsrGraph, InvOutDegreeConsistentAfterBatchRebuild) {
  auto g = DynamicDigraph::fromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  BatchUpdate batch;
  batch.deletions = {{1, 2}};
  batch.insertions = {{3, 0}, {3, 1}, {0, 2}};
  g.applyBatch(batch);
  const auto snap = g.toCsr();
  snap.validate();  // validate() checks invOutDeg against the offsets
  for (VertexId v = 0; v < snap.numVertices(); ++v) {
    const VertexId d = snap.outDegree(v);
    EXPECT_EQ(snap.invOutDegree(v), d > 0 ? 1.0 / static_cast<double>(d) : 0.0);
  }
  EXPECT_EQ(snap.invOutDegree(1), 0.0);  // 1->2 deleted; 1 is now a dead end
  EXPECT_EQ(snap.invOutDegree(3), 0.5);
}

TEST(DynamicDigraph, AddAndRemove) {
  DynamicDigraph g(4);
  EXPECT_TRUE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(0, 1));  // duplicate
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_TRUE(g.removeEdge(0, 1));
  EXPECT_FALSE(g.removeEdge(0, 1));  // already gone
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(DynamicDigraph, OutOfRangeThrows) {
  DynamicDigraph g(2);
  EXPECT_THROW(g.addEdge(0, 5), std::out_of_range);
  EXPECT_THROW(g.removeEdge(5, 0), std::out_of_range);
}

TEST(DynamicDigraph, MaintainsInAdjacency) {
  DynamicDigraph g(3);
  g.addEdge(0, 2);
  g.addEdge(1, 2);
  ASSERT_EQ(g.in(2).size(), 2u);
  EXPECT_EQ(g.in(2)[0], 0u);
  EXPECT_EQ(g.in(2)[1], 1u);
  g.removeEdge(0, 2);
  ASSERT_EQ(g.in(2).size(), 1u);
  EXPECT_EQ(g.in(2)[0], 1u);
}

TEST(DynamicDigraph, ApplyBatchReportsCounts) {
  auto g = DynamicDigraph::fromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}});
  BatchUpdate batch;
  batch.deletions = {{0, 1}, {2, 3}};   // second is absent
  batch.insertions = {{3, 0}, {1, 2}};  // second is duplicate
  const auto report = g.applyBatch(batch);
  EXPECT_EQ(report.deleted, 1u);
  EXPECT_EQ(report.missedDeletions, 1u);
  EXPECT_EQ(report.inserted, 1u);
  EXPECT_EQ(report.duplicateInsertions, 1u);
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(3, 0));
}

TEST(DynamicDigraph, BatchThenInverseRestoresGraph) {
  auto g = DynamicDigraph::fromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto before = g.edges();
  BatchUpdate batch;
  batch.deletions = {{1, 2}};
  batch.insertions = {{3, 1}};
  g.applyBatch(batch);
  g.applyBatch(batch.inverted());
  EXPECT_EQ(g.edges(), before);
}

TEST(DynamicDigraph, EnsureSelfLoops) {
  DynamicDigraph g(3);
  g.addEdge(0, 0);
  EXPECT_EQ(g.ensureSelfLoops(), 2u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_TRUE(g.hasEdge(v, v));
  EXPECT_EQ(g.ensureSelfLoops(), 0u);  // idempotent
}

TEST(DynamicDigraph, ToCsrMatchesFromEdges) {
  const std::vector<Edge> es = {{0, 1}, {1, 2}, {2, 0}, {0, 2}};
  const auto g = DynamicDigraph::fromEdges(3, es).toCsr();
  const auto h = CsrGraph::fromEdges(3, es);
  EXPECT_EQ(g, h);
  g.validate();
}

TEST(DynamicDigraph, FromCsrRoundTrip) {
  const std::vector<Edge> es = {{0, 1}, {1, 2}, {2, 0}};
  const auto csr = CsrGraph::fromEdges(3, es);
  const auto dyn = DynamicDigraph::fromCsr(csr);
  EXPECT_EQ(dyn.numEdges(), csr.numEdges());
  EXPECT_EQ(dyn.toCsr(), csr);
}

TEST(GraphIo, EdgeListRoundTrip) {
  std::stringstream ss;
  writeEdgeList(ss, triangle(), "test graph");
  const auto data = readEdgeList(ss);
  EXPECT_EQ(data.numVertices, 3u);
  EXPECT_EQ(data.edges, triangle());
}

TEST(GraphIo, SkipsCommentsAndBlanks) {
  std::istringstream is("# header\n\n% other comment\n0 1\n1 2\n");
  const auto data = readEdgeList(is);
  EXPECT_EQ(data.edges.size(), 2u);
}

TEST(GraphIo, MalformedEdgeListThrows) {
  std::istringstream is("0\n");
  EXPECT_THROW(readEdgeList(is), std::runtime_error);
}

TEST(GraphIo, TemporalEdgeList) {
  std::istringstream is("# t\n0 1 100\n1 2 200\n");
  const auto data = readTemporalEdgeList(is);
  ASSERT_EQ(data.edges.size(), 2u);
  EXPECT_EQ(data.edges[0].time, 100u);
  EXPECT_EQ(data.numVertices, 3u);
}

TEST(GraphIo, MatrixMarketGeneralPattern) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  const auto data = readMatrixMarket(is);
  EXPECT_EQ(data.numVertices, 3u);
  const std::vector<Edge> expect = {{0, 1}, {2, 0}};
  EXPECT_EQ(data.edges, expect);
}

TEST(GraphIo, MatrixMarketSymmetricExpands) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 0.5\n"
      "3 3 1.0\n");
  const auto data = readMatrixMarket(is);
  // (2,1) expands to both directions; the diagonal entry does not.
  EXPECT_EQ(data.edges.size(), 3u);
}

TEST(GraphIo, MatrixMarketRoundTrip) {
  std::stringstream ss;
  writeMatrixMarket(ss, 3, triangle());
  const auto data = readMatrixMarket(ss);
  EXPECT_EQ(data.edges, triangle());
}

TEST(GraphIo, NotMatrixMarketThrows) {
  std::istringstream is("garbage\n");
  EXPECT_THROW(readMatrixMarket(is), std::runtime_error);
}

TEST(GraphIo, MatrixMarketZeroBasedEntryThrows) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "0 1\n");
  EXPECT_THROW(readMatrixMarket(is), std::runtime_error);
}

TEST(GraphStats, CountsDeadEndsAndSelfLoops) {
  // 0->1, 1->1 (self loop); 2 is isolated and a dead end.
  const std::vector<Edge> es = {{0, 1}, {1, 1}};
  const auto g = CsrGraph::fromEdges(3, es);
  const auto s = computeStats(g);
  EXPECT_EQ(s.numVertices, 3u);
  EXPECT_EQ(s.numEdges, 2u);
  EXPECT_EQ(s.numDeadEnds, 1u);
  EXPECT_EQ(s.numSelfLoops, 1u);
  EXPECT_EQ(s.numIsolated, 1u);
  EXPECT_EQ(s.maxInDegree, 2u);
  EXPECT_NEAR(s.avgOutDegree, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace lfpr
