// Property-based sweeps over graph families, batch compositions and
// engine options: every engine must converge to the reference within the
// paper's error band, conserve rank mass, and the BB engines must be
// deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "harness/scenario.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions testOptions() {
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 128;
  return opt;
}

// ----- Family x batch-fraction sweep --------------------------------------

struct FamilyParam {
  const char* family;
  double batchFraction;
};

DynamicDigraph buildFamily(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> es;
  VertexId n = 0;
  if (family == "web") {
    n = 2048;
    es = generateRmat(11, 16000, rng);
  } else if (family == "social") {
    n = 1500;
    es = symmetrize(generateBarabasiAlbert(n, 8, rng));
  } else if (family == "road") {
    n = 2500;
    es = symmetrize(generateGrid(50, 50, 0.01, rng));
  } else {  // kmer
    n = 3000;
    es = symmetrize(generateKmerChains(n, 0.5, rng));
  }
  appendSelfLoops(es, n);
  return DynamicDigraph::fromEdges(n, es);
}

class FamilySweep : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(FamilySweep, AllEnginesAccurateAndMassConserving) {
  const auto& p = GetParam();
  const auto opt = testOptions();
  const auto scenario =
      makeScenario(buildFamily(p.family, 100), p.batchFraction, 200, opt);
  const auto ref = referenceRanks(scenario.curr);
  for (Approach a : kAllApproaches) {
    const auto r = runOnScenario(a, scenario, opt);
    ASSERT_TRUE(r.converged) << approachName(a) << " on " << p.family;
    // Terminal accuracy is O(tau / (1 - alpha)) plus interleaving jitter
    // for the asynchronous engines: a converged flag can latch while a
    // late neighbour update still propagates, which on slow-mixing
    // topologies (chains) occasionally reaches ~1e-7 at tau=1e-10. The
    // bound guards against gross inaccuracy, three orders below the 1/n
    // rank scale.
    EXPECT_LT(linfNorm(r.ranks, ref), 1e-6) << approachName(a) << " on " << p.family;
    // LF engines stop per-vertex at tau, so total mass carries an
    // O(n * tau / (1 - alpha)) residual; 1e-6 covers all graph sizes here.
    EXPECT_NEAR(rankSum(r.ranks), 1.0, 1e-6) << approachName(a) << " on " << p.family;
    EXPECT_LE(r.affectedVertices, scenario.curr.numVertices());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilySweep,
    ::testing::Values(FamilyParam{"web", 1e-3}, FamilyParam{"web", 1e-1},
                      FamilyParam{"social", 1e-3}, FamilyParam{"social", 1e-1},
                      FamilyParam{"road", 1e-3}, FamilyParam{"road", 1e-1},
                      FamilyParam{"kmer", 1e-3}, FamilyParam{"kmer", 1e-1}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      const double f = info.param.batchFraction;
      return std::string(info.param.family) + (f < 1e-2 ? "_small" : "_large");
    });

// ----- Determinism of the synchronous engines ------------------------------

class DeterminismSweep : public ::testing::TestWithParam<Approach> {};

TEST_P(DeterminismSweep, BBEnginesAreBitwiseDeterministic) {
  // DFBB is excluded: its frontier expansion races benignly within an
  // iteration (a vertex marked mid-sweep may or may not be processed in
  // that same sweep), so only its *converged* ranks are stable, not the
  // bitwise trace. Static/ND/DT have fixed per-iteration work sets.
  const Approach a = GetParam();
  const auto opt = testOptions();
  const auto scenario = makeScenario(buildFamily("web", 300), 1e-2, 301, opt);
  const auto r1 = runOnScenario(a, scenario, opt);
  const auto r2 = runOnScenario(a, scenario, opt);
  EXPECT_EQ(r1.ranks, r2.ranks);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.rankUpdates, r2.rankUpdates);
}

INSTANTIATE_TEST_SUITE_P(BBEngines, DeterminismSweep,
                         ::testing::Values(Approach::StaticBB, Approach::NDBB,
                                           Approach::DTBB),
                         [](const ::testing::TestParamInfo<Approach>& info) {
                           return approachName(info.param);
                         });

TEST(DeterminismSweep, DFBBConvergedRanksAreStable) {
  const auto opt = testOptions();
  const auto scenario = makeScenario(buildFamily("web", 310), 1e-2, 311, opt);
  const auto r1 = runOnScenario(Approach::DFBB, scenario, opt);
  const auto r2 = runOnScenario(Approach::DFBB, scenario, opt);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(linfNorm(r1.ranks, r2.ranks), 1e-9);
}

// ----- LF engines agree with their BB counterparts -------------------------

struct PairParam {
  Approach bb;
  Approach lf;
};

class PairSweep : public ::testing::TestWithParam<PairParam> {};

TEST_P(PairSweep, LockFreeMatchesBarrierBased) {
  const auto& p = GetParam();
  const auto opt = testOptions();
  const auto scenario = makeScenario(buildFamily("kmer", 400), 1e-2, 401, opt);
  const auto bb = runOnScenario(p.bb, scenario, opt);
  const auto lf = runOnScenario(p.lf, scenario, opt);
  ASSERT_TRUE(bb.converged);
  ASSERT_TRUE(lf.converged);
  EXPECT_LT(linfNorm(bb.ranks, lf.ranks), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, PairSweep,
    ::testing::Values(PairParam{Approach::StaticBB, Approach::StaticLF},
                      PairParam{Approach::NDBB, Approach::NDLF},
                      PairParam{Approach::DTBB, Approach::DTLF},
                      PairParam{Approach::DFBB, Approach::DFLF}),
    [](const ::testing::TestParamInfo<PairParam>& info) {
      return std::string(approachName(info.param.bb)) + "vs" +
             approachName(info.param.lf);
    });

// ----- Frontier tolerance controls the accuracy/work trade-off -------------

class FrontierTolSweep : public ::testing::TestWithParam<double> {};

TEST_P(FrontierTolSweep, ErrorBoundedAndWorkShrinksWithLargerTolerance) {
  const double tauF = GetParam();
  auto opt = testOptions();
  opt.frontierTolerance = tauF;
  const auto scenario = makeScenario(buildFamily("road", 500), 1e-3, 501, opt);
  const auto ref = referenceRanks(scenario.curr);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, opt);
  ASSERT_TRUE(r.converged);
  // Bound derived from the stopping rules (see error.hpp): the per-vertex
  // freeze at tau contributes tau / (1 - alpha), and every expansion
  // skipped at tau_f leaves up to tau_f unpropagated per in-neighbour,
  // contributing tau_f * alpha / (1 - alpha). 8x slack for scheduling
  // jitter; the largest tau_f in this sweep equals tau itself.
  constexpr double kSlack = 8.0;
  EXPECT_LT(linfNorm(r.ranks, ref),
            kSlack * (asyncToleranceBound(opt.tolerance, opt.alpha) +
                      syncToleranceBound(tauF, opt.alpha)));
}

INSTANTIATE_TEST_SUITE_P(Tolerances, FrontierTolSweep,
                         ::testing::Values(0.0, 1e-14, 1e-13, 1e-12, 1e-11, 1e-10),
                         [](const ::testing::TestParamInfo<double>& info) {
                           const double v = info.param;
                           if (v == 0.0) return std::string("zero");
                           // std::string + over const char* trips GCC 12's
                           // -Wrestrict false positive (PR 105329).
                           std::string name("e");
                           name += std::to_string(
                               -static_cast<int>(std::round(std::log10(v))));
                           return name;
                         });

TEST(FrontierTolProperty, LargerToleranceNeverMarksMore) {
  const auto opt = testOptions();
  const auto scenario = makeScenario(buildFamily("road", 600), 1e-3, 601, opt);
  std::uint64_t lastAffected = std::numeric_limits<std::uint64_t>::max();
  for (double tauF : {0.0, 1e-13, 1e-11, 1e-9}) {
    auto o = opt;
    o.frontierTolerance = tauF;
    const auto r = dfBB(scenario.prev, scenario.curr, scenario.batch,
                        scenario.prevRanks, o);
    EXPECT_LE(r.affectedVertices, lastAffected) << "tauF=" << tauF;
    lastAffected = r.affectedVertices;
  }
}

// ----- Batch composition sweep ---------------------------------------------

class CompositionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CompositionSweep, DeletionShareDoesNotBreakAccuracy) {
  const double share = GetParam();
  const auto opt = testOptions();
  auto base = buildFamily("web", 700);
  Rng rng(701);
  BatchGenOptions bg;
  bg.deletionShare = share;
  const auto batch = generateBatch(base, 50, rng, bg);
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, opt);
  const auto ref = referenceRanks(scenario.curr);
  for (Approach a : {Approach::NDLF, Approach::DFBB, Approach::DFLF}) {
    const auto r = runOnScenario(a, scenario, opt);
    ASSERT_TRUE(r.converged) << approachName(a);
    EXPECT_LT(linfNorm(r.ranks, ref), 1e-6) << approachName(a);
  }
}

INSTANTIATE_TEST_SUITE_P(Shares, CompositionSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "del" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

}  // namespace
}  // namespace lfpr
