// Durability tests (PR 7): the write-ahead ingest journal must round
// trip and treat torn tails as clean EOF with quarantine, checkpoints
// must bind their csr/meta halves and fall back to older pairs when the
// newest is torn, and restart recovery must reproduce a clean run's
// ranks within the §4.5 certificate. Builds with -DLFPR_FAILPOINTS=ON
// additionally run the crash matrix: for every I/O fail point a clean
// run executes, kill the service there, restart, resubmit what was
// never acknowledged, and verify no journaled-then-acknowledged batch
// was lost.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/csr_file.hpp"
#include "graph/dynamic_digraph.hpp"
#include "graph/edge_log.hpp"
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/detail/monte_carlo.hpp"
#include "pagerank/pagerank.hpp"
#include "service/checkpoint.hpp"
#include "service/ingest_journal.hpp"
#include "service/rank_service.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

namespace fs = std::filesystem;

constexpr VertexId kVertices = VertexId{1} << 9;

CsrGraph makeTestGraph(std::uint64_t seed) {
  Rng rng(seed);
  auto edges = generateRmat(9, 8 * kVertices, rng);
  appendSelfLoops(edges, kVertices);
  return DynamicDigraph::fromEdges(kVertices, edges).toCsr();
}

/// Deterministic batch stream plus the graph they produce when all are
/// applied — the offline twin every recovery test verifies against.
std::vector<BatchUpdate> makeBatches(const CsrGraph& initial, int count,
                                     std::uint64_t seed) {
  auto g = DynamicDigraph::fromCsr(initial);
  g.ensureSelfLoops();
  Rng rng(seed);
  std::vector<BatchUpdate> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto batch = generateBatch(g, 50 + (static_cast<std::size_t>(i) * 37) % 101,
                               rng);
    g.applyBatch(batch);
    out.push_back(std::move(batch));
  }
  return out;
}

std::vector<double> offlineReference(const CsrGraph& initial,
                                     const std::vector<BatchUpdate>& batches,
                                     std::size_t upTo) {
  auto g = DynamicDigraph::fromCsr(initial);
  g.ensureSelfLoops();
  for (std::size_t i = 0; i < upTo; ++i) g.applyBatch(batches[i]);
  return referenceRanks(g.toCsr());
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lfpr-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FailPoints::instance().disarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static void truncateFile(const std::string& file, std::uint64_t newSize) {
    fs::resize_file(file, newSize);
  }

  /// Flip one byte at `offset` in an existing file.
  static void corruptByte(const std::string& file, std::uint64_t offset) {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  [[nodiscard]] ServiceOptions durableOptions(
      std::uint64_t checkpointEverySolves = 1,
      FsyncPolicy fsync = FsyncPolicy::Batch) const {
    ServiceOptions opt;
    opt.solver.numThreads = 2;
    opt.solver.chunkSize = 64;
    opt.durability.directory = dir_.string();
    opt.durability.fsync = fsync;
    opt.durability.checkpointEverySolves = checkpointEverySolves;
    opt.durability.groupCommitWindow = std::chrono::milliseconds(1);
    return opt;
  }

  fs::path dir_;
};

IngestJournal::Options journalOptions() {
  IngestJournal::Options opt;
  opt.fsync = FsyncPolicy::Batch;
  return opt;
}

BatchUpdate sampleBatch(std::uint64_t seed, std::size_t edges = 8) {
  Rng rng(seed);
  BatchUpdate b;
  for (std::size_t i = 0; i < edges; ++i) {
    const Edge e{static_cast<VertexId>(rng() % kVertices),
                 static_cast<VertexId>(rng() % kVertices)};
    if (i % 3 == 0)
      b.deletions.push_back(e);
    else
      b.insertions.push_back(e);
  }
  return b;
}

std::uint64_t recordBytes(const BatchUpdate& b) {
  return sizeof(JournalRecordHeader) + b.size() * sizeof(Edge);
}

// ---------------------------------------------------------------------
// IngestJournal: round trip, torn-tail quarantine, compaction.

TEST_F(DurabilityTest, JournalRoundTrip) {
  const auto b1 = sampleBatch(1);
  const auto b2 = sampleBatch(2, 0);  // empty batch is a legal record
  const auto b3 = sampleBatch(3, 13);
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    EXPECT_TRUE(j.recovered().empty());
    EXPECT_EQ(j.quarantinedBytes(), 0u);
    EXPECT_EQ(j.append(b1), 1u);
    EXPECT_EQ(j.append(b2), 2u);
    EXPECT_EQ(j.append(b3), 3u);
    EXPECT_EQ(j.lastSeq(), 3u);
  }
  IngestJournal j(path("journal"), kVertices, journalOptions());
  ASSERT_EQ(j.recovered().size(), 3u);
  EXPECT_EQ(j.quarantinedBytes(), 0u);
  EXPECT_EQ(j.recovered()[0].seq, 1u);
  EXPECT_EQ(j.recovered()[0].batch.deletions, b1.deletions);
  EXPECT_EQ(j.recovered()[0].batch.insertions, b1.insertions);
  EXPECT_TRUE(j.recovered()[1].batch.empty());
  EXPECT_EQ(j.recovered()[2].batch.insertions, b3.insertions);
  // Appends continue past the recovered tail.
  EXPECT_EQ(j.append(sampleBatch(4)), 4u);
}

TEST_F(DurabilityTest, JournalTornTailIsCleanEofWithQuarantine) {
  const auto b1 = sampleBatch(5);
  const auto b2 = sampleBatch(6);
  const auto b3 = sampleBatch(7);
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    j.append(b1);
    j.append(b2);
    j.append(b3);
  }
  // Tear record 3 mid-payload: the crash-during-append shape.
  const std::uint64_t goodTail =
      sizeof(JournalHeader) + recordBytes(b1) + recordBytes(b2);
  truncateFile(path("journal"), goodTail + 10);

  std::vector<std::string> warnings;
  auto opt = journalOptions();
  opt.onWarning = [&](const std::string& w) { warnings.push_back(w); };
  IngestJournal j(path("journal"), kVertices, opt);
  ASSERT_EQ(j.recovered().size(), 2u);
  EXPECT_EQ(j.recovered()[1].seq, 2u);
  EXPECT_EQ(j.quarantinedBytes(), 10u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("quarantined"), std::string::npos);
  // Torn bytes preserved for forensics; the live file truncated back.
  EXPECT_TRUE(fs::exists(path("journal.torn")));
  EXPECT_EQ(fs::file_size(path("journal")), goodTail);
  // Appends land on the repaired tail and reuse the torn record's seq.
  EXPECT_EQ(j.append(sampleBatch(8)), 3u);
}

TEST_F(DurabilityTest, JournalChecksumBadTailQuarantined) {
  const auto b1 = sampleBatch(9);
  const auto b2 = sampleBatch(10);
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    j.append(b1);
    j.append(b2);
  }
  // Flip a payload byte inside record 2.
  corruptByte(path("journal"), sizeof(JournalHeader) + recordBytes(b1) +
                                   sizeof(JournalRecordHeader) + 3);
  IngestJournal j(path("journal"), kVertices, journalOptions());
  ASSERT_EQ(j.recovered().size(), 1u);
  EXPECT_EQ(j.recovered()[0].seq, 1u);
  EXPECT_EQ(j.quarantinedBytes(), recordBytes(b2));
  EXPECT_TRUE(fs::exists(path("journal.torn")));
}

TEST_F(DurabilityTest, JournalCorruptHeaderQuarantinesWholeFile) {
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    j.append(sampleBatch(11));
  }
  corruptByte(path("journal"), 2);  // magic
  std::vector<std::string> warnings;
  auto opt = journalOptions();
  opt.onWarning = [&](const std::string& w) { warnings.push_back(w); };
  IngestJournal j(path("journal"), kVertices, opt);
  EXPECT_TRUE(j.recovered().empty());
  EXPECT_GT(j.quarantinedBytes(), sizeof(JournalHeader));
  EXPECT_TRUE(fs::exists(path("journal.torn-file")));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("started fresh"), std::string::npos);
  // The file restarted as a virgin journal: seqs from 1.
  EXPECT_EQ(j.append(sampleBatch(12)), 1u);
}

TEST_F(DurabilityTest, JournalVertexMismatchQuarantinesWholeFile) {
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    j.append(sampleBatch(13));
  }
  IngestJournal j(path("journal"), kVertices / 2, journalOptions());
  EXPECT_TRUE(j.recovered().empty());
  EXPECT_GT(j.quarantinedBytes(), 0u);
}

TEST_F(DurabilityTest, JournalCompactThroughDropsCoveredPrefix) {
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    for (std::uint64_t s = 1; s <= 5; ++s) j.append(sampleBatch(s));
  }
  {
    IngestJournal j(path("journal"), kVertices, journalOptions());
    j.compactThrough(3);  // a checkpoint covered seqs 1..3
    const auto tail = j.takeRecovered();
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].seq, 4u);
    EXPECT_EQ(tail[1].seq, 5u);
    EXPECT_EQ(j.append(sampleBatch(14)), 6u);
  }
  // The compacted file scans clean with its non-1 starting seq.
  IngestJournal j(path("journal"), kVertices, journalOptions());
  ASSERT_EQ(j.recovered().size(), 3u);
  EXPECT_EQ(j.recovered()[0].seq, 4u);
  EXPECT_EQ(j.recovered()[2].seq, 6u);
}

TEST_F(DurabilityTest, JournalResetIfCoveredKeepsSeqCounting) {
  IngestJournal j(path("journal"), kVertices, journalOptions());
  for (std::uint64_t s = 1; s <= 3; ++s) j.append(sampleBatch(s));
  // Records beyond the checkpoint: reset must refuse.
  EXPECT_FALSE(j.resetIfCovered(2));
  EXPECT_TRUE(j.resetIfCovered(3));
  EXPECT_EQ(fs::file_size(path("journal")), sizeof(JournalHeader));
  EXPECT_TRUE(j.resetIfCovered(3));  // idempotent on an empty file
  EXPECT_EQ(j.append(sampleBatch(15)), 4u);
}

// ---------------------------------------------------------------------
// Checkpoints: pair atomicity, fallback, pruning, tmp sweep.

CheckpointData sampleCheckpoint(std::uint64_t epoch, std::uint64_t graphSeed) {
  CheckpointData d;
  d.epoch = epoch;
  d.journalSeq = epoch * 10;
  d.batchesApplied = epoch * 3;
  d.edgesIngested = epoch * 100;
  d.iterations = 17;
  d.toleranceBound = 6.7e-10;
  d.graph = makeTestGraph(graphSeed);
  d.ranks.assign(kVertices, 0.0);
  for (VertexId v = 0; v < kVertices; ++v)
    d.ranks[v] = 1.0 / (1.0 + static_cast<double>(v + epoch));
  return d;
}

TEST_F(DurabilityTest, CheckpointRoundTrip) {
  const auto data = sampleCheckpoint(4, 21);
  writeCheckpoint(dir_.string(), data);
  EXPECT_TRUE(fs::exists(path("ckpt-4.csr")));
  EXPECT_TRUE(fs::exists(path("ckpt-4.meta")));

  // No walk sidecar was requested: pre-PR 10 shape, flags == 0, and the
  // loader hands back a null store without complaint.
  EXPECT_FALSE(fs::exists(path("ckpt-4.walks")));

  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->walkStore, nullptr);
  EXPECT_FALSE(loaded->walkSidecarQuarantined);
  EXPECT_EQ(loaded->epoch, 4u);
  EXPECT_EQ(loaded->journalSeq, 40u);
  EXPECT_EQ(loaded->batchesApplied, 12u);
  EXPECT_EQ(loaded->edgesIngested, 400u);
  EXPECT_EQ(loaded->iterations, 17);
  EXPECT_DOUBLE_EQ(loaded->toleranceBound, 6.7e-10);
  EXPECT_EQ(loaded->ranks, data.ranks);
  EXPECT_EQ(loaded->graph.numEdges(), data.graph.numEdges());
  EXPECT_EQ(loaded->graph.edges(), data.graph.edges());
}

TEST_F(DurabilityTest, CheckpointFallsBackToOlderValidPair) {
  writeCheckpoint(dir_.string(), sampleCheckpoint(3, 22));
  writeCheckpoint(dir_.string(), sampleCheckpoint(7, 23));
  // Corrupt the newest meta's rank payload: its checksum no longer
  // verifies, so recovery must take epoch 3, warn, and delete nothing.
  corruptByte(path("ckpt-7.meta"), sizeof(CheckpointHeader) + 11);
  std::vector<std::string> warnings;
  const auto loaded =
      loadNewestCheckpoint(dir_.string(), kVertices,
                           [&](const std::string& w) { warnings.push_back(w); });
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 3u);
  EXPECT_FALSE(warnings.empty());
  EXPECT_TRUE(fs::exists(path("ckpt-7.meta")));
}

TEST_F(DurabilityTest, CheckpointMetaBindsItsCsrHalf) {
  writeCheckpoint(dir_.string(), sampleCheckpoint(2, 24));
  writeCheckpoint(dir_.string(), sampleCheckpoint(5, 25));
  // Replace epoch 5's csr with a DIFFERENT valid csr file: both halves
  // individually verify, but the meta's recorded csr checksum disagrees —
  // the mixed pair must be rejected, not plausibly loaded.
  writeCsrFile(path("ckpt-5.csr"), makeTestGraph(99));
  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 2u);
}

TEST_F(DurabilityTest, CheckpointTornMetaFallsBack) {
  writeCheckpoint(dir_.string(), sampleCheckpoint(1, 26));
  writeCheckpoint(dir_.string(), sampleCheckpoint(6, 27));
  truncateFile(path("ckpt-6.meta"), sizeof(CheckpointHeader) - 8);
  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
  // With every pair invalid, recovery reports "nothing" rather than
  // guessing.
  truncateFile(path("ckpt-1.meta"), 10);
  EXPECT_FALSE(loadNewestCheckpoint(dir_.string(), kVertices, nullptr));
}

TEST_F(DurabilityTest, PruneKeepsOnlyTheNamedEpoch) {
  writeCheckpoint(dir_.string(), sampleCheckpoint(1, 28));
  writeCheckpoint(dir_.string(), sampleCheckpoint(2, 29));
  writeCheckpoint(dir_.string(), sampleCheckpoint(3, 30));
  pruneCheckpoints(dir_.string(), 3);
  EXPECT_FALSE(fs::exists(path("ckpt-1.csr")));
  EXPECT_FALSE(fs::exists(path("ckpt-1.meta")));
  EXPECT_FALSE(fs::exists(path("ckpt-2.csr")));
  EXPECT_TRUE(fs::exists(path("ckpt-3.csr")));
  EXPECT_TRUE(fs::exists(path("ckpt-3.meta")));
}

TEST_F(DurabilityTest, SweepRemovesOnlyTmpScratch) {
  std::ofstream(path("ckpt-9.csr.tmp.4242")) << "stale";
  std::ofstream(path("ckpt-9.walks.tmp.4242")) << "stale";
  std::ofstream(path("journal.tmp.4242")) << "stale";
  std::ofstream(path("keepme.csr")) << "live";
  std::ofstream(path("keepme.walks")) << "live";
  sweepStaleTmpFiles(dir_.string());
  EXPECT_FALSE(fs::exists(path("ckpt-9.csr.tmp.4242")));
  EXPECT_FALSE(fs::exists(path("ckpt-9.walks.tmp.4242")));
  EXPECT_FALSE(fs::exists(path("journal.tmp.4242")));
  EXPECT_TRUE(fs::exists(path("keepme.csr")));
  EXPECT_TRUE(fs::exists(path("keepme.walks")));
}

// ---------------------------------------------------------------------
// Walk sidecar (PR 10): a checkpoint written by a MonteCarlo service is
// an atomic TRIPLE — but the sidecar is strictly weaker than the pair:
// any sidecar defect quarantines it and the exact rank recovery
// proceeds untouched.

PageRankOptions walkSolverOptions() {
  PageRankOptions opt;
  opt.numThreads = 2;
  opt.mcWalksPerVertex = 4;
  return opt;
}

/// sampleCheckpoint plus a REAL walk store: built on the epoch's graph,
/// then repaired through two batches so the persisted store carries a
/// non-zero walk epoch and live delta chains — the interesting shape.
CheckpointData sampleWalkCheckpoint(std::uint64_t epoch,
                                    std::uint64_t graphSeed,
                                    std::uint64_t* fingerprint = nullptr) {
  CheckpointData d = sampleCheckpoint(epoch, graphSeed);
  const auto opt = walkSolverOptions();
  detail::LfEngineState state(d.graph.numVertices());
  EXPECT_TRUE(detail::lfMonteCarloStep(state, d.graph, d.graph, {}, opt,
                                       nullptr, "test")
                  .converged);
  auto g = DynamicDigraph::fromCsr(d.graph);
  Rng rng(graphSeed ^ 0xabcdULL);
  auto prev = d.graph;
  for (int i = 0; i < 2; ++i) {
    const auto batch = generateBatch(g, 60, rng);
    g.applyBatch(batch);
    const auto curr = g.toCsr();
    EXPECT_TRUE(detail::lfMonteCarloStep(state, prev, curr, batch, opt,
                                         nullptr, "test")
                    .converged);
    prev = curr;
  }
  d.graph = prev;  // the store is consistent with THIS graph
  d.walks = detail::mcSerializeStore(*state.monteCarlo);
  if (fingerprint != nullptr) *fingerprint = state.monteCarlo->fingerprint();
  return d;
}

TEST_F(DurabilityTest, WalkSidecarRoundTrip) {
  std::uint64_t fp = 0;
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(4, 61, &fp));
  EXPECT_TRUE(fs::exists(path("ckpt-4.csr")));
  EXPECT_TRUE(fs::exists(path("ckpt-4.walks")));
  EXPECT_TRUE(fs::exists(path("ckpt-4.meta")));

  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 4u);
  EXPECT_FALSE(loaded->walkSidecarQuarantined);
  ASSERT_NE(loaded->walkStore, nullptr);
  // Bit-identity, not approximation: the fingerprint covers the config,
  // the walk epoch, and every live walk's contents.
  EXPECT_EQ(loaded->walkStore->fingerprint(), fp);
  EXPECT_EQ(loaded->walkStore->epoch, 2u) << "the two repairs must survive";
  EXPECT_EQ(loaded->walkStore->n, static_cast<std::size_t>(kVertices));
}

TEST_F(DurabilityTest, WalkSidecarTornQuarantinesAndPairStillLoads) {
  const auto data = sampleWalkCheckpoint(5, 62);
  writeCheckpoint(dir_.string(), data);
  truncateFile(path("ckpt-5.walks"), fs::file_size(path("ckpt-5.walks")) - 9);

  std::vector<std::string> warnings;
  const auto loaded =
      loadNewestCheckpoint(dir_.string(), kVertices,
                           [&](const std::string& w) { warnings.push_back(w); });
  // Approximate resume state must never block exact rank recovery.
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 5u);
  EXPECT_EQ(loaded->ranks, data.ranks);
  EXPECT_EQ(loaded->walkStore, nullptr);
  EXPECT_TRUE(loaded->walkSidecarQuarantined);
  EXPECT_FALSE(fs::exists(path("ckpt-5.walks")));
  EXPECT_TRUE(fs::exists(path("ckpt-5.walks.torn")));
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("ckpt-5.walks.torn"), std::string::npos)
      << "the warning must name the quarantine file: " << warnings[0];
  EXPECT_NE(warnings[0].find("rebuilt from the journal"), std::string::npos)
      << warnings[0];
}

TEST_F(DurabilityTest, WalkSidecarChecksumTamperQuarantines) {
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(6, 63));
  // Flip one payload byte: header parses, payload checksum must not.
  corruptByte(path("ckpt-6.walks"), sizeof(WalkSidecarHeader) + 33);
  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 6u);
  EXPECT_EQ(loaded->walkStore, nullptr);
  EXPECT_TRUE(loaded->walkSidecarQuarantined);
  EXPECT_TRUE(fs::exists(path("ckpt-6.walks.torn")));
}

TEST_F(DurabilityTest, WalkSidecarVersionSkewQuarantines) {
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(7, 64));
  // Corrupt the version field (first u32 after the 8-byte magic): a
  // future-format sidecar must be quarantined, never misparsed.
  corruptByte(path("ckpt-7.walks"), 8);
  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 7u);
  EXPECT_EQ(loaded->walkStore, nullptr);
  EXPECT_TRUE(loaded->walkSidecarQuarantined);
  EXPECT_TRUE(fs::exists(path("ckpt-7.walks.torn")));
}

TEST_F(DurabilityTest, WalkSidecarMustBindToItsOwnPair) {
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(2, 65));
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(8, 66));
  // Replace epoch 8's sidecar with epoch 2's: the foreign file is
  // internally self-consistent (its own checksum verifies) but names a
  // different epoch/meta/csr — the binding check must reject it rather
  // than resume a store inconsistent with epoch 8's graph.
  fs::copy_file(path("ckpt-2.walks"), path("ckpt-8.walks"),
                fs::copy_options::overwrite_existing);
  const auto loaded = loadNewestCheckpoint(dir_.string(), kVertices, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 8u);
  EXPECT_EQ(loaded->walkStore, nullptr);
  EXPECT_TRUE(loaded->walkSidecarQuarantined);
  EXPECT_TRUE(fs::exists(path("ckpt-8.walks.torn")));
}

TEST_F(DurabilityTest, PruneTreatsWalkSidecarAsPartOfTheTriple) {
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(1, 67));
  writeCheckpoint(dir_.string(), sampleCheckpoint(2, 68));  // pair only
  writeCheckpoint(dir_.string(), sampleWalkCheckpoint(3, 69));
  // A stray sidecar with no pair (a crash between walks-rename and
  // meta-write on some old epoch) and a quarantined sidecar.
  std::ofstream(path("ckpt-9.walks")) << "orphan";
  std::ofstream(path("ckpt-2.walks.torn")) << "forensics";

  pruneCheckpoints(dir_.string(), 3);
  // The kept epoch survives as a whole triple.
  EXPECT_TRUE(fs::exists(path("ckpt-3.csr")));
  EXPECT_TRUE(fs::exists(path("ckpt-3.walks")));
  EXPECT_TRUE(fs::exists(path("ckpt-3.meta")));
  // Everything else goes with its set — including sidecars and orphans.
  EXPECT_FALSE(fs::exists(path("ckpt-1.csr")));
  EXPECT_FALSE(fs::exists(path("ckpt-1.walks")));
  EXPECT_FALSE(fs::exists(path("ckpt-1.meta")));
  EXPECT_FALSE(fs::exists(path("ckpt-2.csr")));
  EXPECT_FALSE(fs::exists(path("ckpt-2.meta")));
  EXPECT_FALSE(fs::exists(path("ckpt-9.walks")));
  // Quarantine files are forensic evidence, preserved like journal.torn.
  EXPECT_TRUE(fs::exists(path("ckpt-2.walks.torn")));
}

// ---------------------------------------------------------------------
// Edge-log tail policy (satellite): torn tail readable, strict intact.

TEST_F(DurabilityTest, EdgeLogTailPolicyQuarantinesTornTail) {
  TemporalEdgeListData data;
  data.numVertices = 64;
  Rng rng(31);
  for (int i = 0; i < 20; ++i)
    data.edges.push_back({static_cast<VertexId>(rng() % 64),
                          static_cast<VertexId>(rng() % 64),
                          static_cast<std::uint64_t>(i)});
  writeTemporalEdgeLog(path("log.bin"), data);

  // Tear the final record: 10 bytes of the last 16-byte TemporalEdge.
  const auto full = fs::file_size(path("log.bin"));
  truncateFile(path("log.bin"), full - 10);

  // Strict (the dataset-cache contract) refuses.
  EXPECT_THROW(TemporalEdgeLogReader(path("log.bin")), EdgeLogError);

  // QuarantineTorn clamps to the last complete record and reports.
  TemporalEdgeLogReader reader(path("log.bin"), LogTailPolicy::QuarantineTorn);
  EXPECT_EQ(reader.numEdges(), 19u);
  EXPECT_TRUE(reader.tornTail());
  EXPECT_EQ(reader.quarantinedBytes(), 6u);  // 16 - 10 torn bytes present
  std::vector<TemporalEdge> out(32);
  EXPECT_EQ(reader.read(out), 19u);

  // Oversize is NOT a crash artifact: hard error under both policies.
  writeTemporalEdgeLog(path("log2.bin"), data);
  std::ofstream(path("log2.bin"), std::ios::binary | std::ios::app) << "xx";
  EXPECT_THROW(
      TemporalEdgeLogReader(path("log2.bin"), LogTailPolicy::QuarantineTorn),
      EdgeLogError);
}

// ---------------------------------------------------------------------
// RankService restart recovery.

TEST_F(DurabilityTest, ServiceReplaysJournalAfterRestart) {
  const auto initial = makeTestGraph(41);
  const auto batches = makeBatches(initial, 6, 42);
  // Cadence 0: journal-only durability on the first run (the forced
  // post-recovery checkpoint never triggers — there is no recovery).
  {
    RankService service(initial, durableOptions(/*checkpointEverySolves=*/0));
    for (const auto& b : batches) ASSERT_TRUE(service.submit(b));
    service.drainAndStop();
    EXPECT_EQ(service.stats().journaledBatches, 6u);
    EXPECT_EQ(service.stats().checkpoints, 0u);
  }
  // Restart: initial solve on `initial`, then the whole journal replays
  // through the DF step path, then the forced post-recovery checkpoint.
  RankService service(initial, durableOptions(/*checkpointEverySolves=*/0));
  service.waitIdle();
  const auto st = service.stats();
  EXPECT_EQ(st.replayedBatches, 6u);
  EXPECT_EQ(st.batchesApplied, 6u);
  EXPECT_EQ(st.checkpoints, 1u);
  EXPECT_EQ(service.staleness().pendingBatches, 0u);
  const SnapshotView v = service.snapshot();
  ASSERT_TRUE(v);
  EXPECT_TRUE(v->converged);
  EXPECT_LT(linfNorm(v->ranks, offlineReference(initial, batches, 6)),
            v->toleranceBound);
}

TEST_F(DurabilityTest, ServiceRestartFromCheckpointSkipsReplay) {
  const auto initial = makeTestGraph(43);
  const auto batches = makeBatches(initial, 4, 44);
  std::uint64_t finalEpoch = 0;
  std::vector<double> finalRanks;
  {
    RankService service(initial, durableOptions(/*checkpointEverySolves=*/1));
    for (const auto& b : batches) {
      ASSERT_TRUE(service.submit(b));
      service.waitIdle();  // one step (and one checkpoint) per batch
    }
    service.drainAndStop();
    EXPECT_GE(service.stats().checkpoints, 4u);
    finalEpoch = service.publishedEpoch();
    finalRanks = service.ranks();
    // Every journaled batch is checkpoint-covered: the journal was reset.
    EXPECT_EQ(fs::file_size(path("journal")), sizeof(JournalHeader));
  }
  RankService service(initial, durableOptions(/*checkpointEverySolves=*/1));
  // The checkpointed epoch is visible immediately — no solve needed; its
  // ranks ARE the snapshot the service once published.
  EXPECT_EQ(service.publishedEpoch(), finalEpoch);
  EXPECT_EQ(service.ranks(), finalRanks);
  service.waitIdle();
  const auto st = service.stats();
  EXPECT_EQ(st.replayedBatches, 0u);
  EXPECT_EQ(st.batchesApplied, 4u);
  // Ingest continues from the recovered state.
  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  for (const auto& b : batches) offline.applyBatch(b);
  Rng rng(45);
  const auto extra = generateBatch(offline, 90, rng);
  offline.applyBatch(extra);
  ASSERT_TRUE(service.submit(extra));
  service.drainAndStop();
  const SnapshotView v = service.snapshot();
  EXPECT_GT(v->epoch, finalEpoch);
  EXPECT_LT(linfNorm(v->ranks, referenceRanks(offline.toCsr())),
            v->toleranceBound);
}

TEST_F(DurabilityTest, ServiceQuarantinesTornJournalOnRestart) {
  const auto initial = makeTestGraph(46);
  const auto batches = makeBatches(initial, 3, 47);
  {
    RankService service(initial, durableOptions(/*checkpointEverySolves=*/0));
    for (const auto& b : batches) ASSERT_TRUE(service.submit(b));
    service.drainAndStop();
  }
  // Tear the journal's final record, as a mid-append crash would.
  truncateFile(path("journal"), fs::file_size(path("journal")) - 7);

  std::vector<std::string> warnings;
  auto opt = durableOptions(/*checkpointEverySolves=*/0);
  opt.durability.onWarning = [&](const std::string& w) {
    warnings.push_back(w);
  };
  RankService service(initial, opt);
  service.waitIdle();
  EXPECT_EQ(service.stats().replayedBatches, 2u);
  EXPECT_GT(service.stats().journalQuarantinedBytes, 0u);
  EXPECT_FALSE(warnings.empty());
  // The torn batch was never acknowledged-as-durable in this shape; the
  // client's retry path resubmits it and the ranks converge to the twin.
  ASSERT_TRUE(service.submit(batches[2]));
  service.drainAndStop();
  const SnapshotView v = service.snapshot();
  EXPECT_LT(linfNorm(v->ranks, offlineReference(initial, batches, 3)),
            v->toleranceBound);
}

TEST_F(DurabilityTest, ServiceGroupCommitAndNonePoliciesRecover) {
  const auto initial = makeTestGraph(48);
  const auto batches = makeBatches(initial, 4, 49);
  for (const FsyncPolicy policy :
       {FsyncPolicy::GroupCommit, FsyncPolicy::None}) {
    const fs::path sub = dir_ / (policy == FsyncPolicy::None ? "none" : "gc");
    ServiceOptions opt = durableOptions(/*checkpointEverySolves=*/0, policy);
    opt.durability.directory = sub.string();
    {
      RankService service(initial, opt);
      for (const auto& b : batches) ASSERT_TRUE(service.submit(b));
      service.drainAndStop();
      EXPECT_EQ(service.stats().journaledBatches, 4u);
    }
    RankService service(initial, opt);
    service.waitIdle();
    EXPECT_EQ(service.stats().replayedBatches, 4u);
    const SnapshotView v = service.snapshot();
    EXPECT_LT(linfNorm(v->ranks, offlineReference(initial, batches, 4)),
              v->toleranceBound);
  }
}

// ---------------------------------------------------------------------
// Walk-store resume (the PR 10 tentpole): restart of a MonteCarlo
// service resumes repairs from the checkpointed sidecar instead of
// rebuilding, replays only the journal suffix the checkpoint does not
// cover, and lands on the SAME walk store a journal-only rebuild does.

[[nodiscard]] ServiceOptions mcServiceOptions(ServiceOptions opt) {
  opt.stepEngine = ServiceOptions::StepEngine::MonteCarlo;
  opt.maxBatchesPerStep = 1;  // one repair per epoch: a fixed schedule
  opt.solver.mcWalksPerVertex = 4;
  return opt;
}

TEST_F(DurabilityTest, ServiceResumesWalkStoreFromSidecarAllFsyncPolicies) {
  const auto initial = makeTestGraph(70);
  const auto batches = makeBatches(initial, 6, 71);
  for (const FsyncPolicy policy :
       {FsyncPolicy::Batch, FsyncPolicy::GroupCommit, FsyncPolicy::None}) {
    const std::string label =
        "fsync policy " + std::to_string(static_cast<int>(policy));
    const fs::path resumeDir = dir_ / ("resume-" + label.substr(13));
    const fs::path rebuildDir = dir_ / ("rebuild-" + label.substr(13));

    // Run A: checkpoint every second publish — the final checkpoint's
    // sidecar covers batches 1..5, the journal tail holds batch 6.
    ServiceOptions ropt =
        mcServiceOptions(durableOptions(/*checkpointEverySolves=*/2, policy));
    ropt.durability.directory = resumeDir.string();
    // Run B: journal-only twin of the same schedule — the rebuild
    // oracle the resumed store must be bit-identical to.
    ServiceOptions jopt =
        mcServiceOptions(durableOptions(/*checkpointEverySolves=*/0, policy));
    jopt.durability.directory = rebuildDir.string();

    std::uint64_t fpA = 0;
    std::vector<double> ranksA;
    {
      RankService a(initial, ropt);
      RankService b(initial, jopt);
      for (const auto& batch : batches) {
        ASSERT_TRUE(a.submit(batch)) << label;
        a.waitIdle();
        ASSERT_TRUE(b.submit(batch)) << label;
        b.waitIdle();
      }
      a.drainAndStop();
      b.drainAndStop();
      EXPECT_EQ(a.stats().walkCheckpoints, 3u) << label;
      const SnapshotView va = a.snapshot();
      ASSERT_TRUE(va->monteCarlo) << label;
      fpA = va->mcFingerprint;
      ranksA = va->ranks;
      ASSERT_NE(fpA, 0u) << label;
      EXPECT_EQ(b.snapshot()->mcFingerprint, fpA)
          << label << ": twin runs diverged before any restart";
    }
    {
      // Resume: the sidecar store (walk epoch 5) plus ONE replayed
      // repair must equal run A — and the recovered snapshot serves
      // personalized queries before replay even starts.
      RankService s(initial, ropt);
      EXPECT_EQ(s.stats().walkResumes, 1u) << label;
      EXPECT_FALSE(s.pprTopK(0, 3).empty())
          << label << ": recovered snapshot must carry the PPR index";
      s.waitIdle();
      const auto st = s.stats();
      EXPECT_EQ(st.replayedBatches, 1u)
          << label << ": resume must replay only the uncovered suffix";
      EXPECT_EQ(st.batchesApplied, 6u) << label;
      EXPECT_EQ(st.walkSidecarsQuarantined, 0u) << label;
      const SnapshotView v = s.snapshot();
      ASSERT_TRUE(v->monteCarlo) << label;
      EXPECT_EQ(v->mcFingerprint, fpA)
          << label << ": resumed walk store diverged from the clean run";
      EXPECT_EQ(v->ranks, ranksA) << label;
    }
    {
      // Rebuild: full journal replay (build + 6 repairs) — same store.
      RankService s(initial, jopt);
      EXPECT_EQ(s.stats().walkResumes, 0u) << label;
      s.waitIdle();
      EXPECT_EQ(s.stats().replayedBatches, 6u) << label;
      const SnapshotView v = s.snapshot();
      ASSERT_TRUE(v->monteCarlo) << label;
      EXPECT_EQ(v->mcFingerprint, fpA)
          << label << ": journal-only rebuild diverged from the clean run";
      EXPECT_EQ(v->ranks, ranksA) << label;
    }
  }
}

TEST_F(DurabilityTest, ServiceTornWalkSidecarFallsBackToJournalRebuild) {
  const auto initial = makeTestGraph(72);
  const auto batches = makeBatches(initial, 2, 73);
  ServiceOptions opt =
      mcServiceOptions(durableOptions(/*checkpointEverySolves=*/1));
  {
    RankService s(initial, opt);
    for (const auto& b : batches) {
      ASSERT_TRUE(s.submit(b));
      s.waitIdle();
    }
    s.drainAndStop();
    EXPECT_GE(s.stats().walkCheckpoints, 2u);
  }
  // Corrupt the surviving (pruned-to-newest) sidecar's payload.
  std::uint64_t newest = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 &&
        name.size() > 11 && name.compare(name.size() - 6, 6, ".walks") == 0)
      newest = std::max<std::uint64_t>(
          newest, std::strtoull(name.c_str() + 5, nullptr, 10));
  }
  ASSERT_GT(newest, 0u);
  const std::string walks = path("ckpt-" + std::to_string(newest) + ".walks");
  ASSERT_TRUE(fs::exists(walks));
  corruptByte(walks, sizeof(WalkSidecarHeader) + 17);

  std::vector<std::string> warnings;
  ServiceOptions ropt = opt;
  ropt.durability.onWarning = [&](const std::string& w) {
    warnings.push_back(w);
  };
  RankService s(initial, ropt);
  // The sidecar was quarantined; the exact ranks recovered anyway.
  EXPECT_EQ(s.stats().walkSidecarsQuarantined, 1u);
  EXPECT_EQ(s.stats().walkResumes, 0u);
  EXPECT_TRUE(fs::exists(walks + ".torn"));
  ASSERT_FALSE(warnings.empty());
  bool named = false;
  for (const auto& w : warnings)
    named = named || w.find(".walks.torn") != std::string::npos;
  EXPECT_TRUE(named) << "no warning names the quarantine file";

  // The next batch triggers the rebuild: build on the checkpoint graph,
  // then repair — mirror that exact schedule offline and demand
  // bit-identity.
  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  for (const auto& b : batches) offline.applyBatch(b);
  const auto ckptGraph = offline.toCsr();
  Rng rng(74);
  const auto extra = generateBatch(offline, 100, rng);
  offline.applyBatch(extra);
  const auto currGraph = offline.toCsr();

  ASSERT_TRUE(s.submit(extra));
  s.drainAndStop();
  const SnapshotView v = s.snapshot();
  ASSERT_TRUE(v->monteCarlo);

  detail::LfEngineState twin(initial.numVertices());
  ASSERT_TRUE(detail::lfMonteCarloStep(twin, ckptGraph, currGraph, extra,
                                       opt.solver, nullptr, "twin")
                  .converged);
  EXPECT_EQ(v->mcFingerprint, twin.monteCarlo->fingerprint())
      << "the fallback rebuild must match the offline twin bit-for-bit";
}

#if defined(LFPR_FAILPOINTS)

// ---------------------------------------------------------------------
// Fail-point injection: transient retries, ENOSPC degradation, and the
// crash matrix (kill at every I/O site a clean run executes, restart,
// verify nothing acknowledged was lost).

TEST_F(DurabilityTest, TransientErrnoAndShortWritesAreRetried) {
  auto& fp = FailPoints::instance();
  IngestJournal j(path("journal"), kVertices, journalOptions());
  fp.armErrno("journal.append.write", EINTR, 2);
  EXPECT_EQ(j.append(sampleBatch(51)), 1u);
  fp.armErrno("journal.append.write", kFailPointShortWrite, 1);
  EXPECT_EQ(j.append(sampleBatch(52)), 2u);
  fp.armErrno("journal.append.fsync", EINTR, 1);
  EXPECT_EQ(j.append(sampleBatch(53)), 3u);
  fp.disarmAll();
  // All three records are intact despite the injected turbulence.
  IngestJournal reopened(path("journal"), kVertices, journalOptions());
  EXPECT_EQ(reopened.recovered().size(), 3u);
  EXPECT_EQ(reopened.quarantinedBytes(), 0u);
}

TEST_F(DurabilityTest, EnospcDegradesToServeStale) {
  const auto initial = makeTestGraph(54);
  const auto batches = makeBatches(initial, 3, 55);
  std::vector<std::string> warnings;
  auto opt = durableOptions(/*checkpointEverySolves=*/0);
  opt.durability.onWarning = [&](const std::string& w) {
    warnings.push_back(w);
  };
  RankService service(initial, opt);
  ASSERT_TRUE(service.submit(batches[0]));
  service.waitIdle();
  const std::uint64_t epochBefore = service.publishedEpoch();
  const std::vector<double> ranksBefore = service.ranks();

  FailPoints::instance().armErrno("journal.append.write", ENOSPC, 1);
  // The un-journalable batch is refused, not silently accepted.
  EXPECT_FALSE(service.submit(batches[1]));
  EXPECT_TRUE(service.degraded());
  EXPECT_TRUE(service.staleness().degraded);
  EXPECT_GE(service.stats().ioFailures, 1u);
  EXPECT_FALSE(warnings.empty());
  FailPoints::instance().disarmAll();

  // Serve-stale: the degradation latch holds even after the disk
  // "heals", readers keep the last good epoch, and queries still answer.
  EXPECT_FALSE(service.submit(batches[2]));
  EXPECT_FALSE(service.trySubmit(batches[2]));
  EXPECT_EQ(service.publishedEpoch(), epochBefore);
  EXPECT_EQ(service.ranks(), ranksBefore);
  service.stop();
}

/// One kill-restart-verify act. Phase A: fresh service consumes the
/// first half of `batches`. Phase B: restart (recovery!) consumes the
/// second half. An armed kill may abort anywhere in either phase —
/// that's the simulated process death. Returns how many batches were
/// acknowledged before death; those are the durability guarantee set.
struct CrashOutcome {
  std::size_t acked = 0;
  bool died = false;
};

CrashOutcome runCrashScenario(const std::string& dir, const CsrGraph& initial,
                              const std::vector<BatchUpdate>& batches,
                              const ServiceOptions& opt) {
  CrashOutcome out;
  const std::size_t half = batches.size() / 2;
  try {
    RankService s(initial, opt);
    s.waitForEpoch(1);
    for (std::size_t i = 0; i < half; ++i) {
      if (!s.submit(batches[i])) break;  // degraded by an ingest-side kill
      ++out.acked;
      s.waitIdle();  // serialize steps so checkpoints interleave submits
    }
    s.drainAndStop();
  } catch (const FailPointAbort&) {
    out.died = true;
    return out;
  }
  if (FailPoints::instance().killed()) {
    out.died = true;
    return out;
  }
  try {
    RankService s(initial, opt);
    for (std::size_t i = half; i < batches.size(); ++i) {
      if (!s.submit(batches[i])) break;
      ++out.acked;
      s.waitIdle();
    }
    s.drainAndStop();
  } catch (const FailPointAbort&) {
    out.died = true;
  }
  if (FailPoints::instance().killed()) out.died = true;
  return out;
}

/// Disarmed recovery + verification half of every crash case: restart
/// over `dir`, let replay finish, resubmit everything past the durably
/// applied prefix, and check the final ranks against the offline twin
/// within the published certificate.
void verifyCrashRecovery(const std::string& dir, const CsrGraph& initial,
                         const std::vector<BatchUpdate>& batches,
                         ServiceOptions opt, std::size_t ackedBeforeDeath,
                         const std::string& label) {
  FailPoints::instance().disarmAll();
  opt.durability.directory = dir;
  RankService s(initial, opt);
  s.waitIdle();  // recovery replay (and its forced checkpoint) done
  const std::uint64_t applied = s.stats().batchesApplied;

  // THE durability guarantee: every acknowledged batch survived the
  // kill. (applied may exceed acked by journaled-but-unacked batches —
  // at-least-once, never lossy.)
  EXPECT_GE(applied, ackedBeforeDeath) << label;
  ASSERT_LE(applied, batches.size()) << label;

  // Journal order is submission order, so the durable prefix is exactly
  // batches[0..applied): resubmit the rest and the ranks must land on
  // the same fixpoint a crash-free run reaches.
  for (std::size_t i = applied; i < batches.size(); ++i)
    ASSERT_TRUE(s.submit(batches[i])) << label;
  s.drainAndStop();
  EXPECT_EQ(s.staleness().pendingBatches, 0u) << label;
  const SnapshotView v = s.snapshot();
  ASSERT_TRUE(v) << label;
  EXPECT_TRUE(v->converged) << label;
  EXPECT_LT(
      linfNorm(v->ranks, offlineReference(initial, batches, batches.size())),
      v->toleranceBound)
      << label;
}

/// Every fail point the durability stack registers, by name. The crash
/// matrix asserts everything a clean run traverses is in this reviewed
/// set, so adding an I/O site without a fail point review (or with a
/// typo'd name) fails the per-push failpoints job, not a nightly.
const std::set<std::string>& knownFailPoints() {
  static const std::set<std::string> known = {
      "csr.open",           "csr.write",
      "csr.fsync",          "csr.rename",
      "csr.backpatch",      "journal.reset.truncate",
      "elog.open",          "elog.write",
      "elog.fsync",         "elog.rename",
      "journal.open",       "journal.append.write",
      "journal.append.fsync", "journal.compact.write",
      "journal.compact.rename", "journal.quarantine.write",
      "ckpt.meta.open",     "ckpt.meta.write",
      "ckpt.meta.fsync",    "ckpt.meta.rename",
      "ckpt.walks.open",    "ckpt.walks.write",
      "ckpt.walks.fsync",   "ckpt.walks.rename",
      "ckpt.prune",         "mmap.open",
      "mmap.map",
  };
  return known;
}

void expectEnumeratedPointsRegistered(const std::vector<std::string>& points) {
  for (const auto& p : points)
    EXPECT_NE(knownFailPoints().count(p), 0u)
        << "fail point '" << p
        << "' is not in the reviewed registry: add it to knownFailPoints() "
           "and extend the crash matrix to cover its ordering";
}

/// The from-scratch MonteCarlo schedule a durable service must be
/// indistinguishable from after ANY kill + restart: build the walk
/// store on the initial graph, then repair once per batch in submission
/// order. Returns the store fingerprint and final ranks — both exact,
/// bit-level oracles (all MC randomness is counter-based and seeded).
struct McOracle {
  std::uint64_t fingerprint = 0;
  std::vector<double> ranks;
};

McOracle mcOracle(const CsrGraph& initial,
                  const std::vector<BatchUpdate>& batches,
                  const PageRankOptions& sopt) {
  auto g = DynamicDigraph::fromCsr(initial);
  g.ensureSelfLoops();
  detail::LfEngineState state(initial.numVertices());
  auto prev = g.toCsr();
  EXPECT_TRUE(
      detail::lfMonteCarloStep(state, prev, prev, {}, sopt, nullptr, "oracle")
          .converged);
  for (const auto& b : batches) {
    g.applyBatch(b);
    const auto curr = g.toCsr();
    EXPECT_TRUE(
        detail::lfMonteCarloStep(state, prev, curr, b, sopt, nullptr, "oracle")
            .converged);
    prev = curr;
  }
  McOracle out;
  out.fingerprint = state.monteCarlo->fingerprint();
  out.ranks = state.ranks.toVector();
  return out;
}

/// MonteCarlo flavour of verifyCrashRecovery: same at-least-once
/// durability checks, but the final assertion is the stronger PR 10
/// contract — the recovered-and-caught-up walk store is BIT-IDENTICAL
/// to the never-crashed schedule, whether the restart resumed from a
/// sidecar or rebuilt from the journal.
void verifyMcCrashRecovery(const std::string& dir, const CsrGraph& initial,
                           const std::vector<BatchUpdate>& batches,
                           ServiceOptions opt, std::size_t ackedBeforeDeath,
                           const McOracle& oracle, const std::string& label) {
  FailPoints::instance().disarmAll();
  opt.durability.directory = dir;
  RankService s(initial, opt);
  s.waitIdle();
  const std::uint64_t applied = s.stats().batchesApplied;
  EXPECT_GE(applied, ackedBeforeDeath) << label;
  ASSERT_LE(applied, batches.size()) << label;
  for (std::size_t i = applied; i < batches.size(); ++i) {
    ASSERT_TRUE(s.submit(batches[i])) << label;
    s.waitIdle();  // keep the one-repair-per-epoch schedule
  }
  s.drainAndStop();
  EXPECT_EQ(s.staleness().pendingBatches, 0u) << label;
  const SnapshotView v = s.snapshot();
  ASSERT_TRUE(v) << label;
  EXPECT_TRUE(v->converged) << label;
  ASSERT_TRUE(v->monteCarlo) << label;
  EXPECT_EQ(v->mcFingerprint, oracle.fingerprint)
      << label
      << ": recovered walk store is not bit-identical to the from-scratch "
         "schedule";
  EXPECT_EQ(v->ranks, oracle.ranks) << label;
}

TEST_F(DurabilityTest, CrashMatrixEveryFailPointRecovers) {
  const auto initial = makeTestGraph(56);
  const auto batches = makeBatches(initial, 6, 57);
  auto& fp = FailPoints::instance();

  // Clean enumeration run (also a correctness check in its own right):
  // both phases execute with nothing armed, recording every fail point
  // the durability paths traverse — including the restart-recovery ones.
  fp.disarmAll();
  const fs::path cleanDir = dir_ / "clean";
  ServiceOptions opt = durableOptions(/*checkpointEverySolves=*/1);
  opt.durability.directory = cleanDir.string();
  const CrashOutcome clean =
      runCrashScenario(cleanDir.string(), initial, batches, opt);
  ASSERT_FALSE(clean.died);
  ASSERT_EQ(clean.acked, batches.size());
  // Collect the enumeration BEFORE the verify pass (whose disarmAll
  // clears the seen-set as a side effect).
  const std::vector<std::string> points = fp.pointsSeen();
  verifyCrashRecovery(cleanDir.string(), initial, batches, opt, clean.acked,
                      "clean");
  ASSERT_GE(points.size(), 10u)
      << "the durability paths should traverse write/fsync/rename/mmap "
         "sites; the instrumentation went missing";
  expectEnumeratedPointsRegistered(points);

  // The matrix: one kill-restart-verify act per point.
  for (const std::string& point : points) {
    const std::string label = "fail point '" + point + "'";
    std::string safe = point;
    for (char& c : safe)
      if (c == '.' || c == '/') c = '_';
    const fs::path caseDir = dir_ / ("matrix-" + safe);
    ServiceOptions copt = durableOptions(/*checkpointEverySolves=*/1);
    copt.durability.directory = caseDir.string();

    fp.disarmAll();
    fp.armKill(point);
    const CrashOutcome outcome =
        runCrashScenario(caseDir.string(), initial, batches, copt);
    EXPECT_TRUE(outcome.died) << label << " never fired";
    verifyCrashRecovery(caseDir.string(), initial, batches, copt,
                        outcome.acked, label);
  }
}

// The PR 10 matrix: the same kill-everywhere discipline, but under the
// MonteCarlo engine with checkpointing on — so every act exercises the
// walk-sidecar ordering points (ckpt.walks.open/write/fsync/rename and
// ckpt.prune of superseded triples) alongside the pair's, and every
// recovery must produce a walk store BIT-IDENTICAL to the from-scratch
// schedule. This holds because the triple is written csr -> walks ->
// meta: a kill anywhere in the sidecar leaves no meta, so recovery
// lands on an older complete triple (resume) or no checkpoint at all
// (full replay) — both the same deterministic repair schedule.
TEST_F(DurabilityTest, McCrashMatrixRecoversBitIdenticalWalkStore) {
  const auto initial = makeTestGraph(80);
  const auto batches = makeBatches(initial, 6, 81);
  auto& fp = FailPoints::instance();

  ServiceOptions opt =
      mcServiceOptions(durableOptions(/*checkpointEverySolves=*/1));
  const McOracle oracle = mcOracle(initial, batches, opt.solver);

  fp.disarmAll();
  const fs::path cleanDir = dir_ / "clean";
  ServiceOptions clopt = opt;
  clopt.durability.directory = cleanDir.string();
  const CrashOutcome clean =
      runCrashScenario(cleanDir.string(), initial, batches, clopt);
  ASSERT_FALSE(clean.died);
  ASSERT_EQ(clean.acked, batches.size());
  const std::vector<std::string> points = fp.pointsSeen();
  verifyMcCrashRecovery(cleanDir.string(), initial, batches, clopt,
                        clean.acked, oracle, "clean");
  expectEnumeratedPointsRegistered(points);
  for (const char* required :
       {"ckpt.walks.open", "ckpt.walks.write", "ckpt.walks.fsync",
        "ckpt.walks.rename", "ckpt.prune"}) {
    EXPECT_NE(std::count(points.begin(), points.end(), required), 0)
        << "'" << required
        << "' never fired in a checkpointing MonteCarlo run — the sidecar "
           "write path lost its instrumentation";
  }

  for (const std::string& point : points) {
    const std::string label = "mc fail point '" + point + "'";
    std::string safe = point;
    for (char& c : safe)
      if (c == '.' || c == '/') c = '_';
    const fs::path caseDir = dir_ / ("matrix-" + safe);
    ServiceOptions copt = opt;
    copt.durability.directory = caseDir.string();

    fp.disarmAll();
    fp.armKill(point);
    const CrashOutcome outcome =
        runCrashScenario(caseDir.string(), initial, batches, copt);
    EXPECT_TRUE(outcome.died) << label << " never fired";
    verifyMcCrashRecovery(caseDir.string(), initial, batches, copt,
                          outcome.acked, oracle, label);
  }
}

// Randomized lane (nightly runs this 100x with different seeds): pick a
// pseudo-random fail point and hit count from LFPR_CRASH_SEED and run
// one kill-restart-verify act. Deterministic per seed. Seeds alternate
// engines — odd seeds run MonteCarlo (sidecar resume paths, verified
// against the bit-identity oracle), even seeds the exact Pull engine —
// so a 100-seed night splits its kills evenly across both recovery
// shapes.
TEST_F(DurabilityTest, RandomizedCrashSeedRecovers) {
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("LFPR_CRASH_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  const bool monteCarlo = (seed % 2) == 1;
  const auto initial = makeTestGraph(58 + seed);
  const auto batches = makeBatches(initial, 6, 59 + seed);
  auto& fp = FailPoints::instance();

  ServiceOptions base = durableOptions(/*checkpointEverySolves=*/1);
  if (monteCarlo) base = mcServiceOptions(base);
  const McOracle oracle =
      monteCarlo ? mcOracle(initial, batches, base.solver) : McOracle{};

  // Enumerate from a clean run with this seed's workload.
  fp.disarmAll();
  const fs::path cleanDir = dir_ / "clean";
  ServiceOptions opt = base;
  opt.durability.directory = cleanDir.string();
  const CrashOutcome clean =
      runCrashScenario(cleanDir.string(), initial, batches, opt);
  ASSERT_FALSE(clean.died);
  const std::vector<std::string> points = fp.pointsSeen();
  fp.disarmAll();
  ASSERT_FALSE(points.empty());

  Rng rng(seed);
  const std::string point = points[rng() % points.size()];
  const std::uint64_t hit = 1 + rng() % 3;
  const std::string label =
      "seed " + std::to_string(seed) + " (" +
      (monteCarlo ? "MonteCarlo" : "Pull") + "): kill '" + point + "' hit " +
      std::to_string(hit);

  const fs::path caseDir = dir_ / "case";
  ServiceOptions copt = base;
  copt.durability.directory = caseDir.string();
  fp.armKill(point, hit);
  const CrashOutcome outcome =
      runCrashScenario(caseDir.string(), initial, batches, copt);
  // A late hit index may never be reached; that is a (boring) clean run.
  if (monteCarlo)
    verifyMcCrashRecovery(caseDir.string(), initial, batches, copt,
                          outcome.acked, oracle, label);
  else
    verifyCrashRecovery(caseDir.string(), initial, batches, copt,
                        outcome.acked, label);
}

#endif  // LFPR_FAILPOINTS

}  // namespace
}  // namespace lfpr
