// Tests for the experiment harness: dataset registry properties (the
// stand-ins must actually look like their families), scenario assembly.
#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "harness/datasets.hpp"
#include "harness/scenario.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {
namespace {

TEST(Datasets, TwelveStaticStandIns) {
  const auto specs = staticDatasets(0);
  EXPECT_EQ(specs.size(), 12u);
  int web = 0, social = 0, road = 0, kmer = 0;
  for (const auto& s : specs) {
    if (s.family == "web") ++web;
    if (s.family == "social") ++social;
    if (s.family == "road") ++road;
    if (s.family == "kmer") ++kmer;
    EXPECT_FALSE(s.paperName.empty());
    EXPECT_GT(s.paperVertices, 0.0);
  }
  EXPECT_EQ(web, 6);
  EXPECT_EQ(social, 2);
  EXPECT_EQ(road, 2);
  EXPECT_EQ(kmer, 2);
}

TEST(Datasets, BuildsAreSelfLoopedAndDeadEndFree) {
  for (const auto& spec : representativeDatasets(0)) {
    const auto g = spec.build(1).toCsr();
    const auto s = computeStats(g);
    EXPECT_EQ(s.numDeadEnds, 0u) << spec.name;
    EXPECT_EQ(s.numSelfLoops, s.numVertices) << spec.name;
    EXPECT_GT(s.numVertices, 100u) << spec.name;
  }
}

TEST(Datasets, FamiliesMatchDegreeRegimes) {
  for (const auto& spec : staticDatasets(0)) {
    const auto s = computeStats(spec.build(2).toCsr());
    // avgOutDegree includes the +1 self-loop per vertex.
    if (spec.family == "road" || spec.family == "kmer") {
      EXPECT_LT(s.avgOutDegree, 7.0) << spec.name;
    } else {
      EXPECT_GT(s.avgOutDegree, 7.0) << spec.name;
    }
  }
}

TEST(Datasets, BuildsAreDeterministicPerSeed) {
  const auto spec = representativeDatasets(0).front();
  EXPECT_EQ(spec.build(7).toCsr(), spec.build(7).toCsr());
}

TEST(Datasets, RepresentativeCoversEachFamilyOnce) {
  const auto reps = representativeDatasets(0);
  ASSERT_EQ(reps.size(), 4u);
  std::set<std::string> families;
  for (const auto& r : reps) families.insert(r.family);
  EXPECT_EQ(families.size(), 4u);
}

TEST(Datasets, ScaleGrowsSizes) {
  const auto small = staticDatasets(0);
  const auto large = staticDatasets(1);
  // Compare one non-RMAT dataset (linear scaling) across scales.
  const auto& s0 = small.back();
  const auto& s1 = large.back();
  EXPECT_LT(s0.build(1).numVertices(), s1.build(1).numVertices());
}

TEST(Datasets, TemporalSpecs) {
  const auto specs = temporalDatasets(0);
  ASSERT_EQ(specs.size(), 2u);
  for (const auto& spec : specs) {
    const auto data = spec.build(3);
    EXPECT_GT(data.edges.size(), 1000u) << spec.name;
    EXPECT_GT(data.numVertices, 100u) << spec.name;
  }
}

TEST(Scenario, PrevPlusBatchEqualsCurr) {
  PageRankOptions opt;
  opt.numThreads = 2;
  const auto spec = representativeDatasets(0).front();
  auto base = spec.build(4);
  const auto scenario = makeScenario(std::move(base), 1e-3, 5, opt);

  auto check = DynamicDigraph::fromCsr(scenario.prev);
  check.applyBatch(scenario.batch);
  EXPECT_EQ(check.toCsr(), scenario.curr);
}

TEST(Scenario, PrevRanksAreConvergedOnPrev) {
  PageRankOptions opt;
  opt.numThreads = 2;
  const auto spec = representativeDatasets(0)[2];  // road: cheap
  const auto scenario = makeScenario(spec.build(6), 1e-3, 7, opt);
  EXPECT_LT(linfNorm(scenario.prevRanks, referenceRanks(scenario.prev)), 1e-8);
}

TEST(Scenario, RunOnScenarioUsesTheBatch) {
  PageRankOptions opt;
  opt.numThreads = 2;
  const auto spec = representativeDatasets(0)[2];
  const auto scenario = makeScenario(spec.build(8), 1e-3, 9, opt);
  const auto r = runOnScenario(Approach::DFLF, scenario, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.affectedVertices, 0u);
}

}  // namespace
}  // namespace lfpr
