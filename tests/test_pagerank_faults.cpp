// Fault-tolerance tests (Sections 5.3 / 5.4): the lock-free engines must
// converge under injected random delays and crash-stop failures, while
// the barrier-based engines deadlock (detected via barrier timeout) when
// a thread crashes.
#include <gtest/gtest.h>

#include "generate/generators.hpp"
#include "harness/scenario.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions faultOptions() {
  PageRankOptions opt;
  opt.numThreads = 8;
  opt.chunkSize = 64;
  opt.barrierTimeout = std::chrono::milliseconds(1500);
  return opt;
}

DynamicScenario makeFaultScenario(std::uint64_t seed) {
  Rng rng(seed);
  auto es = generateRmat(10, 8000, rng);
  appendSelfLoops(es, 1024);
  auto base = DynamicDigraph::fromEdges(1024, es);
  return makeScenario(std::move(base), 1e-2, seed + 1, faultOptions());
}

TEST(Faults, DFLFConvergesUnderRandomDelays) {
  const auto scenario = makeFaultScenario(1);
  const auto ref = referenceRanks(scenario.curr);
  FaultConfig cfg;
  cfg.delayProbability = 2e-4;
  cfg.delayDuration = std::chrono::microseconds(2000);
  FaultInjector fault(8, cfg);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.dnf);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
  EXPECT_GT(fault.delaysInjected(), 0u);
}

TEST(Faults, NDLFConvergesUnderRandomDelays) {
  const auto scenario = makeFaultScenario(2);
  FaultConfig cfg;
  cfg.delayProbability = 1e-4;
  cfg.delayDuration = std::chrono::microseconds(1000);
  FaultInjector fault(8, cfg);
  const auto r = ndLF(scenario.curr, scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(scenario.curr)), 1e-6);
}

// Worklist scheduling under faults: the publish diet is disabled (any
// survivor may publish any vertex), crashed owners' rings are drained by
// stealing, and the remaining dirt is completed by full-protocol
// recovery sweeps — see lfWorklistWorker in lf_iterate.cpp.

TEST(Faults, WorklistDFLFConvergesUnderRandomDelays) {
  const auto scenario = makeFaultScenario(21);
  const auto ref = referenceRanks(scenario.curr);
  FaultConfig cfg;
  cfg.delayProbability = 2e-4;
  cfg.delayDuration = std::chrono::microseconds(2000);
  FaultInjector fault(8, cfg);
  auto opt = faultOptions();
  opt.scheduling = SchedulingMode::Worklist;
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, opt, &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
}

TEST(Faults, WorklistDFLFSurvivesCrashedThreads) {
  const auto scenario = makeFaultScenario(22);
  const auto ref = referenceRanks(scenario.curr);
  auto opt = faultOptions();
  opt.scheduling = SchedulingMode::Worklist;
  FaultInjector fault(8, makeCrashConfig(8, 4, 50, 3000, 23));
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, opt, &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.dnf);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
}

TEST(Faults, WorklistStaticLFSurvivesCrashes) {
  const auto scenario = makeFaultScenario(24);
  auto opt = faultOptions();
  opt.scheduling = SchedulingMode::Worklist;
  FaultInjector fault(8, makeCrashConfig(8, 4, 50, 3000, 25));
  const auto r = staticLF(scenario.curr, opt, &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(scenario.curr)), 1e-6);
}

class CrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweep, DFLFSurvivesCrashedThreads) {
  const int numCrashing = GetParam();
  const auto scenario = makeFaultScenario(3);
  const auto ref = referenceRanks(scenario.curr);
  // Deterministic low thresholds on threads 0..k-1: they crash as soon as
  // they have done a handful of updates. (On an oversubscribed host a
  // scheduled thread may be starved and never reach its threshold — then
  // it is simply idle, which is indistinguishable from crashed as far as
  // the survivors are concerned, so we do not assert the exact count.)
  FaultConfig cfg;
  cfg.crashAfterUpdates.assign(8, FaultConfig::noCrash);
  for (int t = 0; t < numCrashing; ++t)
    cfg.crashAfterUpdates[static_cast<std::size_t>(t)] =
        static_cast<std::uint64_t>(5 + 3 * t);
  FaultInjector fault(8, cfg);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged) << numCrashing << " crashed threads";
  EXPECT_FALSE(r.dnf);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
  EXPECT_LE(fault.numCrashed(), numCrashing);
}

INSTANTIATE_TEST_SUITE_P(CrashCounts, CrashSweep, ::testing::Values(1, 2, 4, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "crash" + std::to_string(info.param);
                         });

TEST(Faults, CrashDefinitelyTriggersWithTwoHotThreads) {
  // Pins down that the injector works end to end: thread 1 must reach its
  // crash threshold. On a single-core host one thread can drain the whole
  // solve inside its first timeslice before the other ever runs, so "two
  // hot threads" cannot be assumed from the hardware — inject frequent
  // micro-delays instead; every sleep yields the CPU to the other thread,
  // which then takes chunks until its own delay fires, guaranteeing both
  // threads interleave well past 25 updates each.
  const auto scenario = makeFaultScenario(30);
  const auto ref = referenceRanks(scenario.curr);
  auto opt = faultOptions();
  opt.numThreads = 2;
  FaultConfig cfg;
  cfg.crashAfterUpdates = {FaultConfig::noCrash, 25};
  cfg.delayProbability = 0.05;
  cfg.delayDuration = std::chrono::microseconds(100);
  FaultInjector fault(2, cfg);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, opt, &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(fault.numCrashed(), 1);
  EXPECT_TRUE(fault.crashed(1));
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
}

TEST(Faults, StaticLFSurvivesCrashes) {
  const auto scenario = makeFaultScenario(4);
  FaultInjector fault(8, makeCrashConfig(8, 4, 50, 3000, 5));
  const auto r = staticLF(scenario.curr, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(scenario.curr)), 1e-6);
}

TEST(Faults, DTLFSurvivesCrashes) {
  const auto scenario = makeFaultScenario(5);
  FaultInjector fault(8, makeCrashConfig(8, 3, 50, 3000, 6));
  const auto r = dtLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(scenario.curr)), 1e-6);
}

TEST(Faults, AllThreadsCrashedMeansNoConvergence) {
  const auto scenario = makeFaultScenario(6);
  FaultConfig cfg;
  cfg.crashAfterUpdates.assign(8, 1);  // everyone crashes immediately
  FaultInjector fault(8, cfg);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, faultOptions(), &fault);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(fault.numCrashed(), 8);
}

TEST(Faults, DFBBDeadlocksOnCrashReportedAsDNF) {
  // Section 5.4: "DFBB fails to complete the computation even if a single
  // thread crashes." The instrumented barrier turns the deadlock into a
  // DNF report.
  const auto scenario = makeFaultScenario(7);
  auto opt = faultOptions();
  opt.barrierTimeout = std::chrono::milliseconds(300);
  // Half the team crashes within its first couple of updates; at least one
  // of them is guaranteed to pick up work, and one crashed thread suffices
  // to break the barrier.
  FaultConfig cfg;
  cfg.crashAfterUpdates = {2, 2, 2, 2, FaultConfig::noCrash, FaultConfig::noCrash,
                           FaultConfig::noCrash, FaultConfig::noCrash};
  FaultInjector fault(8, cfg);
  const auto r = dfBB(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, opt, &fault);
  EXPECT_TRUE(r.dnf);
  EXPECT_FALSE(r.converged);
}

TEST(Faults, StaticBBDeadlocksOnCrashReportedAsDNF) {
  const auto scenario = makeFaultScenario(8);
  auto opt = faultOptions();
  opt.barrierTimeout = std::chrono::milliseconds(300);
  FaultConfig cfg;
  cfg.crashAfterUpdates = {2, 2, 2, 2, FaultConfig::noCrash, FaultConfig::noCrash,
                           FaultConfig::noCrash, FaultConfig::noCrash};
  FaultInjector fault(8, cfg);
  const auto r = staticBB(scenario.curr, opt, &fault);
  EXPECT_TRUE(r.dnf);
  EXPECT_FALSE(r.converged);
}

TEST(Faults, BBWithDelaysStillConverges) {
  // Delays (unlike crashes) only slow the barrier down; BB must still
  // finish, as in Figure 8's DFBB series.
  const auto scenario = makeFaultScenario(9);
  FaultConfig cfg;
  cfg.delayProbability = 1e-4;
  cfg.delayDuration = std::chrono::microseconds(500);
  FaultInjector fault(8, cfg);
  const auto r = dfBB(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.dnf);
}

TEST(Faults, StaticSchedulingIsNotCrashTolerant) {
  // The Eedi et al. style fixed partition (Section 3.3.2): a crashed
  // thread's stripe is never reprocessed, so the run cannot converge.
  // This is exactly the gap the dynamic-scheduling StaticLF closes.
  const auto scenario = makeFaultScenario(10);
  auto opt = faultOptions();
  opt.staticSchedule = true;
  opt.maxIterations = 40;  // cap the futile rounds to keep the test fast
  FaultConfig cfg;
  cfg.crashAfterUpdates.assign(8, FaultConfig::noCrash);
  cfg.crashAfterUpdates[3] = 10;  // one stripe dies early
  FaultInjector fault(8, cfg);
  const auto r = staticLF(scenario.curr, opt, &fault);
  EXPECT_FALSE(r.converged);
}

TEST(Faults, DelaysDoNotChangeDFLFResultBeyondTolerance) {
  const auto scenario = makeFaultScenario(11);
  const auto clean = dfLF(scenario.prev, scenario.curr, scenario.batch,
                          scenario.prevRanks, faultOptions());
  FaultConfig cfg;
  cfg.delayProbability = 1e-4;
  cfg.delayDuration = std::chrono::microseconds(1000);
  FaultInjector fault(8, cfg);
  const auto faulty = dfLF(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, faultOptions(), &fault);
  ASSERT_TRUE(clean.converged);
  ASSERT_TRUE(faulty.converged);
  EXPECT_LT(linfNorm(clean.ranks, faulty.ranks), 1e-6);
}

// Delta-push under faults (PR 8): the publish diet and the no-takeover
// rule are healthy-mode only — with an injector present every rank apply
// is a fetch-add, crashed owners' rings are drained by stealing and the
// remaining flagged residuals are completed by recovery sweeps. A crash
// during phase A (marking or residual seeding) is covered by the helping
// rescans plus the sequential seed repair after the join.

TEST(Faults, DeltaPushConvergesUnderRandomDelays) {
  const auto scenario = makeFaultScenario(41);
  const auto ref = referenceRanks(scenario.curr);
  FaultConfig cfg;
  cfg.delayProbability = 2e-4;
  cfg.delayDuration = std::chrono::microseconds(2000);
  FaultInjector fault(8, cfg);
  const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.dnf);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
  EXPECT_GT(fault.delaysInjected(), 0u);
}

TEST(Faults, DeltaPushSurvivesCrashedThreads) {
  const auto scenario = makeFaultScenario(42);
  const auto ref = referenceRanks(scenario.curr);
  FaultInjector fault(8, makeCrashConfig(8, 4, 50, 3000, 43));
  const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.dnf);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
}

TEST(Faults, DeltaPushCrashDuringSeedPhaseIsTolerated) {
  // Crash within the first couple of processed vertices: for delta-push
  // those are marking / residual-seeding updates, so this exercises the
  // seedDone helping rescan and the post-join sequential repair.
  const auto scenario = makeFaultScenario(44);
  FaultConfig cfg;
  cfg.crashAfterUpdates.assign(8, FaultConfig::noCrash);
  cfg.crashAfterUpdates[0] = 1;
  cfg.crashAfterUpdates[1] = 2;
  cfg.crashAfterUpdates[2] = 3;
  FaultInjector fault(8, cfg);
  const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(scenario.curr)), 1e-6);
}

TEST(Faults, DeltaPushAllThreadsCrashedMeansNoConvergence) {
  // With every worker dead the sequential seed repair still completes
  // phase A, but no drains run — the seeded flags stay set and the run
  // must exit honestly unconverged (flags authority, never residuals).
  const auto scenario = makeFaultScenario(45);
  FaultConfig cfg;
  cfg.crashAfterUpdates.assign(8, 1);
  FaultInjector fault(8, cfg);
  const auto r = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                           scenario.prevRanks, faultOptions(), &fault);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(fault.numCrashed(), 8);
}

TEST(Faults, DeltaPushDelaysDoNotChangeResultBeyondTolerance) {
  const auto scenario = makeFaultScenario(46);
  const auto clean = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                               scenario.prevRanks, faultOptions());
  FaultConfig cfg;
  cfg.delayProbability = 1e-4;
  cfg.delayDuration = std::chrono::microseconds(1000);
  FaultInjector fault(8, cfg);
  const auto faulty = deltaPush(scenario.prev, scenario.curr, scenario.batch,
                                scenario.prevRanks, faultOptions(), &fault);
  ASSERT_TRUE(clean.converged);
  ASSERT_TRUE(faulty.converged);
  EXPECT_LT(linfNorm(clean.ranks, faulty.ranks), 1e-6);
}

TEST(Faults, CrashDuringMarkingPhaseIsTolerated) {
  // Crash almost immediately: for dynamic engines the first few
  // onVertexProcessed calls happen in the marking phase, so the helping
  // rescan must cover the crashed thread's batch share.
  const auto scenario = makeFaultScenario(12);
  FaultConfig cfg;
  cfg.crashAfterUpdates.assign(8, FaultConfig::noCrash);
  cfg.crashAfterUpdates[0] = 1;
  cfg.crashAfterUpdates[1] = 2;
  FaultInjector fault(8, cfg);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, faultOptions(), &fault);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, referenceRanks(scenario.curr)), 1e-6);
}

}  // namespace
}  // namespace lfpr
