// Tests for the dynamic engines (ND / DT / DF, BB and LF): accuracy
// against reference ranks on the updated graph, marking semantics,
// stability under delete-then-reinsert, input validation.
#include <gtest/gtest.h>

#include <set>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "harness/scenario.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions testOptions() {
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 64;
  return opt;
}

DynamicDigraph rmatBase(int scale, EdgeId edges, std::uint64_t seed) {
  Rng rng(seed);
  auto es = generateRmat(scale, edges, rng);
  appendSelfLoops(es, VertexId{1} << scale);
  return DynamicDigraph::fromEdges(VertexId{1} << scale, es);
}

constexpr Approach kDynamicApproaches[] = {Approach::NDBB, Approach::NDLF,
                                           Approach::DTBB, Approach::DTLF,
                                           Approach::DFBB, Approach::DFLF};

TEST(DynamicPageRank, AllApproachesMatchReferenceAfterMixedBatch) {
  const auto scenario = makeScenario(rmatBase(9, 4000, 1), 1e-2, 2, testOptions());
  const auto ref = referenceRanks(scenario.curr);
  for (Approach a : kDynamicApproaches) {
    const auto r = runOnScenario(a, scenario, testOptions());
    ASSERT_TRUE(r.converged) << approachName(a);
    EXPECT_LT(linfNorm(r.ranks, ref), 1e-6) << approachName(a);
  }
}

TEST(DynamicPageRank, InsertOnlyBatch) {
  auto base = rmatBase(8, 1500, 3);
  Rng rng(4);
  BatchUpdate batch;
  BatchGenOptions bg;
  bg.deletionShare = 0.0;
  batch = generateBatch(base, 20, rng, bg);
  EXPECT_TRUE(batch.deletions.empty());
  ASSERT_FALSE(batch.insertions.empty());
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, testOptions());
  const auto ref = referenceRanks(scenario.curr);
  for (Approach a : kDynamicApproaches)
    EXPECT_LT(linfNorm(runOnScenario(a, scenario, testOptions()).ranks, ref), 1e-6)
        << approachName(a);
}

TEST(DynamicPageRank, DeleteOnlyBatch) {
  auto base = rmatBase(8, 1500, 5);
  Rng rng(6);
  BatchGenOptions bg;
  bg.deletionShare = 1.0;
  const auto batch = generateBatch(base, 20, rng, bg);
  EXPECT_TRUE(batch.insertions.empty());
  ASSERT_FALSE(batch.deletions.empty());
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, testOptions());
  const auto ref = referenceRanks(scenario.curr);
  for (Approach a : kDynamicApproaches)
    EXPECT_LT(linfNorm(runOnScenario(a, scenario, testOptions()).ranks, ref), 1e-6)
        << approachName(a);
}

TEST(DynamicPageRank, EmptyBatchConvergesImmediately) {
  auto base = rmatBase(8, 1500, 7);
  const auto scenario = makeScenarioWithBatch(std::move(base), BatchUpdate{}, testOptions());
  for (Approach a : {Approach::DTBB, Approach::DTLF, Approach::DFBB, Approach::DFLF}) {
    const auto r = runOnScenario(a, scenario, testOptions());
    EXPECT_TRUE(r.converged) << approachName(a);
    EXPECT_EQ(r.affectedVertices, 0u) << approachName(a);
    EXPECT_LE(r.iterations, 1) << approachName(a);
    EXPECT_LT(linfNorm(r.ranks, scenario.prevRanks), 1e-12) << approachName(a);
  }
}

// With an effectively infinite frontier tolerance DF never expands, so the
// affected set is exactly the initial marking: out-neighbours (in prev and
// curr) of each batch source.
TEST(DynamicFrontier, InitialMarkingIsOutNeighboursOfSources) {
  // Chain 0->1->2->3->4 plus self-loops.
  std::vector<Edge> es;
  for (VertexId v = 0; v + 1 < 5; ++v) es.push_back({v, static_cast<VertexId>(v + 1)});
  appendSelfLoops(es, 5);
  auto base = DynamicDigraph::fromEdges(5, es);

  BatchUpdate batch;
  batch.insertions = {{1, 3}};  // source u = 1
  auto opt = testOptions();
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, opt);

  opt.frontierTolerance = 1e18;  // suppress expansion
  for (Approach a : {Approach::DFBB, Approach::DFLF}) {
    const auto r = runOnScenario(a, scenario, opt);
    // out(1) in prev = {1, 2}; in curr = {1, 2, 3}; union = {1, 2, 3}.
    EXPECT_EQ(r.affectedVertices, 3u) << approachName(a);
  }
}

TEST(DynamicFrontier, ExpansionGrowsAffectedSet) {
  const auto scenario = makeScenario(rmatBase(9, 4000, 8), 1e-2, 9, testOptions());
  auto suppressed = testOptions();
  suppressed.frontierTolerance = 1e18;
  auto normal = testOptions();  // tau_f = 1e-13
  const auto rs = dfLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, suppressed);
  const auto rn = dfLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, normal);
  EXPECT_GT(rn.affectedVertices, rs.affectedVertices);
}

// The Dynamic Traversal approach marks everything *reachable* from the
// updated region, which on a chain is the whole downstream suffix.
TEST(DynamicTraversal, MarksReachableSuffixOfChain) {
  std::vector<Edge> es;
  constexpr VertexId n = 10;
  for (VertexId v = 0; v + 1 < n; ++v) es.push_back({v, static_cast<VertexId>(v + 1)});
  appendSelfLoops(es, n);
  auto base = DynamicDigraph::fromEdges(n, es);

  BatchUpdate batch;
  batch.insertions = {{4, 6}};  // source u = 4
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, testOptions());
  for (Approach a : {Approach::DTBB, Approach::DTLF}) {
    const auto r = runOnScenario(a, scenario, testOptions());
    // Reachable from out(4) = {4,5} (prev) ∪ {4,5,6} (curr): vertices 4..9.
    EXPECT_EQ(r.affectedVertices, 6u) << approachName(a);
  }
}

TEST(DynamicFrontier, AffectedNoMoreThanTraversal) {
  const auto scenario = makeScenario(rmatBase(9, 4000, 10), 1e-3, 11, testOptions());
  const auto df = dfLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, testOptions());
  const auto dt = dtLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, testOptions());
  EXPECT_LE(df.affectedVertices, dt.affectedVertices);
}

TEST(DynamicFrontier, FewerRankUpdatesThanNaiveDynamicOnLocalUpdate) {
  // A tiny update on a road-like grid: rank perturbations decay
  // geometrically, so the frontier is a ball of radius roughly
  // ln(Delta0/tau_f) / ln(1/decay) ~ 50 hops. The grid must be much wider
  // than that radius for DF to pay off — the reason the paper's DF wins
  // are largest on huge-diameter road/k-mer graphs and smallest on
  // small-diameter social networks (Section 5.2.2).
  Rng rng(12);
  constexpr VertexId kSide = 200;
  auto es = symmetrize(generateGrid(kSide, kSide, 0.0, rng));
  appendSelfLoops(es, kSide * kSide);
  auto base = DynamicDigraph::fromEdges(kSide * kSide, es);
  Rng batchRng(13);
  const auto batch = generateBatch(base, 2, batchRng);
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, testOptions());
  const auto nd = ndLF(scenario.curr, scenario.prevRanks, testOptions());
  const auto df = dfLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, testOptions());
  ASSERT_TRUE(nd.converged);
  ASSERT_TRUE(df.converged);
  EXPECT_LT(df.rankUpdates, nd.rankUpdates / 2);
  EXPECT_LT(df.affectedVertices, scenario.curr.numVertices() / 2);
}

TEST(DynamicPageRank, StabilityDeleteThenReinsert) {
  // Section 5.2.3: delete a batch, update, re-insert it, update again; the
  // final ranks must match the original ones.
  auto base = rmatBase(9, 4000, 14);
  const auto opt = testOptions();
  const auto g0 = base.toCsr();
  const auto originalRanks = staticBB(g0, opt).ranks;

  Rng rng(15);
  BatchGenOptions bg;
  bg.deletionShare = 1.0;
  const auto delBatch = generateBatch(base, 40, rng, bg);

  base.applyBatch(delBatch);
  const auto g1 = base.toCsr();
  const auto afterDelete =
      dfLF(g0, g1, delBatch, originalRanks, opt);
  ASSERT_TRUE(afterDelete.converged);

  const auto insBatch = delBatch.inverted();
  base.applyBatch(insBatch);
  const auto g2 = base.toCsr();
  ASSERT_EQ(g2, g0);  // graph restored
  const auto afterReinsert = dfLF(g1, g2, insBatch, afterDelete.ranks, opt);
  ASSERT_TRUE(afterReinsert.converged);
  EXPECT_LT(linfNorm(afterReinsert.ranks, originalRanks), 1e-6);
}

// ----- Worklist scheduling (SchedulingMode::Worklist) ---------------------
//
// Every lock-free engine under both scheduling modes must land within the
// error.hpp stopping-rule bounds of the reference ranks; the dense mode
// is the existing behaviour, the worklist mode drives iteration from the
// per-thread dirty rings (sched/work_ring.hpp).

PageRankOptions worklistOptions() {
  auto opt = testOptions();
  opt.scheduling = SchedulingMode::Worklist;
  return opt;
}

TEST(WorklistScheduling, AllLockFreeEnginesMatchReferenceInBothModes) {
  const auto scenario = makeScenario(rmatBase(9, 4000, 30), 1e-2, 31, testOptions());
  const auto ref = referenceRanks(scenario.curr);
  const double bound =
      8.0 * asyncToleranceBound(testOptions().tolerance, testOptions().alpha);
  for (SchedulingMode mode : {SchedulingMode::Chunked, SchedulingMode::Worklist}) {
    auto opt = testOptions();
    opt.scheduling = mode;
    for (Approach a :
         {Approach::StaticLF, Approach::NDLF, Approach::DTLF, Approach::DFLF}) {
      const auto r = runOnScenario(a, scenario, opt);
      ASSERT_TRUE(r.converged)
          << approachName(a) << " mode " << static_cast<int>(mode);
      EXPECT_LT(linfNorm(r.ranks, ref), bound)
          << approachName(a) << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(WorklistScheduling, SparseBatchTouchesFrontierNotGraph) {
  // A 2-edge batch on a wide grid (the FewerRankUpdates setup): the
  // worklist run must do work proportional to the frontier — far fewer
  // rank updates than the full-sweep ND run, and no more than the dense
  // DF run whose affected set it shares — and agree with the reference.
  Rng rng(32);
  constexpr VertexId kSide = 200;
  auto es = symmetrize(generateGrid(kSide, kSide, 0.0, rng));
  appendSelfLoops(es, kSide * kSide);
  auto base = DynamicDigraph::fromEdges(kSide * kSide, es);
  Rng batchRng(33);
  const auto batch = generateBatch(base, 2, batchRng);
  const auto scenario = makeScenarioWithBatch(std::move(base), batch, testOptions());
  const auto ref = referenceRanks(scenario.curr);

  const auto nd = ndLF(scenario.curr, scenario.prevRanks, testOptions());
  const auto wl = dfLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, worklistOptions());
  ASSERT_TRUE(nd.converged);
  ASSERT_TRUE(wl.converged);
  const double bound =
      8.0 * asyncToleranceBound(testOptions().tolerance, testOptions().alpha);
  EXPECT_LT(linfNorm(wl.ranks, ref), bound);
  EXPECT_GT(wl.affectedVertices, 0u);
  EXPECT_LT(wl.affectedVertices, scenario.curr.numVertices() / 2);
  EXPECT_LT(wl.rankUpdates, nd.rankUpdates / 2);
}

TEST(WorklistScheduling, EmptyBatchConvergesImmediately) {
  auto base = rmatBase(8, 1500, 34);
  const auto scenario =
      makeScenarioWithBatch(std::move(base), BatchUpdate{}, worklistOptions());
  for (Approach a : {Approach::DTLF, Approach::DFLF}) {
    const auto r = runOnScenario(a, scenario, worklistOptions());
    EXPECT_TRUE(r.converged) << approachName(a);
    EXPECT_EQ(r.affectedVertices, 0u) << approachName(a);
    EXPECT_LT(linfNorm(r.ranks, scenario.prevRanks), 1e-12) << approachName(a);
  }
}

TEST(WorklistScheduling, SequenceOfBatchesStaysAccurate) {
  auto base = rmatBase(8, 1500, 35);
  const auto opt = worklistOptions();
  auto ranks = staticBB(base.toCsr(), testOptions()).ranks;
  Rng rng(36);
  for (int step = 0; step < 4; ++step) {
    const auto prev = base.toCsr();
    const auto batch = generateBatch(base, 15, rng);
    base.applyBatch(batch);
    const auto curr = base.toCsr();
    const auto r = dfLF(prev, curr, batch, ranks, opt);
    ASSERT_TRUE(r.converged) << "step " << step;
    ranks = r.ranks;
    EXPECT_LT(linfNorm(ranks, referenceRanks(curr)), 1e-8) << "step " << step;
  }
}

TEST(WorklistScheduling, ProtocolStatsCountRingPushesWhenEnabled) {
  const auto scenario = makeScenario(rmatBase(8, 1500, 37), 1e-2, 38, testOptions());
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, worklistOptions());
  ASSERT_TRUE(r.converged);
  if (protocolStatsEnabled()) {
    EXPECT_GT(r.protocolStats.rankPublishes, 0u);
    EXPECT_GT(r.protocolStats.flagRmws, 0u);
    EXPECT_GT(r.protocolStats.ringPushes, 0u);
  } else {
    EXPECT_EQ(r.protocolStats.rankPublishes, 0u);
    EXPECT_EQ(r.protocolStats.ringPushes, 0u);
  }
}

TEST(DynamicPageRank, PerChunkConvergenceAblation) {
  const auto scenario = makeScenario(rmatBase(9, 4000, 16), 1e-2, 17, testOptions());
  auto opt = testOptions();
  opt.perChunkConvergence = true;
  const auto ref = referenceRanks(scenario.curr);
  const auto r = dfLF(scenario.prev, scenario.curr, scenario.batch,
                      scenario.prevRanks, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(linfNorm(r.ranks, ref), 1e-6);
}

TEST(DynamicPageRank, SequenceOfBatchesStaysAccurate) {
  auto base = rmatBase(8, 1500, 18);
  const auto opt = testOptions();
  auto ranks = staticBB(base.toCsr(), opt).ranks;
  Rng rng(19);
  for (int step = 0; step < 4; ++step) {
    const auto prev = base.toCsr();
    const auto batch = generateBatch(base, 15, rng);
    base.applyBatch(batch);
    const auto curr = base.toCsr();
    const auto r = dfLF(prev, curr, batch, ranks, opt);
    ASSERT_TRUE(r.converged) << "step " << step;
    ranks = r.ranks;
    EXPECT_LT(linfNorm(ranks, referenceRanks(curr)), 1e-8) << "step " << step;
  }
}

// ----- Input validation ---------------------------------------------------

TEST(DynamicPageRank, RejectsWrongRankVectorSize) {
  const auto scenario = makeScenario(rmatBase(7, 600, 20), 1e-2, 21, testOptions());
  const std::vector<double> bad(3, 0.0);
  EXPECT_THROW(ndBB(scenario.curr, bad, testOptions()), std::invalid_argument);
  EXPECT_THROW(ndLF(scenario.curr, bad, testOptions()), std::invalid_argument);
  EXPECT_THROW(dfBB(scenario.prev, scenario.curr, scenario.batch, bad, testOptions()),
               std::invalid_argument);
  EXPECT_THROW(dfLF(scenario.prev, scenario.curr, scenario.batch, bad, testOptions()),
               std::invalid_argument);
  EXPECT_THROW(dtLF(scenario.prev, scenario.curr, scenario.batch, bad, testOptions()),
               std::invalid_argument);
}

TEST(DynamicPageRank, RejectsMismatchedSnapshots) {
  const auto a = CsrGraph::fromEdges(3, std::vector<Edge>{{0, 0}, {1, 1}, {2, 2}});
  const auto b = CsrGraph::fromEdges(2, std::vector<Edge>{{0, 0}, {1, 1}});
  const std::vector<double> ranks(3, 1.0 / 3);
  EXPECT_THROW(dfLF(b, a, BatchUpdate{}, ranks, testOptions()), std::invalid_argument);
}

TEST(DynamicPageRank, RejectsOutOfRangeBatchEdges) {
  const auto g = CsrGraph::fromEdges(3, std::vector<Edge>{{0, 0}, {1, 1}, {2, 2}});
  const std::vector<double> ranks(3, 1.0 / 3);
  BatchUpdate batch;
  batch.insertions = {{0, 9}};
  EXPECT_THROW(dfLF(g, g, batch, ranks, testOptions()), std::out_of_range);
  EXPECT_THROW(dfBB(g, g, batch, ranks, testOptions()), std::out_of_range);
}

TEST(DynamicPageRank, RunApproachDispatchesEverything) {
  const auto scenario = makeScenario(rmatBase(8, 1500, 22), 1e-2, 23, testOptions());
  const auto ref = referenceRanks(scenario.curr);
  for (Approach a : kAllApproaches) {
    const auto r = runApproach(a, scenario.prev, scenario.curr, scenario.batch,
                               scenario.prevRanks, testOptions());
    ASSERT_TRUE(r.converged) << approachName(a);
    EXPECT_LT(linfNorm(r.ranks, ref), 1e-6) << approachName(a);
  }
}

TEST(ApproachMeta, NamesAndClassification) {
  EXPECT_STREQ(approachName(Approach::DFLF), "DFLF");
  EXPECT_STREQ(approachName(Approach::StaticBB), "StaticBB");
  EXPECT_TRUE(isLockFree(Approach::DFLF));
  EXPECT_FALSE(isLockFree(Approach::DFBB));
  EXPECT_TRUE(isDynamicApproach(Approach::NDBB));
  EXPECT_FALSE(isDynamicApproach(Approach::StaticLF));
}

}  // namespace
}  // namespace lfpr
