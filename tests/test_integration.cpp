// Integration tests: end-to-end flows a downstream user would run —
// maintaining ranks over a temporal stream, sustained random churn with
// the lock-free engine, file I/O round trips feeding the solver.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "generate/temporal_replay.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "harness/scenario.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

PageRankOptions testOptions() {
  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 128;
  return opt;
}

TEST(Integration, TemporalReplayMaintainsAccurateRanks) {
  // The paper's real-world-dynamic protocol end to end: 90% preload, then
  // insertion-only batches updated with DFLF, checked against reference
  // ranks after every batch.
  Rng rng(1);
  TemporalEdgeListData data;
  data.numVertices = 400;
  data.edges = generateTemporalStream(400, 6000, 0.4, rng);
  auto replay = makeTemporalReplay(data, 0.9, 1e-3, 5);
  ASSERT_GE(replay.batches.size(), 3u);

  const auto opt = testOptions();
  auto graph = std::move(replay.initial);
  auto ranks = staticBB(graph.toCsr(), opt).ranks;

  for (std::size_t i = 0; i < replay.batches.size(); ++i) {
    const auto prev = graph.toCsr();
    graph.applyBatch(replay.batches[i]);
    const auto curr = graph.toCsr();
    const auto r = dfLF(prev, curr, replay.batches[i], ranks, opt);
    ASSERT_TRUE(r.converged) << "batch " << i;
    ranks = r.ranks;
    EXPECT_LT(linfNorm(ranks, referenceRanks(curr)), 1e-6) << "batch " << i;
  }
}

TEST(Integration, SustainedChurnAlternatingEngines) {
  // Mixed usage: alternate DFLF / DFBB / NDLF across batches of random
  // insertions and deletions; accuracy must not drift.
  Rng rng(2);
  auto es = generateRmat(10, 8000, rng);
  appendSelfLoops(es, 1024);
  auto graph = DynamicDigraph::fromEdges(1024, es);
  const auto opt = testOptions();
  auto ranks = staticBB(graph.toCsr(), opt).ranks;

  for (int step = 0; step < 6; ++step) {
    const auto prev = graph.toCsr();
    const auto batch = generateBatch(graph, 30, rng);
    graph.applyBatch(batch);
    const auto curr = graph.toCsr();
    PageRankResult r;
    switch (step % 3) {
      case 0: r = dfLF(prev, curr, batch, ranks, opt); break;
      case 1: r = dfBB(prev, curr, batch, ranks, opt); break;
      default: r = ndLF(curr, ranks, opt); break;
    }
    ASSERT_TRUE(r.converged) << "step " << step;
    ranks = r.ranks;
  }
  EXPECT_LT(linfNorm(ranks, referenceRanks(graph.toCsr())), 1e-6);
}

TEST(Integration, EdgeListFileFeedsSolver) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "lfpr_test_graph.txt";

  Rng rng(3);
  auto es = generateErdosRenyi(300, 2000, rng);
  appendSelfLoops(es, 300);
  {
    std::ofstream out(path);
    writeEdgeList(out, es, "integration test graph");
  }
  const auto data = readEdgeListFile(path.string());
  fs::remove(path);

  ASSERT_EQ(data.numVertices, 300u);
  const auto g = CsrGraph::fromEdges(data.numVertices, data.edges);
  const auto direct = CsrGraph::fromEdges(300, es);
  EXPECT_EQ(g, direct);

  const auto opt = testOptions();
  const auto r = staticLF(g, opt);
  EXPECT_TRUE(r.converged);
  // Each vertex may freeze up to tau/(1-alpha) from its fixpoint value
  // (see error.hpp), so conserved mass carries up to n times that.
  EXPECT_NEAR(rankSum(r.ranks), 1.0,
              static_cast<double>(g.numVertices()) *
                  asyncToleranceBound(opt.tolerance, opt.alpha));
}

TEST(Integration, MatrixMarketFileFeedsSolver) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "lfpr_test_graph.mtx";

  Rng rng(4);
  auto es = generateErdosRenyi(200, 1500, rng);
  appendSelfLoops(es, 200);
  {
    std::ofstream out(path);
    writeMatrixMarket(out, 200, es);
  }
  const auto data = readMatrixMarketFile(path.string());
  fs::remove(path);

  const auto g = CsrGraph::fromEdges(data.numVertices, data.edges);
  EXPECT_EQ(computeStats(g).numDeadEnds, 0u);
  EXPECT_TRUE(staticBB(g, testOptions()).converged);
}

TEST(Integration, WarmStartBeatsColdStartOnIterations) {
  // The economic argument for dynamic PageRank: after a small update,
  // warm-started engines should need fewer iterations than a cold static
  // run.
  const auto opt = testOptions();
  Rng rng(5);
  auto es = generateRmat(11, 16000, rng);
  appendSelfLoops(es, 2048);
  auto base = DynamicDigraph::fromEdges(2048, es);
  const auto scenario = makeScenario(std::move(base), 1e-4, 6, opt);

  const auto cold = staticBB(scenario.curr, opt);
  const auto warm = ndBB(scenario.curr, scenario.prevRanks, opt);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);

  const auto df = dfLF(scenario.prev, scenario.curr, scenario.batch,
                       scenario.prevRanks, opt);
  ASSERT_TRUE(df.converged);
  EXPECT_LT(df.rankUpdates, cold.rankUpdates);
}

TEST(Integration, SnapshotsAreImmutableAcrossUpdates) {
  // The interleaving contract (Section 3.4): applying further updates to
  // the dynamic graph must not disturb a snapshot an engine is using.
  Rng rng(7);
  auto es = generateErdosRenyi(200, 1500, rng);
  appendSelfLoops(es, 200);
  auto graph = DynamicDigraph::fromEdges(200, es);
  const auto snapshot = graph.toCsr();
  const auto before = snapshot.edges();

  const auto batch = generateBatch(graph, 50, rng);
  graph.applyBatch(batch);

  EXPECT_EQ(snapshot.edges(), before);
  EXPECT_NE(graph.toCsr(), snapshot);
}

}  // namespace
}  // namespace lfpr
