#include "generate/batch_gen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace lfpr {

BatchUpdate generateBatch(const DynamicDigraph& g, std::size_t batchSize, Rng& rng,
                          const BatchGenOptions& options) {
  BatchUpdate batch;
  const VertexId n = g.numVertices();
  if (n < 2 || batchSize == 0) return batch;

  auto numDeletions =
      static_cast<std::size_t>(std::llround(options.deletionShare *
                                            static_cast<double>(batchSize)));
  numDeletions = std::min(numDeletions, batchSize);
  const std::size_t numInsertions = batchSize - numDeletions;

  // --- Deletions: uniform over existing (non-self-loop) edges. ---
  std::vector<Edge> candidates;
  candidates.reserve(g.numEdges());
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : g.out(u))
      if (!options.protectSelfLoops || u != v) candidates.push_back({u, v});

  const std::size_t takeDel = std::min(numDeletions, candidates.size());
  // Partial Fisher-Yates: the first takeDel entries become the sample.
  for (std::size_t i = 0; i < takeDel; ++i) {
    const std::size_t j = i + rng.below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
    batch.deletions.push_back(candidates[i]);
  }

  // --- Insertions: uniform over absent, non-loop pairs. ---
  std::unordered_set<Edge, EdgeHash> chosen;
  chosen.reserve(numInsertions * 2);
  std::size_t attempts = 0;
  const std::size_t maxAttempts = 100 * (numInsertions + 1);
  while (batch.insertions.size() < numInsertions && attempts < maxAttempts) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    if (u == v || g.hasEdge(u, v)) continue;
    const Edge e{u, v};
    if (chosen.insert(e).second) batch.insertions.push_back(e);
  }
  return batch;
}

BatchUpdate generateBatchFraction(const DynamicDigraph& g, double fraction, Rng& rng,
                                  const BatchGenOptions& options) {
  const auto batchSize = static_cast<std::size_t>(std::max(
      1.0, std::llround(fraction * static_cast<double>(g.numEdges())) * 1.0));
  return generateBatch(g, batchSize, rng, options);
}

}  // namespace lfpr
