// Random batch-update generation, following the paper's protocol
// (Section 5.1.4): a batch is an equal mix of edge deletions and
// insertions; deletions sample existing edges uniformly, insertions
// sample unconnected vertex pairs uniformly; no vertices are added or
// removed; self-loops are never deleted (the paper re-adds self-loops
// with every batch).
#pragma once

#include "graph/dynamic_digraph.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace lfpr {

struct BatchGenOptions {
  /// Fraction of the batch that is deletions (paper: equal mix = 0.5).
  double deletionShare = 0.5;
  /// Never sample self-loops for deletion (keeps dead-end elimination
  /// intact across updates).
  bool protectSelfLoops = true;
};

/// Generate a batch of `batchSize` edge updates against `g`. The batch is
/// not applied. Deletions are distinct existing edges; insertions are
/// distinct absent non-loop edges. If the graph is too small/dense to
/// honour the requested count, the respective side is smaller.
BatchUpdate generateBatch(const DynamicDigraph& g, std::size_t batchSize, Rng& rng,
                          const BatchGenOptions& options = {});

/// Batch sized as a fraction of |E| (paper sweeps 1e-8 .. 0.1), clamped
/// to at least one update.
BatchUpdate generateBatchFraction(const DynamicDigraph& g, double fraction, Rng& rng,
                                  const BatchGenOptions& options = {});

}  // namespace lfpr
