#include "generate/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lfpr {

std::vector<Edge> generateRmat(int scale, EdgeId numEdges, Rng& rng, double a, double b,
                               double c, double d) {
  if (scale <= 0 || scale > 30) throw std::invalid_argument("rmat: bad scale");
  const double sum = a + b + c + d;
  if (sum < 0.999 || sum > 1.001) throw std::invalid_argument("rmat: probs must sum to 1");

  std::vector<Edge> edges;
  edges.reserve(numEdges);
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(numEdges * 2);

  // Rejection loop: draw RMAT quadrant paths until numEdges distinct
  // non-loop edges are collected. Noise is added per level (the standard
  // "smoothing" that avoids exact-power-law artifacts).
  while (edges.size() < numEdges) {
    VertexId u = 0, v = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.uniform();
      // Mildly perturbed quadrant probabilities, renormalized.
      const double na = a * (0.95 + 0.1 * rng.uniform());
      const double nb = b * (0.95 + 0.1 * rng.uniform());
      const double nc = c * (0.95 + 0.1 * rng.uniform());
      const double nd = d * (0.95 + 0.1 * rng.uniform());
      const double norm = na + nb + nc + nd;
      const double pa = na / norm, pb = nb / norm, pc = nc / norm;
      u <<= 1;
      v <<= 1;
      if (r < pa) {
        // top-left: no bits set
      } else if (r < pa + pb) {
        v |= 1;
      } else if (r < pa + pb + pc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    const Edge e{u, v};
    if (seen.insert(e).second) edges.push_back(e);
  }
  return edges;
}

std::vector<Edge> generateWebGraph(VertexId numPages, VertexId hostSize,
                                   double avgOutDegree, Rng& rng) {
  if (numPages < 2) throw std::invalid_argument("web: need >= 2 pages");
  if (hostSize == 0) throw std::invalid_argument("web: hostSize must be > 0");
  if (avgOutDegree < 1.0) throw std::invalid_argument("web: avgOutDegree must be >= 1");
  const VertexId numHosts = (numPages + hostSize - 1) / hostSize;

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(avgOutDegree * numPages * 1.05));

  auto pageInHost = [&](VertexId host) {
    const VertexId base = host * hostSize;
    const VertexId size =
        host + 1 == numHosts ? numPages - base : hostSize;  // last host may be short
    return base + static_cast<VertexId>(rng.below(size));
  };

  for (VertexId u = 0; u < numPages; ++u) {
    const VertexId host = u / hostSize;
    // Heavy-tailed out-degree: Pareto(alpha=2) has mean 2, so scaling by
    // (avg-1)/2 and capping the tail keeps the mean near avgOutDegree.
    const double pareto = std::min(40.0, 1.0 / std::sqrt(1.0 - rng.uniform()));
    const auto outDeg = static_cast<VertexId>(
        1 + std::llround((avgOutDegree - 1.0) * pareto / 2.0));
    for (VertexId k = 0; k < outDeg; ++k) {
      const double r = rng.uniform();
      VertexId v;
      if (r < 0.90) {
        v = pageInHost(host);  // site-internal navigation
      } else if (r < 0.98) {
        // Topical/crawl locality: an adjacent host (+-1). Narrow windows
        // keep the host-level graph path-like, i.e. large-diameter.
        const auto offset = static_cast<std::int64_t>(rng.below(3)) - 1;
        auto h = static_cast<std::int64_t>(host) + offset;
        if (h < 0) h += numHosts;
        v = pageInHost(static_cast<VertexId>(h % numHosts));
      } else {
        // Globally popular hub page. Quartic skew: global attention
        // concentrates on a handful of super-hubs (portals, search
        // engines), so the hub core stays a few hundred pages.
        const double x = rng.uniform();
        const double x2 = x * x;
        v = static_cast<VertexId>(x2 * x2 * numPages);
        if (v >= numPages) v = numPages - 1;
      }
      if (v != u) edges.push_back({u, v});
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<Edge> generateErdosRenyi(VertexId numVertices, EdgeId numEdges, Rng& rng) {
  if (numVertices < 2) throw std::invalid_argument("er: need >= 2 vertices");
  const EdgeId maxEdges =
      static_cast<EdgeId>(numVertices) * (numVertices - 1);  // directed, no loops
  if (numEdges > maxEdges) throw std::invalid_argument("er: too many edges requested");

  std::vector<Edge> edges;
  edges.reserve(numEdges);
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(numEdges * 2);
  while (edges.size() < numEdges) {
    const auto u = static_cast<VertexId>(rng.below(numVertices));
    const auto v = static_cast<VertexId>(rng.below(numVertices));
    if (u == v) continue;
    const Edge e{u, v};
    if (seen.insert(e).second) edges.push_back(e);
  }
  return edges;
}

std::vector<Edge> generateBarabasiAlbert(VertexId numVertices, VertexId edgesPerVertex,
                                         Rng& rng) {
  if (numVertices <= edgesPerVertex)
    throw std::invalid_argument("ba: numVertices must exceed edgesPerVertex");
  if (edgesPerVertex == 0) throw std::invalid_argument("ba: edgesPerVertex must be > 0");

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(numVertices) * edgesPerVertex);
  // `targets` holds one entry per edge endpoint, so sampling an element
  // uniformly implements degree-proportional (preferential) attachment.
  std::vector<VertexId> targets;
  targets.reserve(2 * edges.capacity());

  // Seed clique over the first edgesPerVertex+1 vertices.
  const VertexId seedCount = edgesPerVertex + 1;
  for (VertexId u = 0; u < seedCount; ++u) {
    for (VertexId v = 0; v < seedCount; ++v) {
      if (u == v) continue;
      edges.push_back({u, v});
    }
    for (VertexId k = 0; k < edgesPerVertex; ++k) targets.push_back(u);
  }

  for (VertexId u = seedCount; u < numVertices; ++u) {
    std::unordered_set<VertexId> chosen;
    while (chosen.size() < edgesPerVertex) {
      const VertexId v = targets[rng.below(targets.size())];
      if (v == u) continue;
      if (chosen.insert(v).second) edges.push_back({u, v});
    }
    for (VertexId v : chosen) targets.push_back(v);
    targets.push_back(u);
  }
  return edges;
}

std::vector<Edge> generateGrid(VertexId rows, VertexId cols, double shortcutFraction,
                               Rng& rng) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid: empty grid");
  const VertexId n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(2 * n) + 16);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  // Shortcuts are *local* (ramps, bridges: a few cells away), never
  // long-range — road networks have no small-world links, which is why
  // their effective diameter is huge.
  constexpr VertexId kShortcutSpan = 4;
  const auto numShortcuts = static_cast<EdgeId>(shortcutFraction * static_cast<double>(n));
  for (EdgeId i = 0; i < numShortcuts; ++i) {
    const auto r = static_cast<VertexId>(rng.below(rows));
    const auto c = static_cast<VertexId>(rng.below(cols));
    const auto dr = static_cast<VertexId>(rng.below(kShortcutSpan + 1));
    const auto dc = static_cast<VertexId>(rng.below(kShortcutSpan + 1));
    const VertexId r2 = std::min<VertexId>(rows - 1, r + dr);
    const VertexId c2 = std::min<VertexId>(cols - 1, c + dc);
    if (id(r, c) != id(r2, c2)) edges.push_back({id(r, c), id(r2, c2)});
  }
  return edges;
}

std::vector<Edge> generateKmerChains(VertexId numVertices, double branchProbability,
                                     Rng& rng) {
  if (numVertices < 2) throw std::invalid_argument("kmer: need >= 2 vertices");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(1.2 * static_cast<double>(numVertices)));
  // Walk vertices in order as one long chain; at branch points, connect to
  // a *nearby* earlier vertex. Branches in real k-mer (de Bruijn) graphs
  // are local bubbles from sequencing errors and repeats, not long-range
  // shortcuts — locality is what gives these graphs their enormous
  // diameter, which in turn keeps dynamic-frontier propagation local.
  constexpr VertexId kBubbleWindow = 48;
  for (VertexId v = 1; v < numVertices; ++v) {
    edges.push_back({v - 1, v});
    if (v > 2 && rng.chance(branchProbability)) {
      const VertexId span = std::min<VertexId>(v - 1, kBubbleWindow);
      const auto w = static_cast<VertexId>(v - 1 - rng.below(span));
      if (w != v) edges.push_back({w, v});
    }
  }
  return edges;
}

std::vector<Edge> symmetrize(const std::vector<Edge>& edges) {
  std::vector<Edge> result;
  result.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    result.push_back(e);
    if (e.src != e.dst) result.push_back({e.dst, e.src});
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

void appendSelfLoops(std::vector<Edge>& edges, VertexId numVertices) {
  edges.reserve(edges.size() + numVertices);
  for (VertexId v = 0; v < numVertices; ++v) edges.push_back({v, v});
}

std::vector<TemporalEdge> generateTemporalStream(VertexId numVertices,
                                                 EdgeId numTemporalEdges,
                                                 double duplicateFraction, Rng& rng,
                                                 double hubFraction,
                                                 VertexId localityWindow) {
  if (numVertices < 2) throw std::invalid_argument("temporal: need >= 2 vertices");
  if (localityWindow == 0) localityWindow = std::max<VertexId>(16, numVertices / 20);
  std::vector<TemporalEdge> stream;
  stream.reserve(numTemporalEdges);
  // Vertices "activate" over time. Most interactions are local in time
  // (drawn from the window of recently activated vertices); a fraction
  // targets old globally popular vertices (quadratic skew toward low
  // ids). Duplicate events re-emit a recent edge.
  std::vector<Edge> history;
  history.reserve(numTemporalEdges);
  for (EdgeId i = 0; i < numTemporalEdges; ++i) {
    const auto t = static_cast<std::uint64_t>(i + 1);
    // Active prefix grows linearly with the stream position.
    const auto active = static_cast<VertexId>(
        2 + (static_cast<std::uint64_t>(numVertices - 2) * i) / numTemporalEdges);
    if (!history.empty() && rng.chance(duplicateFraction)) {
      // Duplicates favour recent edges (re-activity is bursty).
      const std::size_t span = std::min<std::size_t>(history.size(), 4096);
      const Edge& e = history[history.size() - 1 - rng.below(span)];
      stream.push_back({e.src, e.dst, t});
      continue;
    }
    const VertexId windowLow = active > localityWindow ? active - localityWindow : 0;
    auto u = static_cast<VertexId>(windowLow + rng.below(active - windowLow));
    VertexId v;
    if (rng.chance(hubFraction)) {
      const double rv = rng.uniform();
      v = static_cast<VertexId>(rv * rv * active);  // old popular vertex
    } else {
      v = static_cast<VertexId>(windowLow + rng.below(active - windowLow));
    }
    if (v >= active) v = active - 1;
    if (u == v) v = (u + 1) % active;  // active >= 2, so v != u
    stream.push_back({u, v, t});
    history.push_back({u, v});
  }
  return stream;
}

}  // namespace lfpr
