// Synthetic graph generators.
//
// The paper evaluates on 12 SuiteSparse graphs in four classes (web,
// social, road, protein k-mer) plus 2 SNAP temporal networks. Those
// datasets are hundreds of millions to billions of edges and are not
// available offline, so we generate deterministic stand-ins from the same
// structural families at laptop scale (see DESIGN.md Section 3 for the
// substitution argument). Every generator is seeded and reproducible.
#pragma once

#include <vector>

#include "graph/io.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace lfpr {

/// RMAT / Kronecker generator (Chakrabarti et al.): power-law in/out
/// degrees, community-like self-similarity, small-world. Produces
/// numVertices = 2^scale. Probabilities (a, b, c, d) must sum to 1;
/// defaults are the common parameterization.
std::vector<Edge> generateRmat(int scale, EdgeId numEdges, Rng& rng, double a = 0.57,
                               double b = 0.19, double c = 0.19, double d = 0.05);

/// Host-structured web-crawl generator: the stand-in for the LAW crawls
/// (indochina-2004, uk-2005, ...). Pages are grouped into hosts; most
/// links stay within the host (site navigation), some go to nearby hosts
/// (crawl/topical locality), and a few go to globally popular hub pages.
/// This matches the defining properties of real crawls that RMAT lacks:
/// heavy-tailed degrees *with* strong locality and a large effective
/// diameter — the structure that keeps dynamic-frontier propagation local
/// (DESIGN.md Section 3).
std::vector<Edge> generateWebGraph(VertexId numPages, VertexId hostSize,
                                   double avgOutDegree, Rng& rng);

/// Erdős–Rényi G(n, m): m distinct uniform edges (no self-loops).
std::vector<Edge> generateErdosRenyi(VertexId numVertices, EdgeId numEdges, Rng& rng);

/// Barabási–Albert preferential attachment with `edgesPerVertex` out-edges
/// per new vertex; heavy-tailed degrees. Stand-in for social networks
/// (com-LiveJournal, com-Orkut) once symmetrized.
std::vector<Edge> generateBarabasiAlbert(VertexId numVertices, VertexId edgesPerVertex,
                                         Rng& rng);

/// 2-D grid (rows x cols, 4-neighbour) with a small fraction of random
/// shortcut edges; near-planar with avg degree ~3-4 when symmetrized.
/// Stand-in for the DIMACS10 road networks (asia_osm, europe_osm).
std::vector<Edge> generateGrid(VertexId rows, VertexId cols, double shortcutFraction,
                               Rng& rng);

/// Long chains with occasional branch/merge vertices; avg degree ~3 when
/// symmetrized, matching GenBank k-mer graphs (kmer_A2a, kmer_V1r).
std::vector<Edge> generateKmerChains(VertexId numVertices, double branchProbability,
                                     Rng& rng);

/// Add the reverse of every edge (paper: "for undirected graphs we add
/// two directed edges"). Result may contain duplicates; CSR dedup or
/// DynamicDigraph insertion removes them.
std::vector<Edge> symmetrize(const std::vector<Edge>& edges);

/// Append a self-loop for every vertex (dead-end elimination).
void appendSelfLoops(std::vector<Edge>& edges, VertexId numVertices);

/// Temporal-stream generator: a growing interaction network emitting
/// timestamped edges in arrival order, including duplicate edges
/// (Table 1 distinguishes |E_T| temporal from |E| static edges; e.g.
/// wiki-talk has 7.83M temporal vs 3.31M static).
///
/// `duplicateFraction` controls how many events repeat an existing edge.
/// Interactions exhibit *temporal locality*: most events connect recently
/// activated vertices (a question gets answered while fresh), with a
/// `hubFraction` of events targeting globally popular old vertices
/// (admins, celebrity users). `localityWindow` is the width of the
/// recent-vertex window (0 selects numVertices/20); locality is what
/// gives real interaction networks an effective diameter that grows with
/// their size.
std::vector<TemporalEdge> generateTemporalStream(VertexId numVertices,
                                                 EdgeId numTemporalEdges,
                                                 double duplicateFraction, Rng& rng,
                                                 double hubFraction = 0.15,
                                                 VertexId localityWindow = 0);

}  // namespace lfpr
