// The paper's real-world-dynamic-graph protocol (Section 5.1.4): load the
// first 90% of a temporal edge stream as the initial graph, then replay
// the remaining 10% as consecutive insertion-only batch updates of size
// batchFraction * |E_T|.
//
// Two implementations of the same protocol: makeTemporalReplay
// materializes every batch in memory (small streams, tests), and
// TemporalReplayStream replays a persisted edge log (edge_log.hpp) with
// memory bounded by one batch — logs far larger than RAM replay fine,
// and each approach in a bench re-streams the log with its own cursor.
#pragma once

#include <string>
#include <vector>

#include "graph/dynamic_digraph.hpp"
#include "graph/edge_log.hpp"
#include "graph/io.hpp"
#include "graph/types.hpp"

namespace lfpr {

struct TemporalReplay {
  /// Initial graph (deduplicated 90% prefix, self-loops added).
  DynamicDigraph initial;
  /// Insertion-only batches covering the remaining stream, in order.
  std::vector<BatchUpdate> batches;
  EdgeId numTemporalEdges = 0;
  EdgeId numStaticEdges = 0;  // distinct edges over the whole stream
};

/// Build a replay from a temporal edge list. `maxBatches == 0` keeps all.
TemporalReplay makeTemporalReplay(const TemporalEdgeListData& data,
                                  double initialFraction, double batchFraction,
                                  std::size_t maxBatches = 0);

/// Out-of-core replay of a persisted edge log. Batch boundaries, sizes
/// and the initial graph are bit-for-bit those of makeTemporalReplay on
/// the same stream (the log is stored time-sorted), but only the initial
/// graph and one in-flight batch are ever resident.
class TemporalReplayStream {
 public:
  /// Opens the log and streams its prefix into the initial graph.
  /// Throws EdgeLogError on a corrupt log, std::invalid_argument on bad
  /// fractions.
  TemporalReplayStream(std::string logPath, double initialFraction,
                       double batchFraction, std::size_t maxBatches = 0);

  [[nodiscard]] const DynamicDigraph& initial() const noexcept { return initial_; }
  [[nodiscard]] EdgeId numTemporalEdges() const noexcept { return numTemporalEdges_; }
  [[nodiscard]] EdgeId numStaticEdges() const noexcept { return numStaticEdges_; }
  [[nodiscard]] std::size_t batchSize() const noexcept { return batchSize_; }
  /// Number of batches a cursor will yield (cap applied).
  [[nodiscard]] std::size_t numBatches() const noexcept { return numBatches_; }

  /// One pass over the post-prefix records. Cursors are independent:
  /// every approach in a bench opens its own and streams the same
  /// batches.
  class BatchCursor {
   public:
    /// Fill `out` with the next batch (insertion-only); false at end.
    bool next(BatchUpdate& out);

   private:
    friend class TemporalReplayStream;
    BatchCursor(const std::string& path, EdgeId start, std::size_t batchSize,
                std::size_t numBatches);

    TemporalEdgeLogReader reader_;
    std::size_t batchSize_;
    std::size_t remainingBatches_;
    std::vector<TemporalEdge> chunk_;  // reused across next() calls
  };

  [[nodiscard]] BatchCursor batches() const;

 private:
  std::string logPath_;
  DynamicDigraph initial_;
  EdgeId numTemporalEdges_ = 0;
  EdgeId numStaticEdges_ = 0;
  EdgeId initialCount_ = 0;
  std::size_t batchSize_ = 1;
  std::size_t numBatches_ = 0;
};

}  // namespace lfpr
