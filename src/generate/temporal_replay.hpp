// The paper's real-world-dynamic-graph protocol (Section 5.1.4): load the
// first 90% of a temporal edge stream as the initial graph, then replay
// the remaining 10% as consecutive insertion-only batch updates of size
// batchFraction * |E_T|.
#pragma once

#include <vector>

#include "graph/dynamic_digraph.hpp"
#include "graph/io.hpp"
#include "graph/types.hpp"

namespace lfpr {

struct TemporalReplay {
  /// Initial graph (deduplicated 90% prefix, self-loops added).
  DynamicDigraph initial;
  /// Insertion-only batches covering the remaining stream, in order.
  std::vector<BatchUpdate> batches;
  EdgeId numTemporalEdges = 0;
  EdgeId numStaticEdges = 0;  // distinct edges over the whole stream
};

/// Build a replay from a temporal edge list. `maxBatches == 0` keeps all.
TemporalReplay makeTemporalReplay(const TemporalEdgeListData& data,
                                  double initialFraction, double batchFraction,
                                  std::size_t maxBatches = 0);

}  // namespace lfpr
