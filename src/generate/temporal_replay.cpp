#include "generate/temporal_replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lfpr {

TemporalReplay makeTemporalReplay(const TemporalEdgeListData& data,
                                  double initialFraction, double batchFraction,
                                  std::size_t maxBatches) {
  if (initialFraction < 0.0 || initialFraction > 1.0)
    throw std::invalid_argument("makeTemporalReplay: bad initialFraction");
  if (batchFraction <= 0.0)
    throw std::invalid_argument("makeTemporalReplay: bad batchFraction");

  // Stable sort by timestamp (the stream order of equal timestamps is
  // preserved, as when reading a SNAP file in order).
  std::vector<TemporalEdge> stream = data.edges;
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });

  TemporalReplay replay;
  replay.numTemporalEdges = stream.size();
  {
    std::unordered_set<Edge, EdgeHash> distinct;
    distinct.reserve(stream.size() * 2);
    for (const TemporalEdge& e : stream) distinct.insert({e.src, e.dst});
    replay.numStaticEdges = distinct.size();
  }

  const auto initialCount = static_cast<std::size_t>(
      std::llround(initialFraction * static_cast<double>(stream.size())));
  replay.initial = DynamicDigraph(data.numVertices);
  for (std::size_t i = 0; i < initialCount; ++i)
    replay.initial.addEdge(stream[i].src, stream[i].dst);  // dedups internally
  replay.initial.ensureSelfLoops();

  const auto batchSize = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(batchFraction * static_cast<double>(stream.size()))));
  BatchUpdate batch;
  for (std::size_t i = initialCount; i < stream.size(); ++i) {
    batch.insertions.push_back({stream[i].src, stream[i].dst});
    if (batch.insertions.size() == batchSize) {
      replay.batches.push_back(std::move(batch));
      batch = {};
      if (maxBatches != 0 && replay.batches.size() == maxBatches) return replay;
    }
  }
  if (!batch.insertions.empty()) replay.batches.push_back(std::move(batch));
  return replay;
}

}  // namespace lfpr
