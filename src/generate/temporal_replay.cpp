#include "generate/temporal_replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lfpr {

TemporalReplay makeTemporalReplay(const TemporalEdgeListData& data,
                                  double initialFraction, double batchFraction,
                                  std::size_t maxBatches) {
  if (initialFraction < 0.0 || initialFraction > 1.0)
    throw std::invalid_argument("makeTemporalReplay: bad initialFraction");
  if (batchFraction <= 0.0)
    throw std::invalid_argument("makeTemporalReplay: bad batchFraction");

  // Stable sort by timestamp (the stream order of equal timestamps is
  // preserved, as when reading a SNAP file in order).
  std::vector<TemporalEdge> stream = data.edges;
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });

  TemporalReplay replay;
  replay.numTemporalEdges = stream.size();
  {
    std::unordered_set<Edge, EdgeHash> distinct;
    distinct.reserve(stream.size() * 2);
    for (const TemporalEdge& e : stream) distinct.insert({e.src, e.dst});
    replay.numStaticEdges = distinct.size();
  }

  const auto initialCount = static_cast<std::size_t>(
      std::llround(initialFraction * static_cast<double>(stream.size())));
  replay.initial = DynamicDigraph(data.numVertices);
  for (std::size_t i = 0; i < initialCount; ++i)
    replay.initial.addEdge(stream[i].src, stream[i].dst);  // dedups internally
  replay.initial.ensureSelfLoops();

  const auto batchSize = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(batchFraction * static_cast<double>(stream.size()))));
  BatchUpdate batch;
  for (std::size_t i = initialCount; i < stream.size(); ++i) {
    batch.insertions.push_back({stream[i].src, stream[i].dst});
    if (batch.insertions.size() == batchSize) {
      replay.batches.push_back(std::move(batch));
      batch = {};
      if (maxBatches != 0 && replay.batches.size() == maxBatches) return replay;
    }
  }
  if (!batch.insertions.empty()) replay.batches.push_back(std::move(batch));
  return replay;
}

namespace {

/// Streaming chunk size: 64K records = 1 MiB resident regardless of log
/// size.
constexpr std::size_t kReplayChunk = std::size_t{1} << 16;

}  // namespace

TemporalReplayStream::TemporalReplayStream(std::string logPath,
                                           double initialFraction,
                                           double batchFraction,
                                           std::size_t maxBatches)
    : logPath_(std::move(logPath)) {
  if (initialFraction < 0.0 || initialFraction > 1.0)
    throw std::invalid_argument("TemporalReplayStream: bad initialFraction");
  if (batchFraction <= 0.0)
    throw std::invalid_argument("TemporalReplayStream: bad batchFraction");

  TemporalEdgeLogReader reader(logPath_);
  numTemporalEdges_ = reader.numEdges();
  numStaticEdges_ = reader.numStaticEdges();
  initialCount_ = static_cast<EdgeId>(
      std::llround(initialFraction * static_cast<double>(numTemporalEdges_)));
  batchSize_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(batchFraction * static_cast<double>(numTemporalEdges_))));

  const EdgeId remaining = numTemporalEdges_ - initialCount_;
  const std::size_t full = static_cast<std::size_t>(remaining / batchSize_);
  const std::size_t withTail = full + (remaining % batchSize_ != 0 ? 1 : 0);
  numBatches_ = maxBatches != 0 ? std::min(maxBatches, withTail) : withTail;

  // The log is stored time-sorted, so the prefix IS the initial graph.
  initial_ = DynamicDigraph(reader.numVertices());
  std::vector<TemporalEdge> chunk(kReplayChunk);
  EdgeId seen = 0;
  while (seen < initialCount_) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<EdgeId>(initialCount_ - seen, chunk.size()));
    const std::size_t got = reader.read(std::span(chunk.data(), want));
    if (got == 0) break;  // reader already validated the count; defensive
    for (std::size_t i = 0; i < got; ++i)
      initial_.addEdge(chunk[i].src, chunk[i].dst);  // dedups internally
    seen += got;
  }
  initial_.ensureSelfLoops();
}

TemporalReplayStream::BatchCursor::BatchCursor(const std::string& path,
                                               EdgeId start, std::size_t batchSize,
                                               std::size_t numBatches)
    : reader_(path),
      batchSize_(batchSize),
      remainingBatches_(numBatches),
      chunk_(std::min(batchSize, kReplayChunk)) {
  reader_.seek(start);
}

bool TemporalReplayStream::BatchCursor::next(BatchUpdate& out) {
  out.deletions.clear();
  out.insertions.clear();
  if (remainingBatches_ == 0) return false;
  out.insertions.reserve(batchSize_);
  while (out.insertions.size() < batchSize_) {
    const std::size_t want =
        std::min(batchSize_ - out.insertions.size(), chunk_.size());
    const std::size_t got = reader_.read(std::span(chunk_.data(), want));
    if (got == 0) break;  // end of log: partial final batch
    for (std::size_t i = 0; i < got; ++i)
      out.insertions.push_back({chunk_[i].src, chunk_[i].dst});
  }
  if (out.insertions.empty()) {
    remainingBatches_ = 0;
    return false;
  }
  --remainingBatches_;
  return true;
}

TemporalReplayStream::BatchCursor TemporalReplayStream::batches() const {
  return BatchCursor(logPath_, initialCount_, batchSize_, numBatches_);
}

}  // namespace lfpr
