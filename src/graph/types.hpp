// Fundamental graph types shared across the library.
//
// Vertex ids are 32-bit (the paper's configuration, Section 5.1.2); edge
// counts are 64-bit so billion-edge graphs remain representable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace lfpr {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// A directed edge u -> v.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A batch update Δt = (Δt-, Δt+): the paper's unit of graph change
/// (Section 3.4). Deletions are edges present in G^{t-1} but not G^t;
/// insertions the reverse.
struct BatchUpdate {
  std::vector<Edge> deletions;
  std::vector<Edge> insertions;

  [[nodiscard]] std::size_t size() const noexcept {
    return deletions.size() + insertions.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return deletions.empty() && insertions.empty();
  }

  /// The inverse batch: applying `b` then `b.inverted()` restores the
  /// original graph. Used by the stability experiment (Section 5.2.3).
  [[nodiscard]] BatchUpdate inverted() const {
    return BatchUpdate{insertions, deletions};
  }
};

struct EdgeHash {
  std::size_t operator()(const Edge& e) const noexcept {
    const std::uint64_t k = (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    // SplitMix64 finalizer as the mixer.
    std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace lfpr
