// Weighted pull-CSR: the in-adjacency of a snapshot with each source's
// contribution multiplier inlined next to its id.
//
// The plain kernel walks in(v) and gathers two values per edge from two
// different arrays (the source's rank and its cached 1/outdeg). This
// layout fuses the multiplier into the edge stream, so the kernel reads
// ONE sequential stream of (src, weight) arcs plus one random rank load —
// the arXiv:2109.09527 "store scaled contributions next to the edge"
// optimization. It is a derived, redundant view of a CsrGraph: engines
// build it on demand when PageRankOptions::pullLayout selects it
// (snapshots stay the single source of truth and validate() covers the
// derivation).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lfpr {

/// One in-edge of the weighted layout: rank contribution of `src` to the
/// owning vertex is ranks[src] * weight, weight = 1 / outDegree(src).
struct PullArc {
  VertexId src = 0;
  double weight = 0.0;

  friend bool operator==(const PullArc&, const PullArc&) = default;
};

class WeightedPullCsr {
 public:
  WeightedPullCsr() = default;

  /// Materialize the layout from a snapshot. O(n + m).
  explicit WeightedPullCsr(const CsrGraph& g);

  [[nodiscard]] VertexId numVertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId numEdges() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  [[nodiscard]] std::span<const PullArc> in(VertexId v) const noexcept {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  /// Check this layout against the snapshot it should mirror: same
  /// in-adjacency in the same order, weights equal to the snapshot's
  /// contribution cache. Throws std::logic_error on violation.
  void validateAgainst(const CsrGraph& g) const;

 private:
  std::vector<EdgeId> offsets_;
  std::vector<PullArc> arcs_;
};

}  // namespace lfpr
