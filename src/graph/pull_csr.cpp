#include "graph/pull_csr.hpp"

#include <stdexcept>

namespace lfpr {

WeightedPullCsr::WeightedPullCsr(const CsrGraph& g) {
  const std::size_t n = g.numVertices();
  offsets_.assign(n + 1, 0);
  arcs_.reserve(g.numEdges());
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.in(v)) arcs_.push_back({u, g.invOutDegree(u)});
    offsets_[v + 1] = arcs_.size();
  }
}

void WeightedPullCsr::validateAgainst(const CsrGraph& g) const {
  if (numVertices() != g.numVertices() || numEdges() != g.numEdges())
    throw std::logic_error("pull-csr: size mismatch with snapshot");
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    const auto srcs = g.in(v);
    const auto arcs = in(v);
    if (arcs.size() != srcs.size())
      throw std::logic_error("pull-csr: in-degree mismatch with snapshot");
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (arcs[i].src != srcs[i])
        throw std::logic_error("pull-csr: in-adjacency mismatch with snapshot");
      if (arcs[i].weight != g.invOutDegree(srcs[i]))
        throw std::logic_error("pull-csr: weight differs from contribution cache");
    }
  }
}

}  // namespace lfpr
