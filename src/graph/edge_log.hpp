// Versioned binary temporal edge log — the out-of-core counterpart of
// TemporalEdgeListData.
//
// Layout (little-endian):
//
//   EdgeLogHeader   56 bytes: magic "LFPRELG\n", version, header size,
//                   |V|, temporal edge count |E_T|, distinct static edge
//                   count |E|, payload byte count, payload checksum
//   records         |E_T| x {u32 src, u32 dst, u64 time}, 16 bytes each,
//                   stable-sorted by timestamp at write time
//
// Records are stored replay-ready (time-sorted), so a reader streams
// fixed-size chunks straight into batch construction with memory bounded
// by the chunk size — logs far larger than RAM replay fine. The distinct
// edge count is computed once at write time and carried in the header
// (recomputing it needs a hash set proportional to |E|).
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>

#include "graph/io.hpp"
#include "graph/types.hpp"

namespace lfpr {

inline constexpr std::uint32_t kEdgeLogVersion = 1;
inline constexpr char kEdgeLogMagic[8] = {'L', 'F', 'P', 'R', 'E', 'L', 'G', '\n'};

struct EdgeLogHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t headerBytes;
  std::uint64_t numVertices;
  std::uint64_t numEdges;        // temporal records, |E_T|
  std::uint64_t numStaticEdges;  // distinct (src, dst) pairs, |E|
  std::uint64_t payloadBytes;
  std::uint64_t checksum;
};
static_assert(sizeof(EdgeLogHeader) == 56, "header layout is part of the format");
static_assert(sizeof(TemporalEdge) == 16, "record layout is part of the format");

class EdgeLogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize a temporal stream, stable-sorted by timestamp (the replay
/// protocol's order). Writes `path` + ".tmp" then renames. Throws
/// EdgeLogError on I/O failure.
void writeTemporalEdgeLog(const std::string& path, const TemporalEdgeListData& data);

/// Full in-memory read with checksum verification (tests, small logs).
TemporalEdgeListData readTemporalEdgeLog(const std::string& path);

/// Checksum pass over the records without materializing them. Throws
/// EdgeLogError on any corruption.
void verifyTemporalEdgeLog(const std::string& path);

/// How a reader treats a file shorter than its header promises.
///
///   Strict          any size mismatch is a hard EdgeLogError — the
///                   dataset-cache contract (a cache entry was written
///                   in full or it is garbage);
///   QuarantineTorn  a *shorter* file is read up to the last complete
///                   record and the torn tail is reported, not thrown —
///                   the append/crash contract (a torn final write must
///                   not make the whole log unrecoverable). A *longer*
///                   file is still a hard error: appends past the
///                   recorded count are not a crash artifact.
enum class LogTailPolicy { Strict, QuarantineTorn };

/// Streaming reader with bounded memory: validates the header and size
/// arithmetic on open (use verifyTemporalEdgeLog for the checksum pass —
/// a cursor that stops early never sees the whole payload), then serves
/// arbitrary-position chunk reads.
class TemporalEdgeLogReader {
 public:
  explicit TemporalEdgeLogReader(const std::string& path,
                                 LogTailPolicy tail = LogTailPolicy::Strict);

  [[nodiscard]] VertexId numVertices() const noexcept { return numVertices_; }
  [[nodiscard]] EdgeId numEdges() const noexcept { return numEdges_; }
  [[nodiscard]] EdgeId numStaticEdges() const noexcept { return numStaticEdges_; }

  /// QuarantineTorn only: true when the file ended before the header's
  /// record count; numEdges() was clamped to the complete records.
  [[nodiscard]] bool tornTail() const noexcept { return tornTail_; }

  /// Bytes past the last complete record (0 when the file was clean).
  [[nodiscard]] std::uint64_t quarantinedBytes() const noexcept {
    return quarantinedBytes_;
  }

  /// Position the cursor at record `index` (clamped to the record count).
  void seek(EdgeId index);

  /// Read up to out.size() records at the cursor; returns the number
  /// actually read (0 at end of log).
  std::size_t read(std::span<TemporalEdge> out);

 private:
  std::ifstream is_;
  std::string path_;
  VertexId numVertices_ = 0;
  EdgeId numEdges_ = 0;
  EdgeId numStaticEdges_ = 0;
  EdgeId pos_ = 0;
  bool tornTail_ = false;
  std::uint64_t quarantinedBytes_ = 0;
};

}  // namespace lfpr
