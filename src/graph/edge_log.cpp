#include "graph/edge_log.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <unordered_set>
#include <vector>

#include <unistd.h>

#include "util/checksum.hpp"
#include "util/io_retry.hpp"

namespace lfpr {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw EdgeLogError("edge log '" + path + "': " + what);
}

EdgeLogHeader readAndCheckHeader(std::ifstream& is, const std::string& path) {
  EdgeLogHeader h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (is.gcount() != sizeof(h))
    fail(path, "truncated: file is smaller than the header");
  if (std::memcmp(h.magic, kEdgeLogMagic, sizeof(h.magic)) != 0)
    fail(path, "bad magic (not a temporal edge log)");
  if (h.version != kEdgeLogVersion)
    fail(path, "unsupported format version " + std::to_string(h.version) +
                   " (this build reads version " + std::to_string(kEdgeLogVersion) +
                   ")");
  if (h.headerBytes != sizeof(EdgeLogHeader)) fail(path, "header size mismatch");
  if (h.numVertices > std::numeric_limits<VertexId>::max() - 1)
    fail(path, "vertex count " + std::to_string(h.numVertices) +
                   " exceeds the 32-bit vertex id space (supported maximum " +
                   std::to_string(std::numeric_limits<VertexId>::max() - 1) +
                   ")");
  if (h.payloadBytes != h.numEdges * sizeof(TemporalEdge))
    fail(path, "payload size field disagrees with the record count");
  return h;
}

std::uintmax_t fileSizeOrFail(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) fail(path, "cannot stat: " + ec.message());
  return size;
}

void checkFileSize(const EdgeLogHeader& h, const std::string& path) {
  const auto size = fileSizeOrFail(path);
  const auto expected = sizeof(EdgeLogHeader) + h.payloadBytes;
  if (size != expected)
    fail(path, "truncated: expected " + std::to_string(expected) +
                   " bytes, file has " + std::to_string(size));
}

}  // namespace

void writeTemporalEdgeLog(const std::string& path, const TemporalEdgeListData& data) {
  // Stable sort by timestamp: the replay protocol's order (stream order
  // preserved among equal timestamps), baked in once at write time.
  std::vector<TemporalEdge> stream = data.edges;
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });

  std::uint64_t numStatic = 0;
  {
    std::unordered_set<Edge, EdgeHash> distinct;
    distinct.reserve(stream.size() * 2);
    for (const TemporalEdge& e : stream) distinct.insert({e.src, e.dst});
    numStatic = distinct.size();
  }

  EdgeLogHeader h{};
  std::memcpy(h.magic, kEdgeLogMagic, sizeof(h.magic));
  h.version = kEdgeLogVersion;
  h.headerBytes = sizeof(EdgeLogHeader);
  h.numVertices = data.numVertices;
  h.numEdges = stream.size();
  h.numStaticEdges = numStatic;
  h.payloadBytes = stream.size() * sizeof(TemporalEdge);
  h.checksum = checksum64(std::as_bytes(std::span(stream)));

  // Process-unique scratch, unlinked on failure (see writeCsrFile):
  // concurrent writers never interleave into one tmp, failed writes
  // never orphan one. Transient errors retry in io::writeFully; a
  // fail-point kill leaves the tmp for the recovery sweep, like a real
  // crash would.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const std::string what = "edge log '" + path + "'";
  try {
    {
      io::FdFile out = io::FdFile::create(tmp, what, "elog.open");
      out.write(&h, sizeof(h), "elog.write");
      if (h.payloadBytes != 0)
        out.write(stream.data(), h.payloadBytes, "elog.write");
      out.sync("elog.fsync");
      out.close();
    }
    io::renameFile(tmp, path, what, "elog.rename");
    io::fsyncDirectory(std::filesystem::path(path).parent_path().string());
  } catch (const FailPointAbort&) {
    throw;
  } catch (const io::IoError& e) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    fail(path, e.what());
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
}

TemporalEdgeListData readTemporalEdgeLog(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(path, "cannot open");
  const EdgeLogHeader h = readAndCheckHeader(is, path);
  checkFileSize(h, path);

  TemporalEdgeListData data;
  data.numVertices = static_cast<VertexId>(h.numVertices);
  data.edges.resize(h.numEdges);
  is.read(reinterpret_cast<char*>(data.edges.data()),
          static_cast<std::streamsize>(h.payloadBytes));
  if (static_cast<std::uint64_t>(is.gcount()) != h.payloadBytes)
    fail(path, "truncated while reading records");
  if (checksum64(std::as_bytes(std::span(data.edges))) != h.checksum)
    fail(path, "checksum mismatch (corrupt file)");
  return data;
}

void verifyTemporalEdgeLog(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(path, "cannot open");
  const EdgeLogHeader h = readAndCheckHeader(is, path);
  checkFileSize(h, path);

  Checksum64 sum;
  std::vector<std::byte> buf(std::size_t{1} << 20);
  std::uint64_t remaining = h.payloadBytes;
  while (remaining > 0) {
    const auto chunk = static_cast<std::streamsize>(
        std::min<std::uint64_t>(remaining, buf.size()));
    is.read(reinterpret_cast<char*>(buf.data()), chunk);
    if (is.gcount() != chunk) fail(path, "truncated while reading records");
    sum.update(std::span(buf.data(), static_cast<std::size_t>(chunk)));
    remaining -= static_cast<std::uint64_t>(chunk);
  }
  if (sum.value() != h.checksum) fail(path, "checksum mismatch (corrupt file)");
}

TemporalEdgeLogReader::TemporalEdgeLogReader(const std::string& path,
                                             LogTailPolicy tail)
    : is_(path, std::ios::binary), path_(path) {
  if (!is_) fail(path, "cannot open");
  const EdgeLogHeader h = readAndCheckHeader(is_, path);
  numVertices_ = static_cast<VertexId>(h.numVertices);
  numEdges_ = h.numEdges;
  numStaticEdges_ = h.numStaticEdges;
  if (tail == LogTailPolicy::Strict) {
    checkFileSize(h, path);
    return;
  }
  // QuarantineTorn: clamp to the last complete record instead of
  // rejecting a short file — a crashed appender's torn final write is
  // clean EOF, not corruption. Oversize stays a hard error (see hpp).
  const auto size = fileSizeOrFail(path);
  const auto expected = sizeof(EdgeLogHeader) + h.payloadBytes;
  if (size > expected)
    fail(path, "oversize: expected " + std::to_string(expected) +
                   " bytes, file has " + std::to_string(size));
  if (size < expected) {
    const std::uint64_t payloadAvail =
        size > sizeof(EdgeLogHeader) ? size - sizeof(EdgeLogHeader) : 0;
    numEdges_ = payloadAvail / sizeof(TemporalEdge);
    tornTail_ = true;
    // The torn bytes physically present past the last whole record.
    quarantinedBytes_ = payloadAvail % sizeof(TemporalEdge);
  }
}

void TemporalEdgeLogReader::seek(EdgeId index) {
  pos_ = std::min(index, numEdges_);
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(sizeof(EdgeLogHeader) +
                                        pos_ * sizeof(TemporalEdge)));
}

std::size_t TemporalEdgeLogReader::read(std::span<TemporalEdge> out) {
  const EdgeId left = numEdges_ - pos_;
  const std::size_t want =
      static_cast<std::size_t>(std::min<EdgeId>(left, out.size()));
  if (want == 0) return 0;
  is_.read(reinterpret_cast<char*>(out.data()),
           static_cast<std::streamsize>(want * sizeof(TemporalEdge)));
  if (static_cast<std::uint64_t>(is_.gcount()) != want * sizeof(TemporalEdge))
    fail(path_, "truncated while reading records");
  pos_ += want;
  return want;
}

}  // namespace lfpr
