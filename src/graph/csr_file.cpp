#include "graph/csr_file.hpp"

#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>

#include <unistd.h>

#include "util/checksum.hpp"
#include "util/io_retry.hpp"

namespace lfpr {

namespace {

constexpr std::size_t kAlign = 8;

std::uint64_t padded(std::uint64_t bytes) {
  return (bytes + (kAlign - 1)) & ~static_cast<std::uint64_t>(kAlign - 1);
}

/// Section sizes are pure functions of (n, m); the format has no section
/// table to corrupt or version-skew independently of the header.
struct Layout {
  std::uint64_t outOffsetsBytes, outTargetsBytes, inOffsetsBytes, inSourcesBytes,
      invOutDegBytes, payloadBytes;
};

Layout layoutFor(std::uint64_t n, std::uint64_t m) {
  Layout l{};
  l.outOffsetsBytes = (n + 1) * sizeof(EdgeId);
  l.outTargetsBytes = padded(m * sizeof(VertexId));
  l.inOffsetsBytes = (n + 1) * sizeof(EdgeId);
  l.inSourcesBytes = padded(m * sizeof(VertexId));
  l.invOutDegBytes = n * sizeof(double);
  l.payloadBytes = l.outOffsetsBytes + l.outTargetsBytes + l.inOffsetsBytes +
                   l.inSourcesBytes + l.invOutDegBytes;
  return l;
}

template <typename T>
std::span<const std::byte> asBytes(std::span<const T> s) {
  return std::as_bytes(s);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw CsrFileError("csr snapshot '" + path + "': " + what);
}

class SectionWriter {
 public:
  explicit SectionWriter(io::FdFile& out) : out_(out) {}

  template <typename T>
  void write(std::span<const T> s) {
    const auto bytes = asBytes(s);
    out_.write(bytes.data(), bytes.size(), "csr.write");
    sum_.update(bytes);
    const std::uint64_t pad = padded(bytes.size()) - bytes.size();
    if (pad != 0) {
      static constexpr char zeros[kAlign] = {};
      out_.write(zeros, pad, "csr.write");
      sum_.update(std::as_bytes(std::span(zeros, pad)));
    }
  }

  [[nodiscard]] std::uint64_t checksum() const { return sum_.value(); }

 private:
  io::FdFile& out_;
  Checksum64 sum_;
};

}  // namespace

void writeCsrFile(const std::string& path, const CsrGraph& g) {
  const std::uint64_t n = g.numVertices();
  const std::uint64_t m = g.numEdges();
  const Layout l = layoutFor(n, m);

  CsrFileHeader h{};
  std::memcpy(h.magic, kCsrFileMagic, sizeof(h.magic));
  h.version = kCsrFileVersion;
  h.headerBytes = sizeof(CsrFileHeader);
  h.numVertices = n;
  h.numEdges = m;
  h.payloadBytes = l.payloadBytes;

  // Process-unique scratch name: concurrent writers of the same cache
  // entry each fill their own tmp and the atomic rename publishes
  // whichever finishes, never an interleaving of both. On any failure the
  // scratch is unlinked — a scale-2 snapshot is hundreds of MB, and
  // orphaned tmp files would pile up in the dataset cache.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const std::string what = "csr snapshot '" + path + "'";
  try {
    {
      io::FdFile out = io::FdFile::create(tmp, what, "csr.open");
      // Header first as a placeholder: the checksum is only known after
      // the payload pass, so it is backpatched (pwrite at offset 0)
      // before the fsync-then-rename publishes the file.
      out.write(&h, sizeof(h), "csr.write");
      SectionWriter w(out);
      w.write(g.outOffsets());
      w.write(g.outTargets());
      w.write(g.inOffsets());
      w.write(g.inSources());
      w.write(g.invOutDegrees());
      h.checksum = w.checksum();
      out.pwriteAt(&h, sizeof(h), 0, "csr.backpatch");
      out.sync("csr.fsync");
      out.close();
    }
    io::renameFile(tmp, path, what, "csr.rename");
    io::fsyncDirectory(std::filesystem::path(path).parent_path().string());
  } catch (const FailPointAbort&) {
    // Simulated process death: a real crash would not unlink the tmp —
    // recovery's stale-tmp sweep owns that cleanup.
    throw;
  } catch (const io::IoError& e) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw CsrFileError("csr snapshot '" + path + "': " + e.what(),
                       e.errnoValue());
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
}

CsrGraph mapCsrFile(const std::string& path) {
  auto store = std::make_shared<CsrGraph::Storage>();
  store->map = MmapFile::open(path);
  const auto bytes = store->map.bytes();

  if (bytes.size() < sizeof(CsrFileHeader))
    fail(path, "truncated: " + std::to_string(bytes.size()) +
                   " bytes is smaller than the header");
  CsrFileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (std::memcmp(h.magic, kCsrFileMagic, sizeof(h.magic)) != 0)
    fail(path, "bad magic (not a CSR snapshot file)");
  if (h.version != kCsrFileVersion)
    fail(path, "unsupported format version " + std::to_string(h.version) +
                   " (this build reads version " + std::to_string(kCsrFileVersion) +
                   ")");
  if (h.headerBytes != sizeof(CsrFileHeader))
    fail(path, "header size mismatch");
  if (h.numVertices > std::numeric_limits<VertexId>::max() - 1)
    fail(path, "vertex count " + std::to_string(h.numVertices) +
                   " exceeds the 32-bit vertex id space (supported maximum " +
                   std::to_string(std::numeric_limits<VertexId>::max() - 1) +
                   ")");

  const Layout l = layoutFor(h.numVertices, h.numEdges);
  if (h.payloadBytes != l.payloadBytes)
    fail(path, "payload size field disagrees with |V|/|E|");
  if (bytes.size() != sizeof(CsrFileHeader) + l.payloadBytes)
    fail(path, "truncated: expected " +
                   std::to_string(sizeof(CsrFileHeader) + l.payloadBytes) +
                   " bytes, file has " + std::to_string(bytes.size()));

  store->map.adviseSequential();
  const std::span<const std::byte> payload = bytes.subspan(sizeof(CsrFileHeader));
  if (checksum64(payload) != h.checksum) fail(path, "checksum mismatch (corrupt file)");

  const std::byte* p = payload.data();
  const auto n = static_cast<std::size_t>(h.numVertices);
  const auto m = static_cast<std::size_t>(h.numEdges);

  CsrGraph g;
  g.outOffsets_ = {reinterpret_cast<const EdgeId*>(p), n + 1};
  p += l.outOffsetsBytes;
  g.outTargets_ = {reinterpret_cast<const VertexId*>(p), m};
  p += l.outTargetsBytes;
  g.inOffsets_ = {reinterpret_cast<const EdgeId*>(p), n + 1};
  p += l.inOffsetsBytes;
  g.inSources_ = {reinterpret_cast<const VertexId*>(p), m};
  p += l.inSourcesBytes;
  g.invOutDeg_ = {reinterpret_cast<const double*>(p), n};

  // Cheap header-vs-content coherence checks (full structural validation
  // is validate(), O(m log d) — callers opt in).
  if (n != 0 && (g.outOffsets_[0] != 0 || g.outOffsets_[n] != m ||
                 g.inOffsets_[0] != 0 || g.inOffsets_[n] != m))
    fail(path, "offset arrays disagree with the header edge count");

  g.store_ = std::move(store);
  return g;
}

std::uint64_t csrFileChecksum(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  CsrFileHeader h{};
  const std::size_t got = std::fread(&h, 1, sizeof(h), f);
  std::fclose(f);
  if (got != sizeof(h)) fail(path, "truncated: file is smaller than the header");
  if (std::memcmp(h.magic, kCsrFileMagic, sizeof(h.magic)) != 0)
    fail(path, "bad magic (not a CSR snapshot file)");
  if (h.version != kCsrFileVersion)
    fail(path, "unsupported format version " + std::to_string(h.version));
  return h.checksum;
}

CsrGraph readCsrFile(const std::string& path) {
  const CsrGraph mapped = mapCsrFile(path);
  auto s = std::make_shared<CsrGraph::Storage>();
  s->outOffsets.assign(mapped.outOffsets_.begin(), mapped.outOffsets_.end());
  s->outTargets.assign(mapped.outTargets_.begin(), mapped.outTargets_.end());
  s->inOffsets.assign(mapped.inOffsets_.begin(), mapped.inOffsets_.end());
  s->inSources.assign(mapped.inSources_.begin(), mapped.inSources_.end());
  s->invOutDeg.assign(mapped.invOutDeg_.begin(), mapped.invOutDeg_.end());
  CsrGraph g;
  g.outOffsets_ = s->outOffsets;
  g.outTargets_ = s->outTargets;
  g.inOffsets_ = s->inOffsets;
  g.inSources_ = s->inSources;
  g.invOutDeg_ = s->invOutDeg;
  g.store_ = std::move(s);
  return g;
}

}  // namespace lfpr
