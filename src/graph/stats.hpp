// Descriptive graph statistics, used to print the dataset tables
// (Tables 1 & 2 of the paper) and to sanity-check generators.
#pragma once

#include "graph/csr.hpp"

namespace lfpr {

struct GraphStats {
  VertexId numVertices = 0;
  EdgeId numEdges = 0;
  double avgOutDegree = 0.0;
  VertexId maxOutDegree = 0;
  VertexId maxInDegree = 0;
  VertexId numDeadEnds = 0;    // out-degree 0 (should be 0 after self-loops)
  VertexId numSelfLoops = 0;
  VertexId numIsolated = 0;    // in-degree + out-degree == 0
};

GraphStats computeStats(const CsrGraph& g);

}  // namespace lfpr
