#include "graph/stats.hpp"

#include <algorithm>

namespace lfpr {

GraphStats computeStats(const CsrGraph& g) {
  GraphStats s;
  s.numVertices = g.numVertices();
  s.numEdges = g.numEdges();
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    const VertexId od = g.outDegree(v);
    const VertexId id = g.inDegree(v);
    s.maxOutDegree = std::max(s.maxOutDegree, od);
    s.maxInDegree = std::max(s.maxInDegree, id);
    if (od == 0) ++s.numDeadEnds;
    if (od == 0 && id == 0) ++s.numIsolated;
    if (g.hasEdge(v, v)) ++s.numSelfLoops;
  }
  s.avgOutDegree = s.numVertices == 0
                       ? 0.0
                       : static_cast<double>(s.numEdges) / static_cast<double>(s.numVertices);
  return s;
}

}  // namespace lfpr
