#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace lfpr {

CsrGraph CsrGraph::fromEdges(VertexId numVertices, std::span<const Edge> edges,
                             bool dedup) {
  std::vector<Edge> sorted(edges.begin(), edges.end());
  for (const Edge& e : sorted) {
    if (e.src >= numVertices || e.dst >= numVertices)
      throw std::out_of_range("CsrGraph::fromEdges: edge endpoint out of range");
  }
  std::sort(sorted.begin(), sorted.end());
  if (dedup) sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  auto s = std::make_shared<Storage>();
  const std::size_t n = numVertices;
  const std::size_t m = sorted.size();

  s->outOffsets.assign(n + 1, 0);
  s->outTargets.resize(m);
  for (const Edge& e : sorted) ++s->outOffsets[e.src + 1];
  for (std::size_t i = 1; i <= n; ++i) s->outOffsets[i] += s->outOffsets[i - 1];
  for (std::size_t i = 0; i < m; ++i) s->outTargets[i] = sorted[i].dst;

  // In-adjacency via counting sort on destination.
  s->inOffsets.assign(n + 1, 0);
  s->inSources.resize(m);
  for (const Edge& e : sorted) ++s->inOffsets[e.dst + 1];
  for (std::size_t i = 1; i <= n; ++i) s->inOffsets[i] += s->inOffsets[i - 1];
  std::vector<EdgeId> cursor(s->inOffsets.begin(), s->inOffsets.end() - 1);
  for (const Edge& e : sorted) s->inSources[cursor[e.dst]++] = e.src;
  // Sources land in sorted order already because `sorted` is (src, dst)
  // ordered and the counting pass is stable.

  // Contribution cache: the pull kernels read R[u] * invOutDeg_[u] instead
  // of dividing by outDegree(u) per edge. Dead ends get 0.0 (never read).
  s->invOutDeg.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    const EdgeId d = s->outOffsets[u + 1] - s->outOffsets[u];
    s->invOutDeg[u] = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }

  CsrGraph g;
  g.outOffsets_ = s->outOffsets;
  g.outTargets_ = s->outTargets;
  g.inOffsets_ = s->inOffsets;
  g.inSources_ = s->inSources;
  g.invOutDeg_ = s->invOutDeg;
  g.store_ = std::move(s);
  return g;
}

bool CsrGraph::isMapped() const noexcept {
  return store_ != nullptr && !store_->map.empty();
}

bool CsrGraph::hasEdge(VertexId u, VertexId v) const noexcept {
  if (u >= numVertices() || v >= numVertices()) return false;
  const auto adj = out(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::vector<Edge> CsrGraph::edges() const {
  std::vector<Edge> result;
  result.reserve(numEdges());
  for (VertexId u = 0; u < numVertices(); ++u)
    for (VertexId v : out(u)) result.push_back({u, v});
  return result;
}

bool operator==(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.outOffsets_, b.outOffsets_) &&
         std::ranges::equal(a.outTargets_, b.outTargets_) &&
         std::ranges::equal(a.inOffsets_, b.inOffsets_) &&
         std::ranges::equal(a.inSources_, b.inSources_) &&
         std::ranges::equal(a.invOutDeg_, b.invOutDeg_);
}

void CsrGraph::validate() const {
  const VertexId n = numVertices();
  if (outOffsets_.size() != inOffsets_.size())
    throw std::logic_error("csr: offset array size mismatch");
  if (outOffsets_.back() != outTargets_.size() || inOffsets_.back() != inSources_.size())
    throw std::logic_error("csr: offsets do not cover target arrays");
  EdgeId outEdges = 0, inEdges = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (outOffsets_[u] > outOffsets_[u + 1] || inOffsets_[u] > inOffsets_[u + 1])
      throw std::logic_error("csr: non-monotone offsets");
    const auto adj = out(u);
    if (!std::is_sorted(adj.begin(), adj.end()))
      throw std::logic_error("csr: out adjacency not sorted");
    if (std::adjacent_find(adj.begin(), adj.end()) != adj.end())
      throw std::logic_error("csr: duplicate out edge");
    for (VertexId v : adj) {
      if (v >= n) throw std::logic_error("csr: out target out of range");
    }
    outEdges += adj.size();
    inEdges += in(u).size();
  }
  if (outEdges != inEdges) throw std::logic_error("csr: in/out edge count mismatch");
  // Contribution cache must agree exactly with the offsets it was derived
  // from: 1/d is deterministic in IEEE-754, so equality (not tolerance) is
  // the invariant — including 0.0 (not inf/NaN) on dead ends.
  if (invOutDeg_.size() != n)
    throw std::logic_error("csr: invOutDeg size mismatch");
  for (VertexId u = 0; u < n; ++u) {
    const VertexId d = outDegree(u);
    const double expected = d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
    if (invOutDeg_[u] != expected)
      throw std::logic_error("csr: invOutDeg inconsistent with out degree");
  }
  // Cross-check: every out edge must appear in the destination's in-list.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : out(u)) {
      const auto srcs = in(v);
      if (!std::binary_search(srcs.begin(), srcs.end(), u))
        throw std::logic_error("csr: out edge missing from in adjacency");
    }
  }
}

}  // namespace lfpr
