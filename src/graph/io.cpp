#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lfpr {

namespace {

bool isCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

std::ifstream openOrThrow(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open file: " + path);
  return f;
}

}  // namespace

EdgeListData readEdgeList(std::istream& is) {
  EdgeListData data;
  std::string line;
  VertexId maxId = 0;
  bool any = false;
  while (std::getline(is, line)) {
    if (isCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) throw std::runtime_error("malformed edge list line: " + line);
    data.edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    maxId = std::max({maxId, static_cast<VertexId>(u), static_cast<VertexId>(v)});
    any = true;
  }
  data.numVertices = any ? maxId + 1 : 0;
  return data;
}

EdgeListData readEdgeListFile(const std::string& path) {
  auto f = openOrThrow(path);
  return readEdgeList(f);
}

TemporalEdgeListData readTemporalEdgeList(std::istream& is) {
  TemporalEdgeListData data;
  std::string line;
  VertexId maxId = 0;
  bool any = false;
  while (std::getline(is, line)) {
    if (isCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0, t = 0;
    if (!(ls >> u >> v >> t))
      throw std::runtime_error("malformed temporal edge list line: " + line);
    data.edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v), t});
    maxId = std::max({maxId, static_cast<VertexId>(u), static_cast<VertexId>(v)});
    any = true;
  }
  data.numVertices = any ? maxId + 1 : 0;
  return data;
}

TemporalEdgeListData readTemporalEdgeListFile(const std::string& path) {
  auto f = openOrThrow(path);
  return readTemporalEdgeList(f);
}

void writeEdgeList(std::ostream& os, const std::vector<Edge>& edges,
                   const std::string& comment) {
  if (!comment.empty()) os << "# " << comment << '\n';
  for (const Edge& e : edges) os << e.src << ' ' << e.dst << '\n';
}

EdgeListData readMatrixMarket(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("%%MatrixMarket", 0) != 0)
    throw std::runtime_error("not a MatrixMarket file");

  std::istringstream hs(line);
  std::string tag, object, format, field, symmetry;
  hs >> tag >> object >> format >> field >> symmetry;
  if (format != "coordinate")
    throw std::runtime_error("only coordinate MatrixMarket supported");
  const bool symmetric = symmetry == "symmetric" || symmetry == "skew-symmetric";
  const bool pattern = field == "pattern";

  // Skip comments, read the size line.
  while (std::getline(is, line)) {
    if (!isCommentOrBlank(line)) break;
  }
  std::istringstream ss(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(ss >> rows >> cols >> nnz))
    throw std::runtime_error("malformed MatrixMarket size line");

  EdgeListData data;
  data.numVertices = static_cast<VertexId>(std::max(rows, cols));
  data.edges.reserve(symmetric ? 2 * nnz : nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    if (!std::getline(is, line))
      throw std::runtime_error("MatrixMarket: unexpected end of file");
    if (isCommentOrBlank(line)) {
      --i;
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t r = 0, c = 0;
    double w = 0.0;
    if (!(ls >> r >> c)) throw std::runtime_error("malformed MatrixMarket entry");
    if (!pattern) ls >> w;  // discard weight if present
    if (r == 0 || c == 0) throw std::runtime_error("MatrixMarket entries are 1-based");
    const auto u = static_cast<VertexId>(r - 1);
    const auto v = static_cast<VertexId>(c - 1);
    data.edges.push_back({u, v});
    if (symmetric && u != v) data.edges.push_back({v, u});
  }
  return data;
}

EdgeListData readMatrixMarketFile(const std::string& path) {
  auto f = openOrThrow(path);
  return readMatrixMarket(f);
}

void writeMatrixMarket(std::ostream& os, VertexId numVertices,
                       const std::vector<Edge>& edges) {
  os << "%%MatrixMarket matrix coordinate pattern general\n";
  os << numVertices << ' ' << numVertices << ' ' << edges.size() << '\n';
  for (const Edge& e : edges) os << (e.src + 1) << ' ' << (e.dst + 1) << '\n';
}

}  // namespace lfpr
