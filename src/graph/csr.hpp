// Immutable CSR snapshot with both out- and in-adjacency.
//
// Every PageRank engine in the paper pulls rank over incoming edges
// (R[v] += alpha * R[u]/outdeg(u) for u in G.in(v)) and pushes frontier
// marks over outgoing edges (mark G.out(v)), so a snapshot stores both
// directions. Snapshots are read-only: the batch-dynamic setting
// (Section 3.4) interleaves updates and computation via immutable
// snapshots taken from DynamicDigraph.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace lfpr {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an edge list. Self-loops are kept; duplicate edges are
  /// removed iff `dedup` (the paper's static graphs are simple graphs).
  static CsrGraph fromEdges(VertexId numVertices, std::span<const Edge> edges,
                            bool dedup = true);

  [[nodiscard]] VertexId numVertices() const noexcept {
    return static_cast<VertexId>(outOffsets_.empty() ? 0 : outOffsets_.size() - 1);
  }
  [[nodiscard]] EdgeId numEdges() const noexcept {
    return outOffsets_.empty() ? 0 : outOffsets_.back();
  }

  [[nodiscard]] std::span<const VertexId> out(VertexId u) const noexcept {
    return {outTargets_.data() + outOffsets_[u],
            outTargets_.data() + outOffsets_[u + 1]};
  }
  [[nodiscard]] std::span<const VertexId> in(VertexId v) const noexcept {
    return {inSources_.data() + inOffsets_[v], inSources_.data() + inOffsets_[v + 1]};
  }

  [[nodiscard]] VertexId outDegree(VertexId u) const noexcept {
    return static_cast<VertexId>(outOffsets_[u + 1] - outOffsets_[u]);
  }
  [[nodiscard]] VertexId inDegree(VertexId v) const noexcept {
    return static_cast<VertexId>(inOffsets_[v + 1] - inOffsets_[v]);
  }

  /// Precomputed 1 / outDegree(u), or 0.0 for a dead end (outDegree 0).
  /// The rank-pull kernels multiply by this instead of dividing per edge;
  /// a dead end never appears in any in-list, so its 0.0 is never read by
  /// the kernels and merely keeps the array total (validate() checks it).
  /// A vertex whose only out-edge is a self-loop (the paper's dead-end
  /// elimination, Section 5.1.3) has outDegree 1 and weight 1.0.
  [[nodiscard]] double invOutDegree(VertexId u) const noexcept {
    return invOutDeg_[u];
  }
  [[nodiscard]] std::span<const double> invOutDegrees() const noexcept {
    return invOutDeg_;
  }

  /// True if the edge u -> v exists (binary search over sorted adjacency).
  [[nodiscard]] bool hasEdge(VertexId u, VertexId v) const noexcept;

  /// All edges, in (src, dst) sorted order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Structural invariants: sorted adjacency, in/out consistency, offsets
  /// monotone. Throws std::logic_error on violation (used by tests and by
  /// debug assertions in the harness).
  void validate() const;

  friend bool operator==(const CsrGraph& a, const CsrGraph& b) = default;

 private:
  std::vector<EdgeId> outOffsets_;
  std::vector<VertexId> outTargets_;
  std::vector<EdgeId> inOffsets_;
  std::vector<VertexId> inSources_;
  std::vector<double> invOutDeg_;
};

}  // namespace lfpr
