// Immutable CSR snapshot with both out- and in-adjacency.
//
// Every PageRank engine in the paper pulls rank over incoming edges
// (R[v] += alpha * R[u]/outdeg(u) for u in G.in(v)) and pushes frontier
// marks over outgoing edges (mark G.out(v)), so a snapshot stores both
// directions. Snapshots are read-only: the batch-dynamic setting
// (Section 3.4) interleaves updates and computation via immutable
// snapshots taken from DynamicDigraph.
//
// Storage is a shared immutable block behind the accessor spans: either
// vectors built by fromEdges, or a memory-mapped snapshot file
// (csr_file.hpp) read in place. Copies share the block (cheap, safe —
// it never mutates), so engines, kernels and benches are agnostic to
// whether a snapshot was built in-process or mapped from disk.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/mmap_file.hpp"

namespace lfpr {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an edge list. Self-loops are kept; duplicate edges are
  /// removed iff `dedup` (the paper's static graphs are simple graphs).
  static CsrGraph fromEdges(VertexId numVertices, std::span<const Edge> edges,
                            bool dedup = true);

  [[nodiscard]] VertexId numVertices() const noexcept {
    return static_cast<VertexId>(outOffsets_.empty() ? 0 : outOffsets_.size() - 1);
  }
  [[nodiscard]] EdgeId numEdges() const noexcept {
    return outOffsets_.empty() ? 0 : outOffsets_.back();
  }

  [[nodiscard]] std::span<const VertexId> out(VertexId u) const noexcept {
    return {outTargets_.data() + outOffsets_[u],
            outTargets_.data() + outOffsets_[u + 1]};
  }
  [[nodiscard]] std::span<const VertexId> in(VertexId v) const noexcept {
    return {inSources_.data() + inOffsets_[v], inSources_.data() + inOffsets_[v + 1]};
  }

  [[nodiscard]] VertexId outDegree(VertexId u) const noexcept {
    return static_cast<VertexId>(outOffsets_[u + 1] - outOffsets_[u]);
  }
  [[nodiscard]] VertexId inDegree(VertexId v) const noexcept {
    return static_cast<VertexId>(inOffsets_[v + 1] - inOffsets_[v]);
  }

  /// Precomputed 1 / outDegree(u), or 0.0 for a dead end (outDegree 0).
  /// The rank-pull kernels multiply by this instead of dividing per edge;
  /// a dead end never appears in any in-list, so its 0.0 is never read by
  /// the kernels and merely keeps the array total (validate() checks it).
  /// A vertex whose only out-edge is a self-loop (the paper's dead-end
  /// elimination, Section 5.1.3) has outDegree 1 and weight 1.0.
  [[nodiscard]] double invOutDegree(VertexId u) const noexcept {
    return invOutDeg_[u];
  }
  [[nodiscard]] std::span<const double> invOutDegrees() const noexcept {
    return invOutDeg_;
  }

  /// True if the snapshot's arrays live in a mapped file rather than
  /// process-owned vectors (diagnostics; behaviour is identical).
  [[nodiscard]] bool isMapped() const noexcept;

  /// True if the edge u -> v exists (binary search over sorted adjacency).
  [[nodiscard]] bool hasEdge(VertexId u, VertexId v) const noexcept;

  /// All edges, in (src, dst) sorted order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Structural invariants: sorted adjacency, in/out consistency, offsets
  /// monotone. Throws std::logic_error on violation (used by tests and by
  /// debug assertions in the harness).
  void validate() const;

  /// Deep content equality (spans compared element-wise; where the bytes
  /// live — vectors or a mapping — does not matter).
  friend bool operator==(const CsrGraph& a, const CsrGraph& b);

  /// Raw array views for serialization (csr_file.cpp).
  [[nodiscard]] std::span<const EdgeId> outOffsets() const noexcept {
    return outOffsets_;
  }
  [[nodiscard]] std::span<const VertexId> outTargets() const noexcept {
    return outTargets_;
  }
  [[nodiscard]] std::span<const EdgeId> inOffsets() const noexcept {
    return inOffsets_;
  }
  [[nodiscard]] std::span<const VertexId> inSources() const noexcept {
    return inSources_;
  }

 private:
  friend CsrGraph mapCsrFile(const std::string& path);
  friend CsrGraph readCsrFile(const std::string& path);

  /// One immutable block per snapshot: the vectors when built in-process,
  /// the mapping when loaded from a snapshot file. Shared by copies.
  struct Storage {
    std::vector<EdgeId> outOffsets;
    std::vector<VertexId> outTargets;
    std::vector<EdgeId> inOffsets;
    std::vector<VertexId> inSources;
    std::vector<double> invOutDeg;
    MmapFile map;  // engaged iff the spans point into a mapped file
  };

  std::shared_ptr<const Storage> store_;
  std::span<const EdgeId> outOffsets_;
  std::span<const VertexId> outTargets_;
  std::span<const EdgeId> inOffsets_;
  std::span<const VertexId> inSources_;
  std::span<const double> invOutDeg_;
};

}  // namespace lfpr
