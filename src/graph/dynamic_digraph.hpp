// Mutable directed graph supporting the paper's batch-dynamic setting:
// apply a batch Δt = (Δt-, Δt+) of edge deletions and insertions between
// snapshots, keep self-loops on every vertex (dead-end elimination,
// Section 5.1.3), and produce immutable CSR snapshots for the engines.
//
// Adjacency is stored as sorted vectors per vertex: O(log d) membership,
// O(d) insert/erase — fine for laptop-scale graphs and batch sizes, and
// cache-friendly for the snapshot pass.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lfpr {

class DynamicDigraph {
 public:
  explicit DynamicDigraph(VertexId numVertices = 0);

  static DynamicDigraph fromEdges(VertexId numVertices, std::span<const Edge> edges);
  static DynamicDigraph fromCsr(const CsrGraph& g);

  [[nodiscard]] VertexId numVertices() const noexcept {
    return static_cast<VertexId>(out_.size());
  }
  [[nodiscard]] EdgeId numEdges() const noexcept { return numEdges_; }

  [[nodiscard]] bool hasEdge(VertexId u, VertexId v) const noexcept;

  /// Insert edge u -> v; returns false if it already existed.
  bool addEdge(VertexId u, VertexId v);

  /// Remove edge u -> v; returns false if absent.
  bool removeEdge(VertexId u, VertexId v);

  /// Apply a batch: deletions first, then insertions (so a batch may
  /// delete and re-insert the same edge). Edges whose endpoints are out of
  /// range throw; deletions of absent edges and duplicate insertions are
  /// counted and reported.
  struct ApplyReport {
    std::size_t deleted = 0;
    std::size_t missedDeletions = 0;  // deletion of an edge that was absent
    std::size_t inserted = 0;
    std::size_t duplicateInsertions = 0;
  };
  ApplyReport applyBatch(const BatchUpdate& batch);

  /// Add a self-loop to every vertex that lacks one. The paper adds
  /// self-loops to *all* vertices to eliminate dead ends, so the teleport
  /// contribution of rank sinks never needs a global pass.
  std::size_t ensureSelfLoops();

  [[nodiscard]] std::span<const VertexId> out(VertexId u) const noexcept {
    return out_[u];
  }
  [[nodiscard]] std::span<const VertexId> in(VertexId v) const noexcept { return in_[v]; }
  [[nodiscard]] VertexId outDegree(VertexId u) const noexcept {
    return static_cast<VertexId>(out_[u].size());
  }

  /// Immutable snapshot for engine consumption.
  [[nodiscard]] CsrGraph toCsr() const;

  /// All current edges in (src, dst) order.
  [[nodiscard]] std::vector<Edge> edges() const;

 private:
  void checkVertex(VertexId v) const;

  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  EdgeId numEdges_ = 0;
};

}  // namespace lfpr
