// Edge-list I/O in the two formats the paper's datasets ship in:
// SNAP-style whitespace edge lists ("# comment" headers, one "u v" or
// "u v t" per line) and MatrixMarket coordinate format (SuiteSparse).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace lfpr {

/// A timestamped edge from a temporal network (Table 1 datasets).
struct TemporalEdge {
  VertexId src = 0;
  VertexId dst = 0;
  std::uint64_t time = 0;

  friend bool operator==(const TemporalEdge&, const TemporalEdge&) = default;
};

struct EdgeListData {
  VertexId numVertices = 0;  // 1 + max vertex id seen
  std::vector<Edge> edges;
};

struct TemporalEdgeListData {
  VertexId numVertices = 0;
  std::vector<TemporalEdge> edges;  // in file order
};

/// Read a SNAP-style edge list: lines "u v", '#' or '%' comments ignored.
EdgeListData readEdgeList(std::istream& is);
EdgeListData readEdgeListFile(const std::string& path);

/// Read a SNAP-style temporal edge list: lines "u v t".
TemporalEdgeListData readTemporalEdgeList(std::istream& is);
TemporalEdgeListData readTemporalEdgeListFile(const std::string& path);

/// Write "u v" per line with a comment header.
void writeEdgeList(std::ostream& os, const std::vector<Edge>& edges,
                   const std::string& comment = {});

/// Read MatrixMarket coordinate format. `general` and `symmetric`
/// matrices are supported; symmetric entries produce both directions
/// (the paper's treatment of undirected SuiteSparse graphs). Pattern and
/// weighted matrices are both accepted; weights are discarded.
EdgeListData readMatrixMarket(std::istream& is);
EdgeListData readMatrixMarketFile(const std::string& path);

void writeMatrixMarket(std::ostream& os, VertexId numVertices,
                       const std::vector<Edge>& edges);

}  // namespace lfpr
