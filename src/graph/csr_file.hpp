// Versioned binary on-disk CSR snapshot format.
//
// Layout (little-endian, all sections 8-byte aligned):
//
//   CsrFileHeader   48 bytes: magic "LFPRCSR\n", version, header size,
//                   |V|, |E|, payload byte count, payload checksum
//   outOffsets      (|V|+1) x u64
//   outTargets      |E| x u32, zero-padded to 8 bytes
//   inOffsets       (|V|+1) x u64
//   inSources       |E| x u32, zero-padded to 8 bytes
//   invOutDeg       |V| x f64
//
// The section layout is fully determined by (|V|, |E|), so a mapped file
// is consumed zero-copy: mapCsrFile() returns a CsrGraph whose spans
// point into the mapping (shared, immutable, mutex-free — the pull
// kernels and engines read it exactly like an in-process snapshot).
// Every load verifies magic, version, size arithmetic and the payload
// checksum, and rejects corrupt files with a CsrFileError naming the
// path and the failure.
#pragma once

#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace lfpr {

inline constexpr std::uint32_t kCsrFileVersion = 1;
inline constexpr char kCsrFileMagic[8] = {'L', 'F', 'P', 'R', 'C', 'S', 'R', '\n'};

struct CsrFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t headerBytes;
  std::uint64_t numVertices;
  std::uint64_t numEdges;
  std::uint64_t payloadBytes;
  std::uint64_t checksum;
};
static_assert(sizeof(CsrFileHeader) == 48, "header layout is part of the format");

class CsrFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
  CsrFileError(const std::string& what, int err)
      : std::runtime_error(what), errno_(err) {}

  /// errno of the underlying syscall failure, 0 for format errors.
  [[nodiscard]] int errnoValue() const noexcept { return errno_; }
  [[nodiscard]] bool diskFull() const noexcept { return errno_ == ENOSPC; }

 private:
  int errno_ = 0;
};

/// Serialize a snapshot. Writes to `path` + ".tmp" then fsyncs and
/// renames, so a crashed writer never leaves a plausible-looking partial
/// snapshot behind. Transient write failures (EINTR/EAGAIN, short
/// writes) are retried with bounded backoff; permanent ones throw
/// CsrFileError (wrapping the errno text — disk-full is detectable by
/// callers via the nested io::IoError where they need to degrade rather
/// than fail).
void writeCsrFile(const std::string& path, const CsrGraph& g);

/// Zero-copy load: validate the file, then return a CsrGraph borrowing
/// the mapping (kept alive by the graph's shared storage). Throws
/// CsrFileError on bad magic, unsupported version, truncation/size
/// mismatch, or checksum mismatch.
CsrGraph mapCsrFile(const std::string& path);

/// Owned load: like mapCsrFile but copies the arrays into process-owned
/// vectors (no mapping outlives the call).
CsrGraph readCsrFile(const std::string& path);

/// The payload checksum recorded in `path`'s header (magic/version
/// validated, payload not re-read). The checkpoint sidecar stores this to
/// bind its meta half to one specific csr half.
std::uint64_t csrFileChecksum(const std::string& path);

}  // namespace lfpr
