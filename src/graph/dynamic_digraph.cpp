#include "graph/dynamic_digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace lfpr {

namespace {

bool sortedContains(const std::vector<VertexId>& v, VertexId x) noexcept {
  return std::binary_search(v.begin(), v.end(), x);
}

bool sortedInsert(std::vector<VertexId>& v, VertexId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

bool sortedErase(std::vector<VertexId>& v, VertexId x) noexcept {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

}  // namespace

DynamicDigraph::DynamicDigraph(VertexId numVertices)
    : out_(numVertices), in_(numVertices) {}

DynamicDigraph DynamicDigraph::fromEdges(VertexId numVertices,
                                         std::span<const Edge> edges) {
  DynamicDigraph g(numVertices);
  for (const Edge& e : edges) g.addEdge(e.src, e.dst);
  return g;
}

DynamicDigraph DynamicDigraph::fromCsr(const CsrGraph& src) {
  DynamicDigraph g(src.numVertices());
  for (VertexId u = 0; u < src.numVertices(); ++u) {
    const auto adj = src.out(u);
    g.out_[u].assign(adj.begin(), adj.end());
    const auto srcs = src.in(u);
    g.in_[u].assign(srcs.begin(), srcs.end());
  }
  g.numEdges_ = src.numEdges();
  return g;
}

void DynamicDigraph::checkVertex(VertexId v) const {
  if (v >= numVertices())
    throw std::out_of_range("DynamicDigraph: vertex id out of range");
}

bool DynamicDigraph::hasEdge(VertexId u, VertexId v) const noexcept {
  if (u >= numVertices() || v >= numVertices()) return false;
  return sortedContains(out_[u], v);
}

bool DynamicDigraph::addEdge(VertexId u, VertexId v) {
  checkVertex(u);
  checkVertex(v);
  if (!sortedInsert(out_[u], v)) return false;
  sortedInsert(in_[v], u);
  ++numEdges_;
  return true;
}

bool DynamicDigraph::removeEdge(VertexId u, VertexId v) {
  checkVertex(u);
  checkVertex(v);
  if (!sortedErase(out_[u], v)) return false;
  sortedErase(in_[v], u);
  --numEdges_;
  return true;
}

DynamicDigraph::ApplyReport DynamicDigraph::applyBatch(const BatchUpdate& batch) {
  ApplyReport report;
  for (const Edge& e : batch.deletions) {
    if (removeEdge(e.src, e.dst))
      ++report.deleted;
    else
      ++report.missedDeletions;
  }
  for (const Edge& e : batch.insertions) {
    if (addEdge(e.src, e.dst))
      ++report.inserted;
    else
      ++report.duplicateInsertions;
  }
  return report;
}

std::size_t DynamicDigraph::ensureSelfLoops() {
  std::size_t added = 0;
  for (VertexId v = 0; v < numVertices(); ++v)
    if (addEdge(v, v)) ++added;
  return added;
}

CsrGraph DynamicDigraph::toCsr() const {
  // Adjacency lists are already sorted and deduplicated; assemble offsets
  // directly instead of round-tripping through an edge list.
  const VertexId n = numVertices();
  std::vector<Edge> es;
  es.reserve(numEdges_);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : out_[u]) es.push_back({u, v});
  return CsrGraph::fromEdges(n, es, /*dedup=*/false);
}

std::vector<Edge> DynamicDigraph::edges() const {
  std::vector<Edge> es;
  es.reserve(numEdges_);
  for (VertexId u = 0; u < numVertices(); ++u)
    for (VertexId v : out_[u]) es.push_back({u, v});
  return es;
}

}  // namespace lfpr
