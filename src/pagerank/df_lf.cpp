// Lock-free, fault-tolerant Dynamic Frontier PageRank (Algorithm 2) —
// the paper's primary contribution. Phase 1 marks initially affected
// vertices with the helping mechanism (checked flags C); phase 2 iterates
// asynchronously over affected vertices with per-vertex converged flags
// RC and incremental frontier expansion. No barrier separates the phases:
// a thread moves on once it has *verified* (or re-done) everyone's
// marking work.
#include "pagerank/detail/dynamic_engines.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult dfLF(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt,
                    FaultInjector* fault) {
  return detail::dynamicLF(prev, curr, batch, prevRanks, opt, fault,
                           /*traverse=*/false, /*expandFrontier=*/true);
}

}  // namespace lfpr
