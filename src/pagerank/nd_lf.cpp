// Lock-free Naive-dynamic PageRank (Algorithm 6).
#include <stdexcept>

#include "pagerank/detail/power_lf.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult ndLF(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt, FaultInjector* fault) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("ndLF: prevRanks size must match graph");
  return detail::powerIterateLF(curr, {prevRanks.begin(), prevRanks.end()}, opt,
                                fault);
}

}  // namespace lfpr
