// Barrier-based Naive-dynamic PageRank (Algorithm 5): a full synchronous
// rerun on the updated graph, warm-started from the previous snapshot's
// ranks.
#include <stdexcept>

#include "pagerank/detail/power_bb.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult ndBB(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt, FaultInjector* fault) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("ndBB: prevRanks size must match graph");
  return detail::powerIterateBB(curr, {prevRanks.begin(), prevRanks.end()}, opt,
                                fault);
}

}  // namespace lfpr
