// Incremental Monte Carlo PageRank (opt-in; not one of the paper's
// eight): R random-walk segments per root, repaired per batch — see
// detail/monte_carlo.cpp for the protocol. This file is the one-shot
// wrapper plus the PprIndex query implementation; long-lived callers
// (service/rank_service.cpp) keep the walk store alive across steps
// through LfEngineState instead.
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/ppr.hpp"

#include <algorithm>
#include <vector>

namespace lfpr {

PageRankResult monteCarlo(const CsrGraph& prev, const CsrGraph& curr,
                          const BatchUpdate& batch, const PageRankOptions& opt,
                          FaultInjector* fault) {
  // Fresh store built on prev, one repair step to curr, ranks copied
  // out. No prevRanks parameter: the ranks are derived from the walks,
  // never seeded.
  detail::LfEngineState state(curr.numVertices());
  PageRankResult result =
      detail::lfMonteCarloStep(state, prev, curr, batch, opt, fault, "monteCarlo");
  result.ranks = state.ranks.toVector();
  return result;
}

std::vector<PprEntry> PprIndex::topK(VertexId root, std::size_t k) const {
  if (k == 0 || static_cast<std::size_t>(root) + 1 >= offsets.size()) return {};
  std::vector<VertexId> visited(visitLog.begin() + offsets[root],
                                visitLog.begin() + offsets[root + 1]);
  std::sort(visited.begin(), visited.end());

  std::vector<PprEntry> entries;
  const double scale = (1.0 - alpha) / static_cast<double>(walksPerVertex);
  for (std::size_t i = 0; i < visited.size();) {
    std::size_t j = i;
    while (j < visited.size() && visited[j] == visited[i]) ++j;
    const double count = static_cast<double>(j - i);
    entries.push_back({visited[i], scale * count,
                       mcPprErrorBound(alpha, walksPerVertex, count)});
    i = j;
  }
  std::sort(entries.begin(), entries.end(),
            [](const PprEntry& a, const PprEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.vertex < b.vertex;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

}  // namespace lfpr
