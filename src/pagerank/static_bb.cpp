// Barrier-based static PageRank (Algorithm 3).
#include "pagerank/detail/power_bb.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult staticBB(const CsrGraph& curr, const PageRankOptions& opt,
                        FaultInjector* fault) {
  const std::size_t n = curr.numVertices();
  std::vector<double> init(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  return detail::powerIterateBB(curr, std::move(init), opt, fault);
}

}  // namespace lfpr
