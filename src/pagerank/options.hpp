// Options and results shared by all eight PageRank engines.
//
// Defaults mirror the paper's configuration (Section 5.1.2): damping
// factor 0.85, iteration tolerance 1e-10 under the L-inf norm, frontier
// tolerance tau/1000 (Section 4.5), at most 500 iterations, dynamic
// chunks of 2048 vertices.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

namespace lfpr {

/// How the lock-free engines find the vertices that still need work.
enum class SchedulingMode : int {
  /// Dense scan: workers sweep the whole vertex range in dynamic chunks
  /// each round, filtered by the affected / notConverged flags. Cost per
  /// iteration is O(|V|) regardless of how small the dirty set is — the
  /// right default for static solves and large batches.
  Chunked,
  /// Sparse frontier: per-thread dirty-vertex rings (sched/work_ring.hpp)
  /// drive the iteration, so cost per iteration is O(frontier + touched
  /// edges). Opt-in; wins when a batch dirties a small fraction of the
  /// graph (see the README scheduling-modes section for the crossover).
  /// LF engines only — the barrier-based engines ignore it. Takes
  /// precedence over `staticSchedule`; `perChunkConvergence` is ignored
  /// (convergence is detected on the per-vertex flags).
  Worklist,
};

/// Memory layout the rank-pull kernel reads the in-adjacency from.
enum class PullLayout : int {
  /// The snapshot's CSR in-lists plus the per-source contribution cache
  /// (two arrays; no extra memory).
  Csr,
  /// A derived stream of (source, 1/outdeg) arcs built per solve — one
  /// sequential read stream for the kernel at the cost of O(m) extra
  /// memory and an O(n + m) build per snapshot.
  Weighted,
};

struct PageRankOptions {
  /// Damping factor alpha.
  double alpha = 0.85;
  /// Iteration tolerance tau (L-inf over consecutive iterations).
  double tolerance = 1e-10;
  /// Frontier tolerance tau_f: a rank change above this marks the
  /// vertex's out-neighbours as affected (Dynamic Frontier only).
  double frontierTolerance = 1e-13;
  /// Iteration cap (paper: 500).
  int maxIterations = 500;
  /// Worker threads; <= 0 selects hardware concurrency.
  int numThreads = 0;
  /// Vertices per dynamically-scheduled chunk.
  std::size_t chunkSize = 2048;
  /// DF-LF ablation: per-chunk instead of per-vertex converged flags
  /// ("one may use a per-chunk converged flag for even faster detection
  /// of convergence", Section 4.3).
  bool perChunkConvergence = false;
  /// Static-LF ablation: fixed per-thread vertex partitions instead of
  /// dynamic chunks — the Eedi et al. scheduling the paper improves on
  /// (Section 3.3.2).
  bool staticSchedule = false;
  /// In-adjacency layout for the rank-pull kernel (see PullLayout).
  PullLayout pullLayout = PullLayout::Csr;
  /// Work-discovery scheme for the lock-free engines (see SchedulingMode).
  SchedulingMode scheduling = SchedulingMode::Chunked;
  /// DeltaPush only: Ligra-PRDelta-style relative term of the activation
  /// threshold. A neighbour is activated when its residual crosses
  /// `tolerance + pushRelativeTolerance * |rank[v]|`; the default 0 keeps
  /// the threshold at the absolute per-vertex tau the flag protocol
  /// already uses, so the §4.5 certificate is the usual
  /// asyncToleranceBound. A positive value trades certificate tightness
  /// for fewer activations on high-rank vertices (ranks are bounded by 1,
  /// so the converged bound becomes asyncToleranceBound(tolerance +
  /// pushRelativeTolerance, alpha)).
  double pushRelativeTolerance = 0.0;
  /// MonteCarlo only: R — random-walk segments rooted at every vertex.
  /// Accuracy scales as 1/sqrt(R) (error.hpp mcL1ErrorBound), memory and
  /// build time as R. See the README R/accuracy table.
  int mcWalksPerVertex = 16;
  /// MonteCarlo only: hard cap on a walk segment's length (storage
  /// stride). A geometric(1 - alpha) walk exceeds length L with
  /// probability alpha^(L-1) — ~0.66% at the default 32 with alpha =
  /// 0.85 — and truncated walks bias long-range mass slightly low; raise
  /// the cap (<= 65535) when alpha is pushed toward 1.
  int mcMaxWalkLength = 32;
  /// MonteCarlo only: base seed of the counter-based per-(walk, epoch)
  /// RNG streams. Same seed + same batch schedule => bit-identical walk
  /// store, across runs and across service restarts.
  std::uint64_t mcSeed = 0x5eedULL;
  /// BB engines: how long a thread may wait at a barrier before the run
  /// is declared dead (crash-stop deadlock detection).
  std::chrono::milliseconds barrierTimeout{60'000};
  /// Service lifecycle hook: cooperative stop token. When non-null and
  /// set, workers exit at the next iteration boundary and the result
  /// comes back with `stopped = true` and `converged = false` (the
  /// convergence flags stay authoritative — a stopped run is never
  /// reported converged unless the flags were already clean). Lets a
  /// long-lived owner (RankService::stop()) end an in-flight solve
  /// promptly without killing threads.
  const std::atomic<bool>* stopRequested = nullptr;
};

/// True when the library was built with -DLFPR_STATS=ON and the
/// PageRankResult::protocolStats counters below are populated.
inline constexpr bool protocolStatsEnabled() noexcept {
#if defined(LFPR_STATS)
  return true;
#else
  return false;
#endif
}

/// Protocol-cost counters for the lock-free engines, so publish-protocol
/// costs are diagnosable without perf tools. Counted only when the
/// LFPR_STATS compile option is on (the fields always exist so the ABI
/// does not depend on the option); all-zero otherwise, and always zero
/// for the barrier-based engines.
struct ProtocolStats {
  /// Rank stores/exchanges published to the shared rank vector.
  std::uint64_t rankPublishes = 0;
  /// Clear-then-reverify re-pulls (termination protocol part 1).
  std::uint64_t rePulls = 0;
  /// RMWs on the notConverged / chunk flags (marks and clears).
  std::uint64_t flagRmws = 0;
  /// Successful dirty-vertex ring pushes (Worklist scheduling only).
  std::uint64_t ringPushes = 0;
  /// Residual fetch-adds into out-neighbours (DeltaPush only) — the
  /// push-engine analogue of per-edge pull work, so push-vs-pull
  /// redundant-work claims are measurable, not inferred.
  std::uint64_t residualPushes = 0;
  /// Threshold-crossing activations (DeltaPush only): pushes whose
  /// target residual crossed the activation threshold and entered the
  /// worklist (counted by WorklistScheduler::activate).
  std::uint64_t activations = 0;
};

struct PageRankResult {
  std::vector<double> ranks;
  /// Iterations executed (LF: the maximum round any thread completed).
  int iterations = 0;
  bool converged = false;
  /// The run exited early because PageRankOptions::stopRequested was set.
  bool stopped = false;
  /// Rank-error certificate (paper Section 4.5): an upper bound on
  /// ||ranks - r*||_inf against the true fixpoint, derived from the
  /// stopping rule actually used — syncToleranceBound for the
  /// barrier-based engines, asyncToleranceBound for the lock-free ones
  /// (error.hpp). Infinity when the run did not converge: an unconverged
  /// rank vector certifies nothing.
  double toleranceBound = std::numeric_limits<double>::infinity();
  /// Did-not-finish: a barrier broke (some thread crashed or stalled past
  /// the timeout). BB engines only; LF engines never DNF.
  bool dnf = false;
  /// Solve time measured inside the engine, excluding result-vector
  /// allocation/deallocation (the paper's measurement protocol, 5.1.5).
  double timeMs = 0.0;
  /// Total time threads spent waiting at iteration barriers (BB only).
  double waitMs = 0.0;
  /// Vertex-rank computations performed across all threads.
  std::uint64_t rankUpdates = 0;
  /// Vertices marked affected (DF/DT engines).
  std::uint64_t affectedVertices = 0;
  /// The ranks are Monte-Carlo estimates (Approach::MonteCarlo):
  /// `toleranceBound` is then the *statistical* L1 scale
  /// mcL1ErrorBound(alpha, R) — expected error with a safety factor —
  /// NOT the worst-case §4.5 certificate the exact engines carry.
  bool monteCarlo = false;
  /// See ProtocolStats — populated only in LFPR_STATS builds.
  ProtocolStats protocolStats;
};

enum class Approach : int {
  StaticBB,
  StaticLF,
  NDBB,
  NDLF,
  DTBB,
  DTLF,
  DFBB,
  DFLF,
  /// Opt-in third engine family (not one of the paper's eight): lock-free
  /// forward-push over per-vertex residual accumulators, DF marking
  /// semantics. See pagerank.hpp deltaPush().
  DeltaPush,
  /// Opt-in approximate engine (not one of the paper's eight): Bahmani-
  /// style incremental Monte Carlo — R random-walk segments per root,
  /// repaired per batch via the DF marks + worklist claim machinery;
  /// also serves personalized PageRank. See pagerank.hpp monteCarlo().
  MonteCarlo,
};

inline const char* approachName(Approach a) noexcept {
  switch (a) {
    case Approach::StaticBB: return "StaticBB";
    case Approach::StaticLF: return "StaticLF";
    case Approach::NDBB: return "NDBB";
    case Approach::NDLF: return "NDLF";
    case Approach::DTBB: return "DTBB";
    case Approach::DTLF: return "DTLF";
    case Approach::DFBB: return "DFBB";
    case Approach::DFLF: return "DFLF";
    case Approach::DeltaPush: return "DeltaPush";
    case Approach::MonteCarlo: return "MonteCarlo";
  }
  return "?";
}

inline bool isLockFree(Approach a) noexcept {
  return a == Approach::StaticLF || a == Approach::NDLF || a == Approach::DTLF ||
         a == Approach::DFLF || a == Approach::DeltaPush ||
         a == Approach::MonteCarlo;
}

inline bool isDynamicApproach(Approach a) noexcept {
  return a != Approach::StaticBB && a != Approach::StaticLF;
}

/// The paper's eight engines — the ablation sweeps iterate exactly these.
/// DeltaPush and MonteCarlo are dispatchable through runApproach but
/// deliberately not listed: they are this repo's extensions, benched
/// against DFLF explicitly (bench_fig7_batch_sweep) rather than folded
/// into every paper table.
constexpr Approach kAllApproaches[] = {
    Approach::StaticBB, Approach::StaticLF, Approach::NDBB, Approach::NDLF,
    Approach::DTBB,     Approach::DTLF,     Approach::DFBB, Approach::DFLF,
};

}  // namespace lfpr
