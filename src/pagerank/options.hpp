// Options and results shared by all eight PageRank engines.
//
// Defaults mirror the paper's configuration (Section 5.1.2): damping
// factor 0.85, iteration tolerance 1e-10 under the L-inf norm, frontier
// tolerance tau/1000 (Section 4.5), at most 500 iterations, dynamic
// chunks of 2048 vertices.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace lfpr {

/// Memory layout the rank-pull kernel reads the in-adjacency from.
enum class PullLayout : int {
  /// The snapshot's CSR in-lists plus the per-source contribution cache
  /// (two arrays; no extra memory).
  Csr,
  /// A derived stream of (source, 1/outdeg) arcs built per solve — one
  /// sequential read stream for the kernel at the cost of O(m) extra
  /// memory and an O(n + m) build per snapshot.
  Weighted,
};

struct PageRankOptions {
  /// Damping factor alpha.
  double alpha = 0.85;
  /// Iteration tolerance tau (L-inf over consecutive iterations).
  double tolerance = 1e-10;
  /// Frontier tolerance tau_f: a rank change above this marks the
  /// vertex's out-neighbours as affected (Dynamic Frontier only).
  double frontierTolerance = 1e-13;
  /// Iteration cap (paper: 500).
  int maxIterations = 500;
  /// Worker threads; <= 0 selects hardware concurrency.
  int numThreads = 0;
  /// Vertices per dynamically-scheduled chunk.
  std::size_t chunkSize = 2048;
  /// DF-LF ablation: per-chunk instead of per-vertex converged flags
  /// ("one may use a per-chunk converged flag for even faster detection
  /// of convergence", Section 4.3).
  bool perChunkConvergence = false;
  /// Static-LF ablation: fixed per-thread vertex partitions instead of
  /// dynamic chunks — the Eedi et al. scheduling the paper improves on
  /// (Section 3.3.2).
  bool staticSchedule = false;
  /// In-adjacency layout for the rank-pull kernel (see PullLayout).
  PullLayout pullLayout = PullLayout::Csr;
  /// BB engines: how long a thread may wait at a barrier before the run
  /// is declared dead (crash-stop deadlock detection).
  std::chrono::milliseconds barrierTimeout{60'000};
};

struct PageRankResult {
  std::vector<double> ranks;
  /// Iterations executed (LF: the maximum round any thread completed).
  int iterations = 0;
  bool converged = false;
  /// Did-not-finish: a barrier broke (some thread crashed or stalled past
  /// the timeout). BB engines only; LF engines never DNF.
  bool dnf = false;
  /// Solve time measured inside the engine, excluding result-vector
  /// allocation/deallocation (the paper's measurement protocol, 5.1.5).
  double timeMs = 0.0;
  /// Total time threads spent waiting at iteration barriers (BB only).
  double waitMs = 0.0;
  /// Vertex-rank computations performed across all threads.
  std::uint64_t rankUpdates = 0;
  /// Vertices marked affected (DF/DT engines).
  std::uint64_t affectedVertices = 0;
};

enum class Approach : int {
  StaticBB,
  StaticLF,
  NDBB,
  NDLF,
  DTBB,
  DTLF,
  DFBB,
  DFLF,
};

inline const char* approachName(Approach a) noexcept {
  switch (a) {
    case Approach::StaticBB: return "StaticBB";
    case Approach::StaticLF: return "StaticLF";
    case Approach::NDBB: return "NDBB";
    case Approach::NDLF: return "NDLF";
    case Approach::DTBB: return "DTBB";
    case Approach::DTLF: return "DTLF";
    case Approach::DFBB: return "DFBB";
    case Approach::DFLF: return "DFLF";
  }
  return "?";
}

inline bool isLockFree(Approach a) noexcept {
  return a == Approach::StaticLF || a == Approach::NDLF || a == Approach::DTLF ||
         a == Approach::DFLF;
}

inline bool isDynamicApproach(Approach a) noexcept {
  return a != Approach::StaticBB && a != Approach::StaticLF;
}

constexpr Approach kAllApproaches[] = {
    Approach::StaticBB, Approach::StaticLF, Approach::NDBB, Approach::NDLF,
    Approach::DTBB,     Approach::DTLF,     Approach::DFBB, Approach::DFLF,
};

}  // namespace lfpr
