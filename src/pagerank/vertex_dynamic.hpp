// Vertex-dynamic support — the paper's stated future-work direction
// (Section 6): "extend the algorithm to handle vertex additions and
// deletions by scaling existing vertex ranks before computation."
//
// The edge-dynamic engines assume |V^{t-1}| == |V^t|. These helpers
// produce a warm-start rank vector for a changed vertex set, after which
// the vertex change reduces to an edge batch: a vertex addition is its
// incident-edge insertions, a removal is its incident-edge deletions.
// Total rank mass is preserved (sums to ~1 given normalized input), so
// the dynamic engines converge from the adjusted vector exactly as they
// do from a previous snapshot's ranks.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace lfpr {

/// Grow a rank vector from |V| to newNumVertices: existing ranks are
/// scaled by |V|/|V_new| ... more precisely, every vertex (old and new)
/// gives up a proportional share so that new vertices start at the
/// uniform 1/|V_new| and total mass stays 1. Throws if shrinking.
std::vector<double> expandRanksForNewVertices(std::span<const double> ranks,
                                              VertexId newNumVertices);

/// Remove the given vertices (ids in the *old* numbering) and compact the
/// vector; the removed mass is redistributed proportionally so the result
/// sums to ~1. Returns the compacted ranks; `oldToNew` (optional out)
/// receives the id remapping (removed vertices map to kNoVertex).
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);
std::vector<double> removeVertexRanks(std::span<const double> ranks,
                                      std::span<const VertexId> removedIds,
                                      std::vector<VertexId>* oldToNew = nullptr);

}  // namespace lfpr
