// Error metrics. The paper measures accuracy as the L-inf norm between an
// approach's ranks and reference ranks computed on the updated graph
// (Section 5.1.5).
#pragma once

#include <span>

namespace lfpr {

/// max_i |a[i] - b[i]|; spans must have equal length.
double linfNorm(std::span<const double> a, std::span<const double> b);

/// sum_i |a[i] - b[i]|.
double l1Norm(std::span<const double> a, std::span<const double> b);

/// sum_i a[i] — with self-loops on every vertex PageRank mass is
/// conserved, so this should stay ~1.
double rankSum(std::span<const double> ranks);

}  // namespace lfpr
