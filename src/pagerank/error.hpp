// Error metrics. The paper measures accuracy as the L-inf norm between an
// approach's ranks and reference ranks computed on the updated graph
// (Section 5.1.5).
#pragma once

#include <span>

namespace lfpr {

/// max_i |a[i] - b[i]|; spans must have equal length.
double linfNorm(std::span<const double> a, std::span<const double> b);

/// sum_i |a[i] - b[i]|.
double l1Norm(std::span<const double> a, std::span<const double> b);

/// sum_i a[i] — with self-loops on every vertex PageRank mass is
/// conserved, so this should stay ~1.
double rankSum(std::span<const double> ranks);

/// L-inf distance from the true fixpoint implied by the synchronous
/// stopping rule "stop when no rank moved more than `tolerance` this
/// sweep": the remaining updates form a geometric series with ratio
/// alpha, so ||r - r*||_inf <= tolerance * alpha / (1 - alpha).
inline double syncToleranceBound(double tolerance, double alpha) noexcept {
  return tolerance * alpha / (1.0 - alpha);
}

/// Same for the asynchronous engines, whose per-vertex freeze decides on
/// deltas observed at different moments: a vertex may stop tolerance
/// short of its local fixpoint while its in-neighbours each still carry
/// that much error themselves, so the per-vertex error e satisfies
/// e <= tolerance + alpha * e, i.e. ||r - r*||_inf <= tolerance /
/// (1 - alpha). Tests multiply by a small empirical slack for scheduling
/// jitter (rollback stores may each inject up to one extra tolerance).
inline double asyncToleranceBound(double tolerance, double alpha) noexcept {
  return tolerance / (1.0 - alpha);
}

}  // namespace lfpr
