// Error metrics. The paper measures accuracy as the L-inf norm between an
// approach's ranks and reference ranks computed on the updated graph
// (Section 5.1.5).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

namespace lfpr {

/// max_i |a[i] - b[i]|; spans must have equal length.
double linfNorm(std::span<const double> a, std::span<const double> b);

/// sum_i |a[i] - b[i]|.
double l1Norm(std::span<const double> a, std::span<const double> b);

/// sum_i a[i] — with self-loops on every vertex PageRank mass is
/// conserved, so this should stay ~1.
double rankSum(std::span<const double> ranks);

/// L-inf distance from the true fixpoint implied by the synchronous
/// stopping rule "stop when no rank moved more than `tolerance` this
/// sweep": the remaining updates form a geometric series with ratio
/// alpha, so ||r - r*||_inf <= tolerance * alpha / (1 - alpha).
inline double syncToleranceBound(double tolerance, double alpha) noexcept {
  return tolerance * alpha / (1.0 - alpha);
}

/// Same for the asynchronous engines, whose per-vertex freeze decides on
/// deltas observed at different moments: a vertex may stop tolerance
/// short of its local fixpoint while its in-neighbours each still carry
/// that much error themselves, so the per-vertex error e satisfies
/// e <= tolerance + alpha * e, i.e. ||r - r*||_inf <= tolerance /
/// (1 - alpha). Tests multiply by a small empirical slack for scheduling
/// jitter (rollback stores may each inject up to one extra tolerance).
inline double asyncToleranceBound(double tolerance, double alpha) noexcept {
  return tolerance / (1.0 - alpha);
}

/// Monte-Carlo L1 error scale for the walk engine's *global* ranks
/// (Approach::MonteCarlo, R walks per vertex). Each vertex estimate
/// averages R independent geometric-length walks per root; summing the
/// per-vertex standard deviations over all vertices and applying
/// Cauchy-Schwarz with the walk revisit factor (1 + alpha) / (1 - alpha)
/// gives E[ ||r - r*||_1 ] <~ sqrt((1 + alpha) / R), independent of n.
/// The factor 3 is empirical headroom for revisit correlation on the
/// self-looped benchmark graphs and stride truncation.
///
/// Unlike syncToleranceBound / asyncToleranceBound (worst-case Section
/// 4.5 certificates), this is a STATISTICAL bound: the expected error
/// scale with a safety factor, not a guarantee on any single run.
inline double mcL1ErrorBound(double alpha, int walksPerVertex) noexcept {
  return 3.0 * std::sqrt((1.0 + alpha) / static_cast<double>(walksPerVertex));
}

/// Monte-Carlo error scale for one *personalized* score ppr_r(v) =
/// (1 - alpha) * visits / R. The visit count is a sum of per-walk visit
/// counts with per-walk variance <= E[count] * (1 + alpha) / (1 - alpha),
/// so sd(score) <= (1 - alpha) * sqrt(visits * (1+alpha)/(1-alpha)) / R
/// = sqrt((1-alpha)(1+alpha) * visits) / R; the factor 2 is ~2 sigma.
/// Statistical, like mcL1ErrorBound — not a worst-case certificate.
inline double mcPprErrorBound(double alpha, int walksPerVertex,
                              double visits) noexcept {
  return 2.0 *
         std::sqrt((1.0 - alpha) * (1.0 + alpha) * std::max(visits, 1.0)) /
         static_cast<double>(walksPerVertex);
}

}  // namespace lfpr
