// Barrier-based Dynamic Frontier PageRank (Algorithm 1): mark the
// out-neighbours of each batch source, then iterate synchronously over
// affected vertices, expanding the frontier whenever a rank moves by more
// than the frontier tolerance.
#include "pagerank/detail/dynamic_engines.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult dfBB(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt,
                    FaultInjector* fault) {
  return detail::dynamicBB(prev, curr, batch, prevRanks, opt, fault,
                           /*traverse=*/false, /*expandFrontier=*/true);
}

}  // namespace lfpr
