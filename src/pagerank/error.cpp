#include "pagerank/error.hpp"

#include <cmath>
#include <stdexcept>

namespace lfpr {

double linfNorm(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("linfNorm: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

double l1Norm(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("l1Norm: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

double rankSum(std::span<const double> ranks) {
  double s = 0.0;
  for (double r : ranks) s += r;
  return s;
}

}  // namespace lfpr
