#include "pagerank/omp_engines.hpp"

#include <omp.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "pagerank/atomics.hpp"
#include "pagerank/detail/common.hpp"
#include "pagerank/detail/lf_iterate.hpp"
#include "pagerank/detail/marking.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/work_ring.hpp"
#include "util/timer.hpp"

namespace lfpr::omp {

bool available() noexcept { return true; }

int threadsFor(const PageRankOptions& opt) noexcept {
  return opt.numThreads > 0 ? opt.numThreads : omp_get_max_threads();
}

namespace {

/// Synchronous BB iterate with OpenMP parallel-for; optionally restricted
/// to affected vertices with DF frontier expansion.
PageRankResult ompPowerBB(const CsrGraph& g, std::vector<double> init,
                          const PageRankOptions& opt, AtomicU8Vector* affected,
                          bool expandFrontier) {
  PageRankResult result;
  const std::size_t n = g.numVertices();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  const int numThreads = threadsFor(opt);
  const auto pullCsr = detail::buildPullLayout(opt, g);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;
  std::vector<double> ranks = std::move(init);
  std::vector<double> ranksNew = ranks;
  const double alpha = opt.alpha;
  const double base = (1.0 - alpha) / static_cast<double>(n);
  const auto chunk = static_cast<int>(opt.chunkSize);
  std::uint64_t updates = 0;

  const Stopwatch timer;
  for (int it = 0; it < opt.maxIterations; ++it) {
    double delta = 0.0;
    std::uint64_t iterUpdates = 0;
#pragma omp parallel for schedule(dynamic, chunk) num_threads(numThreads) \
    reduction(max : delta) reduction(+ : iterUpdates)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      const auto v = static_cast<VertexId>(i);
      if (affected != nullptr && affected->load(v) == 0) continue;
      const double r = detail::pullRankDispatch(pull, g, ranks, v, alpha, base);
      const double dr = std::fabs(r - ranks[v]);
      ranksNew[v] = r;
      delta = std::max(delta, dr);
      ++iterUpdates;
      if (expandFrontier && dr > opt.frontierTolerance)
        for (VertexId w : g.out(v)) detail::markAffected(*affected, w);
    }
    updates += iterUpdates;
    ranks.swap(ranksNew);
    result.iterations = it + 1;
    if (delta <= opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.timeMs = timer.elapsedMs();
  result.rankUpdates = updates;
  result.ranks = std::move(ranks);
  return result;
}

/// Asynchronous LF iterate: the shared lock-free worker inside one
/// OpenMP parallel region.
PageRankResult ompPowerLF(const CsrGraph& g, std::vector<double> init,
                          const PageRankOptions& opt) {
  PageRankResult result;
  const std::size_t n = g.numVertices();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  const int numThreads = threadsFor(opt);
  PageRankOptions resolved = opt;
  resolved.numThreads = numThreads;

  const auto pullCsr = detail::buildPullLayout(resolved, g);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;

  AtomicF64Vector ranks{std::span<const double>(init)};
  AtomicU8Vector notConverged(n, 1);
  RoundCursorSet rounds(n, resolved.chunkSize,
                        static_cast<std::size_t>(resolved.maxIterations));
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  detail::ProtocolCounters counters;

  std::unique_ptr<WorklistScheduler> worklist;
  if (resolved.scheduling == SchedulingMode::Worklist)
    worklist = std::make_unique<WorklistScheduler>(n, numThreads,
                                                   /*seedSweep=*/true);

  const detail::LfShared shared{g,
                                pull,
                                ranks,
                                notConverged,
                                nullptr,
                                false,
                                nullptr,
                                rounds,
                                allConverged,
                                maxRound,
                                rankUpdates,
                                resolved,
                                nullptr,
                                worklist.get(),
                                &counters};
  const Stopwatch timer;
#pragma omp parallel num_threads(numThreads)
  {
    detail::lfIterateWorker(shared, omp_get_thread_num());
  }
  // Absorb flags re-marked by workers that were still in flight when the
  // convergence scan passed (termination protocol, part 3 in
  // lf_iterate.cpp). The flags, not allConverged, are the authority: the
  // finish pass can itself hit the round cap.
  detail::lfFinishSequential(shared);
  result.timeMs = timer.elapsedMs();
  result.converged = notConverged.allZero();
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.ranks = ranks.toVector();
  result.protocolStats = counters.snapshot();
  if (worklist) result.protocolStats.ringPushes = worklist->pushes();
  return result;
}

std::vector<Edge> concatBatch(const BatchUpdate& batch) {
  std::vector<Edge> edges;
  edges.reserve(batch.size());
  edges.insert(edges.end(), batch.deletions.begin(), batch.deletions.end());
  edges.insert(edges.end(), batch.insertions.begin(), batch.insertions.end());
  return edges;
}

}  // namespace

PageRankResult staticBB(const CsrGraph& curr, const PageRankOptions& opt) {
  const std::size_t n = curr.numVertices();
  std::vector<double> init(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  return ompPowerBB(curr, std::move(init), opt, nullptr, false);
}

PageRankResult staticLF(const CsrGraph& curr, const PageRankOptions& opt) {
  const std::size_t n = curr.numVertices();
  std::vector<double> init(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  return ompPowerLF(curr, std::move(init), opt);
}

PageRankResult ndBB(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("omp::ndBB: prevRanks size must match graph");
  return ompPowerBB(curr, {prevRanks.begin(), prevRanks.end()}, opt, nullptr, false);
}

PageRankResult ndLF(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("omp::ndLF: prevRanks size must match graph");
  return ompPowerLF(curr, {prevRanks.begin(), prevRanks.end()}, opt);
}

PageRankResult dfBB(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("omp::dfBB: prevRanks size must match graph");
  const std::size_t n = curr.numVertices();
  AtomicU8Vector affected(n, 0);
  const std::vector<Edge> edges = concatBatch(batch);
  const int numThreads = threadsFor(opt);

  const Stopwatch markTimer;
#pragma omp parallel for schedule(dynamic, 256) num_threads(numThreads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(edges.size()); ++i) {
    const VertexId u = edges[static_cast<std::size_t>(i)].src;
    if (u < prev.numVertices())
      for (VertexId w : prev.out(u)) detail::markAffected(affected, w);
    for (VertexId w : curr.out(u)) detail::markAffected(affected, w);
  }
  const double markMs = markTimer.elapsedMs();

  PageRankResult result =
      ompPowerBB(curr, {prevRanks.begin(), prevRanks.end()}, opt, &affected, true);
  result.timeMs += markMs;
  result.affectedVertices = affected.countNonZero();
  return result;
}

PageRankResult dfLF(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("omp::dfLF: prevRanks size must match graph");
  PageRankResult result;
  const std::size_t n = curr.numVertices();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  const int numThreads = threadsFor(opt);
  PageRankOptions resolved = opt;
  resolved.numThreads = numThreads;

  const std::vector<Edge> edges = concatBatch(batch);
  const auto pullCsr = detail::buildPullLayout(resolved, curr);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;
  AtomicF64Vector ranks{prevRanks};
  AtomicU8Vector affected(n, 0);
  AtomicU8Vector notConverged(n, 0);
  AtomicU8Vector checked(n, 0);
  ChunkCursor markCursor(edges.size(), 256);
  RoundCursorSet rounds(n, resolved.chunkSize,
                        static_cast<std::size_t>(resolved.maxIterations));
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  detail::ProtocolCounters counters;

  std::unique_ptr<WorklistScheduler> worklist;
  if (resolved.scheduling == SchedulingMode::Worklist)
    worklist = std::make_unique<WorklistScheduler>(n, numThreads,
                                                   /*seedSweep=*/false);

  const detail::LfShared iterate{curr,
                                 pull,
                                 ranks,
                                 notConverged,
                                 &affected,
                                 true,
                                 nullptr,
                                 rounds,
                                 allConverged,
                                 maxRound,
                                 rankUpdates,
                                 resolved,
                                 nullptr,
                                 worklist.get(),
                                 &counters};
  const Stopwatch timer;
#pragma omp parallel num_threads(numThreads)
  {
    const int tid = omp_get_thread_num();
    const detail::MarkShared mark{prev,       curr,         edges,   checked,
                                  affected,   notConverged, nullptr, resolved.chunkSize,
                                  markCursor, false,        nullptr, worklist.get(),
                                  &counters};
    detail::markAffectedWorker(mark, tid);
    detail::lfIterateWorker(iterate, tid);
  }
  // Absorb flags re-marked by workers that were still in flight when the
  // convergence scan passed (termination protocol, part 3 in
  // lf_iterate.cpp). The flags, not allConverged, are the authority: the
  // finish pass can itself hit the round cap.
  detail::lfFinishSequential(iterate);
  result.timeMs = timer.elapsedMs();
  result.converged = notConverged.allZero();
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.affectedVertices = affected.countNonZero();
  result.ranks = ranks.toVector();
  result.protocolStats = counters.snapshot();
  if (worklist) result.protocolStats.ringPushes = worklist->pushes();
  return result;
}

}  // namespace lfpr::omp
