// OpenMP variants of the engines (namespace lfpr::omp).
//
// The paper's published implementation runs on OpenMP with
// `schedule(dynamic, 2048)` and `nowait`. The primary engines in this
// library run on the custom ThreadTeam runtime because the experiments
// need barrier instrumentation and genuine crash-stop injection (see
// DESIGN.md); these variants demonstrate that the algorithms are
// runtime-agnostic and give an OpenMP cross-check for the benches.
//
// Notes:
//  * BB engines use a conforming `#pragma omp parallel for
//    schedule(dynamic, chunk)` per iteration.
//  * LF engines run the same lock-free worker as the native engines
//    inside one `#pragma omp parallel` region. (Back-to-back `omp for
//    nowait` loops where threads break at different rounds are
//    non-conforming OpenMP, so chunk distribution uses the lock-free
//    cursor — semantically identical to dynamic-nowait scheduling.)
//  * Fault injection is a feature of the native runtime; these variants
//    do not take a FaultInjector.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "pagerank/options.hpp"

namespace lfpr::omp {

/// True when the library was built with OpenMP support.
bool available() noexcept;

/// Worker threads an engine call will use for the given options.
int threadsFor(const PageRankOptions& opt) noexcept;

PageRankResult staticBB(const CsrGraph& curr, const PageRankOptions& opt = {});
PageRankResult staticLF(const CsrGraph& curr, const PageRankOptions& opt = {});
PageRankResult ndBB(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt = {});
PageRankResult ndLF(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt = {});
PageRankResult dfBB(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt = {});
PageRankResult dfLF(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt = {});

}  // namespace lfpr::omp
