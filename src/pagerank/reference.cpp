#include "pagerank/reference.hpp"

#include <cmath>

namespace lfpr {

std::vector<double> referenceRanks(const CsrGraph& g, double alpha, int maxIterations,
                                   long double exitTolerance) {
  const std::size_t n = g.numVertices();
  if (n == 0) return {};
  std::vector<long double> r(n, 1.0L / static_cast<long double>(n));
  std::vector<long double> rnew(n, 0.0L);
  const long double base = (1.0L - static_cast<long double>(alpha)) /
                           static_cast<long double>(n);

  for (int it = 0; it < maxIterations; ++it) {
    long double delta = 0.0L;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
      long double acc = base;
      for (VertexId u : g.in(v))
        acc += static_cast<long double>(alpha) * r[u] /
               static_cast<long double>(g.outDegree(u));
      delta = std::max(delta, std::fabs(acc - r[v]));
      rnew[v] = acc;
    }
    r.swap(rnew);
    if (delta <= exitTolerance) break;
  }

  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(r[i]);
  return out;
}

}  // namespace lfpr
