// Barrier-based Dynamic Traversal PageRank (Algorithm 7): DFS marks
// everything reachable from the batch's sources, then a synchronous
// iterate restricted to marked vertices.
#include "pagerank/detail/dynamic_engines.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult dtBB(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt,
                    FaultInjector* fault) {
  return detail::dynamicBB(prev, curr, batch, prevRanks, opt, fault,
                           /*traverse=*/true, /*expandFrontier=*/false);
}

}  // namespace lfpr
