#include "pagerank/detail/power_lf.hpp"

#include "pagerank/detail/engine_step.hpp"

namespace lfpr::detail {

PageRankResult powerIterateLF(const CsrGraph& g, std::vector<double> init,
                              const PageRankOptions& opt, FaultInjector* fault) {
  // One-shot wrapper over the resumable step API (engine_step.hpp): a
  // fresh state seeded with init, one full solve step, ranks copied out.
  LfEngineState state(g.numVertices());
  state.seedRanks(init);
  PageRankResult result = lfFullStep(state, g, opt, fault);
  result.ranks = state.ranks.toVector();
  return result;
}

}  // namespace lfpr::detail
