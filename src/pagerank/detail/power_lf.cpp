#include "pagerank/detail/power_lf.hpp"

#include <atomic>
#include <memory>

#include "pagerank/atomics.hpp"
#include "pagerank/detail/common.hpp"
#include "pagerank/detail/lf_iterate.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "sched/work_ring.hpp"
#include "util/timer.hpp"

namespace lfpr::detail {

PageRankResult powerIterateLF(const CsrGraph& g, std::vector<double> init,
                              const PageRankOptions& opt, FaultInjector* fault) {
  PageRankResult result;
  const std::size_t n = g.numVertices();
  if (n == 0) {
    result.converged = true;
    return result;
  }

  ThreadTeam team(opt.numThreads);
  PageRankOptions resolved = opt;
  resolved.numThreads = team.size();

  const auto pullCsr = buildPullLayout(resolved, g);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;

  AtomicF64Vector ranks{std::span<const double>(init)};
  // Paper Algorithm 4 note: RC semantics are 1 = "rank has not yet
  // converged"; every vertex starts unconverged for Static/ND.
  AtomicU8Vector notConverged(n, 1);
  RoundCursorSet rounds(n, resolved.chunkSize,
                        static_cast<std::size_t>(resolved.maxIterations));
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  ProtocolCounters counters;

  // Static/ND worklist solves start all-dirty: round 0 is a dense seeding
  // sweep whose marks populate the rings (see lf_iterate.cpp).
  std::unique_ptr<WorklistScheduler> worklist;
  if (resolved.scheduling == SchedulingMode::Worklist)
    worklist = std::make_unique<WorklistScheduler>(n, team.size(),
                                                   /*seedSweep=*/true);

  const LfShared shared{g,
                        pull,
                        ranks,
                        notConverged,
                        /*affected=*/nullptr,
                        /*expandFrontier=*/false,
                        /*chunkFlags=*/nullptr,
                        rounds,
                        allConverged,
                        maxRound,
                        rankUpdates,
                        resolved,
                        fault,
                        worklist.get(),
                        &counters};
  const Stopwatch timer;
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    lfIterateWorker(shared, tid);
  });
  // Absorb flags re-marked by workers that were still in flight when the
  // convergence scan passed (termination protocol, part 3).
  lfFinishSequential(shared);
  result.timeMs = timer.elapsedMs();

  // The flags, not allConverged, are the authority: the finish pass can
  // itself hit the round cap and leave the run honestly unconverged.
  result.converged = notConverged.allZero();
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.ranks = ranks.toVector();
  result.protocolStats = counters.snapshot();
  if (worklist) result.protocolStats.ringPushes = worklist->pushes();
  return result;
}

}  // namespace lfpr::detail
