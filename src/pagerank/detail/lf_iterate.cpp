#include "pagerank/detail/lf_iterate.hpp"

#include <algorithm>
#include <cmath>

#include "pagerank/detail/common.hpp"
#include "pagerank/detail/flags.hpp"

namespace lfpr::detail {

// Termination protocol
// --------------------
// The convergence flags (per-vertex RC in `notConverged`, optionally the
// per-chunk flags) are the only thing standing between the asynchronous
// workers and premature termination with stale ranks frozen into the
// result. The seed implementation lost updates three distinct ways; the
// protocol below closes each of them.
//
//  1. Lost wakeup on clear. A thread observing a small delta cleared
//     RC[v] with a plain store, erasing a concurrent frontier-expansion
//     mark — every flag reads zero and convergedNow() declares
//     convergence while v still has an unpropagated neighbour update.
//     Fix: clear-then-reverify. The clear is an acquire RMW (exchange)
//     followed by a re-pull with the now-visible neighbour ranks; if the
//     rank still moves, the mark is restored. The RMW reads the latest
//     value in the flag's modification order, so a concurrent mark either
//     survives the clear (ordered after it) or was read by it — and all
//     marks are release RMWs (fetchOr), so under C++20 release-sequence
//     rules the acquire clear synchronizes with every marking thread
//     earlier in the modification order and the re-pull observes the rank
//     write that motivated the mark.
//
//  2. Stale-store rollback. A thread preempted between pulling a rank and
//     storing it resumes arbitrarily later and rolls the vertex back to a
//     stale value, while measuring its delta against its own equally
//     stale earlier read — the rollback is invisible and survives into
//     the result. Fix: ranks are published with an RMW exchange and the
//     delta is taken against the value actually overwritten, so a
//     destructive store observes a large jump and re-marks the vertex.
//
//  3. Post-scan dirt. A convergence scan can pass while an in-flight
//     update from (1) or (2) is about to re-mark a flag; the workers then
//     exit with a flag set. Fix: after the team joins (no concurrent
//     writers remain), the engine calls lfFinishSequential(), which
//     re-iterates until the flags are genuinely clean — see the gating
//     note on its declaration.
//
// A vertex whose delta exceeds tau also re-asserts its own flag (not just
// `anyUnconverged`): if the flag was cleared on a stale read in an
// earlier round, the late mover would otherwise stay invisible to the
// convergence scan forever.
//
// RMW diet (PR 2). Three accesses were relaxed; none is load-bearing for
// the protocol above, whose four invariants — marks are release RMWs,
// clears are acquire RMWs followed by reverify, deltas are measured
// against the value the exchange actually overwrote, and the post-join
// finish pass absorbs in-flight re-marks — all still hold:
//
//  a. expandFrontier stores `affected` only when it reads 0. The affected
//     bitmap is monotone within a run and tested only against zero; the
//     rank publish is carried by the unconditional notConverged /
//     chunkFlags release marks, never by the affected store.
//  b. The clear-then-reverify re-pull is skipped when the acquire
//     exchange returns 0 (a concurrent clearer already erased the mark
//     and owns the reverify for it). Only a clear that destroys a mark
//     needs a re-pull.
//  c. Convergence scans (AtomicU8Vector::allZeroFrom / countNonZero) read
//     eight flags per 64-bit relaxed load. The scans were always relaxed
//     reads with no ordering role — the authoritative detection remains
//     the flags themselves plus the post-join finish pass — so widening
//     the load changes bandwidth, not semantics.

namespace {

// Always RMW, never "skip because it already reads 1": a marker that
// skips the fetchOr is absent from the flag's modification order, so a
// concurrent acquire clear would synchronize only with the OLD marker
// and could miss this marker's rank publish (its relaxed store can sit
// unflushed past the relaxed flag load — StoreLoad reordering). The
// shared primitive in flags.hpp enforces this and the vertex-before-
// chunk order.
void markUnconverged(const LfShared& s, VertexId w) {
  markVertexUnconverged(s.notConverged, s.chunkFlags, s.opt.chunkSize, w);
}

/// Dynamic Frontier expansion: v's rank moved by more than tau_f, so its
/// out-neighbours become affected and unconverged. The caller has already
/// published v's new rank, so the release marks carry it (part 1 above).
///
void expandFrontier(const LfShared& s, VertexId v) {
  for (VertexId w : s.graph.out(v)) {
    markAffected(*s.affected, w);
    markUnconverged(s, w);
  }
}

double pull(const LfShared& s, VertexId v, double alpha, double base) {
  return pullRankDispatch(s.pull, s.graph, s.ranks, v, alpha, base);
}

/// Pull-update vertex v once and maintain its convergence flags per the
/// protocol above.
void updateVertex(const LfShared& s, VertexId v, double alpha, double base,
                  std::uint64_t& updates, bool& anyUnconverged) {
  const double tau = s.opt.tolerance;
  const double tauF = s.opt.frontierTolerance;

  const double r = pull(s, v, alpha, base);
  const double dr = std::fabs(r - s.ranks.exchange(v, r));
  ++updates;

  if (s.expandFrontier && dr > tauF) expandFrontier(s, v);

  if (dr > tau) {
    anyUnconverged = true;
    markUnconverged(s, v);
  } else if (s.notConverged.load(v) == 1) {
    // Clear-then-reverify (part 1), entered only when this pull's delta is
    // already within tau. The acquire exchange makes every rank write
    // published by a mark it overwrites visible to the re-pull; if the
    // rank still moves, the clear was premature and the mark is restored.
    // The re-pull runs only when the exchange actually erased a mark
    // (returned 1): a 0 -> 0 exchange means a concurrent clearer got there
    // between our load and our RMW — reverify duty travelled with ITS
    // clear, and any mark after that clear would have made our exchange
    // return 1.
    if (s.notConverged.exchange(v, 0, std::memory_order_acquire) != 0) {
      const double r2 = pull(s, v, alpha, base);
      const double dr2 = std::fabs(r2 - s.ranks.exchange(v, r2));
      ++updates;
      if (s.expandFrontier && dr2 > tauF) expandFrontier(s, v);
      if (dr2 > tau) {
        anyUnconverged = true;
        markUnconverged(s, v);
      }
    }
  }
}

/// Process vertices [begin, end); returns false if this thread crashed.
bool processRange(const LfShared& s, int tid, std::size_t begin, std::size_t end,
                  std::uint64_t& updates, bool& anyUnconverged) {
  const double alpha = s.opt.alpha;
  const double base =
      (1.0 - alpha) / static_cast<double>(s.graph.numVertices());

  for (std::size_t i = begin; i < end; ++i) {
    const auto v = static_cast<VertexId>(i);
    if (s.affected != nullptr && s.affected->load(v) == 0) continue;
    updateVertex(s, v, alpha, base, updates, anyUnconverged);
    if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) return false;
  }
  return true;
}

/// Clear chunk flag c, then re-derive it from the per-vertex flags. Same
/// protocol as the per-vertex clear: the acquire exchange synchronizes
/// with any release mark it overwrites, so the rescan observes the
/// per-vertex flag that marker set first (markUnconverged orders the
/// vertex flag before the chunk flag).
void clearChunkFlagAndReverify(const LfShared& s, std::size_t c) {
  if (s.chunkFlags->load(c) == 0) return;
  s.chunkFlags->exchange(c, 0, std::memory_order_acquire);
  const std::size_t n = s.graph.numVertices();
  const std::size_t b = c * s.opt.chunkSize;
  const std::size_t e = std::min(b + s.opt.chunkSize, n);
  for (std::size_t w = b; w < e; ++w) {
    if (s.notConverged.load(w) != 0) {
      s.chunkFlags->fetchOr(c, 1, std::memory_order_release);
      return;
    }
  }
}

bool flagsAllZeroFrom(const LfShared& s, std::size_t& scanHint) {
  return s.chunkFlags != nullptr ? s.chunkFlags->allZeroFrom(scanHint)
                                 : s.notConverged.allZeroFrom(scanHint);
}

}  // namespace

void lfIterateWorker(const LfShared& s, int tid) {
  const std::size_t n = s.graph.numVertices();
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;  // resume point for this thread's convergence scans
  const int maxRounds = s.opt.maxIterations;

  // Static-schedule ablation (Eedi et al. style): each thread owns a fixed
  // stripe of the vertex range instead of pulling dynamic chunks.
  std::size_t stripeBegin = 0, stripeEnd = n;
  if (s.opt.staticSchedule) {
    const auto t = static_cast<std::size_t>(tid);
    const auto numThreads = static_cast<std::size_t>(s.opt.numThreads > 0
                                                         ? s.opt.numThreads
                                                         : 1);
    stripeBegin = n * t / numThreads;
    stripeEnd = n * (t + 1) / numThreads;
  }

  for (int round = 0; round < maxRounds; ++round) {
    if (s.allConverged.load(std::memory_order_relaxed)) break;

    if (s.opt.staticSchedule) {
      bool anyUnconverged = false;
      if (!processRange(s, tid, stripeBegin, stripeEnd, updates, anyUnconverged)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      // Chunk-by-chunk clear-then-reverify. The seed's wholesale stripe
      // clear could wipe chunks a concurrent frontier expansion had just
      // re-marked — the chunk-granularity variant of the lost wakeup.
      if (s.chunkFlags != nullptr && !anyUnconverged && stripeEnd > stripeBegin) {
        for (std::size_t c = stripeBegin / s.opt.chunkSize;
             c <= (stripeEnd - 1) / s.opt.chunkSize; ++c)
          clearChunkFlagAndReverify(s, c);
      }
    } else {
      std::size_t begin = 0, end = 0;
      while (!s.allConverged.load(std::memory_order_relaxed) &&
             s.rounds.next(static_cast<std::size_t>(round), begin, end)) {
        bool anyUnconverged = false;
        if (!processRange(s, tid, begin, end, updates, anyUnconverged)) {
          s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
          return;  // crashed
        }
        if (s.chunkFlags != nullptr && !anyUnconverged)
          clearChunkFlagAndReverify(s, begin / s.opt.chunkSize);
      }
    }

    atomicMaxInt(s.maxRound, round + 1);
    if (flagsAllZeroFrom(s, scanHint)) {
      s.allConverged.store(true, std::memory_order_relaxed);
      break;
    }
  }
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

void lfFinishSequential(const LfShared& s) {
  // Only repair runs whose convergence scan actually passed: a run that
  // merely hit the round cap — or whose threads all crashed — must stay
  // unconverged (dirty flags) rather than be silently finished here.
  if (!s.allConverged.load(std::memory_order_relaxed)) return;

  const std::size_t n = s.graph.numVertices();
  const double alpha = s.opt.alpha;
  const double base = (1.0 - alpha) / static_cast<double>(n);
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;

  // The pass spends what is left of the run's iteration budget (usually
  // plenty: the scan passed well before the cap; typically 0-2 sweeps are
  // needed) and accounts its sweeps in maxRound, so iterations and
  // rankUpdates stay consistent and maxIterations remains a hard cap on
  // total sweeps.
  const int budget =
      std::max(0, s.opt.maxIterations - s.maxRound.load(std::memory_order_relaxed));
  int roundsDone = 0;
  for (int round = 0; round < budget; ++round) {
    if (flagsAllZeroFrom(s, scanHint)) break;
    bool anyUnconverged = false;
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<VertexId>(i);
      if (s.affected != nullptr && s.affected->load(v) == 0) continue;
      updateVertex(s, v, alpha, base, updates, anyUnconverged);
    }
    if (s.chunkFlags != nullptr && !anyUnconverged) {
      const std::size_t numChunks = (n + s.opt.chunkSize - 1) / s.opt.chunkSize;
      for (std::size_t c = 0; c < numChunks; ++c) clearChunkFlagAndReverify(s, c);
    }
    ++roundsDone;
  }
  if (roundsDone > 0)
    s.maxRound.fetch_add(roundsDone, std::memory_order_relaxed);
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

}  // namespace lfpr::detail
