#include "pagerank/detail/lf_iterate.hpp"

#include <cmath>

#include "pagerank/detail/common.hpp"

namespace lfpr::detail {

namespace {

/// Process vertices [begin, end); returns false if this thread crashed.
bool processRange(const LfShared& s, int tid, std::size_t begin, std::size_t end,
                  std::uint64_t& updates, bool& anyUnconverged) {
  const CsrGraph& g = s.graph;
  const double alpha = s.opt.alpha;
  const double base = (1.0 - alpha) / static_cast<double>(g.numVertices());
  const double tau = s.opt.tolerance;
  const double tauF = s.opt.frontierTolerance;

  for (std::size_t i = begin; i < end; ++i) {
    const auto v = static_cast<VertexId>(i);
    if (s.affected != nullptr && s.affected->load(v) == 0) continue;

    const double old = s.ranks.load(v);
    const double r = pullRank(g, s.ranks, v, alpha, base);
    const double dr = std::fabs(r - old);
    s.ranks.store(v, r);
    ++updates;

    if (s.expandFrontier && dr > tauF) {
      for (VertexId w : g.out(v)) {
        s.affected->store(w, 1);
        s.notConverged.store(w, 1);
        if (s.chunkFlags != nullptr)
          s.chunkFlags->store(w / s.opt.chunkSize, 1);
      }
    }
    if (dr <= tau) {
      if (s.notConverged.load(v) == 1) s.notConverged.store(v, 0);
    } else {
      anyUnconverged = true;
      if (s.chunkFlags != nullptr) s.chunkFlags->store(i / s.opt.chunkSize, 1);
    }

    if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) return false;
  }
  return true;
}

bool convergedNow(const LfShared& s, std::size_t& scanHint) {
  return s.chunkFlags != nullptr ? s.chunkFlags->allZeroFrom(scanHint)
                                 : s.notConverged.allZeroFrom(scanHint);
}

}  // namespace

void lfIterateWorker(const LfShared& s, int tid) {
  const std::size_t n = s.graph.numVertices();
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;  // resume point for this thread's convergence scans
  const int maxRounds = s.opt.maxIterations;

  // Static-schedule ablation (Eedi et al. style): each thread owns a fixed
  // stripe of the vertex range instead of pulling dynamic chunks.
  std::size_t stripeBegin = 0, stripeEnd = n;
  if (s.opt.staticSchedule) {
    const auto t = static_cast<std::size_t>(tid);
    const auto numThreads = static_cast<std::size_t>(s.opt.numThreads > 0
                                                         ? s.opt.numThreads
                                                         : 1);
    stripeBegin = n * t / numThreads;
    stripeEnd = n * (t + 1) / numThreads;
  }

  for (int round = 0; round < maxRounds; ++round) {
    if (s.allConverged.load(std::memory_order_relaxed)) break;

    if (s.opt.staticSchedule) {
      bool anyUnconverged = false;
      if (!processRange(s, tid, stripeBegin, stripeEnd, updates, anyUnconverged)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      if (s.chunkFlags != nullptr && !anyUnconverged && stripeEnd > stripeBegin) {
        for (std::size_t c = stripeBegin / s.opt.chunkSize;
             c <= (stripeEnd - 1) / s.opt.chunkSize; ++c)
          s.chunkFlags->store(c, 0);
      }
    } else {
      std::size_t begin = 0, end = 0;
      while (!s.allConverged.load(std::memory_order_relaxed) &&
             s.rounds.next(static_cast<std::size_t>(round), begin, end)) {
        bool anyUnconverged = false;
        if (!processRange(s, tid, begin, end, updates, anyUnconverged)) {
          s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
          return;  // crashed
        }
        if (s.chunkFlags != nullptr && !anyUnconverged)
          s.chunkFlags->store(begin / s.opt.chunkSize, 0);
      }
    }

    atomicMaxInt(s.maxRound, round + 1);
    if (convergedNow(s, scanHint)) {
      s.allConverged.store(true, std::memory_order_relaxed);
      break;
    }
  }
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

}  // namespace lfpr::detail
