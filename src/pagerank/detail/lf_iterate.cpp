#include "pagerank/detail/lf_iterate.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "pagerank/detail/common.hpp"
#include "pagerank/detail/flags.hpp"

namespace lfpr::detail {

// Termination protocol
// --------------------
// The convergence flags (per-vertex RC in `notConverged`, optionally the
// per-chunk flags) are the only thing standing between the asynchronous
// workers and premature termination with stale ranks frozen into the
// result. The seed implementation lost updates three distinct ways; the
// protocol below closes each of them.
//
//  1. Lost wakeup on clear. A thread observing a small delta cleared
//     RC[v] with a plain store, erasing a concurrent frontier-expansion
//     mark — every flag reads zero and convergedNow() declares
//     convergence while v still has an unpropagated neighbour update.
//     Fix: clear-then-reverify. The clear is an acquire RMW (exchange)
//     followed by a re-pull with the now-visible neighbour ranks; if the
//     rank still moves, the mark is restored. The RMW reads the latest
//     value in the flag's modification order, so a concurrent mark either
//     survives the clear (ordered after it) or was read by it — and all
//     marks are release RMWs (fetchOr), so under C++20 release-sequence
//     rules the acquire clear synchronizes with every marking thread
//     earlier in the modification order and the re-pull observes the rank
//     write that motivated the mark.
//
//  2. Stale-store rollback. A thread preempted between pulling a rank and
//     storing it resumes arbitrarily later and rolls the vertex back to a
//     stale value, while measuring its delta against its own equally
//     stale earlier read — the rollback is invisible and survives into
//     the result. Fix: ranks are published with an RMW exchange and the
//     delta is taken against the value actually overwritten, so a
//     destructive store observes a large jump and re-marks the vertex.
//
//  3. Post-scan dirt. A convergence scan can pass while an in-flight
//     update from (1) or (2) is about to re-mark a flag; the workers then
//     exit with a flag set. Fix: after the team joins (no concurrent
//     writers remain), the engine calls lfFinishSequential(), which
//     re-iterates until the flags are genuinely clean — see the gating
//     note on its declaration.
//
// A vertex whose delta exceeds tau also re-asserts its own flag (not just
// `anyUnconverged`): if the flag was cleared on a stale read in an
// earlier round, the late mover would otherwise stay invisible to the
// convergence scan forever.
//
// RMW diet (PR 2). Three accesses were relaxed; none is load-bearing for
// the protocol above, whose four invariants — marks are release RMWs,
// clears are acquire RMWs followed by reverify, deltas are measured
// against the value the exchange actually overwrote, and the post-join
// finish pass absorbs in-flight re-marks — all still hold:
//
//  a. expandFrontier stores `affected` only when it reads 0. The affected
//     bitmap is monotone within a run and tested only against zero; the
//     rank publish is carried by the unconditional notConverged /
//     chunkFlags release marks, never by the affected store.
//  b. The clear-then-reverify re-pull is skipped when the acquire
//     exchange returns 0 (a concurrent clearer already erased the mark
//     and owns the reverify for it). Only a clear that destroys a mark
//     needs a re-pull.
//  c. Convergence scans (AtomicU8Vector::allZeroFrom / countNonZero) read
//     eight flags per 64-bit relaxed load. The scans were always relaxed
//     reads with no ordering role — the authoritative detection remains
//     the flags themselves plus the post-join finish pass — so widening
//     the load changes bandwidth, not semantics.
//
// Worklist scheduling + publish diet (PR 5, opt-in via
// SchedulingMode::Worklist). The dense scheduler above costs O(|V|) per
// iteration even when a batch dirties a handful of vertices; the
// worklist (sched/work_ring.hpp) makes an iteration cost O(frontier +
// touched edges): every mark also enqueues the vertex onto its owner
// thread's dirty ring, and owners drain their rings instead of sweeping.
// On top of it, rank publishes for ring-owned vertices go on a diet: a
// plain relaxed store instead of the RMW exchange. The four termination
// invariants are preserved verbatim — here is where each now lives:
//
//  1. Marks are release RMWs; clears are acquire RMWs followed by a
//     reverify re-pull. UNCHANGED — the flag protocol is untouched; the
//     ring is an accelerator layered on top, never the authority. The
//     protocol-bearing acquire/release ordering sits exactly at the ring
//     hand-off points: the release fetchOr mark (+ the ring cell's
//     epoch-validated release publish) on the producer side, the acquire
//     epoch load on pop and the acquire exchange clear on the consumer
//     side. A marker that loses the enqueue race (stale `queued` read,
//     full ring) still wins through the flag: the owner's
//     clear-then-reverify or its reconcile sweep observes the mark.
//
//  2. Stale-store rollback. The exchange publish exists to let a late
//     publisher detect that it overwrote a fresher rank. Under the diet,
//     each vertex has AT MOST ONE plain-store publisher — the owner of
//     its ring partition — so the owner's program order rules out its
//     own rollback, and its pre-store relaxed load *is* the value being
//     overwritten. Every other publisher (the dense-phase sweeps, the
//     orphan-recovery sweeps, lfFinishSequential) still publishes
//     through the exchange and self-detects its rollbacks, so a stale
//     exchange over an owner's store re-marks the vertex and the owner
//     recomputes it. The diet is disabled entirely under fault injection
//     (a crashed owner's partition must be publishable by survivors), so
//     "one plain-store publisher per vertex" holds by construction.
//
//  3. Post-scan dirt. UNCHANGED — allConverged is only set after a full
//     flag scan, and lfFinishSequential runs after the join exactly as
//     before. Ring entries enqueued by in-flight workers after the scan
//     are absorbed the same way: their marks set flags, and the finish
//     pass iterates on flags, not rings.
//
//  4. A vertex whose delta exceeds tau re-asserts its own flag — and,
//     under worklist scheduling, re-enqueues itself (deduplicated), so a
//     late mover re-enters its owner's ring rather than waiting for a
//     sweep.
//
// The ring itself can lose at most *scheduling* information, never
// protocol information: the owner reconciles its partition against the
// flags whenever its ring runs dry and before the global convergence
// scan, so a flags-only vertex is found there, and convergence is still
// decided by flagsAllZeroFrom over the per-vertex flags (chunkFlags are
// not used in worklist mode — engines do not allocate them).

namespace {

/// Service lifecycle hook (PageRankOptions::stopRequested): a cooperative
/// stop is observed at the same boundaries as global convergence. The
/// flags stay the authority for `converged`, so a stopped run reports
/// honestly unconverged flags rather than a fake fixpoint.
bool stopSeen(const LfShared& s) noexcept {
  return s.opt.stopRequested != nullptr &&
         s.opt.stopRequested->load(std::memory_order_relaxed);
}

/// Loop-exit test shared by every scheduling loop: global convergence or
/// a cooperative stop request. Both end the solve at the next chunk/round
/// boundary.
bool exitLoops(const LfShared& s) noexcept {
  return s.allConverged.load(std::memory_order_relaxed) || stopSeen(s);
}

// Always RMW, never "skip because it already reads 1": a marker that
// skips the fetchOr is absent from the flag's modification order, so a
// concurrent acquire clear would synchronize only with the OLD marker
// and could miss this marker's rank publish (its relaxed store can sit
// unflushed past the relaxed flag load — StoreLoad reordering). The
// shared primitive in flags.hpp enforces this and the vertex-before-
// chunk order.
void markUnconverged(const LfShared& s, VertexId w) {
  markVertexUnconverged(s.notConverged, s.chunkFlags, s.opt.chunkSize, w,
                        s.worklist);
  LFPR_COUNT(s.stats, flagRmws, s.chunkFlags != nullptr ? 2 : 1);
}

/// Dynamic Frontier expansion: v's rank moved by more than tau_f, so its
/// out-neighbours become affected and unconverged. The caller has already
/// published v's new rank, so the release marks carry it (part 1 above).
///
void expandFrontier(const LfShared& s, VertexId v) {
  for (VertexId w : s.graph.out(v)) {
    markAffected(*s.affected, w);
    markUnconverged(s, w);
  }
}

/// Worklist wakeup for the non-DF engines: v's rank moved enough that its
/// out-neighbours must be re-pulled, but — unlike expandFrontier — the
/// affected set is left alone (Static/ND have none; DT's is closed under
/// reachability, so every out-neighbour of an affected vertex is already
/// in it). The dense scheduler needs no such propagation because it
/// re-pulls every (affected) vertex each sweep; the worklist only
/// re-pulls what is marked, so the marks themselves must carry the
/// dependency wakeups.
void propagateUnconverged(const LfShared& s, VertexId v) {
  for (VertexId w : s.graph.out(v)) markUnconverged(s, w);
}

/// Out-neighbour wakeup after publishing v with delta dr: DF expansion
/// when enabled, plain worklist propagation otherwise. Shares the
/// frontier tolerance — the same "a change this small no longer matters
/// downstream" threshold the DF error analysis rests on (Section 4.5).
void wakeNeighbours(const LfShared& s, VertexId v, double dr, double tauF) {
  if (dr <= tauF) return;
  if (s.expandFrontier)
    expandFrontier(s, v);
  else if (s.worklist != nullptr)
    propagateUnconverged(s, v);
}

double pull(const LfShared& s, VertexId v, double alpha, double base) {
  return pullRankDispatch(s.pull, s.graph, s.ranks, v, alpha, base);
}

/// Pull-update vertex v once and maintain its convergence flags per the
/// protocol above.
void updateVertex(const LfShared& s, VertexId v, double alpha, double base,
                  std::uint64_t& updates, bool& anyUnconverged) {
  const double tau = s.opt.tolerance;
  const double tauF = s.opt.frontierTolerance;

  const double r = pull(s, v, alpha, base);
  const double dr = std::fabs(r - s.ranks.exchange(v, r));
  ++updates;
  LFPR_COUNT(s.stats, rankPublishes, 1);

  wakeNeighbours(s, v, dr, tauF);

  if (dr > tau) {
    anyUnconverged = true;
    markUnconverged(s, v);
  } else if (s.notConverged.load(v) == 1) {
    // Clear-then-reverify (part 1), entered only when this pull's delta is
    // already within tau. The acquire exchange makes every rank write
    // published by a mark it overwrites visible to the re-pull; if the
    // rank still moves, the clear was premature and the mark is restored.
    // The re-pull runs only when the exchange actually erased a mark
    // (returned 1): a 0 -> 0 exchange means a concurrent clearer got there
    // between our load and our RMW — reverify duty travelled with ITS
    // clear, and any mark after that clear would have made our exchange
    // return 1.
    LFPR_COUNT(s.stats, flagRmws, 1);
    if (s.notConverged.exchange(v, 0, std::memory_order_acquire) != 0) {
      const double r2 = pull(s, v, alpha, base);
      const double dr2 = std::fabs(r2 - s.ranks.exchange(v, r2));
      ++updates;
      LFPR_COUNT(s.stats, rankPublishes, 1);
      LFPR_COUNT(s.stats, rePulls, 1);
      wakeNeighbours(s, v, dr2, tauF);
      if (dr2 > tau) {
        anyUnconverged = true;
        markUnconverged(s, v);
      }
    }
  }
}

/// Worklist publish diet: the single-plain-store-publisher variant of
/// updateVertex, valid only for the vertex's ring owner with fault
/// injection off (invariant 2 in the worklist note above). The flag
/// handling — release marks, acquire clear-then-reverify — is identical;
/// only the rank publish is a plain relaxed store whose pre-load is the
/// value actually overwritten.
void updateOwnedVertexDiet(const LfShared& s, VertexId v, double alpha,
                           double base, std::uint64_t& updates) {
  const double tau = s.opt.tolerance;
  const double tauF = s.opt.frontierTolerance;

  const double r = pull(s, v, alpha, base);
  const double dr = std::fabs(r - s.ranks.load(v));
  s.ranks.store(v, r);
  ++updates;
  LFPR_COUNT(s.stats, rankPublishes, 1);

  wakeNeighbours(s, v, dr, tauF);

  if (dr > tau) {
    markUnconverged(s, v);
  } else if (s.notConverged.load(v) == 1) {
    LFPR_COUNT(s.stats, flagRmws, 1);
    if (s.notConverged.exchange(v, 0, std::memory_order_acquire) != 0) {
      const double r2 = pull(s, v, alpha, base);
      const double dr2 = std::fabs(r2 - s.ranks.load(v));
      s.ranks.store(v, r2);
      ++updates;
      LFPR_COUNT(s.stats, rankPublishes, 1);
      LFPR_COUNT(s.stats, rePulls, 1);
      wakeNeighbours(s, v, dr2, tauF);
      if (dr2 > tau) markUnconverged(s, v);
    }
  }
}

/// Process vertices [begin, end); returns false if this thread crashed.
bool processRange(const LfShared& s, int tid, std::size_t begin, std::size_t end,
                  std::uint64_t& updates, bool& anyUnconverged) {
  const double alpha = s.opt.alpha;
  const double base =
      (1.0 - alpha) / static_cast<double>(s.graph.numVertices());

  for (std::size_t i = begin; i < end; ++i) {
    const auto v = static_cast<VertexId>(i);
    if (s.affected != nullptr && s.affected->load(v) == 0) continue;
    updateVertex(s, v, alpha, base, updates, anyUnconverged);
    if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) return false;
  }
  return true;
}

/// Clear chunk flag c, then re-derive it from the per-vertex flags. Same
/// protocol as the per-vertex clear: the acquire exchange synchronizes
/// with any release mark it overwrites, so the rescan observes the
/// per-vertex flag that marker set first (markUnconverged orders the
/// vertex flag before the chunk flag).
void clearChunkFlagAndReverify(const LfShared& s, std::size_t c) {
  if (s.chunkFlags->load(c) == 0) return;
  LFPR_COUNT(s.stats, flagRmws, 1);
  s.chunkFlags->exchange(c, 0, std::memory_order_acquire);
  const std::size_t n = s.graph.numVertices();
  const std::size_t b = c * s.opt.chunkSize;
  const std::size_t e = std::min(b + s.opt.chunkSize, n);
  for (std::size_t w = b; w < e; ++w) {
    if (s.notConverged.load(w) != 0) {
      s.chunkFlags->fetchOr(c, 1, std::memory_order_release);
      return;
    }
  }
}

bool flagsAllZeroFrom(const LfShared& s, std::size_t& scanHint) {
  return s.chunkFlags != nullptr ? s.chunkFlags->allZeroFrom(scanHint)
                                 : s.notConverged.allZeroFrom(scanHint);
}

/// Process one worklist vertex: the diet path when this thread may
/// plain-store-publish it (it owns the vertex and no fault injector is
/// active), the full exchange protocol otherwise.
void processWorklistVertex(const LfShared& s, VertexId v, bool diet,
                           double alpha, double base, std::uint64_t& updates) {
  if (diet) {
    updateOwnedVertexDiet(s, v, alpha, base, updates);
  } else {
    bool anyUnconverged = false;
    updateVertex(s, v, alpha, base, updates, anyUnconverged);
  }
}

/// Worker body for SchedulingMode::Worklist. Round structure:
///
///   dense phase (Static/ND)   chunked full-protocol sweeps through the
///                             shared pool until the dirty set is sparse
///                             (WorklistScheduler::sparse); the marks
///                             seed the rings along the way. DT/DF start
///                             sparse — the marking phase seeds them.
///   sparse rounds             drain the own ring (diet publishes), then
///                             — once the ring runs dry — reconcile the
///                             owned partition against the flags via the
///                             word-wide scan (catches lost enqueues;
///                             the flags are the authority).
///   quiescent                 global flag scan; sets allConverged when
///                             clean. Dirt elsewhere belongs to a peer:
///                             if the global progress counter advances
///                             across a yield its owner is alive, so
///                             wait (competing with a healthy owner
///                             sustains churn — see noteProgress).
///                             Orphaned dirt (owner crashed, capped out
///                             or exited) is taken over: steal its ring
///                             entries, then run a recovery sweep
///                             through the shared chunk pool — disjoint
///                             chunks keep concurrent helpers from
///                             fighting over one vertex — all with the
///                             full exchange protocol, which mixes
///                             safely with owner diet stores (invariant
///                             2 in the worklist note above). This is
///                             what completes a crashed owner's
///                             partition under fault injection.
///
/// Waiting on an active peer costs no round budget — a fast thread must
/// not exhaust maxIterations while a slow peer can still hand it work —
/// but is bounded (idleRounds) so a capped-out peer cannot strand it.
/// The flags keep any early exit honest.
void lfWorklistWorker(const LfShared& s, int tid) {
  WorklistScheduler& wl = *s.worklist;
  const std::size_t n = s.graph.numVertices();
  const double alpha = s.opt.alpha;
  const double base = (1.0 - alpha) / static_cast<double>(n);
  const bool diet = s.fault == nullptr;
  const int maxRounds = s.opt.maxIterations;
  const std::size_t oBegin = wl.ownedBegin(tid);
  const std::size_t oEnd = wl.ownedEnd(tid);
  // Per-round work cap, chosen for sweep-equivalence with the dense
  // scheduler (where one round lets a thread process up to n vertices),
  // so maxIterations bounds the same total work in both modes.
  const std::size_t budget = std::max<std::size_t>(n, 1);
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;

  int round = 0;
  // Dense phase (Static/ND all-dirty starts): sweep through the shared
  // chunk pool with the full publish protocol, exactly like the dense
  // scheduler, until the frontier is sparse enough for the rings to win
  // (see WorklistScheduler::sparse). The marks made here seed the rings.
  while (round < maxRounds && !wl.sparse()) {
    if (exitLoops(s)) break;
    std::size_t begin = 0, end = 0;
    while (!exitLoops(s) &&
           s.rounds.next(static_cast<std::size_t>(round), begin, end)) {
      bool anyUnconverged = false;
      if (!processRange(s, tid, begin, end, updates, anyUnconverged)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      wl.noteProgress(end - begin);
    }
    ++round;
    atomicMaxInt(s.maxRound, round);
    if (flagsAllZeroFrom(s, scanHint)) {
      s.allConverged.store(true, std::memory_order_relaxed);
      break;
    }
    // One observer is enough for the one-way sparse flip; T redundant
    // O(|V|/8) scans per round would just burn bandwidth. If thread 0
    // crashes (fault injection only) the solve simply stays dense —
    // that is the dense scheduler's semantics, still correct.
    if (tid == 0) wl.observeDensity(s.notConverged.countNonZero());
  }

  int idleRounds = 0;
  while (round < maxRounds) {
    if (exitLoops(s)) break;

    // Drain the own ring, at most `budget` entries per round so
    // `iterations` keeps its sweeps-equivalent meaning and maxIterations
    // stays a work cap.
    std::size_t pops = 0;
    VertexId v = 0;
    while (pops < budget && wl.tryPop(tid, v)) {
      ++pops;
      processWorklistVertex(s, v, diet, alpha, base, updates);
      // Heartbeat every 64 pops, not just at drain end: a drain can run
      // up to `budget` = n pops, and a quiescent peer that samples the
      // counter across a yield without seeing it move would misread this
      // healthy owner as orphaned and start a competing recovery sweep.
      if ((pops & 63u) == 0) wl.noteProgress(64);
      if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
    }
    if ((pops & 63u) != 0) wl.noteProgress(pops & 63u);
    if (pops >= budget) {
      ++round;
      atomicMaxInt(s.maxRound, round);
      idleRounds = 0;
      continue;
    }

    // Ring dry: reconcile the owned partition against the flags
    // (word-wide scan — one relaxed load per eight flags, so a clean
    // partition costs O(|owned|/8), not a per-vertex sweep).
    bool dirt = false;
    std::size_t i = oBegin;
    while ((i = s.notConverged.firstNonZero(i, oEnd)) < oEnd) {
      dirt = true;
      processWorklistVertex(s, static_cast<VertexId>(i), diet, alpha, base,
                            updates);
      wl.noteProgress(1);  // same heartbeat rationale as the drain loop
      if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      ++i;
    }
    if (dirt || pops > 0) {
      ++round;
      atomicMaxInt(s.maxRound, round);
      idleRounds = 0;
      continue;
    }

    // Personally quiescent: did everyone finish?
    if (flagsAllZeroFrom(s, scanHint)) {
      s.allConverged.store(true, std::memory_order_relaxed);
      break;
    }

    // Global dirt remains. If its owner is alive and working, leave it
    // alone — see WorklistScheduler::noteProgress for why competing with
    // a healthy owner can sustain the frontier forever. The yield also
    // hands the CPU to that owner on oversubscribed hosts.
    const std::uint64_t before = wl.progress();
    std::this_thread::yield();
    if (wl.progress() != before) {
      if (++idleRounds > maxRounds) break;  // safety valve; flags stay honest
      continue;  // waiting costs no round budget
    }

    // The dirt is orphaned (its owner crashed, capped out, or exited):
    // take it over. First drain the orphaned rings, then run a recovery
    // sweep through the shared chunk pool — the pool hands concurrent
    // helpers DISJOINT chunks, the same property that keeps the dense
    // scheduler's publishers from fighting over one vertex. Everything
    // here uses the full exchange protocol: helpers are never the single
    // plain-store publisher.
    std::size_t helped = 0;
    while (helped < budget && wl.trySteal(tid, v)) {
      ++helped;
      processWorklistVertex(s, v, /*diet=*/false, alpha, base, updates);
      wl.noteProgress(1);  // heartbeat: don't look stalled to other helpers
      if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
    }
    bool swept = false;
    std::size_t begin = 0, end = 0;
    while (!exitLoops(s) &&
           s.rounds.next(static_cast<std::size_t>(round), begin, end)) {
      swept = true;
      bool anyUnconverged = false;
      if (!processRange(s, tid, begin, end, updates, anyUnconverged)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      wl.noteProgress(end - begin);
    }
    if (helped > 0 || swept) {
      ++round;
      atomicMaxInt(s.maxRound, round);
      idleRounds = 0;
      continue;
    }

    // This round's recovery pool was already drained by a peer helper:
    // advance to the next pool (burning round budget keeps the exit
    // honest — the flags are still the authority).
    ++round;
  }
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

}  // namespace

void lfIterateWorker(const LfShared& s, int tid) {
  if (s.worklist != nullptr) {
    lfWorklistWorker(s, tid);
    return;
  }
  const std::size_t n = s.graph.numVertices();
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;  // resume point for this thread's convergence scans
  const int maxRounds = s.opt.maxIterations;

  // Static-schedule ablation (Eedi et al. style): each thread owns a fixed
  // stripe of the vertex range instead of pulling dynamic chunks.
  std::size_t stripeBegin = 0, stripeEnd = n;
  if (s.opt.staticSchedule) {
    const auto t = static_cast<std::size_t>(tid);
    const auto numThreads = static_cast<std::size_t>(s.opt.numThreads > 0
                                                         ? s.opt.numThreads
                                                         : 1);
    stripeBegin = n * t / numThreads;
    stripeEnd = n * (t + 1) / numThreads;
  }

  for (int round = 0; round < maxRounds; ++round) {
    if (exitLoops(s)) break;

    if (s.opt.staticSchedule) {
      bool anyUnconverged = false;
      if (!processRange(s, tid, stripeBegin, stripeEnd, updates, anyUnconverged)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      // Chunk-by-chunk clear-then-reverify. The seed's wholesale stripe
      // clear could wipe chunks a concurrent frontier expansion had just
      // re-marked — the chunk-granularity variant of the lost wakeup.
      if (s.chunkFlags != nullptr && !anyUnconverged && stripeEnd > stripeBegin) {
        for (std::size_t c = stripeBegin / s.opt.chunkSize;
             c <= (stripeEnd - 1) / s.opt.chunkSize; ++c)
          clearChunkFlagAndReverify(s, c);
      }
    } else {
      std::size_t begin = 0, end = 0;
      while (!exitLoops(s) &&
             s.rounds.next(static_cast<std::size_t>(round), begin, end)) {
        bool anyUnconverged = false;
        if (!processRange(s, tid, begin, end, updates, anyUnconverged)) {
          s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
          return;  // crashed
        }
        if (s.chunkFlags != nullptr && !anyUnconverged)
          clearChunkFlagAndReverify(s, begin / s.opt.chunkSize);
      }
    }

    atomicMaxInt(s.maxRound, round + 1);
    if (flagsAllZeroFrom(s, scanHint)) {
      s.allConverged.store(true, std::memory_order_relaxed);
      break;
    }
  }
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

void lfFinishSequential(const LfShared& s) {
  // Only repair runs whose convergence scan actually passed: a run that
  // merely hit the round cap — or whose threads all crashed — must stay
  // unconverged (dirty flags) rather than be silently finished here.
  if (!s.allConverged.load(std::memory_order_relaxed)) return;

  const std::size_t n = s.graph.numVertices();
  const double alpha = s.opt.alpha;
  const double base = (1.0 - alpha) / static_cast<double>(n);
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;

  // The pass spends what is left of the run's iteration budget (usually
  // plenty: the scan passed well before the cap; typically 0-2 sweeps are
  // needed) and accounts its sweeps in maxRound, so iterations and
  // rankUpdates stay consistent and maxIterations remains a hard cap on
  // total sweeps.
  const int budget =
      std::max(0, s.opt.maxIterations - s.maxRound.load(std::memory_order_relaxed));
  int roundsDone = 0;
  for (int round = 0; round < budget; ++round) {
    // A stop request ends the finish pass too; dirty flags then keep the
    // result honestly unconverged.
    if (stopSeen(s)) break;
    if (flagsAllZeroFrom(s, scanHint)) break;
    bool anyUnconverged = false;
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<VertexId>(i);
      if (s.affected != nullptr && s.affected->load(v) == 0) continue;
      updateVertex(s, v, alpha, base, updates, anyUnconverged);
    }
    if (s.chunkFlags != nullptr && !anyUnconverged) {
      const std::size_t numChunks = (n + s.opt.chunkSize - 1) / s.opt.chunkSize;
      for (std::size_t c = 0; c < numChunks; ++c) clearChunkFlagAndReverify(s, c);
    }
    ++roundsDone;
  }
  if (roundsDone > 0)
    s.maxRound.fetch_add(roundsDone, std::memory_order_relaxed);
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

}  // namespace lfpr::detail
