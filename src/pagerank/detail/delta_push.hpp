// Lock-free delta-push residual iteration (the PR 8 engine family).
//
// The pull engines re-pull every incident in-edge of a dirty vertex on
// every visit until it converges. Delta-push instead propagates only the
// *changed mass*: each vertex carries an atomic residual accumulator
// (the pending change to its rank), a batch seeds residuals at the
// DF-marked vertices with ONE pull each, and from then on the iteration
// is pull-free — draining a vertex applies its residual to its rank and
// forward-pushes `alpha * residual[v] * invOutDeg[v]` to each
// out-neighbour with a lock-free fetch-add (AtomicF64Vector::fetchAdd;
// no per-vertex spin-locks, unlike Ligra's PRDelta). A push that moves a
// neighbour's residual across the activation threshold enters it into
// the same WorkRing/WorklistScheduler machinery the PR 5 worklist uses
// (WorklistScheduler::activate). Residual magnitudes decay geometrically
// (alpha per hop), so total touched edges scale with the injected mass,
// not with frontier-size times iterations — the mid-density fig7 band
// where both pull schedulers do redundant work.
//
// Convergence authority is unchanged: the PR 1 flag protocol decides
// termination (flags, never residuals), and residual drains feed the
// same clear-then-reverify marks. See the protocol note at the top of
// delta_push.cpp for how each invariant maps onto residual mass.
#pragma once

#include <atomic>
#include <cstdint>

#include "graph/csr.hpp"
#include "graph/pull_csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/detail/stats.hpp"
#include "pagerank/options.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/fault.hpp"
#include "sched/work_ring.hpp"

namespace lfpr::detail {

struct DeltaPushShared {
  const CsrGraph& graph;
  /// Seed-phase pull layout (PullLayout::Weighted support); the push
  /// iteration itself never pulls.
  const WeightedPullCsr* pull = nullptr;
  AtomicF64Vector& ranks;
  /// Per-vertex pending-mass accumulators (LfEngineState::residual).
  AtomicF64Vector& residual;
  /// The termination protocol's RC flags — the sole convergence
  /// authority, exactly as in lf_iterate.cpp.
  AtomicU8Vector& notConverged;
  /// Marking-phase output: the seed set (vertices whose pull changed).
  AtomicU8Vector& affected;
  /// Per-chunk seed-completion flags (phase A helping; see .cpp).
  AtomicU8Vector& seedDone;
  /// Shared chunk pool over the vertex range for the seed sweep.
  ChunkCursor& seedCursor;
  std::atomic<bool>& allConverged;
  std::atomic<int>& maxRound;
  std::atomic<std::uint64_t>& rankUpdates;
  const PageRankOptions& opt;
  FaultInjector* fault = nullptr;
  /// Always present: delta-push is worklist-driven by construction.
  WorklistScheduler& worklist;
  ProtocolCounters* stats = nullptr;
};

/// Phase A worker body (after markAffectedWorker): seed the residuals of
/// affected vertices from a chunk pool, then help-rescan unfinished
/// chunks. Returns false if this thread crashed (fault injection).
bool seedResidualWorker(const DeltaPushShared& s, int tid);

/// Sequential phase A repair, run by the engine's caller after the seed
/// team joined: re-executes any chunk no surviving thread finished
/// (idempotent — ranks are frozen until phase B starts).
void seedResidualRepair(const DeltaPushShared& s);

/// Phase B worker body: drain the own ring / reconcile the owned
/// partition / global scan, with orphan takeover under fault injection.
void deltaPushWorker(const DeltaPushShared& s, int tid);

/// Post-join completion pass (termination protocol part 3): absorbs
/// flags re-marked by in-flight drains after the convergence scan
/// passed. Gated on allConverged like lfFinishSequential.
void deltaPushFinishSequential(const DeltaPushShared& s);

}  // namespace lfpr::detail
