// Lock-free asynchronous iteration core shared by StaticLF, NDLF, DTLF
// and DFLF (Algorithms 4, 6, 8 and 2).
//
// Runs *inside* an already-spawned thread team (the paper's single
// top-level parallel block): each worker independently drains dynamic
// chunks of the current round with no barrier between rounds, updates
// ranks in-place on the shared atomic vector, maintains the per-vertex
// converged flags RC, and stops when it observes RC[v] == 0 for all v.
// A crashed or stalled thread merely stops taking chunks; its vertices
// are re-processed by the surviving threads in subsequent rounds (the
// RC flags keep the algorithm from terminating before that happens).
#pragma once

#include <atomic>
#include <cstdint>

#include "graph/csr.hpp"
#include "graph/pull_csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/detail/stats.hpp"
#include "pagerank/options.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/fault.hpp"
#include "sched/work_ring.hpp"

namespace lfpr::detail {

struct LfShared {
  const CsrGraph& graph;
  /// Non-null when opt.pullLayout == PullLayout::Weighted: the derived
  /// (src, weight) arc stream the pull kernel reads instead of the CSR
  /// in-lists. Frontier expansion still walks graph.out().
  const WeightedPullCsr* pull = nullptr;
  AtomicF64Vector& ranks;
  /// Per-vertex "not yet converged" flags. For Static/ND engines this is
  /// initialized to 1 everywhere; for DT/DF engines the marking phase
  /// sets it for affected vertices only.
  AtomicU8Vector& notConverged;
  /// When set, only vertices with affected[v] != 0 are processed.
  AtomicU8Vector* affected = nullptr;
  /// Dynamic Frontier expansion: mark out-neighbours affected (and not
  /// converged) when a vertex's rank moves by more than tau_f.
  bool expandFrontier = false;
  /// Optional per-chunk converged flags (DF-LF ablation, Section 4.3):
  /// index = vertex / chunkSize; when present, convergence is detected by
  /// scanning these instead of notConverged.
  AtomicU8Vector* chunkFlags = nullptr;
  /// One chunk pool per round; a fast thread may work rounds ahead of a
  /// slow one.
  RoundCursorSet& rounds;
  std::atomic<bool>& allConverged;
  std::atomic<int>& maxRound;
  std::atomic<std::uint64_t>& rankUpdates;
  const PageRankOptions& opt;
  FaultInjector* fault = nullptr;
  /// Non-null when opt.scheduling == SchedulingMode::Worklist: the
  /// per-thread dirty-vertex rings that replace the dense chunked sweep
  /// (see the worklist + publish-diet note in lf_iterate.cpp).
  WorklistScheduler* worklist = nullptr;
  /// Protocol-cost counters (LFPR_STATS builds; ignored otherwise).
  ProtocolCounters* stats = nullptr;
};

/// Body executed by each worker thread (tid) until convergence, crash, or
/// the round cap. Lock-free: no barriers, no locks, progress guaranteed
/// for every running thread.
void lfIterateWorker(const LfShared& shared, int tid);

/// Post-join completion pass, run by the engine's caller thread AFTER the
/// team has joined (so there are no concurrent writers left). A worker
/// still in flight when the convergence scan passed may have re-marked a
/// flag on its way out (stale-store rollback or a reverified clear);
/// this pass re-iterates until the flags are genuinely clean, up to the
/// round cap. No-op unless `allConverged` was set: a run that merely hit
/// the round cap — or whose threads all crashed — must stay unconverged
/// rather than be silently finished on one thread. Because the pass can
/// itself be capped, engines must derive their converged result from the
/// flags, not from `allConverged`.
void lfFinishSequential(const LfShared& shared);

}  // namespace lfpr::detail
