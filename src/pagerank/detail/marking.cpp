#include "pagerank/detail/marking.hpp"

#include <vector>

#include "pagerank/detail/flags.hpp"

namespace lfpr::detail {

namespace {

// Marks go through the shared release-RMW primitive (flags.hpp): a
// helping rescan can re-mark a vertex while another thread is already
// iterating (and clearing flags), so marking participates in the same
// release-sequence protocol as the frontier expansion — see the
// termination-protocol comment in lf_iterate.cpp.
void markVertex(const MarkShared& s, VertexId w) {
  s.affected.store(w, 1);
  markVertexUnconverged(s.notConverged, s.chunkFlags, s.chunkSize, w,
                        s.worklist);
  LFPR_COUNT(s.stats, flagRmws, s.chunkFlags != nullptr ? 2 : 1);
}

/// Iterative DFS over the current graph marking every reachable vertex.
/// `localPrune` selects the pruning set: against the shared affected
/// flags (fast; assumes the competing marker finishes) or against a
/// thread-local visited set (used in helping rescans so a crashed
/// marker's half-done traversal can never hide vertices; see Section 4.4
/// — helping threads re-execute work rather than wait for it).
void visitDfs(const MarkShared& s, VertexId start, std::vector<VertexId>& stack,
              std::vector<std::uint8_t>* localVisited) {
  auto tryClaim = [&](VertexId w) -> bool {
    if (localVisited != nullptr) {
      if ((*localVisited)[w] != 0) return false;
      (*localVisited)[w] = 1;
      markVertex(s, w);
      return true;
    }
    const bool first = s.affected.exchange(w, 1) == 0;
    if (first) {
      markVertexUnconverged(s.notConverged, s.chunkFlags, s.chunkSize, w,
                            s.worklist);
      LFPR_COUNT(s.stats, flagRmws, s.chunkFlags != nullptr ? 2 : 1);
    }
    return first;
  };

  stack.clear();
  if (!tryClaim(start)) return;
  stack.push_back(start);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : s.curr.out(v))
      if (tryClaim(w)) stack.push_back(w);
  }
}

/// Mark everything required for batch source u, then publish via the
/// checked flag. Returns false if this thread crashed mid-way.
bool processSource(const MarkShared& s, int tid, VertexId u,
                   std::vector<VertexId>& stack,
                   std::vector<std::uint8_t>* localVisited) {
  if (s.checked.load(u, std::memory_order_acquire) == 1) return true;

  if (s.traverse) {
    if (u < s.prev.numVertices())
      for (VertexId w : s.prev.out(u)) visitDfs(s, w, stack, localVisited);
    for (VertexId w : s.curr.out(u)) visitDfs(s, w, stack, localVisited);
  } else {
    if (u < s.prev.numVertices())
      for (VertexId w : s.prev.out(u)) markVertex(s, w);
    for (VertexId w : s.curr.out(u)) markVertex(s, w);
  }
  // Release so a thread that observes checked == 1 also observes every
  // mark above (phase-2 readers and helping scanners).
  s.checked.store(u, 1, std::memory_order_release);
  if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) return false;
  return true;
}

}  // namespace

bool markAffectedWorker(const MarkShared& s, int tid) {
  std::vector<VertexId> stack;
  std::vector<std::uint8_t> localVisited;

  // DT traversals prune against the shared affected flags so concurrent
  // threads share work — sound only if whoever planted a flag finishes
  // its traversal. Under fault injection a marker can crash mid-DFS, so
  // every pass must prune against a thread-local visited set instead
  // (this thread's own completed traversals), trading re-traversal for
  // crash safety. The same applies to the helping rescans always: the
  // thread being helped may be stalled mid-traversal.
  const bool faultMode = s.traverse && s.fault != nullptr;
  if (faultMode) localVisited.assign(s.curr.numVertices(), 0);

  // First pass: drain the dynamically scheduled share of the batch.
  std::size_t begin = 0, end = 0;
  while (s.cursor.next(begin, end)) {
    for (std::size_t i = begin; i < end; ++i)
      if (!processSource(s, tid, s.edges[i].src, stack,
                         faultMode ? &localVisited : nullptr))
        return false;
  }

  // Helping rescans: keep sweeping the batch until every source has been
  // published as checked. Re-execution (rather than waiting) is what
  // makes this phase lock-free and crash-tolerant.
  for (;;) {
    bool allChecked = true;
    for (const Edge& e : s.edges) {
      if (s.checked.load(e.src, std::memory_order_acquire) == 0) {
        allChecked = false;
        if (s.traverse && localVisited.empty())
          localVisited.assign(s.curr.numVertices(), 0);
        if (!processSource(s, tid, e.src, stack,
                           s.traverse ? &localVisited : nullptr))
          return false;
      }
    }
    if (allChecked) return true;
  }
}

}  // namespace lfpr::detail
