// Delta-push residual iteration — how the PR 1 termination protocol maps
// onto residual mass instead of re-pulled ranks.
//
// Invariant. Between any two atomic operations the pair (ranks, residual)
// satisfies  rank* = ranks + (I - alpha*P^T)^{-1} residual  for the true
// fixpoint rank*: draining a vertex moves its residual into its rank and
// forward-pushes `alpha * d * invOutDeg` to each out-neighbour, which
// preserves the identity exactly; a fetch-add can never lose mass. When
// every parked |residual[v]| is at or below the activation threshold
// tau(v), the error is bounded by max tau / (1 - alpha) — the same
// asyncToleranceBound certificate the pull engines report.
//
// The four protocol parts (lf_iterate.cpp) translate as follows:
//
//  1. Clear-then-reverify. A drainer clears a vertex's RC flag only
//     through an acquire RMW exchange and then re-reads the *residual*:
//     a concurrent pusher whose fetch-add crossed the threshold marks the
//     flag with a release RMW (flags.hpp) after the add, so the acquire
//     exchange that observes the mark also observes the added mass, and
//     the reverify re-activates. A crossing can therefore never be lost.
//  2. Crossing-only marks. A pusher activates a neighbour only when its
//     add moved |residual| across tau (crossedThreshold on the fetch-add
//     before-value). Adds that land below tau park their mass — that is
//     the tolerated error above; adds on an already-above residual need
//     no mark because the crossing that got it there marked the vertex
//     and any clear in between reverified against the current value.
//  3. Post-scan dirt. The convergence scan can pass while a drain is
//     in flight; its crossings re-mark flags afterwards. The sequential
//     finish pass (deltaPushFinishSequential) absorbs them after the
//     join, gated on allConverged exactly like lfFinishSequential.
//  4. Flags authority. Termination is decided by the RC flags alone —
//     residuals never vote. A crashed thread's undrained mass sits behind
//     set flags, so the run exits honestly unconverged (or is completed
//     by takeover under fault injection).
//
// Seeding (phase A) runs on FROZEN ranks: residual[v] is *stored* (not
// added) as pull_new(v) - rank[v] at each DF-marked vertex, which makes
// the seed idempotent — the marking phase's helping idiom carries over
// unchanged (per-chunk seedDone flags, re-execute instead of wait), and a
// crashed seeder's chunks are replayed by survivors or by the sequential
// repair after the join. Only after every seed chunk is done (real join
// between the two team.run calls — crashed threads return early, so the
// join cannot hang) does phase B start moving ranks.
//
// Publish diet (PR 5) — restricted. A healthy solve (fault == nullptr)
// has NO takeover path at all: owners drain only their own partition and
// quiescent peers only wait, so the owner is the partition's unique rank
// writer and applies drains with plain load+store. Under fault injection
// every apply is a ranks.fetchAdd and the worklist takeover paths (steal
// + flag recovery sweep) switch on: unlike the pull engines' exchange —
// which observes the value it overwrites and can re-mark — a lost
// concurrent add is lost *mass* that nothing recomputes, so diet and
// takeover are never combined. Concurrent drains of one vertex stay safe
// in fault mode: the residual exchange hands the mass to exactly one
// drainer and fetch-add applies commute.
#include "pagerank/detail/delta_push.hpp"

#include <algorithm>
#include <thread>

#include "pagerank/detail/common.hpp"
#include "pagerank/detail/flags.hpp"

namespace lfpr::detail {

namespace {

bool stopSeen(const DeltaPushShared& s) noexcept {
  return s.opt.stopRequested != nullptr &&
         s.opt.stopRequested->load(std::memory_order_relaxed);
}

bool exitLoops(const DeltaPushShared& s) noexcept {
  return s.allConverged.load(std::memory_order_relaxed) || stopSeen(s);
}

/// Per-vertex activation threshold: tolerance plus the optional
/// Ligra-PRDelta-style relative term (options.hpp,
/// pushRelativeTolerance). With the default 0 this is the constant tau.
double threshold(const DeltaPushShared& s, std::size_t v) noexcept {
  const double rel = s.opt.pushRelativeTolerance;
  if (rel == 0.0) return s.opt.tolerance;
  return s.opt.tolerance + rel * std::abs(s.ranks.load(v));
}

/// Release-mark + counted ring entry, in the flags.hpp order (flag RMW
/// strictly before the enqueue, so the mark survives a lost enqueue).
void activateVertex(const DeltaPushShared& s, std::size_t v) {
  markVertexUnconverged(s.notConverged, nullptr, 0, v, nullptr);
  LFPR_COUNT(s.stats, flagRmws, 1);
  s.worklist.activate(v);
}

/// Drain one vertex: take its residual if above threshold, apply it to
/// the rank (plain store when `diet`, fetch-add otherwise), push the
/// scaled mass to the out-neighbours, then clear-then-reverify the RC
/// flag against the post-drain residual.
void drainVertex(const DeltaPushShared& s, std::size_t v, bool diet,
                 std::uint64_t& updates) {
  const double thr = threshold(s, v);
  double res = s.residual.load(v);
  if (res > thr || res < -thr) {
    const double d = s.residual.exchange(v, 0.0);
    if (d != 0.0) {
      if (diet) {
        // Unique-writer apply (see the publish-diet note above).
        s.ranks.store(v, s.ranks.load(v) + d);
      } else {
        s.ranks.fetchAdd(v, d);
      }
      LFPR_COUNT(s.stats, rankPublishes, 1);
      ++updates;
      const double w =
          s.opt.alpha * d * s.graph.invOutDegree(static_cast<VertexId>(v));
      if (w != 0.0) {
        const auto out = s.graph.out(static_cast<VertexId>(v));
        for (const VertexId u : out) {
          const double before = s.residual.fetchAdd(u, w);
          // markAffected keeps result.affectedVertices meaningful for
          // push solves: everything whose residual ever moved.
          markAffected(s.affected, u);
          if (WorklistScheduler::crossedThreshold(before, before + w,
                                                  threshold(s, u)))
            activateVertex(s, u);
        }
        LFPR_COUNT(s.stats, residualPushes,
                   static_cast<std::uint64_t>(out.size()));
      }
    }
  }
  // Clear-then-reverify (protocol part 1): clear the flag only when the
  // parked residual is at or below threshold, through an acquire RMW, and
  // re-read the residual afterwards — the acquire synchronizes with any
  // crossing's release mark, so the reverify sees its mass and restores
  // the mark. The reverify is residual-only: phase B never pulls.
  if (s.notConverged.load(v) != 0) {
    res = s.residual.load(v);
    if (!(res > thr) && !(res < -thr)) {
      LFPR_COUNT(s.stats, flagRmws, 1);
      if (s.notConverged.exchange(v, 0, std::memory_order_acquire) != 0) {
        res = s.residual.load(v);
        if (res > thr || res < -thr) activateVertex(s, v);
      }
    }
  }
}

/// Seed the residuals of the affected vertices in [begin, end): one pull
/// against the FROZEN ranks per marked vertex, *stored* so re-execution
/// by helpers or the sequential repair is idempotent. Returns false if
/// this thread crashed (tid >= 0; the sequential repair passes -1 and
/// never observes faults — the team has already joined).
bool seedChunk(const DeltaPushShared& s, std::size_t begin, std::size_t end,
               int tid) {
  const double alpha = s.opt.alpha;
  const double base =
      (1.0 - alpha) / static_cast<double>(s.graph.numVertices());
  std::size_t i = begin;
  while ((i = s.affected.firstNonZero(i, end)) < end) {
    const auto v = static_cast<VertexId>(i);
    const double target =
        pullRankDispatch(s.pull, s.graph, s.ranks, v, alpha, base);
    s.residual.store(i, target - s.ranks.load(i));
    LFPR_COUNT(s.stats, rePulls, 1);
    if (tid >= 0 && s.fault != nullptr && !s.fault->onVertexProcessed(tid))
      return false;  // crashed; seedDone for this chunk stays 0
    ++i;
  }
  return true;
}

}  // namespace

bool seedResidualWorker(const DeltaPushShared& s, int tid) {
  const std::size_t n = s.graph.numVertices();
  const std::size_t chunkSize = s.seedCursor.chunkSize();
  // First pass: drain the shared chunk pool.
  std::size_t begin = 0, end = 0;
  while (s.seedCursor.next(begin, end)) {
    if (stopSeen(s)) return true;  // abort early; flags keep the run honest
    if (!seedChunk(s, begin, end, tid)) return false;
    s.seedDone.store(begin / chunkSize, 1, std::memory_order_release);
  }
  // Helping rescan (the marking phase's idiom): re-execute any chunk
  // whose seedDone flag is still 0 — a crashed or delayed seeder must
  // never block phase B. Stores of identical values make replay safe.
  for (std::size_t c = 0; c < s.seedDone.size(); ++c) {
    if (s.seedDone.load(c, std::memory_order_acquire) != 0) continue;
    if (stopSeen(s)) return true;
    const std::size_t b = c * chunkSize;
    const std::size_t e = std::min(b + chunkSize, n);
    if (!seedChunk(s, b, e, tid)) return false;
    s.seedDone.store(c, 1, std::memory_order_release);
  }
  return true;
}

void seedResidualRepair(const DeltaPushShared& s) {
  // Runs on the engine thread after the phase A join: every thread may
  // have crashed mid-chunk, so replay whatever is still undone. Ranks
  // have not moved yet, so the stores remain idempotent.
  const std::size_t n = s.graph.numVertices();
  const std::size_t chunkSize = s.seedCursor.chunkSize();
  for (std::size_t c = 0; c < s.seedDone.size(); ++c) {
    if (s.seedDone.load(c, std::memory_order_acquire) != 0) continue;
    if (stopSeen(s)) return;
    const std::size_t b = c * chunkSize;
    seedChunk(s, b, std::min(b + chunkSize, n), /*tid=*/-1);
    s.seedDone.store(c, 1, std::memory_order_release);
  }
}

void deltaPushWorker(const DeltaPushShared& s, int tid) {
  WorklistScheduler& wl = s.worklist;
  const std::size_t n = s.graph.numVertices();
  // Healthy solves run the owner publish diet; fault-injected solves
  // trade it for the takeover paths (see the note at the top).
  const bool diet = s.fault == nullptr;
  const int maxRounds = s.opt.maxIterations;
  const std::size_t oBegin = wl.ownedBegin(tid);
  const std::size_t oEnd = wl.ownedEnd(tid);
  // Same sweep-equivalent round cap as lfWorklistWorker: one round is at
  // most n drains, so maxIterations bounds comparable total work.
  const std::size_t budget = std::max<std::size_t>(n, 1);
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;

  int round = 0;
  int idleRounds = 0;
  while (round < maxRounds) {
    if (exitLoops(s)) break;

    // Drain the own ring (batch-seeded solves start sparse; there is no
    // dense phase — the seed set IS the ring contents).
    std::size_t pops = 0;
    VertexId v = 0;
    while (pops < budget && wl.tryPop(tid, v)) {
      ++pops;
      drainVertex(s, v, diet, updates);
      // Heartbeat every 64 pops (not just at drain end) so a quiescent
      // peer sampling the counter across a yield never misreads this
      // healthy owner as orphaned.
      if ((pops & 63u) == 0) wl.noteProgress(64);
      if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
    }
    if ((pops & 63u) != 0) wl.noteProgress(pops & 63u);
    if (pops >= budget) {
      ++round;
      atomicMaxInt(s.maxRound, round);
      idleRounds = 0;
      continue;
    }

    // Ring dry: reconcile the owned partition against the flags
    // (word-wide scan, one relaxed load per eight flags).
    bool dirt = false;
    std::size_t i = oBegin;
    while ((i = s.notConverged.firstNonZero(i, oEnd)) < oEnd) {
      dirt = true;
      drainVertex(s, i, diet, updates);
      wl.noteProgress(1);
      if (s.fault != nullptr && !s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      ++i;
    }
    if (dirt || pops > 0) {
      ++round;
      atomicMaxInt(s.maxRound, round);
      idleRounds = 0;
      continue;
    }

    // Personally quiescent: did everyone finish?
    if (s.notConverged.allZeroFrom(scanHint)) {
      s.allConverged.store(true, std::memory_order_relaxed);
      break;
    }

    // Global dirt remains. If its owner makes progress across a yield it
    // is alive — leave the dirt alone (competing with a healthy owner
    // sustains churn; see WorklistScheduler::noteProgress).
    const std::uint64_t before = wl.progress();
    std::this_thread::yield();
    if (wl.progress() != before) {
      if (++idleRounds > maxRounds) break;  // safety valve; flags stay honest
      continue;  // waiting costs no round budget
    }

    if (s.fault == nullptr) {
      // Healthy mode: NO takeover — the publish diet made the owner the
      // partition's unique rank writer, and a drain by a second thread
      // could race the owner's plain store and lose applied mass (which,
      // unlike a pull engine's stale store, nothing recomputes). A
      // capped-out owner's dirt keeps its flags set and the run exits
      // honestly unconverged.
      if (++idleRounds > maxRounds) break;
      continue;
    }

    // Fault mode: the dirt is orphaned (owner crashed, capped out or
    // exited) — take it over with full-RMW applies. First the orphaned
    // rings, then a bounded flag sweep across the whole range.
    std::size_t helped = 0;
    while (helped < budget && wl.trySteal(tid, v)) {
      ++helped;
      drainVertex(s, v, /*diet=*/false, updates);
      wl.noteProgress(1);
      if (!s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
    }
    std::size_t swept = 0;
    i = 0;
    while (swept < budget && (i = s.notConverged.firstNonZero(i, n)) < n) {
      ++swept;
      drainVertex(s, i, /*diet=*/false, updates);
      wl.noteProgress(1);
      if (!s.fault->onVertexProcessed(tid)) {
        s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
        return;  // crashed
      }
      ++i;
    }
    if (helped > 0 || swept > 0) {
      ++round;
      atomicMaxInt(s.maxRound, round);
      idleRounds = 0;
      continue;
    }
    // Nothing stealable and the flags moved under the sweep: burn round
    // budget so the exit stays honest.
    ++round;
  }
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

void deltaPushFinishSequential(const DeltaPushShared& s) {
  // Only repair runs whose convergence scan actually passed (protocol
  // part 3): a capped or fully-crashed run must stay honestly
  // unconverged rather than be silently finished here.
  if (!s.allConverged.load(std::memory_order_relaxed)) return;

  const std::size_t n = s.graph.numVertices();
  std::uint64_t updates = 0;
  std::size_t scanHint = 0;
  const int budget = std::max(
      0, s.opt.maxIterations - s.maxRound.load(std::memory_order_relaxed));
  int roundsDone = 0;
  for (int round = 0; round < budget; ++round) {
    if (stopSeen(s)) break;
    if (s.notConverged.allZeroFrom(scanHint)) break;
    std::size_t i = 0;
    while ((i = s.notConverged.firstNonZero(i, n)) < n) {
      // Post-join, so the full-RMW apply path is simply unconditional.
      drainVertex(s, i, /*diet=*/false, updates);
      ++i;
    }
    ++roundsDone;
  }
  if (roundsDone > 0)
    s.maxRound.fetch_add(roundsDone, std::memory_order_relaxed);
  s.rankUpdates.fetch_add(updates, std::memory_order_relaxed);
}

}  // namespace lfpr::detail
