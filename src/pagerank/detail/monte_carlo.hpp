// Incremental Monte Carlo PageRank walk store (Bahmani et al., "Fast
// Incremental and Personalized PageRank", PAPERS.md).
//
// The engine maintains R random-walk segments rooted at every vertex.
// Each walk starts at its root and, at every step, continues to a
// uniform out-neighbour with probability alpha and stops otherwise —
// so walk lengths are geometric with mean 1 / (1 - alpha). Counting
// visits over all walks gives global ranks,
//
//     rank(v) ~= (1 - alpha) * visits(v) / (n * R),
//
// and counting only the walks rooted at r gives personalized scores
// (ppr.hpp). The store is indexed two ways:
//
//   * by root — walk w of root r is walk id r*R + w, its vertices in a
//     fixed-stride slice of `verts` (lengths in `len`);
//   * by visited vertex — a CSR-shaped visit index (`indexOffsets` /
//     `indexWalks`) mapping each vertex to the walk ids that step on
//     it, plus per-vertex delta chains for entries added by repairs
//     between (deterministically triggered) compactions.
//
// Batch ingest is the Bahmani update rule, driven by the repo's DF
// batch-mark + worklist machinery: an edge update (u, v) can only
// change the distribution of a walk *after* a visit to u (walks pick
// uniform out-neighbours, so only u's out-distribution changed), so
// the affected walks are exactly the visit-index entries of the batch
// edges' source vertices. Each such walk is claimed lock-free (one
// fetchOr per walk id — claimed exactly once no matter how many
// changed vertices it visits), queued on the PR 5 work rings, and
// repaired: truncate at its first affected visit, then re-walk from
// there on the new snapshot. Expected work per edge update is O(1)
// walks (each vertex is visited R * pi(v) * n / (1-alpha)... in
// expectation a constant number of stored walk positions per root-R
// budget), which is what makes the engine the sub-1e-5 batch-fraction
// specialist (bench_fig7, BM_SmallBatchWalkRepair).
//
// Determinism: every step of every walk draws from a counter-based
// stream keyed by (seed, walkId, epoch) — SplitMix64 evaluated at
// explicit counters, no shared RNG state — and visit counts are ±1.0
// fetch-adds on exact small integers, so the walk store and the ranks
// are bit-identical for the same (seed, batch schedule) regardless of
// thread interleaving, across runs and across service restarts
// (fingerprint() pins this in tests).
//
// The estimates are STATISTICAL: result.toleranceBound carries
// mcL1ErrorBound (error.hpp) — an expected-error scale with a safety
// factor — never the worst-case §4.5 certificate of the exact engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/ppr.hpp"
#include "sched/work_ring.hpp"
#include "util/default_init.hpp"
#include "util/rng.hpp"

namespace lfpr::detail {

/// One SplitMix64 draw at an explicit state value — the mixing function
/// of the counter-based walk RNG.
inline std::uint64_t mcMix(std::uint64_t x) noexcept {
  SplitMix64 sm(x);
  return sm();
}

/// Base of the per-(walk, epoch) draw stream. Distinct walks map to
/// distinct inner mixes (x -> mix(x + c*gamma) is injective per c), and
/// the epoch offsets the outer stream, so streams never collide in
/// practice and every draw is reproducible from (seed, walk, epoch)
/// alone.
inline std::uint64_t mcStreamBase(std::uint64_t seed, std::uint32_t walk,
                                  std::uint64_t epoch) noexcept {
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return mcMix(mcMix(seed + (static_cast<std::uint64_t>(walk) + 1) * kGamma) +
               (epoch + 1) * kGamma);
}

/// Draw `counter` of a stream: position i of a walk uses counters 2i
/// (continue/stop coin) and 2i+1 (neighbour pick), so a repair that
/// regenerates from position p replays exactly the draws a fresh walk
/// of the same epoch would make from p.
inline std::uint64_t mcDraw(std::uint64_t base, std::uint64_t counter) noexcept {
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return mcMix(base + counter * kGamma);
}

/// Shape of a walk store. A store whose config differs from the options
/// of the incoming step is discarded and rebuilt.
struct McConfig {
  int walksPerVertex = 16;
  int maxWalkLength = 32;
  std::uint64_t seed = 0;
  double alpha = 0.85;

  friend bool operator==(const McConfig&, const McConfig&) = default;
};

/// The walk store. Owned by LfEngineState (like the delta-push residual
/// array), valid only while `monteCarloValid` — any exact-engine step
/// moves ranks without maintaining walks, so the next MC step rebuilds.
struct MonteCarloState {
  MonteCarloState(std::size_t numVertices, const McConfig& config);

  McConfig cfg;
  std::size_t n = 0;
  /// Storage stride == cfg.maxWalkLength; also the hard walk-length cap.
  std::size_t stride = 0;
  /// n * R. Walk ids are 32-bit (they ride the VertexId work rings);
  /// the constructor rejects n * R beyond that — same 32-bit ceiling
  /// the snapshot loaders enforce (see ROADMAP's 64-bit item).
  std::uint32_t numWalks = 0;
  /// Batches repaired into the store so far; names the RNG streams.
  std::uint64_t epoch = 0;

  /// Walk w occupies verts[w*stride .. w*stride + len[w]); len >= 1
  /// always (position 0 is the root). 0 is the transient "not yet
  /// generated" marker inside a build. Default-init storage: every live
  /// position is written by build/repair/deserialize before any reader
  /// sees it, and the dead stride padding is never read, so the
  /// constructor skips zeroing what is by far its largest allocation.
  std::vector<VertexId, DefaultInitAllocator<VertexId>> verts;
  std::vector<std::uint16_t> len;

  /// visits[v]: total stored walk positions at v. ±1.0 fetch-adds on
  /// exact integer doubles — order-independent, hence deterministic.
  AtomicF64Vector visits;

  /// Visit index, base CSR part: walk ids visiting v at
  /// indexWalks[indexOffsets[v] .. indexOffsets[v+1]) as of the last
  /// compaction. Duplicates allowed (multiple visits); entries may be
  /// stale after a repair moved the walk away — stale claims are
  /// detected (no affected position on the walk) and skipped.
  std::vector<std::uint64_t> indexOffsets;
  std::vector<std::uint32_t> indexWalks;

  /// Visit index, delta part: per-vertex chains of entries appended by
  /// repairs since the last compaction. deltaHead[v] -> index into
  /// deltaWalk/deltaNext, kNoDelta terminates. Compaction (rebuilding
  /// the base CSR from walk contents and clearing the chains) triggers
  /// on a deterministic size threshold, so store layout stays a pure
  /// function of the batch schedule.
  static constexpr std::uint32_t kNoDelta = 0xffffffffu;
  std::vector<std::uint32_t> deltaHead;
  std::vector<std::uint32_t> deltaWalk;
  std::vector<std::uint32_t> deltaNext;

  /// Per-walk repair claim flags, all-zero between steps. 0 = unclaimed,
  /// 1 = claimed (queued), 2 = repaired — the sequential post-pass
  /// re-walks any claim still at 1 (crash or ring refusal), so each
  /// claimed walk is repaired exactly once even under fault injection.
  AtomicU8Vector claimed;

  /// Cached repair scheduler over the walk-id space. A cleanly drained
  /// WorklistScheduler is self-resetting (pops, steals, and refused
  /// pushes all clear the dedup flags), so clean repair steps reuse one
  /// instance instead of paying an O(numWalks) allocation + zeroing per
  /// batch — the fixed cost that would otherwise dominate small-batch
  /// repairs. Null whenever the last step may have left rings dirty
  /// (fault-armed steps use a private instance; a cooperative stop
  /// mid-repair drops the cache). Rebuilt on thread-count changes.
  std::unique_ptr<WorklistScheduler> repairScheduler;

  [[nodiscard]] std::uint32_t walksPerRoot() const noexcept {
    return static_cast<std::uint32_t>(cfg.walksPerVertex);
  }
  [[nodiscard]] VertexId rootOf(std::uint32_t walk) const noexcept {
    return static_cast<VertexId>(walk / walksPerRoot());
  }

  /// FNV-1a over config, epoch, and the live walk contents — the
  /// determinism contract: equal fingerprints <=> bit-identical stores.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Flatten the walk store into the immutable root-major PprIndex served
/// through SnapshotBox. Called at publish time; walks are root-major
/// contiguous (rootOf == walk / R), so the counting sort partitions by
/// root ranges and the output is bit-identical at any thread count.
[[nodiscard]] PprIndex buildPprIndex(const MonteCarloState& st,
                                     int numThreads = 1);

/// Passive serialized image of a walk store — the payload the checkpoint
/// walk sidecar persists (service/checkpoint.cpp owns the file format;
/// this layer owns the byte layout of the two blobs).
///
///   segments    len[] (u16 x numWalks) followed by the live positions of
///               every walk in walk-id order (u32 x sum(len)) — exactly
///               the bytes fingerprint() covers, no dead stride padding.
///   visitIndex  the base CSR (count, offsets, walk ids) plus the delta
///               chains verbatim. Persisting the index as-is rather than
///               recompacting keeps a resumed store byte-identical to the
///               store that was checkpointed — the next compaction fires
///               on the same deterministic threshold either way.
///
/// `visits` is deliberately absent: the counts are exact small integers
/// recounted from the segments on deserialize, so they cannot disagree
/// with the walks they summarize.
struct WalkStoreImage {
  McConfig cfg;
  std::uint64_t numVertices = 0;
  std::uint64_t numWalks = 0;
  /// Walk-store epoch (batches repaired so far) — names the RNG streams
  /// the resumed store continues from.
  std::uint64_t epoch = 0;
  std::vector<std::byte> segments;
  std::vector<std::byte> visitIndex;
};

/// Non-owning view of a serialized store — what the checkpoint loader
/// hands straight off its mmap so a multi-megabyte sidecar is copied
/// exactly once (blob -> resident state), never staged through owning
/// vectors first.
struct WalkStoreImageView {
  McConfig cfg;
  std::uint64_t numVertices = 0;
  std::uint64_t numWalks = 0;
  std::uint64_t epoch = 0;
  std::span<const std::byte> segments;
  std::span<const std::byte> visitIndex;
};

/// Snapshot a (quiescent) store into its serialized image. Called by the
/// checkpoint writer on the ingest thread between steps — claims are
/// all-zero and the scheduler cache is irrelevant, so neither is part of
/// the image.
[[nodiscard]] WalkStoreImage mcSerializeStore(const MonteCarloState& st);

/// Rebuild a resident store from an image, validating every structural
/// invariant (walk lengths in [1, maxWalkLength], vertex ids < n, index
/// offsets monotonic and consistent with the blob sizes, delta chains
/// in-bounds) — throws std::runtime_error / std::invalid_argument on the
/// first violation, so a checkpoint loader can treat "deserializes
/// cleanly" as "safe to resume repairs on". Visit counts are recounted
/// from the segments; claim flags and the scheduler cache start fresh.
/// The segment pass (copy + validate + recount) parallelizes over walk
/// ranges — pass the solver's thread budget so restart resume scales
/// with the same cores a from-scratch rebuild would use.
[[nodiscard]] std::unique_ptr<MonteCarloState> mcDeserializeStore(
    const WalkStoreImageView& img, int numThreads = 1);

/// Owning-image convenience overload (tests and in-process round trips).
[[nodiscard]] inline std::unique_ptr<MonteCarloState> mcDeserializeStore(
    const WalkStoreImage& img, int numThreads = 1) {
  return mcDeserializeStore(
      WalkStoreImageView{img.cfg, img.numVertices, img.numWalks, img.epoch,
                         img.segments, img.visitIndex},
      numThreads);
}

}  // namespace lfpr::detail
