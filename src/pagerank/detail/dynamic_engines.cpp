#include "pagerank/detail/dynamic_engines.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "pagerank/atomics.hpp"
#include "pagerank/detail/common.hpp"
#include "pagerank/detail/lf_iterate.hpp"
#include "pagerank/detail/marking.hpp"
#include "pagerank/detail/power_bb.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "sched/work_ring.hpp"
#include "util/timer.hpp"

namespace lfpr::detail {

namespace {

/// Dynamic-schedule chunk size for the batch-edge loop of the marking
/// phase. Batches are usually much smaller than the vertex set, so a
/// smaller chunk keeps the marking balanced.
constexpr std::size_t kEdgeChunkSize = 256;

std::vector<Edge> concatBatch(const BatchUpdate& batch) {
  std::vector<Edge> edges;
  edges.reserve(batch.size());
  edges.insert(edges.end(), batch.deletions.begin(), batch.deletions.end());
  edges.insert(edges.end(), batch.insertions.begin(), batch.insertions.end());
  return edges;
}

void validateInputs(const CsrGraph& prev, const CsrGraph& curr,
                    const BatchUpdate& batch, std::span<const double> prevRanks,
                    const char* name) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument(std::string(name) + ": prevRanks size must match graph");
  if (prev.numVertices() != curr.numVertices())
    throw std::invalid_argument(
        std::string(name) +
        ": snapshots must share the vertex set (no vertex insertions/deletions)");
  for (const Edge& e : batch.deletions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
}

}  // namespace

PageRankResult dynamicBB(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch, std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault,
                         bool traverse, bool expandFrontier) {
  validateInputs(prev, curr, batch, prevRanks, traverse ? "dtBB" : "dfBB");
  const std::size_t n = curr.numVertices();
  if (n == 0) {
    PageRankResult result;
    result.converged = true;
    return result;
  }

  const std::vector<Edge> edges = concatBatch(batch);
  AtomicU8Vector affected(n, 0);
  AtomicU8Vector notConverged(n, 0);  // unused by BB iterate; fed by marking
  AtomicU8Vector checked(n, 0);
  ChunkCursor markCursor(edges.size(), kEdgeChunkSize);

  ThreadTeam team(opt.numThreads);
  const Stopwatch markTimer;
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    const MarkShared shared{prev,      curr,         edges,      checked,
                            affected,  notConverged, nullptr,    opt.chunkSize,
                            markCursor, traverse,    fault};
    markAffectedWorker(shared, tid);
  });
  const double markMs = markTimer.elapsedMs();

  BBParams params;
  params.affected = &affected;
  params.expandFrontier = expandFrontier;
  PageRankResult result = powerIterateBB(
      curr, {prevRanks.begin(), prevRanks.end()}, opt, fault, params);
  result.timeMs += markMs;
  result.affectedVertices = affected.countNonZero();
  return result;
}

PageRankResult dynamicLF(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch, std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault,
                         bool traverse, bool expandFrontier) {
  validateInputs(prev, curr, batch, prevRanks, traverse ? "dtLF" : "dfLF");
  PageRankResult result;
  const std::size_t n = curr.numVertices();
  if (n == 0) {
    result.converged = true;
    return result;
  }

  ThreadTeam team(opt.numThreads);
  PageRankOptions resolved = opt;
  resolved.numThreads = team.size();

  const std::vector<Edge> edges = concatBatch(batch);
  const auto pullCsr = buildPullLayout(resolved, curr);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;
  AtomicF64Vector ranks{prevRanks};
  AtomicU8Vector affected(n, 0);
  AtomicU8Vector notConverged(n, 0);
  AtomicU8Vector checked(n, 0);

  const bool useWorklist = resolved.scheduling == SchedulingMode::Worklist;
  // Worklist solves detect convergence on the per-vertex flags; the
  // per-chunk ablation only applies to the dense scheduler.
  const bool perChunk = resolved.perChunkConvergence && !useWorklist;
  const std::size_t numChunks = (n + resolved.chunkSize - 1) / resolved.chunkSize;
  AtomicU8Vector chunkFlags(perChunk ? numChunks : 0, 0);
  AtomicU8Vector* chunkFlagsPtr = perChunk ? &chunkFlags : nullptr;

  ChunkCursor markCursor(edges.size(), kEdgeChunkSize);
  RoundCursorSet rounds(n, resolved.chunkSize,
                        static_cast<std::size_t>(resolved.maxIterations));
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  ProtocolCounters counters;

  // DT/DF worklist solves are ring-seeded by the marking phase and start
  // in the sparse (ring-driven) phase directly.
  std::unique_ptr<WorklistScheduler> worklist;
  if (useWorklist)
    worklist = std::make_unique<WorklistScheduler>(n, team.size(),
                                                   /*seedSweep=*/false);

  const LfShared iterate{curr,
                         pull,
                         ranks,
                         notConverged,
                         &affected,
                         expandFrontier,
                         chunkFlagsPtr,
                         rounds,
                         allConverged,
                         maxRound,
                         rankUpdates,
                         resolved,
                         fault,
                         worklist.get(),
                         &counters};
  const Stopwatch timer;
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    const MarkShared mark{prev,       curr,         edges,         checked,
                          affected,   notConverged, chunkFlagsPtr, resolved.chunkSize,
                          markCursor, traverse,     fault,         worklist.get(),
                          &counters};
    if (!markAffectedWorker(mark, tid)) return;  // crashed mid-marking
    lfIterateWorker(iterate, tid);
  });
  // Absorb flags re-marked by workers that were still in flight when the
  // convergence scan passed (termination protocol, part 3).
  lfFinishSequential(iterate);
  result.timeMs = timer.elapsedMs();

  // The flags, not allConverged, are the authority: the finish pass can
  // itself hit the round cap and leave the run honestly unconverged.
  result.converged =
      chunkFlagsPtr != nullptr ? chunkFlags.allZero() : notConverged.allZero();
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.affectedVertices = affected.countNonZero();
  result.ranks = ranks.toVector();
  result.protocolStats = counters.snapshot();
  if (worklist) result.protocolStats.ringPushes = worklist->pushes();
  return result;
}

}  // namespace lfpr::detail
