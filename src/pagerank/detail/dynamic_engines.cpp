#include "pagerank/detail/dynamic_engines.hpp"

#include <stdexcept>
#include <vector>

#include "pagerank/atomics.hpp"
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/detail/marking.hpp"
#include "pagerank/detail/power_bb.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "util/timer.hpp"

namespace lfpr::detail {

namespace {

/// Dynamic-schedule chunk size for the batch-edge loop of the marking
/// phase. Batches are usually much smaller than the vertex set, so a
/// smaller chunk keeps the marking balanced.
constexpr std::size_t kEdgeChunkSize = 256;

std::vector<Edge> concatBatch(const BatchUpdate& batch) {
  std::vector<Edge> edges;
  edges.reserve(batch.size());
  edges.insert(edges.end(), batch.deletions.begin(), batch.deletions.end());
  edges.insert(edges.end(), batch.insertions.begin(), batch.insertions.end());
  return edges;
}

void validateInputs(const CsrGraph& prev, const CsrGraph& curr,
                    const BatchUpdate& batch, std::span<const double> prevRanks,
                    const char* name) {
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument(std::string(name) + ": prevRanks size must match graph");
  if (prev.numVertices() != curr.numVertices())
    throw std::invalid_argument(
        std::string(name) +
        ": snapshots must share the vertex set (no vertex insertions/deletions)");
  for (const Edge& e : batch.deletions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
}

}  // namespace

PageRankResult dynamicBB(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch, std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault,
                         bool traverse, bool expandFrontier) {
  validateInputs(prev, curr, batch, prevRanks, traverse ? "dtBB" : "dfBB");
  const std::size_t n = curr.numVertices();
  if (n == 0) {
    PageRankResult result;
    result.converged = true;
    return result;
  }

  const std::vector<Edge> edges = concatBatch(batch);
  AtomicU8Vector affected(n, 0);
  AtomicU8Vector notConverged(n, 0);  // unused by BB iterate; fed by marking
  AtomicU8Vector checked(n, 0);
  ChunkCursor markCursor(edges.size(), kEdgeChunkSize);

  ThreadTeam team(opt.numThreads);
  const Stopwatch markTimer;
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    const MarkShared shared{prev,      curr,         edges,      checked,
                            affected,  notConverged, nullptr,    opt.chunkSize,
                            markCursor, traverse,    fault};
    markAffectedWorker(shared, tid);
  });
  const double markMs = markTimer.elapsedMs();

  BBParams params;
  params.affected = &affected;
  params.expandFrontier = expandFrontier;
  PageRankResult result = powerIterateBB(
      curr, {prevRanks.begin(), prevRanks.end()}, opt, fault, params);
  result.timeMs += markMs;
  result.affectedVertices = affected.countNonZero();
  return result;
}

PageRankResult dynamicLF(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch, std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault,
                         bool traverse, bool expandFrontier) {
  // One-shot wrapper over the resumable step API (engine_step.hpp): a
  // fresh state seeded with prevRanks, exactly one dynamic step, ranks
  // copied out. Long-lived callers (service/rank_service.cpp) keep the
  // state across steps instead.
  const char* name = traverse ? "dtLF" : "dfLF";
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument(std::string(name) +
                                ": prevRanks size must match graph");
  LfEngineState state(curr.numVertices());
  state.seedRanks(prevRanks);
  PageRankResult result =
      lfDynamicStep(state, prev, curr, batch, opt, fault, traverse,
                    expandFrontier, name);
  result.ranks = state.ranks.toVector();
  return result;
}

}  // namespace lfpr::detail
