// Shared scaffolding for the four dynamic engines (DT/DF x BB/LF):
// validate inputs, concatenate the batch, run the marking phase, then the
// chosen iteration core. `traverse` selects Dynamic Traversal
// (reachability marking) vs Dynamic Frontier (out-neighbour marking);
// `expandFrontier` enables DF's incremental marking during iteration.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "pagerank/options.hpp"
#include "sched/fault.hpp"

namespace lfpr::detail {

PageRankResult dynamicBB(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch, std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault,
                         bool traverse, bool expandFrontier);

PageRankResult dynamicLF(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch, std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault,
                         bool traverse, bool expandFrontier);

}  // namespace lfpr::detail
