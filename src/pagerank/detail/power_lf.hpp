// Lock-free power-iteration entry point shared by StaticLF and NDLF:
// spawns the team and runs lfIterateWorker over the whole vertex set.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "pagerank/options.hpp"
#include "sched/fault.hpp"

namespace lfpr::detail {

PageRankResult powerIterateLF(const CsrGraph& g, std::vector<double> init,
                              const PageRankOptions& opt, FaultInjector* fault);

}  // namespace lfpr::detail
