// Shared engine internals: the rank-pull kernel (Equation 1 restricted to
// one vertex) and small padded per-thread accumulators.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/pull_csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/options.hpp"

namespace lfpr::detail {

struct alignas(64) PaddedDouble {
  double value = 0.0;
};

struct alignas(64) PaddedU64 {
  std::uint64_t value = 0;
};

// The four pull kernels below all compute Equation 1 restricted to one
// vertex, r = (1-alpha)/n + alpha * sum_{u in G.in(v)} R[u] / outdeg(u),
// as a pure multiply-add: the division is precomputed per source
// (CsrGraph's contribution cache / the weighted layout's inlined arc
// weight) and alpha is hoisted out of the loop, so the per-edge work is
// one gather plus one fma instead of a divide and two offset loads.

/// Contribution-cached kernel reading from a plain vector (synchronous BB
/// engines).
inline double pullRank(const CsrGraph& g, const std::vector<double>& ranks, VertexId v,
                       double alpha, double base) noexcept {
  const double* inv = g.invOutDegrees().data();
  double sum = 0.0;
  for (VertexId u : g.in(v)) sum += ranks[u] * inv[u];
  return base + alpha * sum;
}

/// Same, reading through the shared atomic rank vector (asynchronous LF
/// engines; updates by other threads become visible mid-iteration, the
/// Gauss-Seidel-like behaviour of Section 3.3.2).
inline double pullRank(const CsrGraph& g, const AtomicF64Vector& ranks, VertexId v,
                       double alpha, double base) noexcept {
  const double* inv = g.invOutDegrees().data();
  double sum = 0.0;
  for (VertexId u : g.in(v)) sum += ranks.load(u) * inv[u];
  return base + alpha * sum;
}

/// Weighted-layout kernel (PageRankOptions::pullLayout == Weighted): one
/// sequential (src, weight) stream, one random rank load per edge.
inline double pullRank(const WeightedPullCsr& p, const std::vector<double>& ranks,
                       VertexId v, double alpha, double base) noexcept {
  double sum = 0.0;
  for (const PullArc& a : p.in(v)) sum += ranks[a.src] * a.weight;
  return base + alpha * sum;
}

inline double pullRank(const WeightedPullCsr& p, const AtomicF64Vector& ranks,
                       VertexId v, double alpha, double base) noexcept {
  double sum = 0.0;
  for (const PullArc& a : p.in(v)) sum += ranks.load(a.src) * a.weight;
  return base + alpha * sum;
}

/// Materialize the weighted layout iff the options select it. Engines
/// build this once per solve, before their timer starts (the layout is
/// snapshot preparation, like the CSR build itself — measurement
/// protocol, Section 5.1.5), and pass `&*layout` / nullptr to the kernel
/// dispatch.
inline std::optional<WeightedPullCsr> buildPullLayout(const PageRankOptions& opt,
                                                      const CsrGraph& g) {
  if (opt.pullLayout != PullLayout::Weighted) return std::nullopt;
  return WeightedPullCsr(g);
}

/// Kernel dispatch shared by every engine: the weighted layout when the
/// solve built one, the contribution-cached CSR kernel otherwise. One
/// branch per vertex, not per edge.
template <typename Ranks>
inline double pullRankDispatch(const WeightedPullCsr* pull, const CsrGraph& g,
                               const Ranks& ranks, VertexId v, double alpha,
                               double base) noexcept {
  return pull != nullptr ? pullRank(*pull, ranks, v, alpha, base)
                         : pullRank(g, ranks, v, alpha, base);
}

/// Mark w affected unless it already is. The affected bitmap is monotone
/// within a run (set-only once iteration starts) and tested only against
/// zero, and it is NOT part of the release-sequence termination protocol
/// — the rank publish rides the notConverged/chunkFlags release RMWs,
/// which stay unconditional (flags.hpp). Skipping the write avoids
/// re-dirtying the cache line for every expansion after the first
/// (RMW-diet item a in lf_iterate.cpp).
inline void markAffected(AtomicU8Vector& affected, VertexId w) noexcept {
  if (affected.load(w) == 0) affected.store(w, 1);
}

/// a = max(a, v) without locks.
inline void atomicMaxInt(std::atomic<int>& a, int v) noexcept {
  int cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace lfpr::detail
