// Shared engine internals: the rank-pull kernel (Equation 1 restricted to
// one vertex) and small padded per-thread accumulators.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "pagerank/atomics.hpp"

namespace lfpr::detail {

struct alignas(64) PaddedDouble {
  double value = 0.0;
};

struct alignas(64) PaddedU64 {
  std::uint64_t value = 0;
};

/// r = (1-alpha)/n + alpha * sum_{u in G.in(v)} R[u] / outdeg(u),
/// reading from a plain vector (synchronous BB engines).
inline double pullRank(const CsrGraph& g, const std::vector<double>& ranks, VertexId v,
                       double alpha, double base) noexcept {
  double r = base;
  for (VertexId u : g.in(v)) r += alpha * ranks[u] / g.outDegree(u);
  return r;
}

/// Same, reading through the shared atomic rank vector (asynchronous LF
/// engines; updates by other threads become visible mid-iteration, the
/// Gauss-Seidel-like behaviour of Section 3.3.2).
inline double pullRank(const CsrGraph& g, const AtomicF64Vector& ranks, VertexId v,
                       double alpha, double base) noexcept {
  double r = base;
  for (VertexId u : g.in(v)) r += alpha * ranks.load(u) / g.outDegree(u);
  return r;
}

/// a = max(a, v) without locks.
inline void atomicMaxInt(std::atomic<int>& a, int v) noexcept {
  int cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace lfpr::detail
