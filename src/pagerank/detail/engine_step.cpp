#include "pagerank/detail/engine_step.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pagerank/detail/common.hpp"
#include "pagerank/detail/delta_push.hpp"
#include "pagerank/detail/lf_iterate.hpp"
#include "pagerank/detail/marking.hpp"
#include "pagerank/error.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "sched/work_ring.hpp"
#include "util/timer.hpp"

namespace lfpr::detail {

namespace {

/// Dynamic-schedule chunk size for the batch-edge loop of the marking
/// phase. Batches are usually much smaller than the vertex set, so a
/// smaller chunk keeps the marking balanced.
constexpr std::size_t kEdgeChunkSize = 256;

std::vector<Edge> concatBatch(const BatchUpdate& batch) {
  std::vector<Edge> edges;
  edges.reserve(batch.size());
  edges.insert(edges.end(), batch.deletions.begin(), batch.deletions.end());
  edges.insert(edges.end(), batch.insertions.begin(), batch.insertions.end());
  return edges;
}

bool stopSeen(const PageRankOptions& opt) noexcept {
  return opt.stopRequested != nullptr &&
         opt.stopRequested->load(std::memory_order_relaxed);
}

void finishResult(PageRankResult& result, const PageRankOptions& opt,
                  bool flagsClean) {
  result.converged = flagsClean;
  result.stopped = stopSeen(opt);
  result.toleranceBound =
      result.converged ? asyncToleranceBound(opt.tolerance, opt.alpha)
                       : std::numeric_limits<double>::infinity();
}

}  // namespace

PageRankResult lfFullStep(LfEngineState& state, const CsrGraph& curr,
                          const PageRankOptions& opt, FaultInjector* fault) {
  PageRankResult result;
  const std::size_t n = curr.numVertices();
  if (n != state.size())
    throw std::invalid_argument("lfFullStep: state size must match graph");
  if (n == 0) {
    result.converged = true;
    result.toleranceBound = asyncToleranceBound(opt.tolerance, opt.alpha);
    return result;
  }

  ThreadTeam team(opt.numThreads);
  PageRankOptions resolved = opt;
  resolved.numThreads = team.size();

  const auto pullCsr = buildPullLayout(resolved, curr);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;

  // Paper Algorithm 4 note: RC semantics are 1 = "rank has not yet
  // converged"; every vertex starts unconverged for Static/ND.
  state.notConverged.fill(1);
  state.residualValid = false;  // ranks will move outside residual tracking
  state.monteCarloValid = false;  // ...and outside walk maintenance
  RoundCursorSet rounds(n, resolved.chunkSize,
                        static_cast<std::size_t>(resolved.maxIterations));
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  ProtocolCounters counters;

  // Static/ND worklist solves start all-dirty: round 0 is a dense seeding
  // sweep whose marks populate the rings (see lf_iterate.cpp).
  std::unique_ptr<WorklistScheduler> worklist;
  if (resolved.scheduling == SchedulingMode::Worklist)
    worklist = std::make_unique<WorklistScheduler>(n, team.size(),
                                                   /*seedSweep=*/true);

  const LfShared shared{curr,
                        pull,
                        state.ranks,
                        state.notConverged,
                        /*affected=*/nullptr,
                        /*expandFrontier=*/false,
                        /*chunkFlags=*/nullptr,
                        rounds,
                        allConverged,
                        maxRound,
                        rankUpdates,
                        resolved,
                        fault,
                        worklist.get(),
                        &counters};
  const Stopwatch timer;
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    lfIterateWorker(shared, tid);
  });
  // Absorb flags re-marked by workers that were still in flight when the
  // convergence scan passed (termination protocol, part 3).
  lfFinishSequential(shared);
  result.timeMs = timer.elapsedMs();

  // The flags, not allConverged, are the authority: the finish pass can
  // itself hit the round cap and leave the run honestly unconverged.
  finishResult(result, resolved, state.notConverged.allZero());
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.protocolStats = counters.snapshot();
  if (worklist) result.protocolStats.ringPushes = worklist->pushes();
  return result;
}

PageRankResult lfDynamicStep(LfEngineState& state, const CsrGraph& prev,
                             const CsrGraph& curr, const BatchUpdate& batch,
                             const PageRankOptions& opt, FaultInjector* fault,
                             bool traverse, bool expandFrontier,
                             const char* name) {
  const std::size_t n = curr.numVertices();
  if (state.size() != n)
    throw std::invalid_argument(std::string(name) +
                                ": prevRanks size must match graph");
  if (prev.numVertices() != curr.numVertices())
    throw std::invalid_argument(
        std::string(name) +
        ": snapshots must share the vertex set (no vertex insertions/deletions)");
  for (const Edge& e : batch.deletions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");

  PageRankResult result;
  if (n == 0) {
    result.converged = true;
    result.toleranceBound = asyncToleranceBound(opt.tolerance, opt.alpha);
    return result;
  }

  ThreadTeam team(opt.numThreads);
  PageRankOptions resolved = opt;
  resolved.numThreads = team.size();

  const std::vector<Edge> edges = concatBatch(batch);
  const auto pullCsr = buildPullLayout(resolved, curr);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;
  state.affected.fill(0);
  state.notConverged.fill(0);
  state.checked.fill(0);
  state.residualValid = false;  // ranks will move outside residual tracking
  state.monteCarloValid = false;  // ...and outside walk maintenance

  const bool useWorklist = resolved.scheduling == SchedulingMode::Worklist;
  // Worklist solves detect convergence on the per-vertex flags; the
  // per-chunk ablation only applies to the dense scheduler.
  const bool perChunk = resolved.perChunkConvergence && !useWorklist;
  const std::size_t numChunks = (n + resolved.chunkSize - 1) / resolved.chunkSize;
  AtomicU8Vector chunkFlags(perChunk ? numChunks : 0, 0);
  AtomicU8Vector* chunkFlagsPtr = perChunk ? &chunkFlags : nullptr;

  ChunkCursor markCursor(edges.size(), kEdgeChunkSize);
  RoundCursorSet rounds(n, resolved.chunkSize,
                        static_cast<std::size_t>(resolved.maxIterations));
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  ProtocolCounters counters;

  // DT/DF worklist solves are ring-seeded by the marking phase and start
  // in the sparse (ring-driven) phase directly.
  std::unique_ptr<WorklistScheduler> worklist;
  if (useWorklist)
    worklist = std::make_unique<WorklistScheduler>(n, team.size(),
                                                   /*seedSweep=*/false);

  const LfShared iterate{curr,
                         pull,
                         state.ranks,
                         state.notConverged,
                         &state.affected,
                         expandFrontier,
                         chunkFlagsPtr,
                         rounds,
                         allConverged,
                         maxRound,
                         rankUpdates,
                         resolved,
                         fault,
                         worklist.get(),
                         &counters};
  const Stopwatch timer;
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    const MarkShared mark{prev,       curr,
                          edges,      state.checked,
                          state.affected, state.notConverged,
                          chunkFlagsPtr,  resolved.chunkSize,
                          markCursor, traverse,
                          fault,      worklist.get(),
                          &counters};
    if (!markAffectedWorker(mark, tid)) return;  // crashed mid-marking
    lfIterateWorker(iterate, tid);
  });
  // Absorb flags re-marked by workers that were still in flight when the
  // convergence scan passed (termination protocol, part 3).
  lfFinishSequential(iterate);
  result.timeMs = timer.elapsedMs();

  // The flags, not allConverged, are the authority: the finish pass can
  // itself hit the round cap and leave the run honestly unconverged.
  finishResult(result, resolved,
               chunkFlagsPtr != nullptr ? chunkFlags.allZero()
                                        : state.notConverged.allZero());
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.affectedVertices = state.affected.countNonZero();
  result.protocolStats = counters.snapshot();
  if (worklist) result.protocolStats.ringPushes = worklist->pushes();
  return result;
}

PageRankResult lfDeltaPushStep(LfEngineState& state, const CsrGraph& prev,
                               const CsrGraph& curr, const BatchUpdate& batch,
                               const PageRankOptions& opt, FaultInjector* fault,
                               const char* name) {
  const std::size_t n = curr.numVertices();
  if (state.size() != n)
    throw std::invalid_argument(std::string(name) +
                                ": prevRanks size must match graph");
  if (prev.numVertices() != curr.numVertices())
    throw std::invalid_argument(
        std::string(name) +
        ": snapshots must share the vertex set (no vertex insertions/deletions)");
  for (const Edge& e : batch.deletions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");

  PageRankResult result;
  if (n == 0) {
    result.converged = true;
    result.toleranceBound = asyncToleranceBound(opt.tolerance, opt.alpha);
    return result;
  }

  ThreadTeam team(opt.numThreads);
  PageRankOptions resolved = opt;
  resolved.numThreads = team.size();

  const std::vector<Edge> edges = concatBatch(batch);
  const auto pullCsr = buildPullLayout(resolved, curr);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;
  state.affected.fill(0);
  state.notConverged.fill(0);
  state.checked.fill(0);

  // Residual persistence (see LfEngineState): after a converged push step
  // the parked sub-threshold residuals are still-valid pending mass, so
  // only an invalidated array pays the O(n) clear.
  AtomicF64Vector& residual = state.ensureResidual();
  if (!state.residualValid) residual.fill(0.0);
  state.residualValid = false;  // re-validated below only on convergence
  state.monteCarloValid = false;  // ranks move outside walk maintenance

  const std::size_t numSeedChunks =
      (n + resolved.chunkSize - 1) / resolved.chunkSize;
  AtomicU8Vector seedDone(numSeedChunks, 0);
  ChunkCursor markCursor(edges.size(), kEdgeChunkSize);
  ChunkCursor seedCursor(n, resolved.chunkSize);
  std::atomic<bool> allConverged{false};
  std::atomic<int> maxRound{0};
  std::atomic<std::uint64_t> rankUpdates{0};
  ProtocolCounters counters;

  // Delta-push is worklist-driven by construction; the DF marking phase
  // seeds the rings, so the solve starts sparse like any DT/DF worklist
  // solve.
  WorklistScheduler worklist(n, team.size(), /*seedSweep=*/false);

  const DeltaPushShared shared{curr,        pull,        state.ranks,
                               residual,    state.notConverged,
                               state.affected,           seedDone,
                               seedCursor,  allConverged, maxRound,
                               rankUpdates, resolved,    fault,
                               worklist,    &counters};
  const Stopwatch timer;
  // Phase A: DF marking, then residual seeding against the still-frozen
  // ranks. The helping rescans inside both workers mean a returning
  // thread has seen every chunk finished — and the join plus the
  // sequential repair below cover the all-crashed corner.
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    const MarkShared mark{prev,       curr,
                          edges,      state.checked,
                          state.affected, state.notConverged,
                          /*chunkFlags=*/nullptr, resolved.chunkSize,
                          markCursor, /*traverse=*/false,
                          fault,      &worklist,
                          &counters};
    if (!markAffectedWorker(mark, tid)) return;  // crashed mid-marking
    seedResidualWorker(shared, tid);
  });
  seedResidualRepair(shared);

  // Phase B: ranks start moving only now, with every seed in place.
  if (!stopSeen(resolved)) {
    team.run([&](int tid) {
      if (fault != nullptr && fault->crashed(tid)) return;
      deltaPushWorker(shared, tid);
    });
  }
  // Absorb flags re-marked by drains that were still in flight when the
  // convergence scan passed (termination protocol, part 3).
  deltaPushFinishSequential(shared);
  result.timeMs = timer.elapsedMs();

  // The flags, not allConverged, are the authority — as everywhere else.
  finishResult(result, resolved, state.notConverged.allZero());
  if (result.converged && resolved.pushRelativeTolerance > 0.0) {
    // Relative-threshold certificate: ranks never exceed 1, so parked
    // |residual| <= tolerance + pushRelativeTolerance everywhere.
    result.toleranceBound = asyncToleranceBound(
        resolved.tolerance + resolved.pushRelativeTolerance, resolved.alpha);
  }
  state.residualValid = result.converged;
  result.iterations = maxRound.load();
  result.rankUpdates = rankUpdates.load();
  result.affectedVertices = state.affected.countNonZero();
  result.protocolStats = counters.snapshot();
  result.protocolStats.ringPushes = worklist.pushes();
  result.protocolStats.activations = worklist.activations();
  return result;
}

}  // namespace lfpr::detail
