// Incremental Monte Carlo walk-store engine — see monte_carlo.hpp for
// the protocol overview. Shape of a step:
//
//   build   (store invalid) every walk generated on `prev` in parallel
//           (dynamic chunks of walk ids), visit counts fetch-added,
//           then a sequential visit-index rebuild + full rank sweep.
//   repair  (non-empty batch) phase A marks batch-edge sources via the
//           DF `affected` fetchOr and claims their visiting walks
//           (claimed fetchOr 0->1, enqueue on the PR 5 rings); phase B
//           workers pop/steal walk ids and repair each exactly once;
//           a sequential pass re-walks any claim a crashed or refused
//           worker left behind, then merges per-thread logs (delta
//           index entries, rank refresh over touched vertices) and
//           clears the marks it set.
//
// Fault-injection protocol: the crash poll sits at *walk* boundaries
// only, and a walk's effects (visit decrements, vertex rewrite, visit
// increments) run between polls — so a simulated crash can abandon
// queued walks but never leave a half-repaired one, and the sequential
// completion pass finds every abandoned claim still at 1. The marking
// half runs sequentially when a FaultInjector is armed: a crash inside
// the parallel mark-winner gate could otherwise strand unclaimed walks
// behind an already-set affected bit.
//
// Determinism: all draws are counter-based (mcStreamBase / mcDraw), all
// visit-count updates are ±1.0 fetch-adds on exact integers, claims are
// idempotent, and index compaction triggers on a deterministic size
// threshold — so thread interleaving can change nothing but the order
// delta-chain entries are appended in, which only permutes *claim*
// order within a step, never which walks are repaired or what they
// become. fingerprint() covers config + epoch + live walk contents.

#include "pagerank/detail/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pagerank/detail/engine_step.hpp"
#include "pagerank/error.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "sched/work_ring.hpp"
#include "util/timer.hpp"

namespace lfpr::detail {

namespace {

/// Batch-edge chunk for the marking loop (matches engine_step.cpp).
constexpr std::size_t kEdgeChunkSize = 256;
/// Walk-id chunk for the parallel build.
constexpr std::size_t kWalkChunkSize = 256;

std::vector<Edge> concatBatch(const BatchUpdate& batch) {
  std::vector<Edge> edges;
  edges.reserve(batch.size());
  edges.insert(edges.end(), batch.deletions.begin(), batch.deletions.end());
  edges.insert(edges.end(), batch.insertions.begin(), batch.insertions.end());
  return edges;
}

bool stopSeen(const PageRankOptions& opt) noexcept {
  return opt.stopRequested != nullptr &&
         opt.stopRequested->load(std::memory_order_relaxed);
}

/// Continue/stop coin: continue while the 53-bit uniform is below alpha.
bool mcContinues(std::uint64_t draw, double alpha) noexcept {
  return (static_cast<double>(draw >> 11) * 0x1.0p-53) < alpha;
}

/// Unbiased-enough uniform pick in [0, deg) via the 128-bit multiply
/// reduction (bias < deg / 2^64 — unobservable at graph degrees).
std::size_t mcPick(std::uint64_t draw, std::size_t deg) noexcept {
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(draw) * deg) >> 64);
}

/// Regenerate walk `w` from position `from` (verts[from] must already
/// hold the vertex the walk re-enters the graph at) using the epoch
/// stream `base` and `g`'s out-adjacency. Writes verts only; the caller
/// owns visit accounting. Returns the new length.
std::uint16_t mcGenerate(MonteCarloState& st, const CsrGraph& g,
                         std::uint32_t w, std::size_t from,
                         std::uint64_t base) noexcept {
  VertexId* slice = st.verts.data() + static_cast<std::size_t>(w) * st.stride;
  std::size_t p = from;
  VertexId u = slice[p];
  while (p + 1 < st.stride) {
    if (!mcContinues(mcDraw(base, 2 * p), st.cfg.alpha)) break;
    const std::size_t deg = g.outDegree(u);
    if (deg == 0) break;  // dead end: the walk stops here
    u = g.out(u)[mcPick(mcDraw(base, 2 * p + 1), deg)];
    slice[++p] = u;
  }
  return static_cast<std::uint16_t>(p + 1);
}

/// Per-thread repair log, merged sequentially after the join.
struct McLog {
  std::vector<VertexId> changed;        ///< affected bits this thread won
  std::vector<std::uint32_t> claims;    ///< walks this thread claimed
  std::vector<VertexId> touched;        ///< vertices whose visits moved
  /// New (vertex, walk) visit-index entries from repairs.
  std::vector<std::pair<VertexId, std::uint32_t>> newEntries;
  std::uint64_t repaired = 0;
};

/// Claim every walk the visit index lists for `u` (base CSR + delta
/// chain). fetchOr makes the claim idempotent: a walk visiting several
/// changed vertices is claimed and queued exactly once.
void mcClaimWalksAt(MonteCarloState& st, VertexId u, McLog& log,
                    WorklistScheduler& worklist) {
  const auto tryClaim = [&](std::uint32_t w) {
    if (st.claimed.fetchOr(w, 1) == 0) {
      log.claims.push_back(w);
      worklist.enqueue(w);
    }
  };
  for (std::uint64_t i = st.indexOffsets[u]; i < st.indexOffsets[u + 1]; ++i)
    tryClaim(st.indexWalks[i]);
  for (std::uint32_t e = st.deltaHead[u]; e != MonteCarloState::kNoDelta;
       e = st.deltaNext[e])
    tryClaim(st.deltaWalk[e]);
}

/// Repair one claimed walk against `curr` at `epoch`: truncate at its
/// first affected visit and re-walk from there. A claim with no
/// affected position is stale index residue (an earlier repair already
/// moved the walk off the changed vertex) — skipped, nothing changes.
/// Only positions *after* the affected one are re-drawn: the walk's
/// prefix through the affected vertex is still distributed correctly
/// (the out-distribution of the changed vertex governs the step it
/// takes LEAVING the visit, which is exactly where regeneration picks
/// up).
void mcRepairWalk(MonteCarloState& st, const CsrGraph& curr,
                  const AtomicU8Vector& affected, std::uint32_t w,
                  std::uint64_t epoch, McLog& log) {
  const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
  const std::size_t oldLen = st.len[w];
  std::size_t p = st.stride;
  for (std::size_t i = 0; i < oldLen; ++i) {
    if (affected.load(st.verts[slice + i]) != 0) {
      p = i;
      break;
    }
  }
  if (p == st.stride) return;  // stale claim

  for (std::size_t i = p + 1; i < oldLen; ++i) {
    st.visits.fetchAdd(st.verts[slice + i], -1.0);
    log.touched.push_back(st.verts[slice + i]);
  }
  const std::uint16_t newLen =
      mcGenerate(st, curr, w, p, mcStreamBase(st.cfg.seed, w, epoch));
  st.len[w] = newLen;
  for (std::size_t i = p + 1; i < newLen; ++i) {
    const VertexId v = st.verts[slice + i];
    st.visits.fetchAdd(v, 1.0);
    log.touched.push_back(v);
    log.newEntries.emplace_back(v, w);
  }
  ++log.repaired;
}

/// Rebuild the base visit index from walk contents (counting sort over
/// live positions) and clear the delta chains. Deterministic: depends
/// only on the store.
void mcCompactIndex(MonteCarloState& st) {
  st.indexOffsets.assign(st.n + 1, 0);
  for (std::uint32_t w = 0; w < st.numWalks; ++w) {
    const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
    for (std::size_t i = 0; i < st.len[w]; ++i)
      ++st.indexOffsets[st.verts[slice + i] + 1];
  }
  for (std::size_t v = 0; v < st.n; ++v)
    st.indexOffsets[v + 1] += st.indexOffsets[v];
  st.indexWalks.resize(st.indexOffsets[st.n]);
  std::vector<std::uint64_t> cursor(st.indexOffsets.begin(),
                                    st.indexOffsets.end() - 1);
  for (std::uint32_t w = 0; w < st.numWalks; ++w) {
    const std::size_t slice = static_cast<std::size_t>(w) * st.stride;
    for (std::size_t i = 0; i < st.len[w]; ++i)
      st.indexWalks[cursor[st.verts[slice + i]]++] = w;
  }
  st.deltaHead.assign(st.n, MonteCarloState::kNoDelta);
  st.deltaWalk.clear();
  st.deltaNext.clear();
}

double mcRankScale(const MonteCarloState& st) noexcept {
  return (1.0 - st.cfg.alpha) / static_cast<double>(st.numWalks);
}

/// Build every walk on `g` (epoch stream 0). Parallel over walk-id
/// chunks with crash polls at walk boundaries; a sequential pass
/// regenerates anything a crashed worker left unbuilt (len == 0), so
/// the store is complete even if every thread "dies". Returns false
/// only on a cooperative stop — the store is then left invalid.
bool mcBuildWalks(MonteCarloState& st, LfEngineState& state, const CsrGraph& g,
                  const PageRankOptions& opt, ThreadTeam& team,
                  FaultInjector* fault) {
  std::fill(st.len.begin(), st.len.end(), std::uint16_t{0});
  st.visits.fill(0.0);
  st.claimed.fill(0);
  state.affected.fill(0);
  st.epoch = 0;

  const auto buildOne = [&](std::uint32_t w) {
    VertexId* slice = st.verts.data() + static_cast<std::size_t>(w) * st.stride;
    slice[0] = st.rootOf(w);
    const std::uint16_t len =
        mcGenerate(st, g, w, 0, mcStreamBase(st.cfg.seed, w, 0));
    for (std::size_t i = 0; i < len; ++i) st.visits.fetchAdd(slice[i], 1.0);
    st.len[w] = len;  // written last: len != 0 <=> walk fully accounted
  };

  ChunkCursor cursor(st.numWalks, kWalkChunkSize);
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    std::size_t begin = 0;
    std::size_t end = 0;
    while (cursor.next(begin, end)) {
      for (std::size_t w = begin; w < end; ++w) {
        if (stopSeen(opt)) return;
        if (fault != nullptr && !fault->onVertexProcessed(tid)) return;
        buildOne(static_cast<std::uint32_t>(w));
      }
    }
  });
  if (stopSeen(opt)) return false;
  for (std::uint32_t w = 0; w < st.numWalks; ++w)
    if (st.len[w] == 0) buildOne(w);

  mcCompactIndex(st);
  const double scale = mcRankScale(st);
  for (std::size_t v = 0; v < st.n; ++v)
    state.ranks.store(v, scale * st.visits.load(v));
  return true;
}

/// Repair the store from `prev`-consistent to `curr`-consistent for one
/// batch (epoch `st.epoch + 1`). Returns false on cooperative stop.
bool mcRepairBatch(MonteCarloState& st, LfEngineState& state,
                   const CsrGraph& curr, const std::vector<Edge>& edges,
                   const PageRankOptions& opt, ThreadTeam& team,
                   FaultInjector* fault, PageRankResult& result) {
  const std::uint64_t epoch = st.epoch + 1;
  std::vector<McLog> logs(static_cast<std::size_t>(team.size()));

  // Scheduler reuse (see MonteCarloState::repairScheduler): clean steps
  // run on the cached instance; fault-armed steps get a private one (a
  // simulated crash abandons ring entries, leaving it dirty) and never
  // touch the cache.
  std::unique_ptr<WorklistScheduler> privateScheduler;
  if (fault != nullptr || st.repairScheduler == nullptr ||
      st.repairScheduler->numThreads() != team.size())
    privateScheduler = std::make_unique<WorklistScheduler>(
        st.numWalks, team.size(), /*seedSweep=*/false);
  WorklistScheduler& worklist =
      privateScheduler != nullptr ? *privateScheduler : *st.repairScheduler;
  const std::uint64_t pushesBefore = worklist.pushes();

  // Phase A — mark batch-edge sources and claim their visiting walks.
  // Only the *source* side matters: a walk's distribution depends on the
  // out-adjacency of the vertices it visits, and an edge update (u, v)
  // changes only u's. Runs sequentially when fault injection is armed
  // (see the file comment).
  const auto markRange = [&](std::size_t begin, std::size_t end, McLog& log) {
    for (std::size_t i = begin; i < end; ++i) {
      const VertexId u = edges[i].src;
      if (state.affected.fetchOr(u, 1) == 0) {
        log.changed.push_back(u);
        mcClaimWalksAt(st, u, log, worklist);
      }
    }
  };
  if (fault != nullptr) {
    markRange(0, edges.size(), logs[0]);
  } else {
    ChunkCursor markCursor(edges.size(), kEdgeChunkSize);
    team.run([&](int tid) {
      McLog& log = logs[static_cast<std::size_t>(tid)];
      std::size_t begin = 0;
      std::size_t end = 0;
      while (markCursor.next(begin, end)) {
        if (stopSeen(opt)) return;
        markRange(begin, end, log);
      }
    });
    if (stopSeen(opt)) {
      st.repairScheduler.reset();  // rings were left undrained
      return false;
    }
  }

  // Phase B — repair claimed walks off the rings; crash polls only at
  // walk boundaries, so every repair is all-or-nothing.
  team.run([&](int tid) {
    if (fault != nullptr && fault->crashed(tid)) return;
    McLog& log = logs[static_cast<std::size_t>(tid)];
    VertexId w = 0;
    for (;;) {
      if (!worklist.tryPop(tid, w) && !worklist.trySteal(tid, w)) break;
      if (stopSeen(opt)) return;
      if (fault != nullptr && !fault->onVertexProcessed(tid)) return;
      // Stale-residue guard: a popped walk that is not claimed this step
      // can only be leftover ring content from an abnormally ended prior
      // step (the reset discipline should make that impossible, but
      // storing 2 here for an unclaimed walk would permanently eat its
      // future claims, so the invariant is enforced locally too).
      if (st.claimed.load(static_cast<std::uint32_t>(w)) != 1) continue;
      mcRepairWalk(st, curr, state.affected, static_cast<std::uint32_t>(w),
                   epoch, log);
      st.claimed.store(static_cast<std::uint32_t>(w), 2);
    }
  });
  if (stopSeen(opt)) {
    st.repairScheduler.reset();  // workers may have bailed mid-drain
    return false;
  }

  // Sequential completion: any claim still at 1 was abandoned by a
  // crashed worker, lost to a pop-then-crash window, or refused by a
  // full ring — repair it now, exactly once.
  for (McLog& log : logs)
    for (const std::uint32_t w : log.claims)
      if (st.claimed.load(w) == 1) {
        mcRepairWalk(st, curr, state.affected, w, epoch, logs[0]);
        st.claimed.store(w, 2);
      }

  // Sequential merge: delta index entries, rank refresh (idempotent —
  // duplicate touches just re-store the same value), flag clears.
  const double scale = mcRankScale(st);
  std::uint64_t changedCount = 0;
  std::uint64_t repairedCount = 0;
  for (McLog& log : logs) {
    for (const auto& [v, w] : log.newEntries) {
      st.deltaWalk.push_back(w);
      st.deltaNext.push_back(st.deltaHead[v]);
      st.deltaHead[v] = static_cast<std::uint32_t>(st.deltaWalk.size() - 1);
    }
    for (const VertexId v : log.touched)
      state.ranks.store(v, scale * st.visits.load(v));
    for (const std::uint32_t w : log.claims) st.claimed.store(w, 0);
    for (const VertexId v : log.changed) state.affected.store(v, 0);
    changedCount += log.changed.size();
    repairedCount += log.repaired;
  }
  st.epoch = epoch;

  // Deterministic compaction: fold the delta chains back into the base
  // CSR once they grow past a fixed fraction of it.
  if (st.deltaWalk.size() > st.indexWalks.size() / 4 + 1024) mcCompactIndex(st);

  result.affectedVertices = changedCount;
  result.rankUpdates += repairedCount;
  result.protocolStats.ringPushes = worklist.pushes() - pushesBefore;

  // The step drained cleanly, so the scheduler it ran on is reset and
  // reusable — cache it unless fault injection was armed (crash polls
  // may have abandoned ring entries even though the store recovered).
  if (fault == nullptr && privateScheduler != nullptr)
    st.repairScheduler = std::move(privateScheduler);
  return true;
}

}  // namespace

MonteCarloState::MonteCarloState(std::size_t numVertices, const McConfig& config)
    : cfg(config),
      n(numVertices),
      stride(static_cast<std::size_t>(config.maxWalkLength)),
      visits(numVertices, 0.0),
      claimed(0, 0) {
  if (cfg.walksPerVertex < 1)
    throw std::invalid_argument("MonteCarlo: mcWalksPerVertex must be >= 1");
  if (cfg.maxWalkLength < 1 || cfg.maxWalkLength > 65535)
    throw std::invalid_argument(
        "MonteCarlo: mcMaxWalkLength must be in [1, 65535]");
  const std::uint64_t walks =
      static_cast<std::uint64_t>(n) *
      static_cast<std::uint64_t>(cfg.walksPerVertex);
  if (walks > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument(
        "MonteCarlo: walk count " + std::to_string(walks) +
        " exceeds the 32-bit walk id space (n * mcWalksPerVertex; see the "
        "ROADMAP 64-bit item)");
  numWalks = static_cast<std::uint32_t>(walks);
  verts.resize(static_cast<std::size_t>(numWalks) * stride);
  len.resize(numWalks, 0);
  indexOffsets.assign(n + 1, 0);
  deltaHead.assign(n, kNoDelta);
  claimed = AtomicU8Vector(numWalks, 0);
}

std::uint64_t MonteCarloState::fingerprint() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(cfg.walksPerVertex));
  mix(static_cast<std::uint64_t>(cfg.maxWalkLength));
  mix(cfg.seed);
  mix(static_cast<std::uint64_t>(cfg.alpha * 1e12));
  mix(epoch);
  mix(numWalks);
  for (std::uint32_t w = 0; w < numWalks; ++w) {
    mix(len[w]);
    const std::size_t slice = static_cast<std::size_t>(w) * stride;
    for (std::size_t i = 0; i < len[w]; ++i) mix(verts[slice + i]);
  }
  return h;
}

namespace {

/// Append a POD value / array to a byte blob (host byte order — the
/// sidecar is read back on the machine that wrote it, like every other
/// on-disk format here).
template <typename T>
void blobPut(std::vector<std::byte>& blob, const T* data, std::size_t count) {
  const auto* p = reinterpret_cast<const std::byte*>(data);
  blob.insert(blob.end(), p, p + count * sizeof(T));
}

template <typename T>
void blobPutOne(std::vector<std::byte>& blob, T value) {
  blobPut(blob, &value, 1);
}

/// Bounds-checked sequential reader over a serialized blob.
class BlobReader {
 public:
  BlobReader(std::span<const std::byte> blob, const char* what)
      : blob_(blob), what_(what) {}

  template <typename T>
  void read(T* out, std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (blob_.size() - pos_ < bytes)
      throw std::runtime_error(std::string(what_) + ": blob truncated");
    std::memcpy(out, blob_.data() + pos_, bytes);
    pos_ += bytes;
  }

  template <typename T>
  [[nodiscard]] T readOne() {
    T v{};
    read(&v, 1);
    return v;
  }

  /// Move `count` elements into `out` with a single copy — the
  /// aligned fast path inserts straight from the blob, skipping the
  /// zero-fill a resize-then-read would pay on multi-megabyte arrays.
  template <typename T>
  void readVector(std::vector<T>& out, std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (blob_.size() - pos_ < bytes)
      throw std::runtime_error(std::string(what_) + ": blob truncated");
    const std::byte* p = blob_.data() + pos_;
    pos_ += bytes;
    out.clear();
    if (reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0) {
      const T* first = reinterpret_cast<const T*>(p);
      out.insert(out.end(), first, first + count);
    } else {
      out.resize(count);
      std::memcpy(out.data(), p, bytes);
    }
  }

  void expectExhausted() const {
    if (pos_ != blob_.size())
      throw std::runtime_error(std::string(what_) +
                               ": blob has trailing bytes");
  }

 private:
  std::span<const std::byte> blob_;
  const char* what_;
  std::size_t pos_ = 0;
};

}  // namespace

WalkStoreImage mcSerializeStore(const MonteCarloState& st) {
  WalkStoreImage img;
  img.cfg = st.cfg;
  img.numVertices = st.n;
  img.numWalks = st.numWalks;
  img.epoch = st.epoch;

  std::size_t live = 0;
  for (std::uint32_t w = 0; w < st.numWalks; ++w) live += st.len[w];
  img.segments.reserve(st.numWalks * sizeof(std::uint16_t) +
                       live * sizeof(VertexId));
  blobPut(img.segments, st.len.data(), st.numWalks);
  for (std::uint32_t w = 0; w < st.numWalks; ++w)
    blobPut(img.segments,
            st.verts.data() + static_cast<std::size_t>(w) * st.stride,
            st.len[w]);

  blobPutOne(img.visitIndex,
             static_cast<std::uint64_t>(st.indexWalks.size()));
  blobPut(img.visitIndex, st.indexOffsets.data(), st.n + 1);
  blobPut(img.visitIndex, st.indexWalks.data(), st.indexWalks.size());
  blobPutOne(img.visitIndex, static_cast<std::uint64_t>(st.deltaWalk.size()));
  blobPut(img.visitIndex, st.deltaHead.data(), st.n);
  blobPut(img.visitIndex, st.deltaWalk.data(), st.deltaWalk.size());
  blobPut(img.visitIndex, st.deltaNext.data(), st.deltaNext.size());
  return img;
}

std::unique_ptr<MonteCarloState> mcDeserializeStore(
    const WalkStoreImageView& img, int numThreads) {
  // The constructor re-validates the config and the 32-bit walk-id
  // ceiling; anything it rejects, a tampered image cannot smuggle in.
  auto st = std::make_unique<MonteCarloState>(
      static_cast<std::size_t>(img.numVertices), img.cfg);
  if (img.numWalks != st->numWalks)
    throw std::runtime_error(
        "walk image: numWalks disagrees with n * walksPerVertex");
  st->epoch = img.epoch;

  // Serial prologue: the len array fixes every walk's byte range, so one
  // prefix sum turns the packed segment blob into random-access slices
  // and the copy/validate/recount pass parallelizes over walk ranges.
  const std::size_t lenBytes = st->numWalks * sizeof(std::uint16_t);
  if (img.segments.size() < lenBytes)
    throw std::runtime_error("walk image segments: blob truncated");
  std::memcpy(st->len.data(), img.segments.data(), lenBytes);
  std::vector<std::uint64_t> walkStart(st->numWalks + 1, 0);
  for (std::uint32_t w = 0; w < st->numWalks; ++w) {
    const std::size_t len = st->len[w];
    if (len < 1 || len > st->stride)
      throw std::runtime_error("walk image: walk length out of [1, stride]");
    walkStart[w + 1] = walkStart[w] + len;
  }
  if (img.segments.size() !=
      lenBytes + walkStart[st->numWalks] * sizeof(VertexId))
    throw std::runtime_error(
        "walk image segments: blob size disagrees with the walk lengths");
  // Byte-offset addressing: the packed vertex region need not be
  // VertexId-aligned inside an mmapped sidecar, so slices are memcpy'd.
  const std::byte* packed = img.segments.data() + lenBytes;

  // The pass is memory-bound with no latency to hide, so oversubscribing
  // a small host only adds spawn and cache churn — cap the requested
  // budget at the cores actually present.
  int threads = ThreadTeam::resolveThreads(numThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) threads = std::min(threads, static_cast<int>(hw));
  ThreadTeam team(threads);
  const std::uint32_t nt = static_cast<std::uint32_t>(team.size());
  const std::uint32_t perThread = (st->numWalks + nt - 1) / nt;
  std::vector<std::vector<std::uint32_t>> threadCounts(nt);
  team.run([&](int tid) {
    const std::uint32_t begin =
        std::min(st->numWalks, static_cast<std::uint32_t>(tid) * perThread);
    const std::uint32_t end = std::min(st->numWalks, begin + perThread);
    if (begin >= end) return;
    auto& counts = threadCounts[static_cast<std::size_t>(tid)];
    counts.assign(st->n, 0);
    const VertexId n = static_cast<VertexId>(st->n);
    for (std::uint32_t w = begin; w < end; ++w) {
      const std::size_t len = st->len[w];
      VertexId* slice =
          st->verts.data() + static_cast<std::size_t>(w) * st->stride;
      std::memcpy(slice, packed + walkStart[w] * sizeof(VertexId),
                  len * sizeof(VertexId));
      if (slice[0] != st->rootOf(w))
        throw std::runtime_error(
            "walk image: walk does not start at its root");
      for (std::size_t i = 0; i < len; ++i) {
        const VertexId v = slice[i];
        if (v >= n)
          throw std::runtime_error("walk image: vertex id out of range");
        ++counts[v];
      }
    }
  });
  // Per-thread tallies are exact integers well under 2^53, so the summed
  // double is bit-identical to the repair path's repeated +1.0 adds.
  const std::size_t vPerThread = (st->n + nt - 1) / nt;
  team.run([&](int tid) {
    const std::size_t begin =
        std::min(st->n, static_cast<std::size_t>(tid) * vPerThread);
    const std::size_t end = std::min(st->n, begin + vPerThread);
    for (std::size_t v = begin; v < end; ++v) {
      std::uint64_t total = 0;
      for (const auto& counts : threadCounts)
        if (!counts.empty()) total += counts[v];
      st->visits.store(v, static_cast<double>(total));
    }
  });

  // Chunked bound scans over the index and delta arrays — multi-megabyte
  // sweeps that split across the same team (ThreadTeam::run rethrows the
  // first worker's exception, so a violation still surfaces serially).
  const auto parallelScan = [&](std::size_t count, auto&& body) {
    const std::size_t per = (count + nt - 1) / nt;
    team.run([&](int tid) {
      const std::size_t b =
          std::min(count, static_cast<std::size_t>(tid) * per);
      const std::size_t e = std::min(count, b + per);
      if (b < e) body(b, e);
    });
  };

  BlobReader idx(img.visitIndex, "walk image visit index");
  const auto indexCount = idx.readOne<std::uint64_t>();
  idx.read(st->indexOffsets.data(), st->n + 1);
  if (st->indexOffsets[0] != 0 || st->indexOffsets[st->n] != indexCount)
    throw std::runtime_error("walk image: index offsets inconsistent");
  parallelScan(st->n, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v)
      if (st->indexOffsets[v] > st->indexOffsets[v + 1])
        throw std::runtime_error("walk image: index offsets not monotonic");
  });
  idx.readVector(st->indexWalks, static_cast<std::size_t>(indexCount));
  parallelScan(st->indexWalks.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      if (st->indexWalks[i] >= st->numWalks)
        throw std::runtime_error("walk image: index walk id out of range");
  });
  const auto deltaCount = idx.readOne<std::uint64_t>();
  idx.read(st->deltaHead.data(), st->n);
  idx.readVector(st->deltaWalk, static_cast<std::size_t>(deltaCount));
  idx.readVector(st->deltaNext, static_cast<std::size_t>(deltaCount));
  idx.expectExhausted();
  const auto validDeltaRef = [&](std::uint32_t e) {
    return e == MonteCarloState::kNoDelta || e < deltaCount;
  };
  parallelScan(st->n, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v)
      if (!validDeltaRef(st->deltaHead[v]))
        throw std::runtime_error("walk image: delta head out of range");
  });
  parallelScan(st->deltaWalk.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      if (st->deltaWalk[i] >= st->numWalks)
        throw std::runtime_error("walk image: delta walk id out of range");
      if (!validDeltaRef(st->deltaNext[i]))
        throw std::runtime_error("walk image: delta next out of range");
    }
  });
  return st;
}

PprIndex buildPprIndex(const MonteCarloState& st, int numThreads) {
  PprIndex index;
  index.alpha = st.cfg.alpha;
  index.walksPerVertex = st.cfg.walksPerVertex;
  index.epoch = st.epoch;
  index.offsets.assign(st.n + 1, 0);

  int threads = ThreadTeam::resolveThreads(numThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) threads = std::min(threads, static_cast<int>(hw));
  ThreadTeam team(threads);
  const std::size_t nt = static_cast<std::size_t>(team.size());
  const std::size_t rootsPerThread = (st.n + nt - 1) / nt;
  const auto overRootRange = [&](auto&& body) {
    team.run([&](int tid) {
      const std::size_t b =
          std::min(st.n, static_cast<std::size_t>(tid) * rootsPerThread);
      const std::size_t e = std::min(st.n, b + rootsPerThread);
      if (b < e) body(b, e);
    });
  };

  const std::uint32_t perRoot = st.walksPerRoot();
  overRootRange([&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) {
      std::uint64_t total = 0;
      const std::size_t wBegin = r * perRoot;
      for (std::size_t w = wBegin; w < wBegin + perRoot; ++w)
        total += st.len[w];
      index.offsets[r + 1] = total;
    }
  });
  for (std::size_t r = 0; r < st.n; ++r)
    index.offsets[r + 1] += index.offsets[r];
  index.visitLog.resize(index.offsets[st.n]);
  overRootRange([&](std::size_t b, std::size_t e) {
    std::uint64_t cursor = index.offsets[b];
    for (std::size_t r = b; r < e; ++r) {
      const std::size_t wBegin = r * perRoot;
      for (std::size_t w = wBegin; w < wBegin + perRoot; ++w) {
        const std::size_t slice = w * st.stride;
        for (std::size_t i = 0; i < st.len[w]; ++i)
          index.visitLog[cursor++] = st.verts[slice + i];
      }
    }
  });
  return index;
}

PageRankResult lfMonteCarloStep(LfEngineState& state, const CsrGraph& prev,
                                const CsrGraph& curr, const BatchUpdate& batch,
                                const PageRankOptions& opt, FaultInjector* fault,
                                const char* name) {
  const std::size_t n = curr.numVertices();
  if (state.size() != n)
    throw std::invalid_argument(std::string(name) +
                                ": state size must match graph");
  if (prev.numVertices() != curr.numVertices())
    throw std::invalid_argument(
        std::string(name) +
        ": snapshots must share the vertex set (no vertex insertions/deletions)");
  for (const Edge& e : batch.deletions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= curr.numVertices() || e.dst >= curr.numVertices())
      throw std::out_of_range(std::string(name) + ": batch edge out of range");

  const McConfig cfg{opt.mcWalksPerVertex, opt.mcMaxWalkLength, opt.mcSeed,
                     opt.alpha};
  PageRankResult result;
  result.monteCarlo = true;
  if (n == 0) {
    result.converged = true;
    result.toleranceBound = mcL1ErrorBound(cfg.alpha, cfg.walksPerVertex);
    return result;
  }

  ThreadTeam team(opt.numThreads);
  PageRankOptions resolved = opt;
  resolved.numThreads = team.size();

  const bool rebuild = !state.monteCarloValid || state.monteCarlo == nullptr ||
                       !(state.monteCarlo->cfg == cfg) ||
                       state.monteCarlo->n != n;
  state.monteCarloValid = false;  // re-validated below on clean completion
  const Stopwatch timer;
  if (rebuild) {
    if (state.monteCarlo == nullptr || !(state.monteCarlo->cfg == cfg) ||
        state.monteCarlo->n != n)
      state.monteCarlo = std::make_unique<MonteCarloState>(n, cfg);
    if (!mcBuildWalks(*state.monteCarlo, state, prev, resolved, team, fault)) {
      result.timeMs = timer.elapsedMs();
      result.stopped = true;
      return result;
    }
    result.rankUpdates = state.monteCarlo->numWalks;
  }
  if (batch.size() != 0) {
    const std::vector<Edge> edges = concatBatch(batch);
    if (!mcRepairBatch(*state.monteCarlo, state, curr, edges, resolved, team,
                       fault, result)) {
      result.timeMs = timer.elapsedMs();
      result.stopped = true;
      return result;
    }
  }
  result.timeMs = timer.elapsedMs();
  result.iterations = 1;
  result.converged = true;
  result.toleranceBound = mcL1ErrorBound(cfg.alpha, cfg.walksPerVertex);
  state.monteCarloValid = true;
  return result;
}

}  // namespace lfpr::detail
