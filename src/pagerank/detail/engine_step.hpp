// Resumable step API for the lock-free engines (the PR 6 service
// refactor). The one-shot entry points (powerIterateLF, dynamicLF) used
// to own their working state — rank vector, affected / notConverged /
// checked flags — allocate it per call, run to convergence, and copy the
// ranks out. A long-lived service solving batch after batch against the
// same vertex set wants none of that: the rank vector must *persist*
// between steps (it is the warm start the dynamic algorithms are built
// around) and the flag vectors are pure scratch that is wasteful to
// reallocate thousands of times.
//
// LfEngineState is that persistent state, and the two step functions run
// exactly one converged-or-capped lock-free solve against it:
//
//   lfFullStep     every vertex marked unconverged — Static/ND semantics;
//                  whatever is in state.ranks is the seed (uniform for a
//                  static solve, the previous fixpoint for ND). Also the
//                  service's crash-recovery re-solve.
//   lfDynamicStep  batch-marked frontier — DT (traverse) / DF
//                  (expandFrontier) semantics against a prev/curr
//                  snapshot pair.
//
// Both leave the updated ranks IN state.ranks (result.ranks stays empty;
// the caller decides when a copy is worth it — the service copies only
// at publish). The one-shot engine entry points are now thin wrappers:
// seed a fresh state, take one step, copy out. The PR 1 termination
// protocol is untouched — the steps drive the same markAffectedWorker /
// lfIterateWorker / lfFinishSequential pipeline documented in
// lf_iterate.cpp; only the ownership of the buffers moved.
#pragma once

#include <memory>
#include <span>

#include "graph/csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/detail/monte_carlo.hpp"
#include "pagerank/options.hpp"
#include "sched/fault.hpp"

namespace lfpr::detail {

/// Working state for a sequence of lock-free solve steps over a fixed
/// vertex set. Constructed once (all vectors sized n); each step resets
/// the flag vectors and iterates the rank vector in place.
struct LfEngineState {
  explicit LfEngineState(std::size_t n)
      : ranks(n, 0.0), affected(n, 0), notConverged(n, 0), checked(n, 0) {}

  /// Seed the rank vector (no concurrent step may be running).
  void seedRanks(std::span<const double> init) noexcept { ranks.assign(init); }
  void seedUniform() noexcept {
    ranks.fill(ranks.size() == 0 ? 0.0
                                 : 1.0 / static_cast<double>(ranks.size()));
  }

  [[nodiscard]] std::size_t size() const noexcept { return ranks.size(); }

  /// Lazily allocate the delta-push residual array (8n bytes nobody else
  /// pays for: pull-only step sequences never call this).
  AtomicF64Vector& ensureResidual() {
    if (!residual) residual = std::make_unique<AtomicF64Vector>(size(), 0.0);
    return *residual;
  }

  AtomicF64Vector ranks;
  AtomicU8Vector affected;      // dynamic steps only
  AtomicU8Vector notConverged;  // the termination protocol's RC flags
  AtomicU8Vector checked;       // marking-phase helping flags

  /// Delta-push residual accumulators (lfDeltaPushStep only; null until
  /// the first push step). A *converged* push step leaves sub-threshold
  /// parked residuals here that are still-valid pending mass for the next
  /// push step — the next seed recomputes affected vertices exactly and
  /// keeps the rest, avoiding an O(n) clear per step. Any pull step
  /// (lfFullStep / lfDynamicStep) mutates ranks without maintaining the
  /// residuals, so it flips residualValid off and the next push step
  /// zero-fills.
  std::unique_ptr<AtomicF64Vector> residual;
  bool residualValid = false;

  /// Monte Carlo walk store (lfMonteCarloStep only; null until the first
  /// MC step). Persists across MC steps the same way the residuals do:
  /// a completed MC step leaves the walks consistent with `curr` and
  /// flips monteCarloValid on, so the next MC step repairs instead of
  /// rebuilding. Any exact-engine step moves ranks without maintaining
  /// walks and flips it off; the next MC step rebuilds from scratch.
  std::unique_ptr<MonteCarloState> monteCarlo;
  bool monteCarloValid = false;
};

/// One full solve step: every vertex starts unconverged, state.ranks is
/// the seed. Returns the usual engine result minus the rank copy
/// (result.ranks empty; ranks live in state). `curr.numVertices()` must
/// equal `state.size()`.
PageRankResult lfFullStep(LfEngineState& state, const CsrGraph& curr,
                          const PageRankOptions& opt, FaultInjector* fault);

/// One batch-incremental solve step (DT when `traverse`, DF when
/// `expandFrontier`): marks the frontier from `batch` against the
/// prev/curr snapshot pair, then iterates. state.ranks must hold
/// converged ranks for `prev`. Throws like dtLF/dfLF on mismatched
/// inputs. `name` labels validation errors ("dfLF", "service", ...).
PageRankResult lfDynamicStep(LfEngineState& state, const CsrGraph& prev,
                             const CsrGraph& curr, const BatchUpdate& batch,
                             const PageRankOptions& opt, FaultInjector* fault,
                             bool traverse, bool expandFrontier,
                             const char* name);

/// One batch-incremental *delta-push* solve step (the PR 8 engine,
/// detail/delta_push.cpp): DF marking seeds per-vertex residuals, then
/// workers forward-push only the changed mass instead of re-pulling every
/// incident edge of every dirty vertex. Same contract as lfDynamicStep
/// (state.ranks must hold converged ranks for `prev`); opt.scheduling is
/// ignored — the engine is worklist-driven by construction. Validation
/// errors are labelled with `name`.
PageRankResult lfDeltaPushStep(LfEngineState& state, const CsrGraph& prev,
                               const CsrGraph& curr, const BatchUpdate& batch,
                               const PageRankOptions& opt, FaultInjector* fault,
                               const char* name);

/// One Monte Carlo walk-store step (detail/monte_carlo.cpp). If the
/// store is missing/invalid or its config (mcWalksPerVertex,
/// mcMaxWalkLength, mcSeed, alpha) changed, the walks are (re)built on
/// `prev` first; then a non-empty `batch` is repaired into the store
/// against the prev/curr snapshot pair (walk claims via the DF marks +
/// work rings). Ranks land in state.ranks as everywhere else;
/// result.monteCarlo is set and result.toleranceBound carries the
/// *statistical* mcL1ErrorBound, not a §4.5 certificate. With an empty
/// batch the caller asserts prev and curr are the same snapshot.
/// Validation errors are labelled with `name`.
PageRankResult lfMonteCarloStep(LfEngineState& state, const CsrGraph& prev,
                                const CsrGraph& curr, const BatchUpdate& batch,
                                const PageRankOptions& opt, FaultInjector* fault,
                                const char* name);

}  // namespace lfpr::detail
