#include "pagerank/detail/power_bb.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "pagerank/detail/common.hpp"
#include "pagerank/error.hpp"
#include "sched/barrier.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "util/timer.hpp"

namespace lfpr::detail {

PageRankResult powerIterateBB(const CsrGraph& g, std::vector<double> init,
                              const PageRankOptions& opt, FaultInjector* fault,
                              const BBParams& params) {
  PageRankResult result;
  const std::size_t n = g.numVertices();
  if (n == 0) {
    result.converged = true;
    result.toleranceBound = syncToleranceBound(opt.tolerance, opt.alpha);
    return result;
  }

  ThreadTeam team(opt.numThreads);
  const int numThreads = team.size();

  const auto pullCsr = buildPullLayout(opt, g);
  const WeightedPullCsr* pull = pullCsr ? &*pullCsr : nullptr;

  std::vector<double> rankA = std::move(init);
  std::vector<double> rankB = rankA;
  InstrumentedBarrier barrier(numThreads, opt.barrierTimeout);
  ChunkCursor cursor(n, opt.chunkSize);
  std::vector<PaddedDouble> localMax(static_cast<std::size_t>(numThreads));
  std::vector<PaddedU64> localUpdates(static_cast<std::size_t>(numThreads));

  // Swapped by thread 0 between the two barriers of each iteration; the
  // barriers order the swap against every other thread's accesses.
  std::vector<double>* cur = &rankA;
  std::vector<double>* nxt = &rankB;
  std::atomic<bool> done{false};
  std::atomic<bool> stoppedFlag{false};
  std::atomic<bool> brokenFlag{false};
  std::atomic<int> iterations{0};

  const double alpha = opt.alpha;
  const double base = (1.0 - alpha) / static_cast<double>(n);
  const double tauF = opt.frontierTolerance;
  AtomicU8Vector* affected = params.affected;

  const Stopwatch timer;
  team.run([&](int tid) {
    for (int it = 0; it < opt.maxIterations; ++it) {
      const std::vector<double>& ranks = *cur;
      std::vector<double>& ranksNew = *nxt;
      double threadMax = 0.0;
      std::uint64_t updates = 0;

      std::size_t chunkBegin = 0, chunkEnd = 0;
      while (cursor.next(chunkBegin, chunkEnd)) {
        for (std::size_t i = chunkBegin; i < chunkEnd; ++i) {
          const auto v = static_cast<VertexId>(i);
          if (affected != nullptr && affected->load(v) == 0) continue;
          const double r = pullRankDispatch(pull, g, ranks, v, alpha, base);
          const double dr = std::fabs(r - ranks[v]);
          ranksNew[v] = r;
          threadMax = std::max(threadMax, dr);
          ++updates;
          if (params.expandFrontier && dr > tauF)
            for (VertexId w : g.out(v)) markAffected(*affected, w);
          if (fault != nullptr && !fault->onVertexProcessed(tid)) {
            // Crash-stop: this thread silently stops. It never reaches the
            // barrier, so the others will eventually break out via timeout.
            localUpdates[static_cast<std::size_t>(tid)].value += updates;
            return;
          }
        }
      }
      localMax[static_cast<std::size_t>(tid)].value = threadMax;
      localUpdates[static_cast<std::size_t>(tid)].value += updates;

      if (barrier.arriveAndWait(tid) == InstrumentedBarrier::Status::Broken) {
        brokenFlag.store(true);
        return;
      }
      if (tid == 0) {
        double delta = 0.0;
        for (const PaddedDouble& m : localMax) delta = std::max(delta, m.value);
        iterations.store(it + 1);
        if (delta <= opt.tolerance) {
          done.store(true);
        } else if (opt.stopRequested != nullptr &&
                   opt.stopRequested->load(std::memory_order_relaxed)) {
          // Cooperative stop (service lifecycle hook): exit every thread
          // through the same barrier pair as convergence — a lone early
          // exit would break the barrier for the survivors — but record
          // the stop separately so `converged` stays honest.
          stoppedFlag.store(true);
          done.store(true);
        }
        cursor.reset();
        std::swap(cur, nxt);
      }
      if (barrier.arriveAndWait(tid) == InstrumentedBarrier::Status::Broken) {
        brokenFlag.store(true);
        return;
      }
      if (done.load()) return;
    }
  });
  result.timeMs = timer.elapsedMs();

  result.iterations = iterations.load();
  result.dnf = brokenFlag.load() || barrier.broken();
  result.stopped = stoppedFlag.load();
  result.converged = done.load() && !result.dnf && !result.stopped;
  result.toleranceBound = result.converged
                              ? syncToleranceBound(opt.tolerance, opt.alpha)
                              : std::numeric_limits<double>::infinity();
  result.waitMs = toMs(barrier.totalWaitTime());
  for (const PaddedU64& u : localUpdates) result.rankUpdates += u.value;
  result.ranks = std::move(*cur);
  return result;
}

}  // namespace lfpr::detail
