// Cross-thread protocol-cost accumulators behind the LFPR_STATS compile
// option (CMake -DLFPR_STATS=ON, propagated as a PUBLIC define so every
// translation unit agrees). The LFPR_COUNT macro compiles to nothing in
// normal builds — the counters must never perturb the hot paths they are
// meant to diagnose; in stats builds each site is one relaxed fetch_add
// on a shared cache line, cheap enough for bench diagnostics.
#pragma once

#include <atomic>
#include <cstdint>

#include "pagerank/options.hpp"

namespace lfpr::detail {

struct ProtocolCounters {
  std::atomic<std::uint64_t> rankPublishes{0};
  std::atomic<std::uint64_t> rePulls{0};
  std::atomic<std::uint64_t> flagRmws{0};
  /// DeltaPush: residual fetch-adds into out-neighbours (engines flush
  /// one add per drained vertex — the out-degree — not one per edge).
  std::atomic<std::uint64_t> residualPushes{0};

  /// Snapshot into the result struct (ring pushes and threshold-crossing
  /// activations are counted by the WorklistScheduler and merged in by
  /// the engine).
  [[nodiscard]] ProtocolStats snapshot() const noexcept {
    ProtocolStats s;
    s.rankPublishes = rankPublishes.load(std::memory_order_relaxed);
    s.rePulls = rePulls.load(std::memory_order_relaxed);
    s.flagRmws = flagRmws.load(std::memory_order_relaxed);
    s.residualPushes = residualPushes.load(std::memory_order_relaxed);
    return s;
  }
};

#if defined(LFPR_STATS)
#define LFPR_COUNT(counters, field, n)                                   \
  do {                                                                   \
    if ((counters) != nullptr)                                           \
      (counters)->field.fetch_add((n), std::memory_order_relaxed);       \
  } while (0)
#else
#define LFPR_COUNT(counters, field, n) \
  do {                                 \
    (void)(counters);                  \
  } while (0)
#endif

}  // namespace lfpr::detail
