// The shared release-mark primitive of the lock-free termination
// protocol (see the protocol comment in lf_iterate.cpp). Used by the
// marking phase, the iteration core and the worklist scheduler so the
// load-bearing properties live in exactly one place:
//
//  * both stores are release RMWs (fetchOr) — plain stores would break
//    the release sequences the acquire clears synchronize through, and
//    skipping the RMW when the flag already reads 1 would let a marker's
//    rank publish stay invisible to a concurrent clear;
//  * the vertex flag is marked BEFORE the chunk flag — the order
//    clearChunkFlagAndReverify's acquire-rescan relies on;
//  * under Worklist scheduling the ring enqueue comes AFTER the flag
//    mark: a popped entry may then race a concurrent re-mark, but the
//    flag is already visible to the clear-then-reverify path, so the
//    mark can never be lost even if the enqueue is.
#pragma once

#include <atomic>
#include <cstddef>

#include "pagerank/atomics.hpp"
#include "sched/work_ring.hpp"

namespace lfpr::detail {

/// Mark vertex w "not yet converged", plus its owning chunk when
/// per-chunk flags are in use, plus the owner's dirty ring when Worklist
/// scheduling is active.
inline void markVertexUnconverged(AtomicU8Vector& notConverged,
                                  AtomicU8Vector* chunkFlags,
                                  std::size_t chunkSize, std::size_t w,
                                  WorklistScheduler* worklist = nullptr) {
  notConverged.fetchOr(w, 1, std::memory_order_release);
  if (chunkFlags != nullptr)
    chunkFlags->fetchOr(w / chunkSize, 1, std::memory_order_release);
  if (worklist != nullptr) worklist->enqueue(w);
}

}  // namespace lfpr::detail
