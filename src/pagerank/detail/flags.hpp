// The shared release-mark primitive of the lock-free termination
// protocol (see the protocol comment in lf_iterate.cpp). Used by both
// the marking phase and the iteration core so the two load-bearing
// properties live in exactly one place:
//
//  * both stores are release RMWs (fetchOr) — plain stores would break
//    the release sequences the acquire clears synchronize through, and
//    skipping the RMW when the flag already reads 1 would let a marker's
//    rank publish stay invisible to a concurrent clear;
//  * the vertex flag is marked BEFORE the chunk flag — the order
//    clearChunkFlagAndReverify's acquire-rescan relies on.
#pragma once

#include <atomic>
#include <cstddef>

#include "pagerank/atomics.hpp"

namespace lfpr::detail {

/// Mark vertex w "not yet converged", plus its owning chunk when
/// per-chunk flags are in use.
inline void markVertexUnconverged(AtomicU8Vector& notConverged,
                                  AtomicU8Vector* chunkFlags,
                                  std::size_t chunkSize, std::size_t w) {
  notConverged.fetchOr(w, 1, std::memory_order_release);
  if (chunkFlags != nullptr)
    chunkFlags->fetchOr(w / chunkSize, 1, std::memory_order_release);
}

}  // namespace lfpr::detail
