// Barrier-based power-iteration core shared by StaticBB, NDBB, DTBB and
// DFBB (Algorithms 3, 5, 7 and 1). Synchronous Jacobi-style iteration
// with two rank vectors swapped at the iteration barrier.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/options.hpp"
#include "sched/fault.hpp"

namespace lfpr::detail {

struct BBParams {
  /// When set, only vertices with affected[v] != 0 are processed
  /// (Dynamic Traversal / Dynamic Frontier restriction).
  AtomicU8Vector* affected = nullptr;
  /// Dynamic Frontier incremental marking: when a vertex's rank changes
  /// by more than frontierTolerance, mark its out-neighbours affected.
  bool expandFrontier = false;
};

/// Iterates to convergence (or maxIterations / barrier breakage) starting
/// from `init`. Fills every PageRankResult field except affectedVertices.
PageRankResult powerIterateBB(const CsrGraph& g, std::vector<double> init,
                              const PageRankOptions& opt, FaultInjector* fault,
                              const BBParams& params = {});

}  // namespace lfpr::detail
