// Phase 1 of the dynamic lock-free engines: marking the initially
// affected vertices of a batch update, with the paper's *helping
// mechanism* (Section 4.3/4.4).
//
// Each batch edge (u, v) requires the out-neighbours of u in both the
// previous and current snapshots to be marked (DF), or everything
// reachable from them to be marked (DT). The per-source "checked" flag
// vector C lets threads help one another: after draining its dynamically
// assigned share, a thread rescans the batch and re-processes any source
// whose C flag is still 0 — re-executing, not waiting, so a stalled or
// crashed thread can never block phase 2. Marking is idempotent, so the
// resulting races are harmless.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/detail/stats.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/fault.hpp"
#include "sched/work_ring.hpp"

namespace lfpr::detail {

struct MarkShared {
  const CsrGraph& prev;
  const CsrGraph& curr;
  /// Concatenated deletions ++ insertions.
  std::span<const Edge> edges;
  /// Per-source-vertex checked flags (size = numVertices).
  AtomicU8Vector& checked;
  AtomicU8Vector& affected;
  AtomicU8Vector& notConverged;
  /// Optional per-chunk flags (DF-LF ablation); chunk = vertex/chunkSize.
  AtomicU8Vector* chunkFlags = nullptr;
  std::size_t chunkSize = 2048;
  /// Shared first-pass work pool over `edges`.
  ChunkCursor& cursor;
  /// DT: mark everything reachable from the initial set (DFS over curr);
  /// DF: mark only the immediate out-neighbours.
  bool traverse = false;
  FaultInjector* fault = nullptr;
  /// Worklist scheduling: marks enqueue the vertex onto its owner's
  /// dirty ring (the seeding channel for DT/DF worklist solves).
  WorklistScheduler* worklist = nullptr;
  /// Protocol-cost counters (LFPR_STATS builds; ignored otherwise).
  ProtocolCounters* stats = nullptr;
};

/// Runs the initial-marking phase on the calling worker thread. Returns
/// false if the thread crashed (fault injection); in that case the
/// remaining threads complete the marking via the helping rescan.
bool markAffectedWorker(const MarkShared& shared, int tid);

}  // namespace lfpr::detail
