// Atomic vectors backing the lock-free engines.
//
// The paper's LF implementations share a single rank vector and several
// 8-bit flag vectors (VA affected, C checked, RC not-yet-converged)
// between independently running threads. In C++ the concurrent plain
// loads/stores would be data races, so we wrap std::atomic with relaxed
// ordering — on x86-64 this compiles to the same mov instructions while
// keeping behaviour defined. Accessors taking stronger orders exist for
// the places that need them: the C "checked" helping flag (which
// publishes the marking writes that precede it) and the RC/chunk
// converged flags, whose release-marking / acquire-clearing protocol is
// documented at fetchOr() below and in lf_iterate.cpp.
//
// The convergence scans (allZero / allZeroFrom / countNonZero) are pure
// relaxed reads with no ordering role in that protocol, so they read
// eight flags per 64-bit load (PR 2 RMW diet, item c in lf_iterate.cpp);
// every flag *mutation* remains an individually-addressed byte-sized
// atomic, so the marking/clearing memory-order story is unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace lfpr {

class AtomicF64Vector {
 public:
  AtomicF64Vector(std::size_t n, double init) : v_(n) { fill(init); }

  explicit AtomicF64Vector(std::span<const double> init) : v_(init.size()) {
    for (std::size_t i = 0; i < init.size(); ++i)
      v_[i].store(init[i], std::memory_order_relaxed);
  }

  [[nodiscard]] double load(std::size_t i) const noexcept {
    return v_[i].load(std::memory_order_relaxed);
  }
  void store(std::size_t i, double x) noexcept {
    v_[i].store(x, std::memory_order_relaxed);
  }

  /// Store x and return the value it replaced. The lock-free engines
  /// publish every rank update through this RMW so the update's true jump
  /// — against the value actually overwritten, not against a possibly
  /// stale earlier read — is what convergence decisions are made from: a
  /// delayed thread rolling a refined rank back to a stale one observes a
  /// large jump and re-marks the vertex (see lf_iterate.cpp).
  double exchange(std::size_t i, double x) noexcept {
    return v_[i].exchange(x, std::memory_order_relaxed);
  }

  /// Atomically add x and return the value held *before* the add (C++20
  /// floating-point fetch_add — one lock-free RMW, not a hand-rolled CAS
  /// loop). This is the delta-push engine's residual accumulator: pushes
  /// from concurrent threads can never lose mass, and the returned
  /// before-value is what the activation-threshold crossing test is made
  /// from (sched/work_ring.hpp, crossedThreshold).
  double fetchAdd(std::size_t i, double x) noexcept {
    return v_[i].fetch_add(x, std::memory_order_relaxed);
  }

  void fill(double x) noexcept {
    for (auto& a : v_) a.store(x, std::memory_order_relaxed);
  }

  /// Overwrite from a plain vector of the same length (seeding a
  /// persistent engine state between resumable steps — engine_step.hpp).
  /// Caller must guarantee no concurrent accessors.
  void assign(std::span<const double> init) noexcept {
    for (std::size_t i = 0; i < init.size() && i < v_.size(); ++i)
      v_[i].store(init[i], std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  [[nodiscard]] std::vector<double> toVector() const {
    std::vector<double> out(v_.size());
    for (std::size_t i = 0; i < v_.size(); ++i)
      out[i] = v_[i].load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::vector<std::atomic<double>> v_;
};

class AtomicU8Vector {
 public:
  AtomicU8Vector(std::size_t n, std::uint8_t init) : v_(n) { fill(init); }

  [[nodiscard]] std::uint8_t load(
      std::size_t i, std::memory_order order = std::memory_order_relaxed) const noexcept {
    return v_[i].load(order);
  }
  void store(std::size_t i, std::uint8_t x,
             std::memory_order order = std::memory_order_relaxed) noexcept {
    v_[i].store(x, order);
  }

  std::uint8_t exchange(std::size_t i, std::uint8_t x,
                        std::memory_order order = std::memory_order_relaxed) noexcept {
    return v_[i].exchange(x, order);
  }

  /// RMW mark. The lock-free engines set convergence flags exclusively via
  /// RMW operations: under C++20 a release sequence is continued only by
  /// RMWs, so keeping every concurrent flag mutation an RMW guarantees
  /// that an acquire RMW reading any value of the flag synchronizes with
  /// *every* release-marking thread earlier in the modification order —
  /// the property the clear-then-reverify termination protocol relies on
  /// (see lf_iterate.cpp).
  std::uint8_t fetchOr(std::size_t i, std::uint8_t x,
                       std::memory_order order = std::memory_order_relaxed) noexcept {
    return v_[i].fetch_or(x, order);
  }

  void fill(std::uint8_t x) noexcept {
    for (auto& a : v_) a.store(x, std::memory_order_relaxed);
  }

  /// True iff every element is zero (the LF engines' convergence test:
  /// "RC[v] = 0 for all v"). Scans eight flags per 64-bit load — the
  /// scans were always relaxed reads with no ordering role (the clears
  /// and marks carry the protocol), so the wide load changes bandwidth,
  /// not semantics; see the RMW-diet note in lf_iterate.cpp.
  [[nodiscard]] bool allZero() const noexcept {
    return findNonZero(0, v_.size()) == v_.size();
  }

  /// allZero() with a resume hint: starts scanning at `hint` (where the
  /// last scan found a non-zero) and wraps. Unconverged vertices cluster,
  /// so per-round convergence checks become ~O(1) until the final round.
  [[nodiscard]] bool allZeroFrom(std::size_t& hint) const noexcept {
    const std::size_t n = v_.size();
    if (n == 0) return true;
    if (hint >= n) hint = 0;
    std::size_t i = findNonZero(hint, n);
    if (i == n) {
      i = findNonZero(0, hint);
      if (i == hint) return true;
    }
    hint = i;
    return false;
  }

  /// Index of the first non-zero flag in [begin, end), or end if none —
  /// the word-wide scan behind allZero, exposed so worklist partition
  /// reconciles cost one relaxed load per eight flags instead of a
  /// per-vertex byte loop (same monotone-read semantics as the scans).
  [[nodiscard]] std::size_t firstNonZero(std::size_t begin,
                                         std::size_t end) const noexcept {
    const std::size_t e = end < v_.size() ? end : v_.size();
    if (begin >= e) return end;
    const std::size_t i = findNonZero(begin, e);
    return i == e ? end : i;
  }

  [[nodiscard]] std::uint64_t countNonZero() const noexcept {
    const std::size_t n = v_.size();
    std::uint64_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      if (wordAt(i) == 0) continue;
      for (std::size_t k = i; k < i + 8; ++k)
        count += v_[k].load(std::memory_order_relaxed) != 0 ? 1 : 0;
    }
    for (; i < n; ++i)
      count += v_[i].load(std::memory_order_relaxed) != 0 ? 1 : 0;
    return count;
  }

  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

 private:
  static_assert(sizeof(std::atomic<std::uint8_t>) == 1 &&
                    alignof(std::atomic<std::uint8_t>) == 1,
                "word-at-a-time scan assumes byte-sized atomics");

  /// Eight flags in one relaxed 64-bit load. `i` must be a multiple of 8;
  /// the vector's allocation is at least 8-byte aligned (operator new),
  /// so index alignment implies memory alignment. The cast reads the
  /// object representation of eight adjacent atomic bytes — accepted by
  /// every supported compiler for lock-free byte atomics, and an atomic
  /// access, so sanitizers see no data race; a portable per-byte loop
  /// backs other toolchains.
  [[nodiscard]] std::uint64_t wordAt(std::size_t i) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    return __atomic_load_n(reinterpret_cast<const std::uint64_t*>(v_.data() + i),
                           __ATOMIC_RELAXED);
#else
    std::uint64_t w = 0;
    for (std::size_t k = 0; k < 8; ++k)
      w |= static_cast<std::uint64_t>(v_[i + k].load(std::memory_order_relaxed))
           << (8 * k);
    return w;
#endif
  }

  /// Index of the first non-zero flag in [b, e), or e if none. Byte steps
  /// to the first word boundary, then words. A word that reads non-zero
  /// is re-checked byte-wise; if a concurrent clear emptied it in
  /// between, the scan just continues (same monotone-read semantics as
  /// the byte loop it replaces).
  [[nodiscard]] std::size_t findNonZero(std::size_t b, std::size_t e) const noexcept {
    std::size_t i = b;
    for (; i < e && (i & 7) != 0; ++i)
      if (v_[i].load(std::memory_order_relaxed) != 0) return i;
    for (; i + 8 <= e; i += 8) {
      if (wordAt(i) == 0) continue;
      for (std::size_t k = i; k < i + 8; ++k)
        if (v_[k].load(std::memory_order_relaxed) != 0) return k;
    }
    for (; i < e; ++i)
      if (v_[i].load(std::memory_order_relaxed) != 0) return i;
    return e;
  }

  std::vector<std::atomic<std::uint8_t>> v_;
};

}  // namespace lfpr
