// Lock-free Dynamic Traversal PageRank (Algorithm 8).
#include "pagerank/detail/dynamic_engines.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult dtLF(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt,
                    FaultInjector* fault) {
  return detail::dynamicLF(prev, curr, batch, prevRanks, opt, fault,
                           /*traverse=*/true, /*expandFrontier=*/false);
}

}  // namespace lfpr
