// Lock-free delta-push residual PageRank (the PR 8 engine family; not
// one of the paper's eight). The DF marking phase seeds per-vertex
// residual accumulators with one pull each; from then on the solve is
// pull-free — workers forward-push only the changed mass through C++20
// floating-point fetch-adds, activating neighbours into the PR 5
// worklist machinery when a push crosses the activation threshold. See
// detail/delta_push.cpp for the protocol mapping.
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/pagerank.hpp"

#include <stdexcept>
#include <string>

namespace lfpr {

PageRankResult deltaPush(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch,
                         std::span<const double> prevRanks,
                         const PageRankOptions& opt, FaultInjector* fault) {
  // One-shot wrapper over the resumable step API, like dynamicLF: a
  // fresh state seeded with prevRanks, exactly one push step, ranks
  // copied out. Long-lived callers (service/rank_service.cpp) keep the
  // state — and its parked residuals — across steps instead.
  if (prevRanks.size() != curr.numVertices())
    throw std::invalid_argument("deltaPush: prevRanks size must match graph");
  detail::LfEngineState state(curr.numVertices());
  state.seedRanks(prevRanks);
  PageRankResult result =
      detail::lfDeltaPushStep(state, prev, curr, batch, opt, fault, "deltaPush");
  result.ranks = state.ranks.toVector();
  return result;
}

}  // namespace lfpr
