// Uniform dispatch over the eight engines (plus the opt-in DeltaPush
// and MonteCarlo families), used by the experiment harness and benches.
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult runApproach(Approach approach, const CsrGraph& prev,
                           const CsrGraph& curr, const BatchUpdate& batch,
                           std::span<const double> prevRanks,
                           const PageRankOptions& opt, FaultInjector* fault) {
  switch (approach) {
    case Approach::StaticBB: return staticBB(curr, opt, fault);
    case Approach::StaticLF: return staticLF(curr, opt, fault);
    case Approach::NDBB: return ndBB(curr, prevRanks, opt, fault);
    case Approach::NDLF: return ndLF(curr, prevRanks, opt, fault);
    case Approach::DTBB: return dtBB(prev, curr, batch, prevRanks, opt, fault);
    case Approach::DTLF: return dtLF(prev, curr, batch, prevRanks, opt, fault);
    case Approach::DFBB: return dfBB(prev, curr, batch, prevRanks, opt, fault);
    case Approach::DFLF: return dfLF(prev, curr, batch, prevRanks, opt, fault);
    case Approach::DeltaPush:
      return deltaPush(prev, curr, batch, prevRanks, opt, fault);
    case Approach::MonteCarlo:
      return monteCarlo(prev, curr, batch, opt, fault);  // prevRanks unused
  }
  throw std::invalid_argument("runApproach: unknown approach");
}

}  // namespace lfpr
