// Personalized-PageRank query surface for the Monte Carlo walk engine
// (Bahmani et al., "Fast Incremental and Personalized PageRank"): the
// engine keeps R geometric-length random-walk segments rooted at every
// vertex, and the personalized score of v as seen from root r is
//
//     ppr_r(v) ~= (1 - alpha) * visits_r(v) / R
//
// where visits_r(v) counts how often the R walks rooted at r step on v.
// A PprIndex is an immutable per-epoch flattening of the walk store
// (root-major visit log), published through the service SnapshotBox the
// same way rank vectors are — readers never touch the live store.
//
// Every score carries a Monte-Carlo error bound (error.hpp,
// mcPprErrorBound). Unlike the deterministic Section 4.5 certificates
// on the exact engines, this bound is *statistical* — an expected-error
// scale with a safety factor, not a worst-case guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace lfpr {

/// One personalized-PageRank result entry for a (root, vertex) pair.
struct PprEntry {
  VertexId vertex = 0;
  /// Monte-Carlo estimate (1 - alpha) * visits / R.
  double score = 0.0;
  /// Statistical error scale for `score` (mcPprErrorBound) — expected
  /// error with a safety factor, NOT a worst-case certificate.
  double errorBound = 0.0;
};

/// Immutable root-major visit log snapshot of a Monte Carlo walk store.
/// Vertices visited by the R walks rooted at r occupy
/// visitLog[offsets[r] .. offsets[r+1]), duplicates counting multiple
/// visits. Built once per published epoch (detail::buildPprIndex) and
/// shared read-only by any number of query threads.
struct PprIndex {
  double alpha = 0.85;
  int walksPerVertex = 0;
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> offsets;  ///< numRoots + 1 entries.
  std::vector<VertexId> visitLog;

  [[nodiscard]] std::size_t numRoots() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  /// Top-k personalized scores as seen from `root`, sorted by
  /// descending score (ties by ascending vertex id). Returns fewer
  /// than k entries when fewer than k distinct vertices were visited,
  /// and an empty vector for an out-of-range root.
  [[nodiscard]] std::vector<PprEntry> topK(VertexId root, std::size_t k) const;
};

}  // namespace lfpr
