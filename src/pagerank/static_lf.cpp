// Lock-free static PageRank with dynamic chunk scheduling (Algorithm 4).
#include "pagerank/detail/power_lf.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

PageRankResult staticLF(const CsrGraph& curr, const PageRankOptions& opt,
                        FaultInjector* fault) {
  const std::size_t n = curr.numVertices();
  std::vector<double> init(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  return detail::powerIterateLF(curr, std::move(init), opt, fault);
}

}  // namespace lfpr
