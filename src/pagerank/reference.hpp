// Reference PageRank (Section 5.1.5): the paper compares every approach
// against a barrier-based static PageRank run on the updated graph with a
// tolerance of 1e-100 capped at 500 iterations — i.e. effectively a fixed
// 500-iteration power iteration at machine precision. We run the same
// sequentially with long-double accumulation, with an early exit once the
// iterate is stationary to double precision (change < exitTolerance),
// which is bitwise equivalent in the returned doubles.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace lfpr {

std::vector<double> referenceRanks(const CsrGraph& g, double alpha = 0.85,
                                   int maxIterations = 500,
                                   long double exitTolerance = 1e-16L);

}  // namespace lfpr
