#include "pagerank/vertex_dynamic.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace lfpr {

std::vector<double> expandRanksForNewVertices(std::span<const double> ranks,
                                              VertexId newNumVertices) {
  const std::size_t oldN = ranks.size();
  if (newNumVertices < oldN)
    throw std::invalid_argument(
        "expandRanksForNewVertices: use removeVertexRanks to shrink");
  const std::size_t newN = newNumVertices;
  if (newN == oldN) return {ranks.begin(), ranks.end()};
  if (oldN == 0) return std::vector<double>(newN, newN > 0 ? 1.0 / newN : 0.0);

  // New vertices start uniform; the mass they need is taken from existing
  // vertices proportionally, preserving both the total and the relative
  // ordering of existing ranks.
  const double newcomerMass = static_cast<double>(newN - oldN) / static_cast<double>(newN);
  const double scale = 1.0 - newcomerMass;
  std::vector<double> out(newN, 1.0 / static_cast<double>(newN));
  for (std::size_t v = 0; v < oldN; ++v) out[v] = ranks[v] * scale;
  return out;
}

std::vector<double> removeVertexRanks(std::span<const double> ranks,
                                      std::span<const VertexId> removedIds,
                                      std::vector<VertexId>* oldToNew) {
  const std::size_t oldN = ranks.size();
  std::unordered_set<VertexId> removed(removedIds.begin(), removedIds.end());
  for (VertexId id : removed)
    if (id >= oldN)
      throw std::out_of_range("removeVertexRanks: removed id out of range");

  std::vector<double> kept;
  kept.reserve(oldN - removed.size());
  if (oldToNew != nullptr) oldToNew->assign(oldN, kNoVertex);

  double keptMass = 0.0;
  for (std::size_t v = 0; v < oldN; ++v) {
    if (removed.contains(static_cast<VertexId>(v))) continue;
    if (oldToNew != nullptr)
      (*oldToNew)[v] = static_cast<VertexId>(kept.size());
    kept.push_back(ranks[v]);
    keptMass += ranks[v];
  }
  // Redistribute the removed vertices' mass proportionally.
  if (keptMass > 0.0) {
    const double scale = 1.0 / keptMass;
    double total = 0.0;
    for (double r : kept) total += r;
    (void)total;
    for (double& r : kept) r *= scale;
  } else if (!kept.empty()) {
    const double uniform = 1.0 / static_cast<double>(kept.size());
    for (double& r : kept) r = uniform;
  }
  return kept;
}

}  // namespace lfpr
