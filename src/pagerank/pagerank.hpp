// Public API: the eight PageRank engines of the paper.
//
//   Static*  — full recomputation from uniform ranks        (Algorithms 3, 4)
//   ND*      — Naive-dynamic: rerun seeded with R^{t-1}     (Algorithms 5, 6)
//   DT*      — Dynamic Traversal: restrict to vertices      (Algorithms 7, 8)
//              reachable from the batch
//   DF*      — Dynamic Frontier: incremental frontier of    (Algorithms 1, 2)
//              likely-changed vertices — the contribution
//
// each in a barrier-based (BB, synchronous Jacobi, two rank vectors) and
// a lock-free (LF, asynchronous in-place, per-vertex converged flags)
// variant. The LF engines guarantee progress under random thread delays
// and crash-stop failures injected through FaultInjector; the BB engines
// report DNF when a crash breaks their iteration barrier.
//
// Graphs are expected to have a self-loop on every vertex (dead-end
// elimination, Section 5.1.3); DynamicDigraph::ensureSelfLoops() and the
// generators take care of this.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "pagerank/error.hpp"
#include "pagerank/options.hpp"
#include "pagerank/reference.hpp"
#include "sched/fault.hpp"

namespace lfpr {

/// Barrier-based static PageRank from uniform initial ranks (Alg. 3).
PageRankResult staticBB(const CsrGraph& curr, const PageRankOptions& opt = {},
                        FaultInjector* fault = nullptr);

/// Lock-free static PageRank with dynamic chunk scheduling (Alg. 4).
PageRankResult staticLF(const CsrGraph& curr, const PageRankOptions& opt = {},
                        FaultInjector* fault = nullptr);

/// Barrier-based Naive-dynamic PageRank seeded with prevRanks (Alg. 5).
PageRankResult ndBB(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt = {}, FaultInjector* fault = nullptr);

/// Lock-free Naive-dynamic PageRank (Alg. 6).
PageRankResult ndLF(const CsrGraph& curr, std::span<const double> prevRanks,
                    const PageRankOptions& opt = {}, FaultInjector* fault = nullptr);

/// Barrier-based Dynamic Traversal PageRank (Alg. 7).
PageRankResult dtBB(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt = {},
                    FaultInjector* fault = nullptr);

/// Lock-free Dynamic Traversal PageRank (Alg. 8).
PageRankResult dtLF(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt = {},
                    FaultInjector* fault = nullptr);

/// Barrier-based Dynamic Frontier PageRank (Alg. 1).
PageRankResult dfBB(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt = {},
                    FaultInjector* fault = nullptr);

/// Lock-free, fault-tolerant Dynamic Frontier PageRank (Alg. 2) — the
/// paper's primary contribution.
PageRankResult dfLF(const CsrGraph& prev, const CsrGraph& curr, const BatchUpdate& batch,
                    std::span<const double> prevRanks, const PageRankOptions& opt = {},
                    FaultInjector* fault = nullptr);

/// Lock-free delta-push residual engine (opt-in; not one of the paper's
/// eight). DF marking seeds per-vertex residual accumulators, then
/// workers forward-push only the changed mass through lock-free
/// fetch-adds — built for the mid-density batch band where both pull
/// schedulers do redundant work. opt.scheduling is ignored (the engine
/// is worklist-driven by construction); see opt.pushRelativeTolerance.
PageRankResult deltaPush(const CsrGraph& prev, const CsrGraph& curr,
                         const BatchUpdate& batch,
                         std::span<const double> prevRanks,
                         const PageRankOptions& opt = {},
                         FaultInjector* fault = nullptr);

/// Incremental Monte Carlo PageRank (opt-in; not one of the paper's
/// eight): builds R random-walk segments per root on `prev`, repairs
/// exactly the walks through `batch`'s changed vertices, and derives
/// ranks from visit counts — approximate (result.monteCarlo is set and
/// toleranceBound is the *statistical* mcL1ErrorBound, no §4.5
/// certificate), but batch work is O(walks through changed vertices)
/// and the same store answers personalized queries (ppr.hpp; served
/// live via RankService::pprTopK). No prevRanks parameter: ranks come
/// from the walks, never from a seed. See opt.mcWalksPerVertex /
/// mcMaxWalkLength / mcSeed.
PageRankResult monteCarlo(const CsrGraph& prev, const CsrGraph& curr,
                          const BatchUpdate& batch,
                          const PageRankOptions& opt = {},
                          FaultInjector* fault = nullptr);

/// Uniform dispatch over all eight engines plus DeltaPush and MonteCarlo
/// (harness convenience). Static engines ignore prev/batch/prevRanks;
/// ND engines ignore prev/batch; MonteCarlo ignores prevRanks.
PageRankResult runApproach(Approach approach, const CsrGraph& prev,
                           const CsrGraph& curr, const BatchUpdate& batch,
                           std::span<const double> prevRanks,
                           const PageRankOptions& opt = {},
                           FaultInjector* fault = nullptr);

}  // namespace lfpr
