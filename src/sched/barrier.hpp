// Instrumented sense-reversing barrier for the barrier-based (BB) engines.
//
// Two features beyond a plain barrier, both required by the paper's
// experiments:
//   1. Per-thread wait-time accounting — Figure 1 reports the fraction of
//      execution time threads spend waiting at iteration barriers (up to
//      73% on skewed graphs).
//   2. Timeout / breakage — under the crash-stop model a crashed thread
//      never reaches the barrier, so a BB engine would deadlock (Figure 3a,
//      Section 5.4: "DFBB fails to complete even if a single thread
//      crashes"). A broken barrier lets the engine report DNF instead of
//      hanging the process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace lfpr {

class InstrumentedBarrier {
 public:
  enum class Status { Ok, Broken };

  explicit InstrumentedBarrier(
      int numThreads,
      std::chrono::nanoseconds timeout = std::chrono::hours(24));

  /// Arrive and wait for all other threads. Returns Broken if the barrier
  /// timed out (some thread never arrived) — once broken, every current
  /// and future wait returns Broken immediately.
  Status arriveAndWait(int tid);

  [[nodiscard]] bool broken() const noexcept {
    return broken_.load(std::memory_order_acquire);
  }

  /// Cumulative time `tid` has spent waiting inside arriveAndWait.
  [[nodiscard]] std::chrono::nanoseconds waitTime(int tid) const noexcept {
    return std::chrono::nanoseconds(per_[static_cast<std::size_t>(tid)].waitNs.load(
        std::memory_order_relaxed));
  }

  /// Sum of per-thread wait times (the "wait time" series of Figure 1).
  [[nodiscard]] std::chrono::nanoseconds totalWaitTime() const noexcept;

  [[nodiscard]] int numThreads() const noexcept { return n_; }

 private:
  struct alignas(64) PerThread {
    std::atomic<std::int64_t> waitNs{0};
    bool sense = false;  // thread-local phase, touched only by its owner
  };

  std::vector<PerThread> per_;
  std::atomic<int> count_{0};
  std::atomic<bool> sense_{false};
  std::atomic<bool> broken_{false};
  int n_;
  std::chrono::nanoseconds timeout_;
};

}  // namespace lfpr
