// Lock-free dynamic work distribution.
//
// This is the library's equivalent of OpenMP's `schedule(dynamic, chunk)`
// with `nowait` (Section 3.3.2 of the paper): threads atomically grab the
// next chunk of indices from a global pool via fetch-add, so running
// threads stay load-balanced and no thread ever waits for another. A
// crashed or delayed thread simply stops taking chunks; the remainder of
// the pool is drained by the surviving threads — the property the paper's
// lock-free engines rely on.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace lfpr {

/// One round of dynamically-scheduled chunks over [0, numItems).
class ChunkCursor {
 public:
  ChunkCursor(std::size_t numItems, std::size_t chunkSize)
      : numItems_(numItems), chunkSize_(chunkSize == 0 ? 1 : chunkSize) {}

  /// Claim the next chunk. Returns false when the pool is exhausted.
  bool next(std::size_t& begin, std::size_t& end) noexcept {
    const std::size_t b = nextIndex_.fetch_add(chunkSize_, std::memory_order_relaxed);
    if (b >= numItems_) return false;
    begin = b;
    end = b + chunkSize_ < numItems_ ? b + chunkSize_ : numItems_;
    return true;
  }

  /// Reset for reuse. Caller must guarantee no concurrent next() calls
  /// (in barrier-based engines this runs between two barriers).
  void reset() noexcept { nextIndex_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t numItems() const noexcept { return numItems_; }
  [[nodiscard]] std::size_t chunkSize() const noexcept { return chunkSize_; }

 private:
  std::atomic<std::size_t> nextIndex_{0};
  std::size_t numItems_;
  std::size_t chunkSize_;
};

/// A sequence of chunk pools, one per iteration ("round") of an
/// asynchronous engine. Lock-free engines have no barrier between
/// iterations, so a fast thread may already be pulling chunks from round
/// i+1 while a slow thread still drains round i — each round needs its own
/// counter. Counters are cache-line padded to avoid false sharing.
class RoundCursorSet {
 public:
  RoundCursorSet(std::size_t numItems, std::size_t chunkSize, std::size_t numRounds)
      : numItems_(numItems),
        chunkSize_(chunkSize == 0 ? 1 : chunkSize),
        counters_(numRounds) {}

  /// Claim the next chunk of round `round`.
  bool next(std::size_t round, std::size_t& begin, std::size_t& end) noexcept {
    const std::size_t b =
        counters_[round].value.fetch_add(chunkSize_, std::memory_order_relaxed);
    if (b >= numItems_) return false;
    begin = b;
    end = b + chunkSize_ < numItems_ ? b + chunkSize_ : numItems_;
    return true;
  }

  [[nodiscard]] std::size_t numRounds() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t numItems() const noexcept { return numItems_; }

 private:
  struct alignas(64) Padded {
    std::atomic<std::size_t> value{0};
  };

  std::size_t numItems_;
  std::size_t chunkSize_;
  std::vector<Padded> counters_;
};

}  // namespace lfpr
