// Sparse-frontier worklist scheduling (SchedulingMode::Worklist).
//
// The dense scheduler (chunk_cursor.hpp) makes every iteration of a
// lock-free engine cost O(|V|): workers sweep all vertices and filter by
// the affected / notConverged flags. When a temporal batch dirties a few
// hundred vertices that sweep dominates the solve. The worklist replaces
// it with per-thread dirty-vertex rings, so an iteration costs
// O(frontier + touched edges):
//
//   * vertices are partitioned into contiguous ownership blocks, one per
//     worker thread;
//   * whoever marks a vertex "not yet converged" also enqueues it onto
//     its owner's ring (deduplicated through a per-vertex `queued` flag,
//     so each vertex has at most one in-flight ring entry);
//   * the owner drains its own ring instead of sweeping the vertex range.
//
// The rings are an *accelerator*, never the authority: the notConverged
// flags of the termination protocol (lf_iterate.cpp) still decide
// convergence, and an owner whose ring runs dry reconciles its partition
// against the flags before declaring itself quiescent. A lost enqueue
// (crashed marker, the benign pop/queued race below, or a full ring)
// therefore delays a vertex at worst until the owner's next reconcile
// sweep — it can never fake convergence.
//
// WorkRing is a bounded MPMC ring in the classic per-cell sequence-number
// style: each cell carries an epoch that producers and consumers validate
// with acquire/release before touching the payload, which is exactly the
// hand-off point where the worklist keeps its protocol-bearing ordering
// (see the publish-diet note in lf_iterate.cpp). Capacity is sized to the
// ownership block, and the `queued` dedup guarantees at most one live
// entry per owned vertex, so a push onto the owner's ring cannot fail in
// practice; tryPush still reports overflow and enqueue() falls back to
// flags-only marking for safety.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "graph/types.hpp"
#include "pagerank/atomics.hpp"

namespace lfpr {

/// Bounded MPMC ring of vertex ids with per-cell epoch validation
/// (Vyukov-style). Producers and consumers never block: a push fails only
/// when the ring is full, a pop only when it is empty.
class WorkRing {
 public:
  explicit WorkRing(std::size_t minCapacity)
      : cells_(roundUpPow2(minCapacity)), mask_(cells_.size() - 1) {
    for (std::size_t i = 0; i < cells_.size(); ++i)
      cells_[i].epoch.store(i, std::memory_order_relaxed);
  }

  WorkRing(const WorkRing&) = delete;
  WorkRing& operator=(const WorkRing&) = delete;

  /// Publish v at the tail. The release store of the cell epoch is the
  /// producer half of the hand-off: a consumer that validates the epoch
  /// with acquire observes every write (rank publishes included) that
  /// preceded the push.
  bool tryPush(VertexId v) noexcept {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t epoch = cell.epoch.load(std::memory_order_acquire);
      const auto d = static_cast<std::ptrdiff_t>(epoch) - static_cast<std::ptrdiff_t>(pos);
      if (d == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = v;
          cell.epoch.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (d < 0) {
        return false;  // full: the cell still holds an unconsumed entry
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Claim the entry at the head; false when the ring is empty.
  bool tryPop(VertexId& v) noexcept {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t epoch = cell.epoch.load(std::memory_order_acquire);
      const auto d =
          static_cast<std::ptrdiff_t>(epoch) - static_cast<std::ptrdiff_t>(pos + 1);
      if (d == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          v = cell.value;
          cell.epoch.store(pos + cells_.size(), std::memory_order_release);
          return true;
        }
      } else if (d < 0) {
        return false;  // empty (or the producer has claimed but not published)
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate emptiness (exact once producers are quiescent).
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) >=
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cells_.size(); }

 private:
  struct Cell {
    std::atomic<std::size_t> epoch{0};
    VertexId value = 0;
  };

  static std::size_t roundUpPow2(std::size_t x) noexcept {
    std::size_t p = 1;
    while (p < x) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<Cell> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

/// Per-thread dirty-vertex rings plus the ownership map and the
/// per-vertex dedup flags. One instance per solve, shared by all workers.
class WorklistScheduler {
 public:
  /// `seedSweep`: Static/ND engines start with every vertex dirty, so
  /// the workers begin in the dense phase (full-protocol chunked sweeps
  /// whose marks populate the rings) until the frontier is sparse —
  /// see sparse() below. DT/DF engines seed the rings from the
  /// batch-marking phase and start sparse.
  WorklistScheduler(std::size_t numVertices, int numThreads, bool seedSweep)
      : n_(numVertices),
        threads_(numThreads < 1 ? 1 : numThreads),
        per_((numVertices + static_cast<std::size_t>(threads_) - 1) /
             static_cast<std::size_t>(threads_)),
        queued_(numVertices, 0),
        sparse_(!seedSweep) {
    if (per_ == 0) per_ = 1;
    for (int t = 0; t < threads_; ++t) {
      const std::size_t owned = ownedEnd(t) - ownedBegin(t);
      rings_.emplace_back(owned + 1);
    }
  }

  [[nodiscard]] int numThreads() const noexcept { return threads_; }

  /// Hybrid dense/sparse switch. A solve that starts all-dirty
  /// (Static/ND: seedSweep) gains nothing from rings until most vertices
  /// have converged — ring-driven partition ownership would just iterate
  /// each partition to a local fixpoint against stale foreign ranks. So
  /// dense-start solves sweep through the shared chunk pool like the
  /// dense scheduler and flip to ring-driven processing once the dirty
  /// set falls below |V|/8 (one-way; the marks made during the dense
  /// sweeps have been seeding the rings all along). Batch-seeded solves
  /// (DT/DF) start sparse.
  [[nodiscard]] bool sparse() const noexcept {
    return sparse_.load(std::memory_order_relaxed);
  }
  void observeDensity(std::uint64_t dirtyCount) noexcept {
    if (dirtyCount * 8 < static_cast<std::uint64_t>(n_) || n_ < 8)
      sparse_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] int owner(std::size_t v) const noexcept {
    const auto t = static_cast<int>(v / per_);
    return t < threads_ ? t : threads_ - 1;
  }
  [[nodiscard]] std::size_t ownedBegin(int tid) const noexcept {
    const std::size_t b = static_cast<std::size_t>(tid) * per_;
    return b < n_ ? b : n_;
  }
  [[nodiscard]] std::size_t ownedEnd(int tid) const noexcept {
    if (tid == threads_ - 1) return n_;
    const std::size_t e = (static_cast<std::size_t>(tid) + 1) * per_;
    return e < n_ ? e : n_;
  }

  /// Hand a marked vertex to its owner. Deduplicated: at most one
  /// in-flight ring entry per vertex, so the owner-sized rings cannot
  /// overflow under the protocol; if a push is ever refused anyway the
  /// vertex stays flags-only and the owner's reconcile sweep finds it.
  void enqueue(std::size_t v) noexcept {
    if (queued_.fetchOr(v, 1, std::memory_order_relaxed) != 0) return;
    if (!rings_[static_cast<std::size_t>(owner(v))].tryPush(
            static_cast<VertexId>(v))) {
      queued_.store(v, 0);
      return;
    }
#if defined(LFPR_STATS)
    pushes_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  /// Pop from this thread's own ring. Clears the dedup flag *before* the
  /// caller processes the vertex, so a concurrent re-mark re-enqueues it.
  /// (A marker can still read the stale `queued` byte and skip its push;
  /// the vertex then sits flags-only until the owner reconciles — benign,
  /// because the flags stay authoritative.)
  bool tryPop(int tid, VertexId& v) noexcept {
    if (!rings_[static_cast<std::size_t>(tid)].tryPop(v)) return false;
    queued_.store(v, 0);
    return true;
  }

  /// Drain any ring (crash recovery under fault injection: an orphaned
  /// ring's owner is gone, so survivors steal its entries).
  bool trySteal(int tid, VertexId& v) noexcept {
    for (int i = 0; i < threads_; ++i) {
      const int t = (tid + i) % threads_;
      if (rings_[static_cast<std::size_t>(t)].tryPop(v)) {
        queued_.store(v, 0);
        return true;
      }
    }
    return false;
  }

  /// Total successful ring pushes (protocol-cost diagnostics; counted
  /// only in LFPR_STATS builds, zero otherwise).
  [[nodiscard]] std::uint64_t pushes() const noexcept {
    return pushes_.load(std::memory_order_relaxed);
  }

  // Activation-threshold hooks (DeltaPush, PR 8). The push engine does
  // not mark a neighbour on every residual add — only when the add moved
  // the residual across the activation threshold. The crossing predicate
  // and the counted entry point live here so the scheduler owns the
  // "what enters the worklist" policy in one place.

  /// True when a residual fetch-add moved |residual| from at-or-below the
  /// threshold to above it. An add on an already-above residual needs no
  /// new activation (the crossing that got it there marked the vertex,
  /// and any clear in between reverifies against the current value —
  /// clear-then-reverify, lf_iterate.cpp part 1); an add that lands
  /// at-or-below needs none either.
  [[nodiscard]] static bool crossedThreshold(double before, double after,
                                             double threshold) noexcept {
    return !(before > threshold) && !(before < -threshold) &&
           (after > threshold || after < -threshold);
  }

  /// enqueue() plus the activation counter: the entry point for
  /// threshold-crossing marks. The caller must have release-marked the
  /// vertex's notConverged flag first (flags.hpp ordering doctrine).
  void activate(std::size_t v) noexcept {
    enqueue(v);
#if defined(LFPR_STATS)
    activations_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  /// Total threshold-crossing activations (LFPR_STATS builds only).
  [[nodiscard]] std::uint64_t activations() const noexcept {
    return activations_.load(std::memory_order_relaxed);
  }

  /// Global progress heartbeat: workers bump it whenever they process
  /// vertices. A personally-quiescent worker that sees it advance across
  /// a yield leaves the remaining dirt to the thread working on it —
  /// helping a *healthy* owner means two publishers fighting over one
  /// partition at context-switch granularity, each quantum boundary
  /// re-injecting a stale publish, which can sustain the frontier
  /// indefinitely. Only stalled (crashed / exited / capped-out) dirt is
  /// taken over.
  void noteProgress(std::uint64_t processed) noexcept {
    progress_.fetch_add(processed, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t n_;
  int threads_;
  std::size_t per_;
  AtomicU8Vector queued_;
  std::deque<WorkRing> rings_;
  std::atomic<bool> sparse_{false};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> activations_{0};
  alignas(64) std::atomic<std::uint64_t> progress_{0};
};

}  // namespace lfpr
