#include "sched/barrier.hpp"

#include <thread>

#include "util/timer.hpp"

namespace lfpr {

InstrumentedBarrier::InstrumentedBarrier(int numThreads,
                                         std::chrono::nanoseconds timeout)
    : per_(static_cast<std::size_t>(numThreads)), n_(numThreads), timeout_(timeout) {}

InstrumentedBarrier::Status InstrumentedBarrier::arriveAndWait(int tid) {
  if (broken_.load(std::memory_order_acquire)) return Status::Broken;

  PerThread& self = per_[static_cast<std::size_t>(tid)];
  const bool mySense = !self.sense;
  self.sense = mySense;

  const Stopwatch wait;
  if (count_.fetch_add(1) + 1 == n_) {
    // Last arriver releases the phase.
    count_.store(0);
    sense_.store(mySense);
    return broken_.load(std::memory_order_acquire) ? Status::Broken : Status::Ok;
  }

  const auto deadline = Stopwatch::clock::now() + timeout_;
  std::uint32_t spins = 0;
  while (sense_.load() != mySense) {
    if (broken_.load(std::memory_order_acquire)) return Status::Broken;
    if ((++spins & 0x3ff) == 0 && Stopwatch::clock::now() > deadline) {
      broken_.store(true, std::memory_order_release);
      return Status::Broken;
    }
    std::this_thread::yield();
  }
  self.waitNs.fetch_add(wait.elapsed().count(), std::memory_order_relaxed);
  return broken_.load(std::memory_order_acquire) ? Status::Broken : Status::Ok;
}

std::chrono::nanoseconds InstrumentedBarrier::totalWaitTime() const noexcept {
  std::int64_t total = 0;
  for (const PerThread& p : per_) total += p.waitNs.load(std::memory_order_relaxed);
  return std::chrono::nanoseconds(total);
}

}  // namespace lfpr
