#include "sched/fault.hpp"

#include <thread>

namespace lfpr {

FaultConfig makeCrashConfig(int numThreads, int numCrashing, std::uint64_t minUpdates,
                            std::uint64_t maxUpdates, std::uint64_t seed) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.crashAfterUpdates.assign(static_cast<std::size_t>(numThreads),
                               FaultConfig::noCrash);
  if (numCrashing <= 0) return cfg;
  Rng rng(seed);
  // Pick the crashing threads without replacement (partial Fisher-Yates).
  std::vector<int> ids(static_cast<std::size_t>(numThreads));
  for (int i = 0; i < numThreads; ++i) ids[static_cast<std::size_t>(i)] = i;
  const int k = numCrashing < numThreads ? numCrashing : numThreads;
  for (int i = 0; i < k; ++i) {
    const auto j = i + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(numThreads - i)));
    std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
    const std::uint64_t span = maxUpdates > minUpdates ? maxUpdates - minUpdates : 1;
    cfg.crashAfterUpdates[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] =
        minUpdates + rng.below(span);
  }
  return cfg;
}

FaultInjector::FaultInjector(int numThreads, FaultConfig config)
    : cfg_(std::move(config)), per_(static_cast<std::size_t>(numThreads)) {
  Rng seeder(cfg_.seed);
  for (std::size_t t = 0; t < per_.size(); ++t) {
    per_[t].rng = seeder.split();
    if (t < cfg_.crashAfterUpdates.size()) per_[t].crashAt = cfg_.crashAfterUpdates[t];
  }
}

bool FaultInjector::onVertexProcessed(int tid) noexcept {
  PerThread& self = per_[static_cast<std::size_t>(tid)];
  if (self.crashed.load(std::memory_order_relaxed)) return false;
  ++self.updates;
  if (self.updates >= self.crashAt) {
    self.crashed.store(true, std::memory_order_relaxed);
    return false;
  }
  if (cfg_.delayProbability > 0.0 && self.rng.chance(cfg_.delayProbability)) {
    self.delays.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(cfg_.delayDuration);
  }
  return true;
}

int FaultInjector::numCrashed() const noexcept {
  int n = 0;
  for (const PerThread& p : per_)
    if (p.crashed.load(std::memory_order_relaxed)) ++n;
  return n;
}

std::uint64_t FaultInjector::delaysInjected() const noexcept {
  std::uint64_t n = 0;
  for (const PerThread& p : per_) n += p.delays.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t FaultInjector::updatesObserved() const noexcept {
  std::uint64_t n = 0;
  for (const PerThread& p : per_) n += p.updates;
  return n;
}

}  // namespace lfpr
