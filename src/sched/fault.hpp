// Fault injection per Section 5.1.6 of the paper.
//
// Two fault models:
//   * Random thread delays — after computing the rank of any vertex, a
//     thread sleeps for a fixed duration with some probability; the delay
//     is equally likely for every thread (Figure 8's stressor).
//   * Crash-stop — a thread deterministically stops executing at a
//     scheduled point (after a given number of vertex updates), without
//     corrupting shared memory. Equivalent to an infinite delay
//     (Figure 9's stressor).
//
// Engines call onVertexProcessed(tid) after every vertex-rank update; a
// false return means "this thread has crashed" and the engine's worker
// must return immediately (it never reaches another barrier or chunk).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace lfpr {

struct FaultConfig {
  /// Probability of injecting a delay after each vertex update.
  double delayProbability = 0.0;
  /// Duration of each injected delay.
  std::chrono::microseconds delayDuration{0};
  /// Per-thread crash points: thread t crashes after crashAfterUpdates[t]
  /// vertex updates. Missing entries / noCrash mean the thread never
  /// crashes.
  std::vector<std::uint64_t> crashAfterUpdates;
  /// Seed for the per-thread delay RNG streams.
  std::uint64_t seed = 0x5eedf00dULL;

  static constexpr std::uint64_t noCrash = std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] bool hasFaults() const noexcept {
    return delayProbability > 0.0 || !crashAfterUpdates.empty();
  }
};

/// Builds a crash schedule where `numCrashing` of `numThreads` threads
/// crash at pseudo-random points in [minUpdates, maxUpdates) vertex
/// updates — crashes "spread out during execution" (Section 5.4).
FaultConfig makeCrashConfig(int numThreads, int numCrashing, std::uint64_t minUpdates,
                            std::uint64_t maxUpdates, std::uint64_t seed);

class FaultInjector {
 public:
  FaultInjector(int numThreads, FaultConfig config);

  /// Engine hook; see file comment. Returns false once the calling thread
  /// has crashed.
  bool onVertexProcessed(int tid) noexcept;

  [[nodiscard]] bool crashed(int tid) const noexcept {
    return per_[static_cast<std::size_t>(tid)].crashed.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int numCrashed() const noexcept;
  [[nodiscard]] std::uint64_t delaysInjected() const noexcept;
  [[nodiscard]] std::uint64_t updatesObserved() const noexcept;
  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

 private:
  struct alignas(64) PerThread {
    Rng rng;
    std::uint64_t updates = 0;
    std::uint64_t crashAt = FaultConfig::noCrash;
    std::atomic<bool> crashed{false};
    std::atomic<std::uint64_t> delays{0};
  };

  FaultConfig cfg_;
  std::vector<PerThread> per_;
};

}  // namespace lfpr
