#include "sched/thread_team.hpp"

#include <exception>
#include <mutex>
#include <vector>

namespace lfpr {

int ThreadTeam::resolveThreads(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 2;
}

ThreadTeam::ThreadTeam(int numThreads) : numThreads_(resolveThreads(numThreads)) {}

void ThreadTeam::run(const std::function<void(int)>& body) {
  if (numThreads_ == 1) {
    body(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(numThreads_));
  std::exception_ptr firstError;
  std::mutex errorMutex;

  for (int tid = 0; tid < numThreads_; ++tid) {
    threads.emplace_back([&, tid] {
      try {
        body(tid);
      } catch (...) {
        const std::scoped_lock lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace lfpr
