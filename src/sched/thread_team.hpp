// A minimal fork-join thread team: the library's replacement for an
// OpenMP `parallel` region. Each engine makes exactly one run() call (the
// paper's "top-level parallel block") and synchronizes internally with
// ChunkCursor / InstrumentedBarrier / flag vectors.
//
// We spawn std::threads per run() rather than keeping a persistent pool:
// engine runs last milliseconds to seconds, so spawn cost is noise, and a
// fresh team per run means a thread "crashed" by the fault injector in one
// run can never leak state into the next.
#pragma once

#include <functional>
#include <thread>

namespace lfpr {

class ThreadTeam {
 public:
  /// numThreads <= 0 selects hardware concurrency.
  explicit ThreadTeam(int numThreads);

  /// Run body(tid) on every thread of the team and join. The first
  /// exception thrown by any thread is rethrown on the caller after all
  /// threads have joined.
  void run(const std::function<void(int)>& body);

  [[nodiscard]] int size() const noexcept { return numThreads_; }

  static int resolveThreads(int requested) noexcept;

 private:
  int numThreads_;
};

}  // namespace lfpr
