#include "service/checkpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <string_view>

#include "graph/csr_file.hpp"
#include "util/checksum.hpp"
#include "util/failpoint.hpp"
#include "util/io_retry.hpp"
#include "util/mmap_file.hpp"

namespace lfpr {

namespace fs = std::filesystem;

namespace {

std::string csrPath(const std::string& dir, std::uint64_t epoch) {
  return dir + "/ckpt-" + std::to_string(epoch) + ".csr";
}

std::string metaPath(const std::string& dir, std::uint64_t epoch) {
  return dir + "/ckpt-" + std::to_string(epoch) + ".meta";
}

std::string walksPath(const std::string& dir, std::uint64_t epoch) {
  return dir + "/ckpt-" + std::to_string(epoch) + ".walks";
}

/// Parse "ckpt-<epoch><suffix>" -> epoch; nullopt for anything else.
std::optional<std::uint64_t> ckptEpoch(const std::string& name,
                                       std::string_view suffix) {
  constexpr std::string_view prefix = "ckpt-";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(),
                   suffix) != 0)
    return std::nullopt;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::strtoull(digits.c_str(), nullptr, 10);
}

/// Parse "ckpt-<epoch>.meta" -> epoch; nullopt for anything else.
std::optional<std::uint64_t> metaEpoch(const fs::path& p) {
  return ckptEpoch(p.filename().string(), ".meta");
}

/// Epoch of ANY file of a checkpoint set (.csr / .meta / .walks) so the
/// pruner treats the set as one unit. Quarantined .walks.torn files are
/// deliberately NOT matched — they are preserved for forensics.
std::optional<std::uint64_t> ckptSetEpoch(const fs::path& p) {
  const std::string name = p.filename().string();
  for (const std::string_view suffix : {".meta", ".csr", ".walks"})
    if (const auto e = ckptEpoch(name, suffix)) return e;
  return std::nullopt;
}

/// Write the walk sidecar for `meta`'s checkpoint, tmp-then-rename.
/// Runs between the csr rename and the meta rename: a crash here leaves
/// at worst an orphan sidecar (or its tmp) that the next checkpoint's
/// prune / sweep removes — the meta that would have announced it never
/// landed.
void writeWalkSidecar(const std::string& path, const CheckpointHeader& meta,
                      const detail::WalkStoreImage& img) {
  WalkSidecarHeader h{};
  std::memcpy(h.magic, kWalkSidecarMagic, sizeof(h.magic));
  h.version = kWalkSidecarVersion;
  h.headerBytes = sizeof(WalkSidecarHeader);
  h.epoch = meta.epoch;
  h.mcEpoch = img.epoch;
  h.seed = img.cfg.seed;
  h.walksPerVertex = static_cast<std::uint32_t>(img.cfg.walksPerVertex);
  h.maxWalkLength = static_cast<std::uint32_t>(img.cfg.maxWalkLength);
  h.walkIdBits = 32;
  h.alpha = img.cfg.alpha;
  h.numVertices = img.numVertices;
  h.numWalks = img.numWalks;
  h.segmentBytes = img.segments.size();
  h.indexBytes = img.visitIndex.size();
  h.metaChecksum = meta.checksum;
  h.csrChecksum = meta.csrChecksum;
  Checksum64 sum;
  sum.update(img.segments);
  sum.update(img.visitIndex);
  h.checksum = sum.value();

  const std::string what = "walk sidecar '" + path + "'";
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    io::FdFile out = io::FdFile::create(tmp, what, "ckpt.walks.open");
    out.write(&h, sizeof(h), "ckpt.walks.write");
    if (!img.segments.empty())
      out.write(img.segments.data(), img.segments.size(), "ckpt.walks.write");
    if (!img.visitIndex.empty())
      out.write(img.visitIndex.data(), img.visitIndex.size(),
                "ckpt.walks.write");
    out.sync("ckpt.walks.fsync");
    out.close();
  }
  io::renameFile(tmp, path, what, "ckpt.walks.rename");
}

/// Verify and deserialize the walk sidecar of a checkpoint whose meta
/// header is `meta`. Throws on the first failed check — the caller
/// quarantines.
std::unique_ptr<detail::MonteCarloState> loadWalkSidecar(
    const std::string& path, const CheckpointHeader& meta, int numThreads) {
  const MmapFile map = MmapFile::open(path);
  const auto bytes = map.bytes();
  WalkSidecarHeader h{};
  if (bytes.size() < sizeof(h))
    throw CheckpointError("truncated: smaller than the header");
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (std::memcmp(h.magic, kWalkSidecarMagic, sizeof(h.magic)) != 0)
    throw CheckpointError("bad magic");
  if (h.version != kWalkSidecarVersion)
    throw CheckpointError("unsupported version " + std::to_string(h.version));
  if (h.headerBytes != sizeof(WalkSidecarHeader))
    throw CheckpointError("header size mismatch");
  if (h.epoch != meta.epoch)
    throw CheckpointError("epoch field disagrees with the meta");
  if (h.metaChecksum != meta.checksum || h.csrChecksum != meta.csrChecksum)
    throw CheckpointError("sidecar does not bind to this .meta/.csr pair");
  if (h.walkIdBits != 32)
    throw CheckpointError("unsupported walk-id width " +
                          std::to_string(h.walkIdBits));
  if (h.numVertices != meta.numVertices)
    throw CheckpointError("vertex count disagrees with the meta");
  if (bytes.size() != sizeof(h) + h.segmentBytes + h.indexBytes)
    throw CheckpointError("payload size mismatch");
  if (checksum64(bytes.subspan(sizeof(h))) != h.checksum)
    throw CheckpointError("payload checksum mismatch");

  // A non-owning view straight off the mmap: the blobs are copied once,
  // into the resident store, never staged through owning vectors.
  detail::WalkStoreImageView img;
  img.cfg.walksPerVertex = static_cast<int>(h.walksPerVertex);
  img.cfg.maxWalkLength = static_cast<int>(h.maxWalkLength);
  img.cfg.seed = h.seed;
  img.cfg.alpha = h.alpha;
  img.numVertices = h.numVertices;
  img.numWalks = h.numWalks;
  img.epoch = h.mcEpoch;
  img.segments = bytes.subspan(sizeof(h), h.segmentBytes);
  img.visitIndex = bytes.subspan(sizeof(h) + h.segmentBytes, h.indexBytes);
  // Full structural validation (lengths, vertex ids, index bounds)
  // happens here — "loads" means "safe to resume repairs on".
  return detail::mcDeserializeStore(img, numThreads);
}

}  // namespace

void writeCheckpoint(const std::string& dir, const CheckpointData& data) {
  // The csr half first: meta's existence implies "my csr is complete",
  // which only holds if the csr rename happened before the meta rename.
  // The walk sidecar sits between the two for the same reason — the
  // meta's sidecar flag must never name a file that is not fully there.
  const std::string csr = csrPath(dir, data.epoch);
  writeCsrFile(csr, data.graph);

  CheckpointHeader h{};
  std::memcpy(h.magic, kCheckpointMagic, sizeof(h.magic));
  h.version = kCheckpointVersion;
  h.headerBytes = sizeof(CheckpointHeader);
  h.epoch = data.epoch;
  h.journalSeq = data.journalSeq;
  h.numVertices = data.ranks.size();
  h.batchesApplied = data.batchesApplied;
  h.edgesIngested = data.edgesIngested;
  h.iterations = static_cast<std::uint32_t>(std::max(data.iterations, 0));
  h.flags = data.walks ? kCheckpointFlagWalkSidecar : 0;
  h.toleranceBound = data.toleranceBound;
  h.csrChecksum = csrFileChecksum(csr);
  h.payloadBytes = data.ranks.size() * sizeof(double);
  h.checksum = checksum64(std::as_bytes(std::span(data.ranks)));

  const std::string walks = walksPath(dir, data.epoch);
  const std::string meta = metaPath(dir, data.epoch);
  const std::string what = "checkpoint '" + meta + "'";
  const std::string tmp = meta + ".tmp." + std::to_string(::getpid());
  try {
    if (data.walks) writeWalkSidecar(walks, h, *data.walks);
    {
      io::FdFile out = io::FdFile::create(tmp, what, "ckpt.meta.open");
      out.write(&h, sizeof(h), "ckpt.meta.write");
      if (!data.ranks.empty())
        out.write(data.ranks.data(), h.payloadBytes, "ckpt.meta.write");
      out.sync("ckpt.meta.fsync");
      out.close();
    }
    io::renameFile(tmp, meta, what, "ckpt.meta.rename");
    io::fsyncDirectory(dir);
  } catch (const FailPointAbort&) {
    throw;  // a real crash leaves the tmps; sweepStaleTmpFiles handles them
  } catch (...) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    fs::remove(walks + ".tmp." + std::to_string(::getpid()), ignored);
    fs::remove(walks, ignored);  // orphan halves are just noise
    fs::remove(csr, ignored);
    throw;
  }
}

std::optional<CheckpointData> loadNewestCheckpoint(
    const std::string& dir, VertexId numVertices,
    const std::function<void(const std::string&)>& onWarning,
    int numThreads) {
  const auto warn = [&](const std::string& m) {
    if (onWarning) onWarning(m);
  };

  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (const auto e = metaEpoch(entry.path())) epochs.push_back(*e);
  if (ec) return std::nullopt;  // unreadable dir = no checkpoint
  std::sort(epochs.rbegin(), epochs.rend());

  for (const std::uint64_t epoch : epochs) {
    const std::string meta = metaPath(dir, epoch);
    const std::string csr = csrPath(dir, epoch);
    try {
      const MmapFile map = MmapFile::open(meta);
      const auto bytes = map.bytes();
      CheckpointHeader h{};
      if (bytes.size() < sizeof(h))
        throw CheckpointError("truncated: smaller than the header");
      std::memcpy(&h, bytes.data(), sizeof(h));
      if (std::memcmp(h.magic, kCheckpointMagic, sizeof(h.magic)) != 0)
        throw CheckpointError("bad magic");
      if (h.version != kCheckpointVersion)
        throw CheckpointError("unsupported version " +
                              std::to_string(h.version));
      if (h.headerBytes != sizeof(CheckpointHeader))
        throw CheckpointError("header size mismatch");
      if (h.epoch != epoch)
        throw CheckpointError("epoch field disagrees with the file name");
      if (h.numVertices != numVertices)
        throw CheckpointError("vertex count " + std::to_string(h.numVertices) +
                              " does not match the service's " +
                              std::to_string(numVertices));
      if (h.payloadBytes != h.numVertices * sizeof(double) ||
          bytes.size() != sizeof(h) + h.payloadBytes)
        throw CheckpointError("rank payload size mismatch");
      const auto payload = bytes.subspan(sizeof(h));
      if (checksum64(payload) != h.checksum)
        throw CheckpointError("rank payload checksum mismatch");
      if (csrFileChecksum(csr) != h.csrChecksum)
        throw CheckpointError("paired csr checksum disagrees with the meta");

      CheckpointData data;
      data.epoch = h.epoch;
      data.journalSeq = h.journalSeq;
      data.batchesApplied = h.batchesApplied;
      data.edgesIngested = h.edgesIngested;
      data.iterations = static_cast<int>(h.iterations);
      data.toleranceBound = h.toleranceBound;
      data.ranks.resize(static_cast<std::size_t>(h.numVertices));
      if (!data.ranks.empty())
        std::memcpy(data.ranks.data(), payload.data(), payload.size());
      data.graph = mapCsrFile(csr);  // full validation + checksum pass

      // The pair is good. The walk sidecar (when announced) is strictly
      // optional on top: any failure — missing, truncated, version skew,
      // checksum tamper, structural rot — quarantines it and the
      // checkpoint still loads, so recovery rebuilds the store from the
      // journal instead of resuming. Approximate resume state must never
      // veto exact rank recovery.
      if ((h.flags & kCheckpointFlagWalkSidecar) != 0) {
        const std::string walks = walksPath(dir, epoch);
        try {
          data.walkStore = loadWalkSidecar(walks, h, numThreads);
        } catch (const FailPointAbort&) {
          throw;
        } catch (const std::exception& e) {
          const std::string torn = walks + ".torn";
          std::error_code qec;
          fs::rename(walks, torn, qec);
          data.walkSidecarQuarantined = true;
          warn("checkpoint epoch " + std::to_string(epoch) +
               " walk sidecar is invalid (" + std::string(e.what()) +
               "); quarantined to '" + torn +
               "'; the walk store will be rebuilt from the journal");
        }
      }
      return data;
    } catch (const FailPointAbort&) {
      throw;
    } catch (const std::exception& e) {
      warn("checkpoint epoch " + std::to_string(epoch) + " in '" + dir +
           "' is invalid (" + e.what() + "); trying the next older one");
    }
  }
  return std::nullopt;
}

void pruneCheckpoints(const std::string& dir, std::uint64_t keepEpoch) {
  // Crash site of its own: a kill here leaves extra complete sets, which
  // recovery tolerates (it takes the newest valid one), but must never
  // half-delete the set it was told to keep — hence matching whole sets
  // by epoch rather than deleting file by suffix.
  LFPR_FAILPOINT("ckpt.prune");
  std::error_code ec;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto epoch = ckptSetEpoch(entry.path());
    if (epoch && *epoch != keepEpoch) doomed.push_back(entry.path());
  }
  for (const auto& p : doomed) fs::remove(p, ec);
}

void sweepStaleTmpFiles(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) fs::remove(entry.path(), ec);
  }
}

}  // namespace lfpr
