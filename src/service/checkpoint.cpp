#include "service/checkpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <string_view>

#include "graph/csr_file.hpp"
#include "util/checksum.hpp"
#include "util/io_retry.hpp"
#include "util/mmap_file.hpp"

namespace lfpr {

namespace fs = std::filesystem;

namespace {

std::string csrPath(const std::string& dir, std::uint64_t epoch) {
  return dir + "/ckpt-" + std::to_string(epoch) + ".csr";
}

std::string metaPath(const std::string& dir, std::uint64_t epoch) {
  return dir + "/ckpt-" + std::to_string(epoch) + ".meta";
}

/// Parse "ckpt-<epoch>.meta" -> epoch; nullopt for anything else.
std::optional<std::uint64_t> metaEpoch(const fs::path& p) {
  const std::string name = p.filename().string();
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".meta";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::strtoull(digits.c_str(), nullptr, 10);
}

}  // namespace

void writeCheckpoint(const std::string& dir, const CheckpointData& data) {
  // The csr half first: meta's existence implies "my csr is complete",
  // which only holds if the csr rename happened before the meta rename.
  const std::string csr = csrPath(dir, data.epoch);
  writeCsrFile(csr, data.graph);

  CheckpointHeader h{};
  std::memcpy(h.magic, kCheckpointMagic, sizeof(h.magic));
  h.version = kCheckpointVersion;
  h.headerBytes = sizeof(CheckpointHeader);
  h.epoch = data.epoch;
  h.journalSeq = data.journalSeq;
  h.numVertices = data.ranks.size();
  h.batchesApplied = data.batchesApplied;
  h.edgesIngested = data.edgesIngested;
  h.iterations = static_cast<std::uint32_t>(std::max(data.iterations, 0));
  h.toleranceBound = data.toleranceBound;
  h.csrChecksum = csrFileChecksum(csr);
  h.payloadBytes = data.ranks.size() * sizeof(double);
  h.checksum = checksum64(std::as_bytes(std::span(data.ranks)));

  const std::string meta = metaPath(dir, data.epoch);
  const std::string what = "checkpoint '" + meta + "'";
  const std::string tmp = meta + ".tmp." + std::to_string(::getpid());
  try {
    {
      io::FdFile out = io::FdFile::create(tmp, what, "ckpt.meta.open");
      out.write(&h, sizeof(h), "ckpt.meta.write");
      if (!data.ranks.empty())
        out.write(data.ranks.data(), h.payloadBytes, "ckpt.meta.write");
      out.sync("ckpt.meta.fsync");
      out.close();
    }
    io::renameFile(tmp, meta, what, "ckpt.meta.rename");
    io::fsyncDirectory(dir);
  } catch (const FailPointAbort&) {
    throw;  // a real crash leaves the tmp; sweepStaleTmpFiles handles it
  } catch (...) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    fs::remove(csr, ignored);  // an orphan csr half is just noise
    throw;
  }
}

std::optional<CheckpointData> loadNewestCheckpoint(
    const std::string& dir, VertexId numVertices,
    const std::function<void(const std::string&)>& onWarning) {
  const auto warn = [&](const std::string& m) {
    if (onWarning) onWarning(m);
  };

  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (const auto e = metaEpoch(entry.path())) epochs.push_back(*e);
  if (ec) return std::nullopt;  // unreadable dir = no checkpoint
  std::sort(epochs.rbegin(), epochs.rend());

  for (const std::uint64_t epoch : epochs) {
    const std::string meta = metaPath(dir, epoch);
    const std::string csr = csrPath(dir, epoch);
    try {
      const MmapFile map = MmapFile::open(meta);
      const auto bytes = map.bytes();
      CheckpointHeader h{};
      if (bytes.size() < sizeof(h))
        throw CheckpointError("truncated: smaller than the header");
      std::memcpy(&h, bytes.data(), sizeof(h));
      if (std::memcmp(h.magic, kCheckpointMagic, sizeof(h.magic)) != 0)
        throw CheckpointError("bad magic");
      if (h.version != kCheckpointVersion)
        throw CheckpointError("unsupported version " +
                              std::to_string(h.version));
      if (h.headerBytes != sizeof(CheckpointHeader))
        throw CheckpointError("header size mismatch");
      if (h.epoch != epoch)
        throw CheckpointError("epoch field disagrees with the file name");
      if (h.numVertices != numVertices)
        throw CheckpointError("vertex count " + std::to_string(h.numVertices) +
                              " does not match the service's " +
                              std::to_string(numVertices));
      if (h.payloadBytes != h.numVertices * sizeof(double) ||
          bytes.size() != sizeof(h) + h.payloadBytes)
        throw CheckpointError("rank payload size mismatch");
      const auto payload = bytes.subspan(sizeof(h));
      if (checksum64(payload) != h.checksum)
        throw CheckpointError("rank payload checksum mismatch");
      if (csrFileChecksum(csr) != h.csrChecksum)
        throw CheckpointError("paired csr checksum disagrees with the meta");

      CheckpointData data;
      data.epoch = h.epoch;
      data.journalSeq = h.journalSeq;
      data.batchesApplied = h.batchesApplied;
      data.edgesIngested = h.edgesIngested;
      data.iterations = static_cast<int>(h.iterations);
      data.toleranceBound = h.toleranceBound;
      data.ranks.resize(static_cast<std::size_t>(h.numVertices));
      if (!data.ranks.empty())
        std::memcpy(data.ranks.data(), payload.data(), payload.size());
      data.graph = mapCsrFile(csr);  // full validation + checksum pass
      return data;
    } catch (const FailPointAbort&) {
      throw;
    } catch (const std::exception& e) {
      warn("checkpoint epoch " + std::to_string(epoch) + " in '" + dir +
           "' is invalid (" + e.what() + "); trying the next older one");
    }
  }
  return std::nullopt;
}

void pruneCheckpoints(const std::string& dir, std::uint64_t keepEpoch) {
  std::error_code ec;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0) continue;
    const auto asMeta = entry.path();
    // Reuse the meta parser for both halves by normalizing the suffix.
    fs::path probe = asMeta;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".csr") == 0)
      probe.replace_extension(".meta");
    const auto epoch = metaEpoch(probe);
    if (epoch && *epoch != keepEpoch) doomed.push_back(entry.path());
  }
  for (const auto& p : doomed) fs::remove(p, ec);
}

void sweepStaleTmpFiles(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) fs::remove(entry.path(), ec);
  }
}

}  // namespace lfpr
