#include "service/snapshot_box.hpp"

#include <limits>
#include <utility>

namespace lfpr {

namespace {

/// Monotonic box ids. Never reused, so a thread-local cache entry for a
/// destroyed box can never match a live box's id.
std::atomic<std::uint64_t> nextBoxId{1};

}  // namespace

void SnapshotView::reset() noexcept {
  if (box_ != nullptr) box_->release(slot_);
  box_ = nullptr;
  slot_ = nullptr;
  snap_ = nullptr;
}

SnapshotBox::SnapshotBox(std::unique_ptr<const RankSnapshot> initial)
    : id_(nextBoxId.fetch_add(1, std::memory_order_relaxed)) {
  current_.store(initial.release(), std::memory_order_release);
}

SnapshotBox::~SnapshotBox() {
  // Precondition: no live views, no concurrent publish — every retiree
  // and the current snapshot are unreachable.
  for (const Retired& r : retired_) delete r.ptr;
  retired_.clear();
  delete current_.load(std::memory_order_relaxed);
}

auto SnapshotBox::slotForThisThread() const -> ReaderSlot* {
  // One slot per (thread, box), cached thread-locally by box id. Linear
  // scan: a thread touches a handful of boxes, ever.
  thread_local std::vector<std::pair<std::uint64_t, ReaderSlot*>> cache;
  for (const auto& [id, slot] : cache)
    if (id == id_) return slot;
  std::lock_guard<std::mutex> lock(slotsMutex_);
  slots_.emplace_back();
  ReaderSlot* slot = &slots_.back();
  cache.emplace_back(id_, slot);
  return slot;
}

SnapshotView SnapshotBox::acquire() const {
  ReaderSlot* slot = slotForThisThread();
  if (slot->depth++ == 0) {
    // Announce-then-fence-then-load: the ordering protocol documented in
    // the header. Nested acquires reuse the outer pin (depth > 0 means
    // the announce is already visible and current_ cannot have been
    // reclaimed under us).
    slot->announced.store(era_.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  const RankSnapshot* snap = current_.load(std::memory_order_acquire);
  if (snap == nullptr) {
    // Nothing published yet: undo the pin, return an empty view.
    release(slot);
    return SnapshotView{};
  }
  return SnapshotView(this, slot, snap);
}

void SnapshotBox::release(ReaderSlot* slot) const noexcept {
  if (--slot->depth == 0)
    slot->announced.store(0, std::memory_order_release);
}

void SnapshotBox::publish(std::unique_ptr<const RankSnapshot> snap) {
  const RankSnapshot* old =
      current_.exchange(snap.release(), std::memory_order_acq_rel);
  const std::uint64_t e0 = era_.fetch_add(1, std::memory_order_acq_rel);
  if (old != nullptr) {
    retired_.push_back({old, e0});
    retiredCount_.store(retired_.size(), std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  reclaim();
}

void SnapshotBox::reclaim() {
  // Grace-period scan: the smallest era any pinned reader announced. A
  // quiescent slot (0) imposes no constraint — by the fence argument in
  // the header it either never held a retiree or already released it.
  std::uint64_t minEra = std::numeric_limits<std::uint64_t>::max();
  {
    std::lock_guard<std::mutex> lock(slotsMutex_);
    for (const ReaderSlot& slot : slots_) {
      const std::uint64_t a = slot.announced.load(std::memory_order_acquire);
      if (a != 0 && a < minEra) minEra = a;
    }
  }
  // retired_ is era-ascending: free the prefix with era < minEra (every
  // pinned reader announced a later era, so none can hold those).
  std::size_t freed = 0;
  while (freed < retired_.size() && retired_[freed].era < minEra) {
    delete retired_[freed].ptr;
    ++freed;
  }
  if (freed > 0) {
    retired_.erase(retired_.begin(),
                   retired_.begin() + static_cast<std::ptrdiff_t>(freed));
    retiredCount_.store(retired_.size(), std::memory_order_relaxed);
    reclaimedCount_.fetch_add(freed, std::memory_order_relaxed);
  }
}

}  // namespace lfpr
