// Immutable rank vector published by the RankService (service layer,
// PR 6) at a convergence boundary. A snapshot is built once by the
// ingest thread, published through SnapshotBox's atomic pointer flip,
// and never mutated afterwards — readers holding a SnapshotView see one
// consistent ranking no matter how many batches land concurrently.
//
// Beyond the ranks themselves the snapshot carries the §4.5 rank-error
// certificate: the engines' convergence detection bounds the true
// fixpoint error of a converged solve by tolerance/(1-alpha) for the
// asynchronous lock-free engines (asyncToleranceBound in error.hpp) and
// tolerance*alpha/(1-alpha) for the barrier-based ones. The bound is
// computed AT PUBLISH TIME from the options the solve actually ran
// with, so a reader can turn "epoch 17" into "within 1e-7 of the exact
// ranks of the graph as of epoch 17" without knowing service config.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "pagerank/ppr.hpp"

namespace lfpr {

struct RankSnapshot {
  /// Publish sequence number: strictly increasing, starts at 0 for the
  /// pre-solve placeholder the service installs so readers never observe
  /// a null snapshot. Epoch 1 is the initial full solve.
  std::uint64_t epoch = 0;

  /// PageRank vector for the graph as of this epoch. Always sized to the
  /// service's vertex set (the placeholder holds uniform ranks).
  std::vector<double> ranks;

  /// Whether the solve behind this snapshot converged. The service only
  /// publishes converged solves after epoch 0, so readers normally see
  /// true; the epoch-0 placeholder reports false.
  bool converged = false;

  /// Iterations of the solve that produced these ranks.
  int iterations = 0;

  /// §4.5 certificate: ||ranks - exact||_inf <= toleranceBound for the
  /// graph at this epoch. Infinity on the epoch-0 placeholder.
  double toleranceBound = std::numeric_limits<double>::infinity();

  /// Cumulative ingest counters at publish (staleness accounting).
  std::uint64_t batchesApplied = 0;
  std::uint64_t edgesIngested = 0;

  /// The ranks are Monte-Carlo estimates (StepEngine::MonteCarlo):
  /// `toleranceBound` is then the *statistical* L1 scale
  /// mcL1ErrorBound(alpha, R) — expected error with a safety factor —
  /// NOT the worst-case §4.5 certificate carried by exact-engine epochs.
  bool monteCarlo = false;

  /// Walk-store fingerprint at publish (MonteCarlo epochs only; 0
  /// otherwise). Pins the determinism contract across restarts: same
  /// (seed, batch schedule) => same fingerprint at the same epoch.
  std::uint64_t mcFingerprint = 0;

  /// Personalized-PageRank index for this epoch (MonteCarlo epochs
  /// only; null otherwise). Immutable and shared — pprTopK queries
  /// answer from here without touching the live walk store.
  std::shared_ptr<const PprIndex> ppr;

  std::chrono::steady_clock::time_point publishedAt{};

  [[nodiscard]] std::size_t numVertices() const noexcept { return ranks.size(); }

  /// Rank of vertex v in this snapshot (0 when out of range, matching
  /// the "unknown vertex has no rank" reading).
  [[nodiscard]] double rank(VertexId v) const noexcept {
    return v < ranks.size() ? ranks[v] : 0.0;
  }

  /// The k highest-ranked vertices, descending (ties by vertex id).
  [[nodiscard]] std::vector<std::pair<VertexId, double>> topK(
      std::size_t k) const {
    const std::size_t n = ranks.size();
    k = std::min(k, n);
    std::vector<std::pair<VertexId, double>> order(n);
    for (std::size_t v = 0; v < n; ++v)
      order[v] = {static_cast<VertexId>(v), ranks[v]};
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    order.resize(k);
    return order;
  }
};

}  // namespace lfpr
