// Service checkpoints (the PR 7 tentpole's second leg; walk sidecar
// added by PR 10).
//
// Every K converged solves the service persists its state as an
// epoch-named file set in the durability directory:
//
//   ckpt-<epoch>.csr    the graph at that epoch (csr_file format — the
//                       PR 4 snapshot machinery, checksummed + mmap-read)
//   ckpt-<epoch>.walks  OPTIONAL (StepEngine::MonteCarlo only): the walk
//                       store — 120-byte checksummed header (seed, R,
//                       max length, walk-store epoch, walk-id width) +
//                       the walk segments and visit-index blobs
//                       (detail::WalkStoreImage). The header records the
//                       meta's rank checksum and the csr checksum, so a
//                       sidecar binds to exactly one (.csr, .meta) pair.
//   ckpt-<epoch>.meta   96-byte checksummed sidecar + the rank vector:
//                       published epoch, journal seq the graph covers,
//                       the §4.5 certificate, counters, the paired csr
//                       file's checksum, and a flag recording whether a
//                       walk sidecar belongs to this checkpoint
//
// The set is written csr → walks → meta, each tmp-then-rename, so the
// meta's existence implies every file it names is complete. A checkpoint
// is valid only when the halves verify AND the meta's recorded csr
// checksum matches the csr file actually present — a crash anywhere
// mid-write leaves either the previous complete set or orphan halves,
// never a plausible-but-mixed state. The walk sidecar is weaker by
// design: a sidecar that fails any check is quarantined to
// `ckpt-<epoch>.walks.torn` and the pair still loads (recovery rebuilds
// the store from the journal instead of resuming) — approximate resume
// state must never block exact rank recovery. Old sets are pruned only
// after a new set lands (as atomic triples — see pruneCheckpoints);
// recovery takes the newest valid set and skips (with a warning)
// anything torn.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "pagerank/detail/monte_carlo.hpp"

namespace lfpr {

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr char kCheckpointMagic[8] = {'L', 'F', 'P', 'R',
                                             'C', 'K', 'P', '\n'};

/// CheckpointHeader::flags bit: a ckpt-<epoch>.walks sidecar was written
/// as part of this checkpoint (pre-PR 10 checkpoints have flags == 0 and
/// load unchanged).
inline constexpr std::uint32_t kCheckpointFlagWalkSidecar = 1u << 0;

inline constexpr std::uint32_t kWalkSidecarVersion = 1;
inline constexpr char kWalkSidecarMagic[8] = {'L', 'F', 'P', 'R',
                                              'W', 'L', 'K', '\n'};

struct WalkSidecarHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t headerBytes;
  std::uint64_t epoch;    ///< service epoch; must equal the file name's
  std::uint64_t mcEpoch;  ///< walk-store epoch (batches repaired so far)
  std::uint64_t seed;
  std::uint32_t walksPerVertex;
  std::uint32_t maxWalkLength;
  std::uint32_t walkIdBits;  ///< 32 today (the work-ring ceiling)
  std::uint32_t reserved;
  double alpha;
  std::uint64_t numVertices;
  std::uint64_t numWalks;
  std::uint64_t segmentBytes;
  std::uint64_t indexBytes;
  std::uint64_t metaChecksum;  ///< CheckpointHeader::checksum of the pair
  std::uint64_t csrChecksum;   ///< CheckpointHeader::csrChecksum of the pair
  std::uint64_t checksum;      ///< checksum64 over segments + visit index
};
static_assert(sizeof(WalkSidecarHeader) == 120,
              "header layout is part of the format");

struct CheckpointHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t headerBytes;
  std::uint64_t epoch;
  std::uint64_t journalSeq;
  std::uint64_t numVertices;
  std::uint64_t batchesApplied;
  std::uint64_t edgesIngested;
  std::uint32_t iterations;
  std::uint32_t flags;  // reserved
  double toleranceBound;
  std::uint64_t csrChecksum;   // paired ckpt-<epoch>.csr payload checksum
  std::uint64_t payloadBytes;  // numVertices x sizeof(double)
  std::uint64_t checksum;      // checksum64 over the rank payload
};
static_assert(sizeof(CheckpointHeader) == 96,
              "header layout is part of the format");

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything recovery needs to resume as if the crash never happened:
/// the graph, the warm ranks, where the journal replay starts — and,
/// when a valid walk sidecar rode along, the resident walk store.
struct CheckpointData {
  std::uint64_t epoch = 0;
  std::uint64_t journalSeq = 0;
  std::uint64_t batchesApplied = 0;
  std::uint64_t edgesIngested = 0;
  int iterations = 0;
  double toleranceBound = 0.0;
  std::vector<double> ranks;
  CsrGraph graph;

  /// Write side: set to persist the walk store as a ckpt-<epoch>.walks
  /// sidecar next to the pair. Ignored by the loader.
  std::optional<detail::WalkStoreImage> walks;

  /// Load side: the deserialized (fully validated) walk store when the
  /// meta announced a sidecar and it verified end to end; null otherwise.
  std::unique_ptr<detail::MonteCarloState> walkStore;

  /// Load side: the meta announced a sidecar but it failed verification
  /// and was quarantined to ckpt-<epoch>.walks.torn (recovery must
  /// rebuild the store from the journal).
  bool walkSidecarQuarantined = false;
};

/// Write the file set for `data` (data.graph must be the epoch's CSR;
/// data.walks, when present, the epoch's walk store). Throws
/// CsrFileError / io::IoError on failure; the caller decides whether
/// that degrades the service or just skips the cadence tick.
void writeCheckpoint(const std::string& dir, const CheckpointData& data);

/// Scan `dir` for the newest pair that fully verifies. Invalid or
/// half-written pairs are skipped with a warning, never deleted — a
/// newer-but-torn pair must not shadow an older good one. A valid pair
/// whose walk sidecar fails verification quarantines the sidecar (see
/// CheckpointData::walkSidecarQuarantined) and still loads. `numThreads`
/// is the budget for the parallel sidecar deserialize — pass the
/// solver's thread count so resume scales with the cores a rebuild
/// would use.
std::optional<CheckpointData> loadNewestCheckpoint(
    const std::string& dir, VertexId numVertices,
    const std::function<void(const std::string&)>& onWarning,
    int numThreads = 1);

/// Delete every checkpoint file set except `keepEpoch`'s (called after a
/// new set lands). Treats the set as an atomic triple: the kept epoch's
/// .csr/.meta/.walks all survive together, and other epochs' sidecars
/// are removed with their pairs so orphans never accumulate. Quarantined
/// *.walks.torn files are preserved for forensics (like journal torn
/// tails).
void pruneCheckpoints(const std::string& dir, std::uint64_t keepEpoch);

/// Delete stray "*.tmp.<pid>" scratch files a crashed writer left in
/// `dir` (single-writer directories only — the service's contract).
void sweepStaleTmpFiles(const std::string& dir);

}  // namespace lfpr
