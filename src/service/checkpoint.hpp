// Service checkpoints (the PR 7 tentpole's second leg).
//
// Every K converged solves the service persists its state as an
// epoch-named pair in the durability directory:
//
//   ckpt-<epoch>.csr    the graph at that epoch (csr_file format — the
//                       PR 4 snapshot machinery, checksummed + mmap-read)
//   ckpt-<epoch>.meta   96-byte checksummed sidecar + the rank vector:
//                       published epoch, journal seq the graph covers,
//                       the §4.5 certificate, counters, and the paired
//                       csr file's checksum
//
// The pair is written csr-then-meta, each tmp-then-rename. A checkpoint
// is valid only when both halves verify AND the meta's recorded csr
// checksum matches the csr file actually present — so a crash anywhere
// mid-write leaves either the previous complete pair or one orphan half,
// never a plausible-but-mixed state. Old pairs are pruned only after a
// new pair lands; recovery takes the newest valid pair and skips (with a
// warning) anything torn.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lfpr {

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr char kCheckpointMagic[8] = {'L', 'F', 'P', 'R',
                                             'C', 'K', 'P', '\n'};

struct CheckpointHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t headerBytes;
  std::uint64_t epoch;
  std::uint64_t journalSeq;
  std::uint64_t numVertices;
  std::uint64_t batchesApplied;
  std::uint64_t edgesIngested;
  std::uint32_t iterations;
  std::uint32_t flags;  // reserved
  double toleranceBound;
  std::uint64_t csrChecksum;   // paired ckpt-<epoch>.csr payload checksum
  std::uint64_t payloadBytes;  // numVertices x sizeof(double)
  std::uint64_t checksum;      // checksum64 over the rank payload
};
static_assert(sizeof(CheckpointHeader) == 96,
              "header layout is part of the format");

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything recovery needs to resume as if the crash never happened:
/// the graph, the warm ranks, and where the journal replay starts.
struct CheckpointData {
  std::uint64_t epoch = 0;
  std::uint64_t journalSeq = 0;
  std::uint64_t batchesApplied = 0;
  std::uint64_t edgesIngested = 0;
  int iterations = 0;
  double toleranceBound = 0.0;
  std::vector<double> ranks;
  CsrGraph graph;
};

/// Write the pair for `data` (data.graph must be the epoch's CSR).
/// Throws CsrFileError / io::IoError on failure; the caller decides
/// whether that degrades the service or just skips the cadence tick.
void writeCheckpoint(const std::string& dir, const CheckpointData& data);

/// Scan `dir` for the newest pair that fully verifies. Invalid or
/// half-written pairs are skipped with a warning, never deleted — a
/// newer-but-torn pair must not shadow an older good one.
std::optional<CheckpointData> loadNewestCheckpoint(
    const std::string& dir, VertexId numVertices,
    const std::function<void(const std::string&)>& onWarning);

/// Delete every pair except `keepEpoch` (called after a new pair lands).
void pruneCheckpoints(const std::string& dir, std::uint64_t keepEpoch);

/// Delete stray "*.tmp.<pid>" scratch files a crashed writer left in
/// `dir` (single-writer directories only — the service's contract).
void sweepStaleTmpFiles(const std::string& dir);

}  // namespace lfpr
