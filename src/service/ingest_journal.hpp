// Write-ahead ingest journal (the PR 7 tentpole's first leg).
//
// RankService::submit appends each accepted batch here *before* it
// becomes visible to the ingest thread, so a process crash can never
// lose a journaled-then-acknowledged batch: restart recovery replays the
// journal tail (everything past the newest checkpoint) through the same
// DF step API a live ingest uses.
//
// Layout (little-endian, append-only, sibling of the edge_log format):
//
//   JournalHeader        32 bytes: magic "LFPRJNL\n", version, header
//                        size, |V| (a journal binds to one vertex set)
//   records              each: JournalRecordHeader {u64 seq, u32 nDel,
//                        u32 nIns, u64 payload checksum} followed by
//                        (nDel + nIns) x Edge (deletions first) — the
//                        edge_log record idiom with a per-record
//                        checksum, because an append-only file's failure
//                        mode is a torn *tail*, not interior corruption.
//
// Torn-tail handling is quarantine, not abort: the first record that is
// truncated, checksum-bad, out-of-sequence, or out-of-range marks clean
// EOF; the suspect bytes are preserved in "<path>.torn" for forensics
// and the file is truncated back to the last valid record so appends
// resume from a well-formed tail. A corrupt *header* quarantines the
// whole file the same way (".torn-file") — the journal belongs to the
// service, so salvage-and-continue beats refusing to start. Strict
// rejection remains the dataset-cache contract (edge_log's default).
//
// Fsync policy decides what "accepted" promises:
//
//   None         page cache only — a crash may lose recent batches;
//   Batch        fsync before the append returns — submit's true ack;
//   GroupCommit  appends return immediately; a flusher thread fsyncs
//                every `groupCommitWindow`, and waitDurable(seq) bounds
//                the ack latency to one window.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/types.hpp"

namespace lfpr {

inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr char kJournalMagic[8] = {'L', 'F', 'P', 'R',
                                          'J', 'N', 'L', '\n'};

struct JournalHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t headerBytes;
  std::uint64_t numVertices;
  std::uint64_t reserved;
};
static_assert(sizeof(JournalHeader) == 32, "header layout is part of the format");

struct JournalRecordHeader {
  std::uint64_t seq;  // 1-based, strictly increasing by 1
  std::uint32_t numDeletions;
  std::uint32_t numInsertions;
  std::uint64_t checksum;  // checksum64 over the edge payload
};
static_assert(sizeof(JournalRecordHeader) == 24,
              "record layout is part of the format");
static_assert(sizeof(Edge) == 8, "record layout is part of the format");

class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FsyncPolicy { None, Batch, GroupCommit };

/// The journal file plus its recovery scan. Thread-safety: append() and
/// waitDurable() may race with each other and the flusher; the recovery
/// accessors (recovered / compactThrough / takeRecovered) are
/// construction-time only, before any appender runs.
class IngestJournal {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::Batch;
    std::chrono::milliseconds groupCommitWindow{5};
    /// Recovery diagnostics (torn-tail quarantine, header salvage).
    std::function<void(const std::string&)> onWarning;
  };

  struct Record {
    std::uint64_t seq = 0;
    BatchUpdate batch;
  };

  /// Open-or-create `path` and scan existing records. A torn tail is
  /// quarantined (see file comment); a valid prefix becomes recovered().
  /// Throws JournalError only on unsalvageable I/O failure (cannot
  /// open/truncate), never on corrupt contents.
  IngestJournal(std::string path, VertexId numVertices, Options opt);

  ~IngestJournal();

  IngestJournal(const IngestJournal&) = delete;
  IngestJournal& operator=(const IngestJournal&) = delete;

  // --- recovery (constructor-time, single-threaded) ------------------

  [[nodiscard]] const std::vector<Record>& recovered() const noexcept {
    return recovered_;
  }

  /// Bytes set aside by torn-tail / corrupt-header quarantine (0 = the
  /// file was clean).
  [[nodiscard]] std::uint64_t quarantinedBytes() const noexcept {
    return quarantinedBytes_;
  }

  /// Drop recovered records with seq <= `through` (already covered by a
  /// checkpoint) and rewrite the file tmp-then-rename, bounding journal
  /// growth and replay work. Appends continue from
  /// max(scanned seq, through) + 1.
  void compactThrough(std::uint64_t through);

  /// Move out the replay tail (recovered() becomes empty).
  [[nodiscard]] std::vector<Record> takeRecovered();

  // --- append path ---------------------------------------------------

  /// Append one batch; returns its seq. Durability on return follows the
  /// fsync policy (Batch: synced; GroupCommit: pair with waitDurable).
  /// Throws io::IoError on unrecoverable write failure — the batch must
  /// then be rejected, not applied.
  std::uint64_t append(const BatchUpdate& batch);

  /// GroupCommit: block until `seq` is fsynced or a sync failure is
  /// latched; returns false on failure. Other policies return
  /// immediately (Batch: true, the append already synced).
  bool waitDurable(std::uint64_t seq);

  /// Runtime compaction, called after a checkpoint covering `through`
  /// lands: when every appended record is <= through, truncate the file
  /// back to its header (seqs keep counting — the scanner accepts any
  /// starting seq). Returns false (and leaves the file alone) when
  /// records beyond the checkpoint exist, ftruncate fails, or the
  /// journal is broken. Safe against concurrent append().
  bool resetIfCovered(std::uint64_t through);

  /// Last seq handed out (or recovered). 0 = empty journal.
  [[nodiscard]] std::uint64_t lastSeq() const;

 private:
  void scanExisting();
  void quarantineTail(std::uint64_t fromOffset, std::uint64_t fileSize,
                      const std::string& why);
  void quarantineWholeFile(const std::string& why);
  void writeHeader();
  void warn(const std::string& message) const;
  void startFlusher();
  void flusherLoop();

  std::string path_;
  VertexId numVertices_;
  Options opt_;
  int fd_ = -1;

  std::vector<Record> recovered_;
  std::uint64_t quarantinedBytes_ = 0;

  // Append position (byte offset of the well-formed tail) and the
  // broken latch (a failed partial-append rollback poisons the file).
  std::uint64_t tailOffset_ = sizeof(JournalHeader);
  bool broken_ = false;

  // Append/flush coordination.
  mutable std::mutex mutex_;
  std::condition_variable flushCv_;  // flusher waits for dirty appends
  std::condition_variable syncCv_;   // waitDurable waits for syncedSeq_
  std::uint64_t nextSeq_ = 1;
  std::uint64_t appendedSeq_ = 0;  // last seq written (page cache)
  std::uint64_t syncedSeq_ = 0;    // last seq known durable
  bool syncFailed_ = false;
  bool stopFlusher_ = false;
  std::thread flusher_;
};

}  // namespace lfpr
