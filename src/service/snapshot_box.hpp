// Single-publisher epoch-based-reclamation snapshot cell (the service
// layer's RCU). The RankService's ingest thread publishes immutable
// RankSnapshots; any number of reader threads acquire them wait-free on
// the fast path. The two guarantees the service API rests on:
//
//   consistency   a reader's SnapshotView pins ONE snapshot pointer; all
//                 queries through the view (ranks, rank(v), topK) answer
//                 against that one immutable object. No torn reads: the
//                 publish is a single atomic pointer exchange and the
//                 pointee is never mutated after publish.
//
//   reclamation   a replaced snapshot is retired, not freed; it is
//                 deleted only after a grace period — once every reader
//                 slot is quiescent or has announced an era later than
//                 the retirement. A reader that acquired before a
//                 publish keeps its (older) snapshot valid for as long
//                 as it holds the view.
//
// Memory-ordering argument (the part that makes the grace period sound):
//
//   reader acquire:    announce <- era.load(acquire)      (relaxed store)
//                      atomic_thread_fence(seq_cst)
//                      snap <- current.load(acquire)
//   publisher publish: old <- current.exchange(new, acq_rel)
//                      e0 <- era.fetch_add(1, acq_rel)    (retire (old,e0))
//                      atomic_thread_fence(seq_cst)
//                      scan announces; free (old,e0) iff every pinned
//                      announce a satisfies a > e0
//
// Direction 1 (announce later than retirement => reader cannot hold
// old): a reader whose announce is a >= e0+1 acquire-loaded an era value
// written by the fetch_add that retired old (or a later RMW in its
// release sequence), so it synchronizes-with that publish; its
// program-order-later current.load then observes the exchange and reads
// `new` or newer — never `old`. Direction 2 (publisher missed the
// announce): the seq_cst fences run Dekker's protocol on the
// (announce, current) pair — if the publisher's scan did not observe a
// reader's announce, the publisher's fence precedes the reader's fence
// in the fence total order, so the reader's current.load observes the
// exchange and holds `new`, and freeing `old` is again safe. Either way
// no snapshot is freed while a view can still dereference it.
//
// Reader slots are per-(thread, box): each thread lazily registers one
// slot per box (mutex-guarded registration, never on the re-acquire
// fast path) and caches the mapping thread-locally keyed by the box's
// monotonically-unique id — ids never recur, so a stale cache entry for
// a destroyed box can never be looked up, let alone dereferenced.
// Nested acquires on one thread reuse the pinned era via a slot-local
// depth counter (owner-thread-only, non-atomic).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "service/rank_snapshot.hpp"

namespace lfpr {

class SnapshotBox;

namespace detail {

/// One thread's pin state against one SnapshotBox.
struct SnapshotReaderSlot {
  /// Era pinned by this slot's thread; 0 = quiescent. Written only by
  /// the owning thread, read by the publisher's grace-period scan.
  /// Cache-line aligned so concurrent readers' announces don't share.
  alignas(64) std::atomic<std::uint64_t> announced{0};
  /// Nested-acquire depth. Owner-thread-only.
  std::uint32_t depth = 0;
};

}  // namespace detail

/// RAII pin on one published snapshot. Movable, not copyable. All reads
/// through one view are answered by the same immutable snapshot.
class SnapshotView {
 public:
  SnapshotView() = default;
  SnapshotView(SnapshotView&& other) noexcept
      : box_(other.box_), slot_(other.slot_), snap_(other.snap_) {
    other.box_ = nullptr;
    other.slot_ = nullptr;
    other.snap_ = nullptr;
  }
  SnapshotView& operator=(SnapshotView&& other) noexcept {
    if (this != &other) {
      reset();
      box_ = other.box_;
      slot_ = other.slot_;
      snap_ = other.snap_;
      other.box_ = nullptr;
      other.slot_ = nullptr;
      other.snap_ = nullptr;
    }
    return *this;
  }
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;
  ~SnapshotView() { reset(); }

  /// Unpin early (no-op on an empty view).
  void reset() noexcept;

  [[nodiscard]] const RankSnapshot& operator*() const noexcept { return *snap_; }
  [[nodiscard]] const RankSnapshot* operator->() const noexcept { return snap_; }
  [[nodiscard]] const RankSnapshot* get() const noexcept { return snap_; }
  explicit operator bool() const noexcept { return snap_ != nullptr; }

 private:
  friend class SnapshotBox;
  SnapshotView(const SnapshotBox* box, detail::SnapshotReaderSlot* slot,
               const RankSnapshot* snap) noexcept
      : box_(box), slot_(slot), snap_(snap) {}

  const SnapshotBox* box_ = nullptr;
  detail::SnapshotReaderSlot* slot_ = nullptr;
  const RankSnapshot* snap_ = nullptr;
};

class SnapshotBox {
 public:
  /// `initial` may be null; acquire() then returns an empty view until
  /// the first publish. The RankService always seeds a placeholder so
  /// its readers never see null.
  explicit SnapshotBox(std::unique_ptr<const RankSnapshot> initial = nullptr);

  /// Caller must guarantee no live views and no concurrent publish.
  ~SnapshotBox();

  SnapshotBox(const SnapshotBox&) = delete;
  SnapshotBox& operator=(const SnapshotBox&) = delete;

  /// Pin and return the current snapshot. Wait-free after this thread's
  /// slot exists (one mutex-guarded registration per thread per box).
  [[nodiscard]] SnapshotView acquire() const;

  /// Replace the current snapshot. SINGLE PUBLISHER: at most one thread
  /// may ever call publish on a box. Retires the replaced snapshot and
  /// frees whatever earlier retirees have cleared their grace period.
  void publish(std::unique_ptr<const RankSnapshot> snap);

  /// Snapshots retired but not yet reclaimed (grace period still open).
  /// Exposed so tests can prove reclamation actually happens.
  [[nodiscard]] std::size_t retiredCount() const noexcept {
    return retiredCount_.load(std::memory_order_relaxed);
  }

  /// Total snapshots freed after their grace period.
  [[nodiscard]] std::uint64_t reclaimedCount() const noexcept {
    return reclaimedCount_.load(std::memory_order_relaxed);
  }

 private:
  friend class SnapshotView;
  using ReaderSlot = detail::SnapshotReaderSlot;

  ReaderSlot* slotForThisThread() const;
  void release(ReaderSlot* slot) const noexcept;
  void reclaim();

  struct Retired {
    const RankSnapshot* ptr;
    std::uint64_t era;  // era_ value at retirement (pre-increment)
  };

  const std::uint64_t id_;  // globally unique, never reused
  std::atomic<const RankSnapshot*> current_{nullptr};
  /// Grace-period clock. Starts at 1 so a slot announce of 0 always
  /// means "quiescent". Incremented once per publish.
  std::atomic<std::uint64_t> era_{1};

  mutable std::mutex slotsMutex_;
  /// deque: element addresses are stable across growth; slots are never
  /// removed (a thread that exits simply leaves its slot quiescent).
  mutable std::deque<ReaderSlot> slots_;

  /// Publisher-owned, ordered by era ascending.
  std::vector<Retired> retired_;
  std::atomic<std::size_t> retiredCount_{0};
  std::atomic<std::uint64_t> reclaimedCount_{0};
};

}  // namespace lfpr
