#include "service/ingest_journal.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <span>
#include <utility>

#include "util/checksum.hpp"
#include "util/io_retry.hpp"

namespace lfpr {

namespace {

/// Serialized record: header then deletions then insertions, one
/// contiguous buffer so the append is a single write(2) — the torn-tail
/// scanner then sees at most one partial record, never an interleaving.
std::vector<std::byte> encodeRecord(std::uint64_t seq,
                                    const BatchUpdate& batch) {
  JournalRecordHeader rh{};
  rh.seq = seq;
  rh.numDeletions = static_cast<std::uint32_t>(batch.deletions.size());
  rh.numInsertions = static_cast<std::uint32_t>(batch.insertions.size());
  Checksum64 sum;
  sum.update(std::as_bytes(std::span(batch.deletions)));
  sum.update(std::as_bytes(std::span(batch.insertions)));
  rh.checksum = sum.value();

  std::vector<std::byte> buf(sizeof(rh) + batch.size() * sizeof(Edge));
  std::byte* p = buf.data();
  std::memcpy(p, &rh, sizeof(rh));
  p += sizeof(rh);
  if (!batch.deletions.empty()) {
    std::memcpy(p, batch.deletions.data(),
                batch.deletions.size() * sizeof(Edge));
    p += batch.deletions.size() * sizeof(Edge);
  }
  if (!batch.insertions.empty())
    std::memcpy(p, batch.insertions.data(),
                batch.insertions.size() * sizeof(Edge));
  return buf;
}

std::uint64_t readFully(int fd, void* out, std::uint64_t len,
                        std::uint64_t offset) {
  char* p = static_cast<char*>(out);
  std::uint64_t got = 0;
  while (got < len) {
    const ::ssize_t n = ::pread(fd, p + got, len - got,
                                static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    got += static_cast<std::uint64_t>(n);
  }
  return got;
}

}  // namespace

IngestJournal::IngestJournal(std::string path, VertexId numVertices,
                             Options opt)
    : path_(std::move(path)), numVertices_(numVertices), opt_(std::move(opt)) {
  LFPR_FAILPOINT("journal.open");
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw JournalError("ingest journal '" + path_ +
                       "': cannot open: " + std::strerror(errno));
  try {
    scanExisting();
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  startFlusher();
}

IngestJournal::~IngestJournal() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopFlusher_ = true;
  }
  flushCv_.notify_all();
  syncCv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) {
    if (opt_.fsync != FsyncPolicy::None) {
      try {
        io::fsyncRetry(fd_, "ingest journal '" + path_ + "'",
                       "journal.append.fsync");
      } catch (...) {
        // Destructor: a failed final sync only weakens the last window's
        // durability, which recovery already tolerates.
      }
    }
    ::close(fd_);
  }
}

void IngestJournal::warn(const std::string& message) const {
  if (opt_.onWarning) opt_.onWarning(message);
}

void IngestJournal::writeHeader() {
  JournalHeader h{};
  std::memcpy(h.magic, kJournalMagic, sizeof(h.magic));
  h.version = kJournalVersion;
  h.headerBytes = sizeof(JournalHeader);
  h.numVertices = numVertices_;
  io::pwriteFully(fd_, &h, sizeof(h), 0, "ingest journal '" + path_ + "'",
                  "journal.append.write");
  tailOffset_ = sizeof(JournalHeader);
}

void IngestJournal::quarantineTail(std::uint64_t fromOffset,
                                   std::uint64_t fileSize,
                                   const std::string& why) {
  const std::uint64_t bytes = fileSize - fromOffset;
  quarantinedBytes_ += bytes;
  // Preserve the suspect bytes for forensics — best effort; losing the
  // quarantine copy must not block recovery.
  const std::string side = path_ + ".torn";
  const int sfd =
      ::open(side.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (sfd >= 0) {
    std::vector<std::byte> buf(bytes);
    const std::uint64_t got = readFully(fd_, buf.data(), bytes, fromOffset);
    try {
      io::writeFully(sfd, buf.data(), got, "journal quarantine '" + side + "'",
                     "journal.quarantine.write");
    } catch (const FailPointAbort&) {
      ::close(sfd);
      throw;
    } catch (...) {
      // forensics only
    }
    ::close(sfd);
  }
  // The truncation is load-bearing: appends must land on a well-formed
  // tail, not after torn bytes.
  while (::ftruncate(fd_, static_cast<off_t>(fromOffset)) != 0) {
    if (errno == EINTR) continue;
    throw JournalError("ingest journal '" + path_ +
                       "': cannot truncate torn tail: " + std::strerror(errno));
  }
  tailOffset_ = fromOffset;
  warn("ingest journal '" + path_ + "': quarantined " + std::to_string(bytes) +
       " torn tail bytes (" + why + "); treating as clean EOF");
}

void IngestJournal::quarantineWholeFile(const std::string& why) {
  struct ::stat st{};
  const std::uint64_t size =
      ::fstat(fd_, &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
  quarantinedBytes_ += size;
  const std::string side = path_ + ".torn-file";
  std::error_code ignored;
  std::filesystem::copy_file(path_, side,
                             std::filesystem::copy_options::overwrite_existing,
                             ignored);  // forensics, best effort
  while (::ftruncate(fd_, 0) != 0) {
    if (errno == EINTR) continue;
    throw JournalError("ingest journal '" + path_ +
                       "': cannot reset corrupt file: " + std::strerror(errno));
  }
  warn("ingest journal '" + path_ + "': unreadable header (" + why +
       "); quarantined " + std::to_string(size) + " bytes and started fresh");
  writeHeader();
}

void IngestJournal::scanExisting() {
  struct ::stat st{};
  if (::fstat(fd_, &st) != 0)
    throw JournalError("ingest journal '" + path_ +
                       "': cannot stat: " + std::strerror(errno));
  const auto fileSize = static_cast<std::uint64_t>(st.st_size);

  if (fileSize == 0) {
    writeHeader();
    return;
  }

  JournalHeader h{};
  if (fileSize < sizeof(h) ||
      readFully(fd_, &h, sizeof(h), 0) != sizeof(h) ||
      std::memcmp(h.magic, kJournalMagic, sizeof(h.magic)) != 0 ||
      h.version != kJournalVersion || h.headerBytes != sizeof(JournalHeader)) {
    quarantineWholeFile("bad magic/version/size");
    return;
  }
  if (h.numVertices != numVertices_) {
    quarantineWholeFile("vertex count " + std::to_string(h.numVertices) +
                        " does not match the service's " +
                        std::to_string(numVertices_));
    return;
  }

  // Records carry explicit seqs and must increase by exactly 1; the
  // first record's seq is whatever checkpoint-coverage resets left as
  // the base (1 for a virgin journal).
  std::uint64_t offset = sizeof(JournalHeader);
  std::uint64_t expectSeq = 0;  // 0 = accept any first seq >= 1
  bool torn = false;
  while (offset < fileSize) {
    JournalRecordHeader rh{};
    if (fileSize - offset < sizeof(rh)) {
      quarantineTail(offset, fileSize, "partial record header");
      torn = true;
      break;
    }
    readFully(fd_, &rh, sizeof(rh), offset);
    const std::uint64_t payloadBytes =
        (static_cast<std::uint64_t>(rh.numDeletions) + rh.numInsertions) *
        sizeof(Edge);
    if (rh.seq == 0 || (expectSeq != 0 && rh.seq != expectSeq)) {
      quarantineTail(offset, fileSize,
                     "sequence break at record " + std::to_string(expectSeq));
      torn = true;
      break;
    }
    expectSeq = rh.seq;
    if (fileSize - offset - sizeof(rh) < payloadBytes) {
      quarantineTail(offset, fileSize, "partial record payload");
      torn = true;
      break;
    }
    Record rec;
    rec.seq = rh.seq;
    rec.batch.deletions.resize(rh.numDeletions);
    rec.batch.insertions.resize(rh.numInsertions);
    std::uint64_t p = offset + sizeof(rh);
    readFully(fd_, rec.batch.deletions.data(),
              rh.numDeletions * sizeof(Edge), p);
    p += rh.numDeletions * sizeof(Edge);
    readFully(fd_, rec.batch.insertions.data(),
              rh.numInsertions * sizeof(Edge), p);
    Checksum64 sum;
    sum.update(std::as_bytes(std::span(rec.batch.deletions)));
    sum.update(std::as_bytes(std::span(rec.batch.insertions)));
    if (sum.value() != rh.checksum) {
      quarantineTail(offset, fileSize, "record checksum mismatch");
      torn = true;
      break;
    }
    bool inRange = true;
    for (const Edge& e : rec.batch.deletions)
      inRange = inRange && e.src < numVertices_ && e.dst < numVertices_;
    for (const Edge& e : rec.batch.insertions)
      inRange = inRange && e.src < numVertices_ && e.dst < numVertices_;
    if (!inRange) {
      quarantineTail(offset, fileSize, "edge endpoint out of range");
      torn = true;
      break;
    }
    recovered_.push_back(std::move(rec));
    offset += sizeof(rh) + payloadBytes;
    ++expectSeq;
  }
  if (!torn) tailOffset_ = offset;
  if (expectSeq != 0) {  // at least one valid record scanned
    nextSeq_ = expectSeq;
    appendedSeq_ = expectSeq - 1;
    syncedSeq_ = expectSeq - 1;
  }
}

void IngestJournal::compactThrough(std::uint64_t through) {
  if (through >= nextSeq_) nextSeq_ = through + 1;
  const auto keepFrom = std::find_if(
      recovered_.begin(), recovered_.end(),
      [&](const Record& r) { return r.seq > through; });
  if (keepFrom == recovered_.begin()) return;  // nothing covered, no rewrite
  recovered_.erase(recovered_.begin(), keepFrom);

  const std::string what = "ingest journal '" + path_ + "'";
  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
  try {
    {
      io::FdFile out = io::FdFile::create(tmp, what, "journal.open");
      JournalHeader h{};
      std::memcpy(h.magic, kJournalMagic, sizeof(h.magic));
      h.version = kJournalVersion;
      h.headerBytes = sizeof(JournalHeader);
      h.numVertices = numVertices_;
      out.write(&h, sizeof(h), "journal.compact.write");
      for (const Record& r : recovered_) {
        const auto buf = encodeRecord(r.seq, r.batch);
        out.write(buf.data(), buf.size(), "journal.compact.write");
      }
      out.sync("journal.append.fsync");
      out.close();
    }
    io::renameFile(tmp, path_, what, "journal.compact.rename");
    io::fsyncDirectory(std::filesystem::path(path_).parent_path().string());
  } catch (const FailPointAbort&) {
    throw;  // a real crash leaves the tmp behind; recovery sweeps it
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }

  // Swap the fd to the compacted file.
  const int nfd = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (nfd < 0)
    throw JournalError(what + ": cannot reopen after compaction: " +
                       std::strerror(errno));
  ::close(fd_);
  fd_ = nfd;
  struct ::stat st{};
  ::fstat(fd_, &st);
  tailOffset_ = static_cast<std::uint64_t>(st.st_size);
}

std::vector<IngestJournal::Record> IngestJournal::takeRecovered() {
  return std::exchange(recovered_, {});
}

std::uint64_t IngestJournal::append(const BatchUpdate& batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (broken_)
    throw io::IoError("ingest journal '" + path_ +
                          "': unusable after an unrecoverable write failure",
                      EIO);
  const std::uint64_t seq = nextSeq_;
  const auto buf = encodeRecord(seq, batch);
  // The scan and header rewrite use pread/pwrite, which leave the file
  // offset wherever open() put it — position explicitly on the
  // well-formed tail before the (offset-advancing) record write.
  if (::lseek(fd_, static_cast<off_t>(tailOffset_), SEEK_SET) < 0)
    throw io::IoError("ingest journal '" + path_ +
                          "': cannot seek to tail: " + std::strerror(errno),
                      errno);
  try {
    io::writeFully(fd_, buf.data(), buf.size(),
                   "ingest journal '" + path_ + "'", "journal.append.write");
  } catch (const FailPointAbort&) {
    throw;  // simulated process death: no cleanup, like a real kill
  } catch (...) {
    // A partial append would corrupt the tail for every later record;
    // roll the file back to the last good boundary before rethrowing.
    if (::ftruncate(fd_, static_cast<off_t>(tailOffset_)) != 0) broken_ = true;
    throw;
  }
  nextSeq_ = seq + 1;
  appendedSeq_ = seq;
  tailOffset_ += buf.size();

  switch (opt_.fsync) {
    case FsyncPolicy::None:
      break;
    case FsyncPolicy::Batch:
      io::fsyncRetry(fd_, "ingest journal '" + path_ + "'",
                     "journal.append.fsync");
      syncedSeq_ = seq;
      break;
    case FsyncPolicy::GroupCommit:
      lock.unlock();
      flushCv_.notify_one();
      break;
  }
  return seq;
}

bool IngestJournal::waitDurable(std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (opt_.fsync != FsyncPolicy::GroupCommit)
    return syncedSeq_ >= seq || opt_.fsync == FsyncPolicy::None;
  syncCv_.wait(lock, [&] {
    return syncedSeq_ >= seq || syncFailed_ || stopFlusher_;
  });
  return syncedSeq_ >= seq;
}

bool IngestJournal::resetIfCovered(std::uint64_t through) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_ || appendedSeq_ > through) return false;
  if (tailOffset_ == sizeof(JournalHeader)) return true;  // already empty
  LFPR_FAILPOINT("journal.reset.truncate");
  while (::ftruncate(fd_, sizeof(JournalHeader)) != 0) {
    if (errno == EINTR) continue;
    return false;
  }
  tailOffset_ = sizeof(JournalHeader);
  return true;
}

std::uint64_t IngestJournal::lastSeq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nextSeq_ - 1;
}

void IngestJournal::startFlusher() {
  if (opt_.fsync != FsyncPolicy::GroupCommit) return;
  flusher_ = std::thread([this] { flusherLoop(); });
}

void IngestJournal::flusherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    flushCv_.wait(lock, [&] {
      return stopFlusher_ || appendedSeq_ > syncedSeq_;
    });
    if (appendedSeq_ <= syncedSeq_) {
      if (stopFlusher_) return;
      continue;
    }
    // Bounded-latency group commit: sleep one window so concurrent
    // appends coalesce into a single fsync, then sync up to the newest.
    lock.unlock();
    std::this_thread::sleep_for(opt_.groupCommitWindow);
    lock.lock();
    const std::uint64_t target = appendedSeq_;
    lock.unlock();
    bool ok = true;
    try {
      io::fsyncRetry(fd_, "ingest journal '" + path_ + "'",
                     "journal.append.fsync");
    } catch (...) {
      ok = false;
    }
    lock.lock();
    if (ok) {
      syncedSeq_ = target;
    } else {
      syncFailed_ = true;
      warn("ingest journal '" + path_ +
           "': group-commit fsync failed; acks suspended");
    }
    syncCv_.notify_all();
    if (syncFailed_) {
      // Stay alive to honor stop, but no further syncs will succeed
      // deterministically — park until shutdown.
      flushCv_.wait(lock, [&] { return stopFlusher_; });
      return;
    }
    if (stopFlusher_ && appendedSeq_ <= syncedSeq_) return;
  }
}

}  // namespace lfpr
