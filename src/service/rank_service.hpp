// Long-lived PageRank service (the PR 6 tentpole): a resident engine
// that continuously ingests edge batches and publishes rank vectors to
// concurrent readers at convergence boundaries.
//
// The one-shot solvers (pagerank.hpp) answer "rank this snapshot"; the
// service answers "keep this graph ranked". One ingest thread owns the
// mutable graph and a persistent LfEngineState (engine_step.hpp) and
// runs the paper's Dynamic Frontier protocol batch after batch — warm
// ranks carried across steps, only the affected subset re-iterated.
// Each converged solve is published as an immutable RankSnapshot via
// SnapshotBox's epoch/RCU pointer flip, so readers:
//
//   - never block an ingest step, and never block each other;
//   - never observe torn or rolled-back ranks: every query answers
//     against one published snapshot, and unconverged / crashed /
//     stopped solves are simply never published — the previous epoch
//     stays current (readers keep serving it) until a converged solve
//     replaces it;
//   - get the §4.5 certificate with every answer: snapshot.toleranceBound
//     bounds the published ranks' distance from the exact fixpoint of
//     the graph at that epoch.
//
// Crash recovery is a service-level property (PR 5's intra-solve
// takeover handles threads dying *inside* a step; this layer handles
// whole steps failing): a step that comes back unconverged — injected
// crash ate too many workers, iteration cap, DNF — triggers up to
// maxRecoveryAttempts full re-solves (ND semantics: all vertices
// unconverged, current ranks as the warm seed). If those also fail the
// step's batches stay folded into the graph, the next step runs as a
// full solve instead of an incremental one, and readers keep the last
// published epoch throughout.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dynamic_digraph.hpp"
#include "graph/types.hpp"
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/options.hpp"
#include "sched/fault.hpp"
#include "service/ingest_journal.hpp"
#include "service/snapshot_box.hpp"

namespace lfpr {

/// Opt-in restart durability (the PR 7 tentpole). With a directory set,
/// the service write-ahead journals every accepted batch, checkpoints
/// its state every `checkpointEverySolves` converged solves, and on
/// construction recovers from whatever the directory holds: newest valid
/// checkpoint + journal-tail replay, torn tails quarantined rather than
/// fatal. Off (empty directory) the service is exactly the PR 6
/// in-memory service — no extra I/O on any path.
struct DurabilityOptions {
  /// Empty = durability off. The directory is service-owned and
  /// single-writer: journal, checkpoint pairs, and quarantine files all
  /// live here.
  std::string directory;

  /// What submit()'s acceptance promises (see IngestJournal).
  FsyncPolicy fsync = FsyncPolicy::Batch;

  /// GroupCommit ack-latency bound.
  std::chrono::milliseconds groupCommitWindow{5};

  /// Checkpoint cadence in converged solves; 0 = only the post-recovery
  /// checkpoint. Each checkpoint prunes its predecessor and resets the
  /// journal once every journaled batch is covered.
  std::uint64_t checkpointEverySolves = 8;

  /// Diagnostics channel (torn-tail quarantine, invalid checkpoints,
  /// degradation to serve-stale). May be called from the constructor,
  /// the ingest thread, submitters, or the journal flusher.
  std::function<void(const std::string&)> onWarning;

  [[nodiscard]] bool enabled() const noexcept { return !directory.empty(); }
};

struct ServiceOptions {
  /// Engine configuration for every solve the service runs. numThreads,
  /// tolerance, scheduling mode etc. all apply; stopRequested is owned
  /// by the service and must be left null.
  PageRankOptions solver;

  /// Marking semantics for incremental steps: Dynamic Frontier (the
  /// paper's best engine) by default; set traverse for Dynamic Traversal.
  bool traverse = false;
  bool expandFrontier = true;

  /// Which engine family runs the incremental steps (full solves and
  /// recovery re-solves always use the pull engine — their frontier is
  /// the whole graph, far outside delta-push's band).
  ///
  ///   Pull       lfDynamicStep with traverse/expandFrontier above.
  ///   DeltaPush  lfDeltaPushStep: residual forward-push (PR 8). DF
  ///              marking by construction; `traverse` is ignored.
  ///   Auto       route each step by the merged batch's edge fraction:
  ///              DeltaPush inside [kDeltaPushMinFraction,
  ///              kDeltaPushMaxFraction] — the mid-density band where
  ///              the push engine beats both pull schedulers (see
  ///              BENCH_pr8.json) — Pull outside it.
  ///   MonteCarlo lfMonteCarloStep (PR 9): resident random-walk store,
  ///              approximate ranks + personalized PPR (pprTopK). Runs
  ///              the *initial* solve too (walk build), and publishes
  ///              statistical mcL1ErrorBound certificates instead of
  ///              §4.5 bounds; recovery re-solves still use the exact
  ///              pull engine.
  enum class StepEngine { Pull, DeltaPush, Auto, MonteCarlo };
  StepEngine stepEngine = StepEngine::Pull;

  /// Auto-routing band bounds: batch edges (deletions + insertions,
  /// after coalescing) divided by current graph edges.
  static constexpr double kDeltaPushMinFraction = 1e-5;
  static constexpr double kDeltaPushMaxFraction = 1e-3;

  /// Bounded ingest queue: submit() blocks when full (backpressure).
  std::size_t queueCapacity = 256;

  /// Batches coalesced into one solve step when the queue runs ahead of
  /// the engine. Marking the union of several batches against the
  /// (pre-first, post-last) snapshot pair is conservative — every vertex
  /// any batch touched is marked — so coalescing trades per-batch
  /// latency for throughput without weakening the frontier invariant.
  std::size_t maxBatchesPerStep = 16;

  /// Full re-solves attempted when a step comes back unconverged.
  int maxRecoveryAttempts = 2;

  /// Called by the ingest thread just before a snapshot becomes
  /// visible to readers.
  std::function<void(const RankSnapshot&)> onPublish;

  /// Called by the ingest thread after each recovery attempt.
  std::function<void(std::uint64_t solveIndex, int attempt, bool recovered)>
      onRecovery;

  /// Test hook: supplies a FaultInjector for solve number `solveIndex`
  /// (0 = the initial full solve; recovery re-solves get their own
  /// indices). Return null for a healthy solve.
  std::function<std::unique_ptr<FaultInjector>(std::uint64_t solveIndex)>
      faultFactory;

  /// Restart durability; off by default.
  DurabilityOptions durability;
};

/// Reader-visible freshness report: which epoch answers queries, how
/// tight its certificate is, and how much ingested-but-unpublished work
/// is outstanding.
struct Staleness {
  std::uint64_t epoch = 0;
  /// §4.5 bound of the snapshot readers currently see.
  double toleranceBound = 0.0;
  /// Batches/edges accepted by submit() but not yet reflected in the
  /// published snapshot (queued, in-flight, or folded into a
  /// yet-unconverged step).
  std::uint64_t pendingBatches = 0;
  std::uint64_t pendingEdges = 0;
  /// Milliseconds since the current snapshot was published.
  double ageMs = 0.0;
  /// Serve-stale mode: an unrecoverable durability failure (disk full,
  /// exhausted write retries) stopped batch acceptance; readers keep the
  /// last epoch and this report keeps climbing.
  bool degraded = false;
};

struct ServiceStats {
  std::uint64_t publishes = 0;
  std::uint64_t batchesApplied = 0;
  std::uint64_t edgesIngested = 0;
  std::uint64_t solves = 0;
  /// Incremental steps routed to the delta-push engine (StepEngine::
  /// DeltaPush always; StepEngine::Auto when the merged batch fell in
  /// the mid-density band).
  std::uint64_t deltaPushSteps = 0;
  /// Steps (initial build + incremental repairs) run by the Monte Carlo
  /// walk engine (StepEngine::MonteCarlo).
  std::uint64_t monteCarloSteps = 0;
  std::uint64_t recoveries = 0;
  /// Steps that exhausted recovery and carried a full re-solve forward.
  std::uint64_t failedSteps = 0;
  std::uint64_t reclaimedSnapshots = 0;
  std::size_t retiredSnapshots = 0;

  // Durability (all 0 when DurabilityOptions is off).
  std::uint64_t journaledBatches = 0;
  /// Journal-tail batches re-applied by restart recovery.
  std::uint64_t replayedBatches = 0;
  std::uint64_t checkpoints = 0;
  /// Checkpoints that carried a walk-store sidecar (MonteCarlo engine
  /// with a valid resident store at checkpoint time).
  std::uint64_t walkCheckpoints = 0;
  /// Restarts that resumed the walk store from a sidecar instead of
  /// rebuilding it through the journal (0 or 1 per service lifetime).
  std::uint64_t walkResumes = 0;
  /// Walk sidecars quarantined to *.walks.torn by recovery (announced by
  /// the meta but failed verification; the store was rebuilt instead).
  std::uint64_t walkSidecarsQuarantined = 0;
  /// Unrecoverable durability I/O failures (each one degrades or is a
  /// skipped checkpoint).
  std::uint64_t ioFailures = 0;
  /// Torn bytes quarantined by the journal scan at construction.
  std::uint64_t journalQuarantinedBytes = 0;
};

class RankService {
 public:
  /// Starts the ingest thread. The vertex set is fixed for the service's
  /// lifetime (the engines require prev/curr snapshots to share it);
  /// self-loops are ensured on construction per the paper's dead-end
  /// elimination. Readers immediately see an epoch-0 placeholder
  /// (uniform ranks, toleranceBound = infinity); epoch 1 — the initial
  /// full solve — follows asynchronously. Use waitForEpoch(1) to block
  /// until the first real ranking is up.
  ///
  /// With opt.durability enabled, recovery runs first and synchronously:
  /// stale tmp sweep, newest-valid-checkpoint load, journal scan with
  /// torn-tail quarantine, journal compaction. When a checkpoint exists
  /// readers immediately see its epoch (certificate intact — the ranks
  /// ARE a previously published snapshot) instead of the placeholder,
  /// and the ingest thread replays the journal tail through the normal
  /// DF step path before consuming new batches. Under StepEngine::
  /// MonteCarlo, a checkpoint whose walk sidecar verifies additionally
  /// resumes the resident walk store (the recovered snapshot serves
  /// pprTopK immediately and the journal-tail replay runs as walk
  /// repairs, not a rebuild); a torn/missing/mismatched sidecar is
  /// quarantined and the store rebuilds from the journal instead —
  /// rank recovery is identical either way. `initial` must be the
  /// same graph a clean run would have started from; it seeds the very
  /// first run and is superseded by the checkpoint afterwards.
  explicit RankService(const CsrGraph& initial, ServiceOptions opt = {});

  /// stop()s and joins.
  ~RankService();

  RankService(const RankService&) = delete;
  RankService& operator=(const RankService&) = delete;

  // --- ingest side -------------------------------------------------

  /// Enqueue a batch; blocks while the queue is full. Returns false if
  /// the service is stopping (the batch was not accepted). Throws
  /// std::out_of_range on edges outside the vertex set.
  bool submit(BatchUpdate batch);

  /// Non-blocking submit: false when the queue is full or stopping.
  bool trySubmit(BatchUpdate batch);

  /// Block until the queue is drained and no step is in flight.
  void waitIdle();

  /// Block until the published epoch reaches `epoch` (or the service
  /// stops). Returns the epoch readers currently see.
  std::uint64_t waitForEpoch(std::uint64_t epoch);

  /// Cooperative hard stop: aborts any in-flight solve at its next
  /// iteration boundary (nothing partial is ever published), abandons
  /// queued batches, joins the ingest thread. Idempotent. Readers keep
  /// the last published epoch — views stay valid until the service is
  /// destroyed.
  void stop();

  /// Finish every queued batch, publish, then stop. Idempotent.
  void drainAndStop();

  // --- reader side (all wait-free after per-thread registration) ---

  /// Pin the current snapshot. All queries through the view answer
  /// against one consistent epoch.
  [[nodiscard]] SnapshotView snapshot() const { return box_.acquire(); }

  /// Copy of the current rank vector.
  [[nodiscard]] std::vector<double> ranks() const;

  [[nodiscard]] double rank(VertexId v) const;

  [[nodiscard]] std::vector<std::pair<VertexId, double>> topK(std::size_t k) const;

  /// Personalized PageRank as seen from `root` (StepEngine::MonteCarlo
  /// only): top-k visited vertices of the published walk-store epoch,
  /// each score carrying its statistical mcPprErrorBound. Served through
  /// the same SnapshotBox path as ranks — wait-free for registered
  /// readers, consistent with snapshot()->epoch, never blocking ingest.
  /// Empty when the current snapshot has no PPR index (exact engines, or
  /// the epoch-0 placeholder).
  [[nodiscard]] std::vector<PprEntry> pprTopK(VertexId root, std::size_t k) const;

  [[nodiscard]] Staleness staleness() const;

  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] VertexId numVertices() const noexcept { return numVertices_; }

  /// Epoch of the most recently published snapshot.
  [[nodiscard]] std::uint64_t publishedEpoch() const noexcept {
    return publishedEpoch_.load(std::memory_order_acquire);
  }

  /// True once an unrecoverable durability failure switched the service
  /// to serve-stale (submit/trySubmit refuse; readers unaffected).
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

 private:
  /// A queued batch plus its journal seq (0 = not journaled).
  struct Pending {
    BatchUpdate batch;
    std::uint64_t seq = 0;
  };

  void runLoop();
  /// One solve step over `group` (empty = initial/carried full solve).
  /// Returns false when a stop request ended the solve.
  bool stepOnce(std::vector<Pending>&& group);
  /// Engine routing for one incremental step (ServiceOptions::stepEngine).
  [[nodiscard]] bool useDeltaPush(const BatchUpdate& merged) const;
  [[nodiscard]] bool useMonteCarlo() const noexcept;
  void publishConverged(const PageRankResult& result);
  void validateBatch(const BatchUpdate& batch) const;
  [[nodiscard]] std::unique_ptr<FaultInjector> nextFault();

  // Durability path (no-ops when opt_.durability is off).
  [[nodiscard]] std::unique_ptr<RankSnapshot> initDurability();
  bool enqueueLocked(std::unique_lock<std::mutex> lock, BatchUpdate&& batch,
                     std::uint64_t edges);
  bool replayRecovered();
  void maybeCheckpoint(bool force);
  void degrade(const std::string& why);

  ServiceOptions opt_;
  const VertexId numVertices_;

  // Ingest-thread-owned solve state.
  DynamicDigraph graph_;
  CsrGraph curr_;
  detail::LfEngineState state_;
  bool needFullResolve_ = true;  // initial solve is a full one
  std::uint64_t nextEpoch_ = 1;
  std::uint64_t unpublishedBatches_ = 0;
  std::uint64_t unpublishedEdges_ = 0;

  // Durability state. journal_ doubles as the "durability on" flag;
  // replay_ / recoveredFromCheckpoint_ are set by the constructor and
  // consumed by the ingest thread before it touches the queue.
  std::unique_ptr<IngestJournal> journal_;
  std::vector<IngestJournal::Record> replay_;
  bool recoveredFromCheckpoint_ = false;
  std::uint64_t lastAppliedSeq_ = 0;       // ingest thread only
  std::uint64_t publishesSinceCkpt_ = 0;   // ingest thread only
  double lastPublishedBound_ = 0.0;        // ingest thread only
  int lastPublishedIterations_ = 0;        // ingest thread only

  SnapshotBox box_;

  // Queue + lifecycle.
  mutable std::mutex mutex_;
  std::condition_variable queueCv_;    // ingest thread waits for work
  std::condition_variable notFullCv_;  // submitters wait for room
  std::condition_variable idleCv_;     // waitIdle / waitForEpoch
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool draining_ = false;
  bool idle_ = false;
  std::atomic<bool> stopFlag_{false};  // wired into PageRankOptions::stopRequested

  // Counters (readable from any thread).
  std::atomic<std::uint64_t> publishedEpoch_{0};
  std::atomic<std::uint64_t> pendingBatches_{0};
  std::atomic<std::uint64_t> pendingEdges_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> batchesApplied_{0};
  std::atomic<std::uint64_t> edgesIngested_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> deltaPushSteps_{0};
  std::atomic<std::uint64_t> monteCarloSteps_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> failedSteps_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> journaledBatches_{0};
  std::atomic<std::uint64_t> replayedBatches_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> walkCheckpoints_{0};
  std::atomic<std::uint64_t> walkResumes_{0};
  std::atomic<std::uint64_t> walkSidecarsQuarantined_{0};
  std::atomic<std::uint64_t> ioFailures_{0};

  std::thread ingest_;
};

}  // namespace lfpr
