#include "service/rank_service.hpp"

#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "graph/csr_file.hpp"
#include "service/checkpoint.hpp"
#include "util/failpoint.hpp"
#include "util/io_retry.hpp"

namespace lfpr {

namespace {

/// Fold `batch` onto `merged` (marking union for a coalesced step).
void appendBatch(BatchUpdate& merged, const BatchUpdate& batch) {
  merged.deletions.insert(merged.deletions.end(), batch.deletions.begin(),
                          batch.deletions.end());
  merged.insertions.insert(merged.insertions.end(), batch.insertions.begin(),
                           batch.insertions.end());
}

}  // namespace

RankService::RankService(const CsrGraph& initial, ServiceOptions opt)
    : opt_(std::move(opt)),
      numVertices_(initial.numVertices()),
      state_(initial.numVertices()) {
  state_.seedUniform();

  // Recovery (when durability is on) runs synchronously before the
  // ingest thread exists: checkpoint load, journal scan + quarantine,
  // compaction. Nothing can append concurrently, so the journal's
  // single-threaded recovery phase really is single-threaded. The
  // resident graph comes from the newest checkpoint when one loads;
  // only the no-checkpoint path pays to materialize `initial` — restart
  // latency is the service's contractual recovery metric, so the boot
  // path builds each structure exactly once.
  std::unique_ptr<RankSnapshot> seed;
  if (opt_.durability.enabled()) seed = initDurability();
  if (!recoveredFromCheckpoint_) {
    graph_ = DynamicDigraph::fromCsr(initial);
    graph_.ensureSelfLoops();
    curr_ = graph_.toCsr();
  }

  if (!seed) {
    // Epoch-0 placeholder so readers never observe a null snapshot:
    // uniform ranks, honest converged=false and an infinite certificate.
    seed = std::make_unique<RankSnapshot>();
    seed->epoch = 0;
    seed->ranks.assign(numVertices_, numVertices_ > 0
                                         ? 1.0 / static_cast<double>(numVertices_)
                                         : 0.0);
    seed->publishedAt = std::chrono::steady_clock::now();
  }
  box_.publish(std::move(seed));

  ingest_ = std::thread([this] { runLoop(); });
}

std::unique_ptr<RankSnapshot> RankService::initDurability() {
  const DurabilityOptions& d = opt_.durability;
  std::filesystem::create_directories(d.directory);
  // A crashed writer's scratch files are dead weight (the service is the
  // directory's single writer); renames that did land are the live state.
  sweepStaleTmpFiles(d.directory);

  std::uint64_t ckptSeq = 0;
  std::unique_ptr<RankSnapshot> recovered;
  if (auto ckpt = loadNewestCheckpoint(d.directory, numVertices_, d.onWarning,
                                       opt_.solver.numThreads)) {
    // Resume as the checkpointed epoch: the graph, the warm ranks, and
    // the certificate are exactly a snapshot this service once
    // published, so republishing it is sound by construction.
    graph_ = DynamicDigraph::fromCsr(ckpt->graph);
    // The mapped checkpoint CSR is the exact graph this service
    // checkpointed (shared storage keeps the mapping alive), so adopt
    // it instead of re-materializing through graph_.toCsr() — recovery
    // is on the restart critical path, and the first applied batch
    // replaces curr_ anyway.
    curr_ = std::move(ckpt->graph);
    state_.seedRanks(ckpt->ranks);
    needFullResolve_ = false;
    nextEpoch_ = ckpt->epoch + 1;
    ckptSeq = ckpt->journalSeq;
    lastAppliedSeq_ = ckpt->journalSeq;
    batchesApplied_.store(ckpt->batchesApplied, std::memory_order_relaxed);
    edgesIngested_.store(ckpt->edgesIngested, std::memory_order_relaxed);
    lastPublishedBound_ = ckpt->toleranceBound;
    lastPublishedIterations_ = ckpt->iterations;
    recoveredFromCheckpoint_ = true;

    recovered = std::make_unique<RankSnapshot>();
    recovered->epoch = ckpt->epoch;
    recovered->ranks = std::move(ckpt->ranks);
    recovered->converged = true;
    recovered->iterations = ckpt->iterations;
    recovered->toleranceBound = ckpt->toleranceBound;
    recovered->batchesApplied = ckpt->batchesApplied;
    recovered->edgesIngested = ckpt->edgesIngested;
    recovered->publishedAt = std::chrono::steady_clock::now();
    publishedEpoch_.store(ckpt->epoch, std::memory_order_release);

    if (ckpt->walkSidecarQuarantined)
      walkSidecarsQuarantined_.fetch_add(1, std::memory_order_relaxed);
    if (ckpt->walkStore != nullptr) {
      // Resume the walk store instead of rebuilding — but only into a
      // service that will actually run it, with the exact config the
      // sidecar was built under. On any disagreement the store is
      // dropped here (lfMonteCarloStep would discard it anyway) and the
      // journal replay rebuilds from scratch.
      const detail::McConfig want{opt_.solver.mcWalksPerVertex,
                                  opt_.solver.mcMaxWalkLength,
                                  opt_.solver.mcSeed, opt_.solver.alpha};
      if (useMonteCarlo() && ckpt->walkStore->cfg == want &&
          ckpt->walkStore->n == numVertices_) {
        state_.monteCarlo = std::move(ckpt->walkStore);
        state_.monteCarloValid = true;
        walkResumes_.fetch_add(1, std::memory_order_relaxed);
        // The recovered snapshot regains its MC face: the fingerprint
        // pins the resumed store and pprTopK serves immediately, exactly
        // as the pre-crash epoch did.
        recovered->monteCarlo = true;
        recovered->mcFingerprint = state_.monteCarlo->fingerprint();
        recovered->ppr = std::make_shared<const PprIndex>(
            detail::buildPprIndex(*state_.monteCarlo, opt_.solver.numThreads));
      } else if (d.onWarning) {
        d.onWarning(
            "checkpoint walk sidecar ignored: " +
            std::string(useMonteCarlo()
                            ? "its (seed, R, length, alpha) or vertex count "
                              "disagrees with the service options"
                            : "the service is not running StepEngine::"
                              "MonteCarlo") +
            "; the walk store will be rebuilt if needed");
      }
    }
  }

  IngestJournal::Options jopt;
  jopt.fsync = d.fsync;
  jopt.groupCommitWindow = d.groupCommitWindow;
  jopt.onWarning = d.onWarning;
  journal_ =
      std::make_unique<IngestJournal>(d.directory + "/journal", numVertices_, jopt);
  journal_->compactThrough(ckptSeq);
  replay_ = journal_->takeRecovered();

  // Replayed batches count as pending until their re-application is
  // republished — staleness() is honest about recovery lag.
  std::uint64_t edges = 0;
  for (const auto& r : replay_) edges += r.batch.size();
  pendingBatches_.store(replay_.size(), std::memory_order_relaxed);
  pendingEdges_.store(edges, std::memory_order_relaxed);
  return recovered;
}

RankService::~RankService() { stop(); }

void RankService::validateBatch(const BatchUpdate& batch) const {
  for (const Edge& e : batch.deletions)
    if (e.src >= numVertices_ || e.dst >= numVertices_)
      throw std::out_of_range("RankService: batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= numVertices_ || e.dst >= numVertices_)
      throw std::out_of_range("RankService: batch edge out of range");
}

bool RankService::submit(BatchUpdate batch) {
  validateBatch(batch);
  const std::uint64_t edges = batch.size();
  std::unique_lock<std::mutex> lock(mutex_);
  notFullCv_.wait(lock, [&] {
    return stopping_ || draining_ ||
           degraded_.load(std::memory_order_relaxed) ||
           queue_.size() < opt_.queueCapacity;
  });
  if (stopping_ || draining_ || degraded_.load(std::memory_order_relaxed))
    return false;
  return enqueueLocked(std::move(lock), std::move(batch), edges);
}

bool RankService::trySubmit(BatchUpdate batch) {
  validateBatch(batch);
  const std::uint64_t edges = batch.size();
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || draining_ || degraded_.load(std::memory_order_relaxed) ||
      queue_.size() >= opt_.queueCapacity)
    return false;
  return enqueueLocked(std::move(lock), std::move(batch), edges);
}

bool RankService::enqueueLocked(std::unique_lock<std::mutex> lock,
                                BatchUpdate&& batch, std::uint64_t edges) {
  // Write-ahead invariant: the journal append happens under the queue
  // lock, immediately before push_back — journal order IS apply order,
  // and a batch is never visible to the ingest thread before its bytes
  // are in the journal file.
  std::uint64_t seq = 0;
  if (journal_) {
    try {
      seq = journal_->append(batch);
      journaledBatches_.fetch_add(1, std::memory_order_relaxed);
    } catch (const FailPointAbort&) {
      throw;  // simulated process death surfaces to the submitter
    } catch (const io::IoError& e) {
      degrade(std::string("journal append failed: ") + e.what());
      return false;
    }
  }
  pendingBatches_.fetch_add(1, std::memory_order_relaxed);
  pendingEdges_.fetch_add(edges, std::memory_order_relaxed);
  queue_.push_back(Pending{std::move(batch), seq});
  queueCv_.notify_one();

  if (journal_ && opt_.durability.fsync == FsyncPolicy::GroupCommit) {
    // Bounded-latency ack: wait (outside the lock — other submitters
    // and the ingest thread keep moving) for the flusher to cover this
    // seq. A failed group sync degrades the service but cannot
    // un-accept the batch: it is already visible in apply order.
    lock.unlock();
    if (!journal_->waitDurable(seq))
      degrade("group-commit fsync failed");
  }
  return true;
}

void RankService::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] { return (idle_ && queue_.empty()) || stopping_; });
}

std::uint64_t RankService::waitForEpoch(std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] {
    return publishedEpoch_.load(std::memory_order_acquire) >= epoch || stopping_;
  });
  return publishedEpoch_.load(std::memory_order_acquire);
}

void RankService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stopFlag_.store(true, std::memory_order_relaxed);
  queueCv_.notify_all();
  notFullCv_.notify_all();
  idleCv_.notify_all();
  if (ingest_.joinable()) ingest_.join();
}

void RankService::drainAndStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  queueCv_.notify_all();
  notFullCv_.notify_all();
  if (ingest_.joinable()) ingest_.join();
}

std::vector<double> RankService::ranks() const {
  const SnapshotView view = box_.acquire();
  return view->ranks;
}

double RankService::rank(VertexId v) const {
  const SnapshotView view = box_.acquire();
  return view->rank(v);
}

std::vector<std::pair<VertexId, double>> RankService::topK(std::size_t k) const {
  const SnapshotView view = box_.acquire();
  return view->topK(k);
}

std::vector<PprEntry> RankService::pprTopK(VertexId root, std::size_t k) const {
  const SnapshotView view = box_.acquire();
  if (view->ppr == nullptr) return {};
  return view->ppr->topK(root, k);
}

Staleness RankService::staleness() const {
  const SnapshotView view = box_.acquire();
  Staleness s;
  s.epoch = view->epoch;
  s.toleranceBound = view->toleranceBound;
  s.pendingBatches = pendingBatches_.load(std::memory_order_relaxed);
  s.pendingEdges = pendingEdges_.load(std::memory_order_relaxed);
  s.ageMs = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - view->publishedAt)
                .count();
  s.degraded = degraded_.load(std::memory_order_relaxed);
  return s;
}

ServiceStats RankService::stats() const {
  ServiceStats s;
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.batchesApplied = batchesApplied_.load(std::memory_order_relaxed);
  s.edgesIngested = edgesIngested_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.deltaPushSteps = deltaPushSteps_.load(std::memory_order_relaxed);
  s.monteCarloSteps = monteCarloSteps_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.failedSteps = failedSteps_.load(std::memory_order_relaxed);
  s.reclaimedSnapshots = box_.reclaimedCount();
  s.retiredSnapshots = box_.retiredCount();
  s.journaledBatches = journaledBatches_.load(std::memory_order_relaxed);
  s.replayedBatches = replayedBatches_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.walkCheckpoints = walkCheckpoints_.load(std::memory_order_relaxed);
  s.walkResumes = walkResumes_.load(std::memory_order_relaxed);
  s.walkSidecarsQuarantined =
      walkSidecarsQuarantined_.load(std::memory_order_relaxed);
  s.ioFailures = ioFailures_.load(std::memory_order_relaxed);
  s.journalQuarantinedBytes = journal_ ? journal_->quarantinedBytes() : 0;
  return s;
}

void RankService::degrade(const std::string& why) {
  ioFailures_.fetch_add(1, std::memory_order_relaxed);
  if (!degraded_.exchange(true, std::memory_order_relaxed)) {
    if (opt_.durability.onWarning)
      opt_.durability.onWarning("durability degraded to serve-stale: " + why);
  }
  // Wake submitters blocked on a full queue so they observe the refusal.
  notFullCv_.notify_all();
}

void RankService::maybeCheckpoint(bool force) {
  if (!journal_) return;
  const std::uint64_t cadence = opt_.durability.checkpointEverySolves;
  if (!force && (cadence == 0 || publishesSinceCkpt_ < cadence)) return;
  // Only a published-clean state is checkpointable: needFullResolve_
  // means state_.ranks is NOT a certified fixpoint of curr_, and epoch 0
  // means nothing real was ever published.
  if (needFullResolve_ ||
      publishedEpoch_.load(std::memory_order_acquire) == 0)
    return;
  try {
    CheckpointData data;
    data.epoch = nextEpoch_ - 1;  // the epoch just published
    data.journalSeq = lastAppliedSeq_;
    data.batchesApplied = batchesApplied_.load(std::memory_order_relaxed);
    data.edgesIngested = edgesIngested_.load(std::memory_order_relaxed);
    data.iterations = lastPublishedIterations_;
    data.toleranceBound = lastPublishedBound_;
    data.ranks = state_.ranks.toVector();
    data.graph = curr_;
    // The walk store rides along whenever the resident one is live and
    // consistent with curr_ (monteCarloValid): restart then *resumes*
    // repairs from this store instead of replaying the journal through a
    // from-scratch rebuild.
    if (useMonteCarlo() && state_.monteCarloValid &&
        state_.monteCarlo != nullptr)
      data.walks = detail::mcSerializeStore(*state_.monteCarlo);
    writeCheckpoint(opt_.durability.directory, data);
    pruneCheckpoints(opt_.durability.directory, data.epoch);
    journal_->resetIfCovered(lastAppliedSeq_);
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    if (data.walks) walkCheckpoints_.fetch_add(1, std::memory_order_relaxed);
    publishesSinceCkpt_ = 0;
  } catch (const FailPointAbort&) {
    // Simulated kill mid-checkpoint: every later durability site aborts
    // too (the registry's killed latch), so acknowledge-after-death is
    // impossible. The ingest thread itself survives to keep the test
    // process controllable.
    degrade("checkpoint aborted by fail-point kill");
  } catch (const std::exception& e) {
    const auto* ioe = dynamic_cast<const io::IoError*>(&e);
    const auto* cfe = dynamic_cast<const CsrFileError*>(&e);
    if ((ioe != nullptr && ioe->diskFull()) ||
        (cfe != nullptr && cfe->diskFull())) {
      degrade(std::string("checkpoint failed: ") + e.what());
    } else {
      // Transient-looking failure: skip this cadence tick, warn, retry
      // at the next one. The journal still covers everything.
      ioFailures_.fetch_add(1, std::memory_order_relaxed);
      if (opt_.durability.onWarning)
        opt_.durability.onWarning(std::string("checkpoint skipped: ") +
                                  e.what());
    }
  }
}

std::unique_ptr<FaultInjector> RankService::nextFault() {
  const std::uint64_t idx = solves_.fetch_add(1, std::memory_order_relaxed);
  return opt_.faultFactory ? opt_.faultFactory(idx) : nullptr;
}

void RankService::publishConverged(const PageRankResult& result) {
  auto snap = std::make_unique<RankSnapshot>();
  snap->epoch = nextEpoch_++;
  snap->ranks = state_.ranks.toVector();
  snap->converged = true;
  snap->iterations = result.iterations;
  snap->toleranceBound = result.toleranceBound;  // §4.5 or MC-statistical
  snap->batchesApplied = batchesApplied_.load(std::memory_order_relaxed);
  snap->edgesIngested = edgesIngested_.load(std::memory_order_relaxed);
  snap->publishedAt = std::chrono::steady_clock::now();
  if (result.monteCarlo && state_.monteCarloValid &&
      state_.monteCarlo != nullptr) {
    // MC epochs also publish the personalized index + the determinism
    // fingerprint. Built here, sequentially, from the quiescent store —
    // readers only ever see the immutable flattened copy.
    snap->monteCarlo = true;
    snap->mcFingerprint = state_.monteCarlo->fingerprint();
    snap->ppr = std::make_shared<const PprIndex>(
        detail::buildPprIndex(*state_.monteCarlo, opt_.solver.numThreads));
  }
  if (opt_.onPublish) opt_.onPublish(*snap);
  const std::uint64_t epoch = snap->epoch;
  lastPublishedBound_ = snap->toleranceBound;
  lastPublishedIterations_ = snap->iterations;
  box_.publish(std::move(snap));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  ++publishesSinceCkpt_;

  // Everything folded into the graph so far is now reader-visible.
  pendingBatches_.fetch_sub(unpublishedBatches_, std::memory_order_relaxed);
  pendingEdges_.fetch_sub(unpublishedEdges_, std::memory_order_relaxed);
  unpublishedBatches_ = 0;
  unpublishedEdges_ = 0;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    publishedEpoch_.store(epoch, std::memory_order_release);
  }
  idleCv_.notify_all();
}

bool RankService::useMonteCarlo() const noexcept {
  return opt_.stepEngine == ServiceOptions::StepEngine::MonteCarlo;
}

bool RankService::useDeltaPush(const BatchUpdate& merged) const {
  switch (opt_.stepEngine) {
    case ServiceOptions::StepEngine::Pull: return false;
    case ServiceOptions::StepEngine::MonteCarlo: return false;
    case ServiceOptions::StepEngine::DeltaPush: return true;
    case ServiceOptions::StepEngine::Auto: {
      // Route by the merged batch's edge fraction: the push engine owns
      // the mid-density band (see BENCH_pr8.json); tiny batches are
      // cheaper under the pull worklist (the seed pull per marked vertex
      // dominates) and huge ones under the dense pull sweep.
      const auto graphEdges = static_cast<double>(curr_.numEdges());
      if (graphEdges <= 0.0) return false;
      const double fraction = static_cast<double>(merged.size()) / graphEdges;
      return fraction >= ServiceOptions::kDeltaPushMinFraction &&
             fraction <= ServiceOptions::kDeltaPushMaxFraction;
    }
  }
  return false;
}

bool RankService::stepOnce(std::vector<Pending>&& group) {
  // Fold the group into the graph. prev/curr share the vertex set by
  // construction; the merged edge list is the marking-phase input.
  const CsrGraph prev = curr_;
  BatchUpdate merged;
  for (Pending& p : group) {
    graph_.applyBatch(p.batch);
    batchesApplied_.fetch_add(1, std::memory_order_relaxed);
    edgesIngested_.fetch_add(p.batch.size(), std::memory_order_relaxed);
    ++unpublishedBatches_;
    unpublishedEdges_ += p.batch.size();
    if (p.seq > lastAppliedSeq_) lastAppliedSeq_ = p.seq;
    appendBatch(merged, p.batch);
  }
  if (!group.empty()) curr_ = graph_.toCsr();

  PageRankOptions solveOpt = opt_.solver;
  solveOpt.stopRequested = &stopFlag_;

  PageRankResult result;
  {
    const auto fault = nextFault();
    if (needFullResolve_ && useMonteCarlo()) {
      // MC full resolve = rebuild the walk store on the current graph
      // (any folded batches are already in curr_). Invalidate first so
      // the step cannot mistake prev-consistent walks for current ones.
      state_.monteCarloValid = false;
      monteCarloSteps_.fetch_add(1, std::memory_order_relaxed);
      result = detail::lfMonteCarloStep(state_, curr_, curr_, BatchUpdate{},
                                        solveOpt, fault.get(), "service");
    } else if (needFullResolve_) {
      // Initial solve, or a previous step exhausted recovery: ND
      // semantics — every vertex unconverged, current ranks as seed.
      result = detail::lfFullStep(state_, curr_, solveOpt, fault.get());
    } else if (useMonteCarlo()) {
      // Walk repair against the prev/curr pair. If an exact recovery
      // re-solve invalidated the store since the last MC step, the step
      // rebuilds on prev first, then repairs — same published contract.
      monteCarloSteps_.fetch_add(1, std::memory_order_relaxed);
      result = detail::lfMonteCarloStep(state_, prev, curr_, merged, solveOpt,
                                        fault.get(), "service");
    } else if (useDeltaPush(merged)) {
      deltaPushSteps_.fetch_add(1, std::memory_order_relaxed);
      result = detail::lfDeltaPushStep(state_, prev, curr_, merged, solveOpt,
                                       fault.get(), "service");
    } else {
      result = detail::lfDynamicStep(state_, prev, curr_, merged, solveOpt,
                                     fault.get(), opt_.traverse,
                                     opt_.expandFrontier, "service");
    }
  }
  if (result.stopped) return false;

  // Service-level crash recovery: an unconverged step (crashed workers,
  // iteration cap) is re-solved from scratch semantics before readers
  // ever see it. Until something converges, the last epoch stays
  // published.
  int attempt = 0;
  while (!result.converged && attempt < opt_.maxRecoveryAttempts) {
    ++attempt;
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t solveIndex =
        solves_.load(std::memory_order_relaxed);  // index nextFault will use
    const auto fault = nextFault();
    result = detail::lfFullStep(state_, curr_, solveOpt, fault.get());
    if (opt_.onRecovery) opt_.onRecovery(solveIndex, attempt, result.converged);
    if (result.stopped) return false;
  }

  if (result.converged) {
    needFullResolve_ = false;
    publishConverged(result);
    maybeCheckpoint(/*force=*/false);
  } else {
    // Carry the debt: batches stay folded in, next step solves fully.
    needFullResolve_ = true;
    failedSteps_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool RankService::replayRecovered() {
  if (replay_.empty()) return true;
  const std::size_t maxGroup =
      std::max<std::size_t>(opt_.maxBatchesPerStep, 1);
  std::vector<Pending> group;
  for (auto& r : replay_) {
    replayedBatches_.fetch_add(1, std::memory_order_relaxed);
    group.push_back(Pending{std::move(r.batch), r.seq});
    if (group.size() >= maxGroup) {
      if (!stepOnce(std::move(group))) return false;
      group.clear();
    }
  }
  if (!group.empty() && !stepOnce(std::move(group))) return false;
  replay_.clear();
  replay_.shrink_to_fit();
  // Checkpoint the recovered state so a crash loop cannot replay the
  // same tail forever (each restart's replay work is bounded by one
  // cadence window, not the journal's full history).
  maybeCheckpoint(/*force=*/true);
  return true;
}

void RankService::runLoop() {
  // Initial full solve (epoch 1) before any batch is consumed — unless
  // recovery already republished a checkpointed epoch, whose ranks are a
  // certified fixpoint already.
  if (!recoveredFromCheckpoint_ && !stepOnce({})) return;
  // Journal-tail replay (no-op without durability): re-apply batches
  // that were acknowledged but not yet checkpointed, through the same
  // step path a live ingest uses.
  if (!replayRecovered()) return;

  while (true) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      idle_ = true;
      idleCv_.notify_all();
      queueCv_.wait(lock, [&] {
        return stopping_ || draining_ || !queue_.empty();
      });
      if (stopping_) return;  // hard stop abandons queued batches
      if (queue_.empty()) return;  // draining and drained
      idle_ = false;
      const std::size_t take =
          std::min(queue_.size(), std::max<std::size_t>(opt_.maxBatchesPerStep, 1));
      group.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    notFullCv_.notify_all();
    if (!stepOnce(std::move(group))) return;
  }
}

}  // namespace lfpr
