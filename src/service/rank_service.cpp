#include "service/rank_service.hpp"

#include <chrono>
#include <stdexcept>

namespace lfpr {

namespace {

/// Fold `batch` onto `merged` (marking union for a coalesced step).
void appendBatch(BatchUpdate& merged, const BatchUpdate& batch) {
  merged.deletions.insert(merged.deletions.end(), batch.deletions.begin(),
                          batch.deletions.end());
  merged.insertions.insert(merged.insertions.end(), batch.insertions.begin(),
                           batch.insertions.end());
}

}  // namespace

RankService::RankService(const CsrGraph& initial, ServiceOptions opt)
    : opt_(std::move(opt)),
      numVertices_(initial.numVertices()),
      graph_(DynamicDigraph::fromCsr(initial)),
      state_(initial.numVertices()) {
  graph_.ensureSelfLoops();
  curr_ = graph_.toCsr();
  state_.seedUniform();

  // Epoch-0 placeholder so readers never observe a null snapshot: uniform
  // ranks, honest converged=false and an infinite certificate.
  auto seed = std::make_unique<RankSnapshot>();
  seed->epoch = 0;
  seed->ranks.assign(numVertices_,
                     numVertices_ > 0 ? 1.0 / static_cast<double>(numVertices_)
                                      : 0.0);
  seed->publishedAt = std::chrono::steady_clock::now();
  box_.publish(std::move(seed));

  ingest_ = std::thread([this] { runLoop(); });
}

RankService::~RankService() { stop(); }

void RankService::validateBatch(const BatchUpdate& batch) const {
  for (const Edge& e : batch.deletions)
    if (e.src >= numVertices_ || e.dst >= numVertices_)
      throw std::out_of_range("RankService: batch edge out of range");
  for (const Edge& e : batch.insertions)
    if (e.src >= numVertices_ || e.dst >= numVertices_)
      throw std::out_of_range("RankService: batch edge out of range");
}

bool RankService::submit(BatchUpdate batch) {
  validateBatch(batch);
  const std::uint64_t edges = batch.size();
  std::unique_lock<std::mutex> lock(mutex_);
  notFullCv_.wait(lock, [&] {
    return stopping_ || draining_ || queue_.size() < opt_.queueCapacity;
  });
  if (stopping_ || draining_) return false;
  pendingBatches_.fetch_add(1, std::memory_order_relaxed);
  pendingEdges_.fetch_add(edges, std::memory_order_relaxed);
  queue_.push_back(std::move(batch));
  queueCv_.notify_one();
  return true;
}

bool RankService::trySubmit(BatchUpdate batch) {
  validateBatch(batch);
  const std::uint64_t edges = batch.size();
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || draining_ || queue_.size() >= opt_.queueCapacity)
    return false;
  pendingBatches_.fetch_add(1, std::memory_order_relaxed);
  pendingEdges_.fetch_add(edges, std::memory_order_relaxed);
  queue_.push_back(std::move(batch));
  queueCv_.notify_one();
  return true;
}

void RankService::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] { return (idle_ && queue_.empty()) || stopping_; });
}

std::uint64_t RankService::waitForEpoch(std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] {
    return publishedEpoch_.load(std::memory_order_acquire) >= epoch || stopping_;
  });
  return publishedEpoch_.load(std::memory_order_acquire);
}

void RankService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stopFlag_.store(true, std::memory_order_relaxed);
  queueCv_.notify_all();
  notFullCv_.notify_all();
  idleCv_.notify_all();
  if (ingest_.joinable()) ingest_.join();
}

void RankService::drainAndStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  queueCv_.notify_all();
  notFullCv_.notify_all();
  if (ingest_.joinable()) ingest_.join();
}

std::vector<double> RankService::ranks() const {
  const SnapshotView view = box_.acquire();
  return view->ranks;
}

double RankService::rank(VertexId v) const {
  const SnapshotView view = box_.acquire();
  return view->rank(v);
}

std::vector<std::pair<VertexId, double>> RankService::topK(std::size_t k) const {
  const SnapshotView view = box_.acquire();
  return view->topK(k);
}

Staleness RankService::staleness() const {
  const SnapshotView view = box_.acquire();
  Staleness s;
  s.epoch = view->epoch;
  s.toleranceBound = view->toleranceBound;
  s.pendingBatches = pendingBatches_.load(std::memory_order_relaxed);
  s.pendingEdges = pendingEdges_.load(std::memory_order_relaxed);
  s.ageMs = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - view->publishedAt)
                .count();
  return s;
}

ServiceStats RankService::stats() const {
  ServiceStats s;
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.batchesApplied = batchesApplied_.load(std::memory_order_relaxed);
  s.edgesIngested = edgesIngested_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.failedSteps = failedSteps_.load(std::memory_order_relaxed);
  s.reclaimedSnapshots = box_.reclaimedCount();
  s.retiredSnapshots = box_.retiredCount();
  return s;
}

std::unique_ptr<FaultInjector> RankService::nextFault() {
  const std::uint64_t idx = solves_.fetch_add(1, std::memory_order_relaxed);
  return opt_.faultFactory ? opt_.faultFactory(idx) : nullptr;
}

void RankService::publishConverged(const PageRankResult& result) {
  auto snap = std::make_unique<RankSnapshot>();
  snap->epoch = nextEpoch_++;
  snap->ranks = state_.ranks.toVector();
  snap->converged = true;
  snap->iterations = result.iterations;
  snap->toleranceBound = result.toleranceBound;  // §4.5 certificate
  snap->batchesApplied = batchesApplied_.load(std::memory_order_relaxed);
  snap->edgesIngested = edgesIngested_.load(std::memory_order_relaxed);
  snap->publishedAt = std::chrono::steady_clock::now();
  if (opt_.onPublish) opt_.onPublish(*snap);
  const std::uint64_t epoch = snap->epoch;
  box_.publish(std::move(snap));
  publishes_.fetch_add(1, std::memory_order_relaxed);

  // Everything folded into the graph so far is now reader-visible.
  pendingBatches_.fetch_sub(unpublishedBatches_, std::memory_order_relaxed);
  pendingEdges_.fetch_sub(unpublishedEdges_, std::memory_order_relaxed);
  unpublishedBatches_ = 0;
  unpublishedEdges_ = 0;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    publishedEpoch_.store(epoch, std::memory_order_release);
  }
  idleCv_.notify_all();
}

bool RankService::stepOnce(std::vector<BatchUpdate>&& group) {
  // Fold the group into the graph. prev/curr share the vertex set by
  // construction; the merged edge list is the marking-phase input.
  const CsrGraph prev = curr_;
  BatchUpdate merged;
  for (BatchUpdate& b : group) {
    graph_.applyBatch(b);
    batchesApplied_.fetch_add(1, std::memory_order_relaxed);
    edgesIngested_.fetch_add(b.size(), std::memory_order_relaxed);
    ++unpublishedBatches_;
    unpublishedEdges_ += b.size();
    appendBatch(merged, b);
  }
  if (!group.empty()) curr_ = graph_.toCsr();

  PageRankOptions solveOpt = opt_.solver;
  solveOpt.stopRequested = &stopFlag_;

  PageRankResult result;
  {
    const auto fault = nextFault();
    if (needFullResolve_) {
      // Initial solve, or a previous step exhausted recovery: ND
      // semantics — every vertex unconverged, current ranks as seed.
      result = detail::lfFullStep(state_, curr_, solveOpt, fault.get());
    } else {
      result = detail::lfDynamicStep(state_, prev, curr_, merged, solveOpt,
                                     fault.get(), opt_.traverse,
                                     opt_.expandFrontier, "service");
    }
  }
  if (result.stopped) return false;

  // Service-level crash recovery: an unconverged step (crashed workers,
  // iteration cap) is re-solved from scratch semantics before readers
  // ever see it. Until something converges, the last epoch stays
  // published.
  int attempt = 0;
  while (!result.converged && attempt < opt_.maxRecoveryAttempts) {
    ++attempt;
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t solveIndex =
        solves_.load(std::memory_order_relaxed);  // index nextFault will use
    const auto fault = nextFault();
    result = detail::lfFullStep(state_, curr_, solveOpt, fault.get());
    if (opt_.onRecovery) opt_.onRecovery(solveIndex, attempt, result.converged);
    if (result.stopped) return false;
  }

  if (result.converged) {
    needFullResolve_ = false;
    publishConverged(result);
  } else {
    // Carry the debt: batches stay folded in, next step solves fully.
    needFullResolve_ = true;
    failedSteps_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void RankService::runLoop() {
  // Initial full solve (epoch 1) before any batch is consumed.
  if (!stepOnce({})) return;

  while (true) {
    std::vector<BatchUpdate> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      idle_ = true;
      idleCv_.notify_all();
      queueCv_.wait(lock, [&] {
        return stopping_ || draining_ || !queue_.empty();
      });
      if (stopping_) return;  // hard stop abandons queued batches
      if (queue_.empty()) return;  // draining and drained
      idle_ = false;
      const std::size_t take =
          std::min(queue_.size(), std::max<std::size_t>(opt_.maxBatchesPerStep, 1));
      group.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    notFullCv_.notify_all();
    if (!stepOnce(std::move(group))) return;
  }
}

}  // namespace lfpr
