#include "harness/scenario.hpp"

#include <algorithm>

#include "generate/batch_gen.hpp"
#include "util/rng.hpp"

namespace lfpr {

DynamicScenario makeScenario(DynamicDigraph base, double batchFraction,
                             std::uint64_t seed, const PageRankOptions& opt) {
  Rng rng(seed);
  BatchUpdate batch = generateBatchFraction(base, batchFraction, rng);
  return makeScenarioWithBatch(std::move(base), std::move(batch), opt);
}

DynamicScenario makeScenarioWithBatch(DynamicDigraph base, BatchUpdate batch,
                                      const PageRankOptions& opt) {
  DynamicScenario s;
  s.prev = base.toCsr();
  s.batch = std::move(batch);
  base.applyBatch(s.batch);
  s.curr = base.toCsr();
  // Warm-start ranks must be converged *below the frontier tolerance*: a
  // vertex whose warm rank still carries a residual above tau_f would mark
  // its neighbours on recomputation even though the batch never influenced
  // it, flooding the Dynamic Frontier with convergence noise rather than
  // genuine change. The paper's protocol uses reference-quality previous
  // ranks for the same reason.
  PageRankOptions prevOpt = opt;
  prevOpt.tolerance =
      std::max(1e-16, std::min(opt.tolerance, opt.frontierTolerance / 100.0));
  s.prevRanks = staticBB(s.prev, prevOpt).ranks;
  return s;
}

PageRankResult runOnScenario(Approach approach, const DynamicScenario& s,
                             const PageRankOptions& opt, FaultInjector* fault) {
  return runApproach(approach, s.prev, s.curr, s.batch, s.prevRanks, opt, fault);
}

PageRankOptions scaledOptions(VertexId numVertices, PageRankOptions base) {
  const double n = std::max<double>(1.0, numVertices);
  base.tolerance = std::min(1e-3 / n, 1e-6);
  base.frontierTolerance = base.tolerance / 1000.0;
  return base;
}

}  // namespace lfpr
