#include "harness/datasets.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "generate/generators.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_log.hpp"
#include "util/rng.hpp"

namespace lfpr {

namespace {

// Scale 2 is sized so the big web stand-ins reach ~30M edges: the pull
// kernels' working set (in-sources + rank vector) then exceeds even a
// 105 MiB server L3, which is the regime the paper's SuiteSparse graphs
// occupy and the one where the Weighted layout's sequential arc stream
// is supposed to pay off (ROADMAP open question; settled in
// BENCH_pr4.json). Generating that tier takes minutes — use the dataset
// cache (LFPR_DATASET_DIR) so it happens once.
double scaleFactor(int scale) {
  switch (scale) {
    case 0: return 0.35;
    case 2: return 24.0;
    default: return 1.0;
  }
}

DynamicDigraph finalize(VertexId numVertices, std::vector<Edge> edges) {
  appendSelfLoops(edges, numVertices);
  return DynamicDigraph::fromEdges(numVertices, edges);
}

/// Host-structured web-crawl stand-in (see generateWebGraph): power-law
/// degrees plus the site-locality that gives real crawls their large
/// effective diameter.
DatasetSpec webSpec(std::string name, std::string paperName, double pV, double pE,
                    double pD, VertexId numPages, double avgDegree, int scale) {
  const auto n = static_cast<VertexId>(scaleFactor(scale) *
                                       static_cast<double>(numPages));
  return DatasetSpec{
      std::move(name), "web", std::move(paperName), pV, pE, pD,
      [n, avgDegree](std::uint64_t seed) {
        Rng rng(seed);
        // Small hosts keep the frontier ball (a few host-hops wide) at a
        // few hundred pages; with tens of thousands of hosts the ball is
        // a small share of the graph, as on the real multi-million-page
        // crawls (DESIGN.md Section 3).
        return finalize(n, generateWebGraph(n, /*hostSize=*/50, avgDegree, rng));
      }};
}

DatasetSpec socialSpec(std::string name, std::string paperName, double pV, double pE,
                       double pD, VertexId numVertices, VertexId edgesPerVertex,
                       int scale) {
  const auto n = static_cast<VertexId>(scaleFactor(scale) *
                                       static_cast<double>(numVertices));
  return DatasetSpec{
      std::move(name), "social", std::move(paperName), pV, pE, pD,
      [n, edgesPerVertex](std::uint64_t seed) {
        Rng rng(seed);
        return finalize(n, symmetrize(generateBarabasiAlbert(n, edgesPerVertex, rng)));
      }};
}

DatasetSpec roadSpec(std::string name, std::string paperName, double pV, double pE,
                     double pD, VertexId rows, VertexId cols, int scale) {
  const double f = std::sqrt(scaleFactor(scale));
  const auto r = static_cast<VertexId>(f * static_cast<double>(rows));
  const auto c = static_cast<VertexId>(f * static_cast<double>(cols));
  return DatasetSpec{
      std::move(name), "road", std::move(paperName), pV, pE, pD,
      [r, c](std::uint64_t seed) {
        Rng rng(seed);
        // Shortcuts are kept rare: long-range links shrink the effective
        // diameter, and the Dynamic Frontier's advantage on road networks
        // rests on diameter >> frontier radius (DESIGN.md Section 3).
        auto edges = generateGrid(r, c, /*shortcutFraction=*/0.002, rng);
        // Thin the lattice toward the road-network average degree (~3.1):
        // drop a quarter of the undirected links before symmetrizing.
        std::vector<Edge> kept;
        kept.reserve(edges.size());
        for (const Edge& e : edges)
          if (!rng.chance(0.25)) kept.push_back(e);
        return finalize(r * c, symmetrize(kept));
      }};
}

DatasetSpec kmerSpec(std::string name, std::string paperName, double pV, double pE,
                     double pD, VertexId numVertices, int scale) {
  const auto n = static_cast<VertexId>(scaleFactor(scale) *
                                       static_cast<double>(numVertices));
  return DatasetSpec{
      std::move(name), "kmer", std::move(paperName), pV, pE, pD,
      [n](std::uint64_t seed) {
        Rng rng(seed);
        return finalize(n, symmetrize(generateKmerChains(n, /*branch=*/0.55, rng)));
      }};
}

}  // namespace

std::vector<DatasetSpec> staticDatasets(int scale) {
  std::vector<DatasetSpec> specs;
  // Web graphs (LAW) — directed, power-law, avg degree ~24-39.
  specs.push_back(webSpec("indochina-2004-sim", "indochina-2004", 7.41e6, 199e6, 26.8,
                          48000, 26.8, scale));
  specs.push_back(webSpec("arabic-2005-sim", "arabic-2005", 22.7e6, 654e6, 28.8, 48000,
                          28.8, scale));
  specs.push_back(
      webSpec("uk-2005-sim", "uk-2005", 39.5e6, 961e6, 24.3, 48000, 24.3, scale));
  specs.push_back(webSpec("webbase-2001-sim", "webbase-2001", 118e6, 1.11e9, 9.4,
                          96000, 9.4, scale));
  specs.push_back(
      webSpec("it-2004-sim", "it-2004", 41.3e6, 1.18e9, 28.5, 48000, 28.5, scale));
  specs.push_back(
      webSpec("sk-2005-sim", "sk-2005", 50.6e6, 1.98e9, 39.1, 32000, 39.1, scale));
  // Social networks (SNAP) — undirected originals, heavy-tailed.
  specs.push_back(socialSpec("com-LiveJournal-sim", "com-LiveJournal", 4.00e6, 73.4e6,
                             18.3, 12000, 9, scale));
  specs.push_back(
      socialSpec("com-Orkut-sim", "com-Orkut", 3.07e6, 237e6, 77.3, 5000, 38, scale));
  // Road networks (DIMACS10) — near-planar, avg degree ~3.1. Side lengths
  // are kept well above the ~50-hop frontier radius so small updates stay
  // local (the property that makes road networks DF's best case, 5.2.2).
  specs.push_back(
      roadSpec("asia_osm-sim", "asia_osm", 12.0e6, 37.4e6, 3.1, 220, 280, scale));
  specs.push_back(
      roadSpec("europe_osm-sim", "europe_osm", 50.9e6, 159e6, 3.1, 280, 360, scale));
  // Protein k-mer graphs (GenBank) — long chains, avg degree ~3.1.
  specs.push_back(kmerSpec("kmer_A2a-sim", "kmer_A2a", 171e6, 531e6, 3.1, 60000, scale));
  specs.push_back(kmerSpec("kmer_V1r-sim", "kmer_V1r", 214e6, 679e6, 3.2, 80000, scale));
  return specs;
}

std::vector<DatasetSpec> representativeDatasets(int scale) {
  auto all = staticDatasets(scale);
  std::vector<DatasetSpec> out;
  for (auto& spec : all)
    if (spec.name == "indochina-2004-sim" || spec.name == "com-LiveJournal-sim" ||
        spec.name == "asia_osm-sim" || spec.name == "kmer_A2a-sim")
      out.push_back(std::move(spec));
  return out;
}

std::vector<TemporalDatasetSpec> temporalDatasets(int scale) {
  const double f = scaleFactor(scale);
  std::vector<TemporalDatasetSpec> specs;
  // Temporal locality (narrow recent-vertex windows) is what gives these
  // streams an effective diameter that grows with size — the property
  // that keeps the Dynamic Frontier local on the real wiki-talk /
  // sx-stackoverflow graphs (avg degree ~3, millions of vertices).
  // The stand-ins must satisfy diameter >> frontier radius (~85 sparse-
  // graph hops at tau_f = tau/1000) for the Dynamic Frontier to stay
  // local, as it does on the 1M+-vertex originals; hence large n, narrow
  // windows, and few hub links.
  // wiki-talk-temporal: |V| 1.14M, |E_T| 7.83M, |E| 3.31M  (|E|/|E_T| ~ 0.42)
  {
    const auto n = static_cast<VertexId>(120000 * f);
    const auto m = static_cast<EdgeId>(600000 * f);
    specs.push_back(TemporalDatasetSpec{
        "wiki-talk-temporal-sim", "wiki-talk-temporal", 1.14e6, 7.83e6, 3.31e6,
        [n, m](std::uint64_t seed) {
          Rng rng(seed);
          TemporalEdgeListData data;
          data.numVertices = n;
          data.edges = generateTemporalStream(n, m, /*duplicateFraction=*/0.45, rng,
                                              /*hubFraction=*/0.04,
                                              /*localityWindow=*/n / 250);
          return data;
        }});
  }
  // sx-stackoverflow: |V| 2.60M, |E_T| 63.4M, |E| 36.2M  (|E|/|E_T| ~ 0.57)
  {
    const auto n = static_cast<VertexId>(140000 * f);
    const auto m = static_cast<EdgeId>(840000 * f);
    specs.push_back(TemporalDatasetSpec{
        "sx-stackoverflow-sim", "sx-stackoverflow", 2.60e6, 63.4e6, 36.2e6,
        [n, m](std::uint64_t seed) {
          Rng rng(seed);
          TemporalEdgeListData data;
          data.numVertices = n;
          data.edges = generateTemporalStream(n, m, /*duplicateFraction=*/0.30, rng,
                                              /*hubFraction=*/0.04,
                                              /*localityWindow=*/n / 250);
          return data;
        }});
  }
  return specs;
}

namespace {

namespace fs = std::filesystem;

/// (name, scale, seed, format version) — bumping a format version
/// invalidates old cache entries by changing the file name, so stale
/// snapshots are never even opened.
std::string cacheFileName(const std::string& name, int scale, std::uint64_t seed,
                          std::uint32_t version, const char* ext) {
  return name + "-scale" + std::to_string(scale) + "-seed" + std::to_string(seed) +
         "-v" + std::to_string(version) + ext;
}

fs::path ensuredDir(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);  // ok if it already exists
  return dir;
}

}  // namespace

std::string datasetCacheDir() {
  const char* dir = std::getenv("LFPR_DATASET_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

std::string datasetCsrPath(const DatasetSpec& spec, int scale, std::uint64_t seed) {
  const std::string root = datasetCacheDir();
  if (root.empty()) return {};
  return (fs::path(root) /
          cacheFileName(spec.name, scale, seed, kCsrFileVersion, ".csr"))
      .string();
}

CsrGraph loadDatasetCsr(const DatasetSpec& spec, int scale, std::uint64_t seed,
                        bool* generated) {
  if (generated != nullptr) *generated = false;
  const std::string path = datasetCsrPath(spec, scale, seed);
  if (path.empty()) {
    if (generated != nullptr) *generated = true;
    return spec.build(seed).toCsr();
  }

  ensuredDir(fs::path(path).parent_path());
  std::error_code ec;
  if (fs::exists(path, ec)) return mapCsrFile(path);
  if (generated != nullptr) *generated = true;
  CsrGraph g = spec.build(seed).toCsr();
  writeCsrFile(path, g);
  // Hand back the mapped snapshot, not the freshly built vectors: first
  // and later runs then measure the identical read path.
  return mapCsrFile(path);
}

DynamicDigraph loadDatasetGraph(const DatasetSpec& spec, int scale,
                                std::uint64_t seed, bool* generated) {
  if (generated != nullptr) *generated = false;
  const std::string path = datasetCsrPath(spec, scale, seed);
  if (path.empty()) {
    if (generated != nullptr) *generated = true;
    return spec.build(seed);
  }

  ensuredDir(fs::path(path).parent_path());
  std::error_code ec;
  if (fs::exists(path, ec)) return DynamicDigraph::fromCsr(mapCsrFile(path));
  if (generated != nullptr) *generated = true;
  DynamicDigraph g = spec.build(seed);
  writeCsrFile(path, g.toCsr());
  return g;
}

std::string temporalLogPath(const TemporalDatasetSpec& spec, int scale,
                            std::uint64_t seed) {
  const std::string root = datasetCacheDir();
  // Cache disabled: the replay path still needs a file, but the contract
  // is "regenerate per run" — a per-process temp dir keeps one run's
  // repeated loads cheap without ever replaying a stale log from an
  // earlier build (and sidesteps multi-user /tmp ownership clashes).
  const fs::path dir =
      root.empty() ? fs::temp_directory_path() /
                         ("lfpr-datasets-" + std::to_string(::getpid()))
                   : fs::path(root);
  const fs::path path =
      ensuredDir(dir) / cacheFileName(spec.name, scale, seed, kEdgeLogVersion, ".elog");
  std::error_code ec;
  if (!fs::exists(path, ec)) writeTemporalEdgeLog(path.string(), spec.build(seed));
  return path.string();
}

}  // namespace lfpr
