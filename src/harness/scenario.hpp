// A DynamicScenario packages everything an engine run needs for one
// (graph, batch) experiment: both snapshots, the batch, and converged
// ranks on the previous snapshot — the state a deployed dynamic-PageRank
// service would carry between updates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/options.hpp"
#include "pagerank/pagerank.hpp"

namespace lfpr {

struct DynamicScenario {
  CsrGraph prev;
  CsrGraph curr;
  BatchUpdate batch;
  std::vector<double> prevRanks;  // converged ranks on `prev`
};

/// Build a scenario by generating a random batch (paper protocol) against
/// `base` and applying it. `base` is consumed. Previous ranks come from a
/// barrier-based static solve at opt's tolerance (deterministic).
DynamicScenario makeScenario(DynamicDigraph base, double batchFraction,
                             std::uint64_t seed, const PageRankOptions& opt);

/// Same, but with an explicit batch (used by temporal replay and the
/// stability experiment).
DynamicScenario makeScenarioWithBatch(DynamicDigraph base, BatchUpdate batch,
                                      const PageRankOptions& opt);

/// Convenience: run one approach on a scenario.
PageRankResult runOnScenario(Approach approach, const DynamicScenario& s,
                             const PageRankOptions& opt,
                             FaultInjector* fault = nullptr);

/// Bench protocol: tolerances scaled to graph size. The paper's absolute
/// tau = 1e-10 on multi-million-vertex graphs is a ~1e-3 criterion
/// relative to the 1/n rank scale; at laptop scale the same absolute
/// tolerance is orders of magnitude stricter *relative* to rank values,
/// which inflates iteration counts and the Dynamic Frontier's propagation
/// radius. Holding the relative criterion fixed (tau = 1e-3/n, tau_f =
/// tau/1000) keeps iteration counts and frontier sizes comparable to the
/// paper's regime. See DESIGN.md Section 3.
PageRankOptions scaledOptions(VertexId numVertices, PageRankOptions base = {});

}  // namespace lfpr
