// Registry of deterministic synthetic stand-ins for the paper's datasets
// (Tables 1 and 2). Each spec records which paper graph it substitutes
// and that graph's published statistics so the dataset tables can print
// paper-vs-generated side by side. See DESIGN.md Section 3 for why these
// substitutions preserve the evaluated behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/dynamic_digraph.hpp"
#include "graph/io.hpp"

namespace lfpr {

struct DatasetSpec {
  std::string name;       // e.g. "indochina-2004-sim"
  std::string family;     // web | social | road | kmer
  std::string paperName;  // the SuiteSparse graph this stands in for
  double paperVertices;   // published |V|
  double paperEdges;      // published |E|
  double paperAvgDegree;  // published D_avg
  /// Builds the graph (self-loops included) from a seed.
  std::function<DynamicDigraph(std::uint64_t seed)> build;
};

/// The 12 static stand-ins of Table 2. `scale`: 0 smoke, 1 default, 2 big.
std::vector<DatasetSpec> staticDatasets(int scale);

/// One representative per family (for expensive fault benches).
std::vector<DatasetSpec> representativeDatasets(int scale);

struct TemporalDatasetSpec {
  std::string name;
  std::string paperName;
  double paperVertices;
  double paperTemporalEdges;
  double paperStaticEdges;
  std::function<TemporalEdgeListData(std::uint64_t seed)> build;
};

/// The 2 temporal stand-ins of Table 1.
std::vector<TemporalDatasetSpec> temporalDatasets(int scale);

}  // namespace lfpr
