// Registry of deterministic synthetic stand-ins for the paper's datasets
// (Tables 1 and 2). Each spec records which paper graph it substitutes
// and that graph's published statistics so the dataset tables can print
// paper-vs-generated side by side. See DESIGN.md Section 3 for why these
// substitutions preserve the evaluated behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/dynamic_digraph.hpp"
#include "graph/io.hpp"

namespace lfpr {

struct DatasetSpec {
  std::string name;       // e.g. "indochina-2004-sim"
  std::string family;     // web | social | road | kmer
  std::string paperName;  // the SuiteSparse graph this stands in for
  double paperVertices;   // published |V|
  double paperEdges;      // published |E|
  double paperAvgDegree;  // published D_avg
  /// Builds the graph (self-loops included) from a seed.
  std::function<DynamicDigraph(std::uint64_t seed)> build;
};

/// The 12 static stand-ins of Table 2. `scale`: 0 smoke, 1 default, 2 big.
std::vector<DatasetSpec> staticDatasets(int scale);

/// One representative per family (for expensive fault benches).
std::vector<DatasetSpec> representativeDatasets(int scale);

struct TemporalDatasetSpec {
  std::string name;
  std::string paperName;
  double paperVertices;
  double paperTemporalEdges;
  double paperStaticEdges;
  std::function<TemporalEdgeListData(std::uint64_t seed)> build;
};

/// The 2 temporal stand-ins of Table 1.
std::vector<TemporalDatasetSpec> temporalDatasets(int scale);

// ---------------------------------------------------------------------------
// Dataset cache: generate once, mmap thereafter.
//
// When LFPR_DATASET_DIR is set, graphs are persisted as CSR snapshot
// files (csr_file.hpp) and temporal streams as edge logs (edge_log.hpp),
// keyed by (dataset name, scale, seed, format version); later runs load
// the snapshot zero-copy instead of regenerating — the difference between
// minutes and milliseconds at scale 2. Unset, static graphs are rebuilt
// in memory as before and temporal logs go to a per-user temp directory
// (the replay path always streams from a file).
// ---------------------------------------------------------------------------

/// Cache root from LFPR_DATASET_DIR; empty string = caching disabled.
std::string datasetCacheDir();

/// On-disk snapshot path for (spec, scale, seed) under the cache root —
/// the one place that knows the cache naming scheme (callers that mmap
/// the file directly, e.g. bench_micro_kernels, must not re-derive it).
/// Empty string when caching is disabled; the file exists once
/// loadDatasetCsr has run for the same key.
std::string datasetCsrPath(const DatasetSpec& spec, int scale, std::uint64_t seed);

/// CSR snapshot for (spec, scale, seed): mmap-loaded on a cache hit,
/// built (and persisted, cache enabled) on a miss. `generated`, when
/// non-null, reports whether spec.build actually ran — the observable
/// the dataset-cache CI smoke asserts on.
CsrGraph loadDatasetCsr(const DatasetSpec& spec, int scale, std::uint64_t seed,
                        bool* generated = nullptr);

/// Mutable-graph equivalent for benches that apply batches; a cache hit
/// reconstructs the adjacency from the snapshot instead of regenerating.
DynamicDigraph loadDatasetGraph(const DatasetSpec& spec, int scale,
                                std::uint64_t seed, bool* generated = nullptr);

/// Path to the persisted temporal edge log for (spec, scale, seed),
/// written on first use (under the cache dir, or a temp dir when the
/// cache is disabled).
std::string temporalLogPath(const TemporalDatasetSpec& spec, int scale,
                            std::uint64_t seed);

}  // namespace lfpr
