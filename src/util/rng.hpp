// Deterministic pseudo-random number generation for graph generation,
// batch-update sampling, and fault injection.
//
// We implement SplitMix64 (seeding / cheap per-thread streams) and
// xoshiro256** (bulk generation). Both are tiny, fast, and reproducible
// across platforms, which matters because every experiment in this
// repository must be re-runnable bit-for-bit from a seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace lfpr {

/// SplitMix64: a 64-bit mixer. Used to derive independent streams from a
/// single user seed and as a minimal standalone generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator with 256-bit state.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if
/// needed, but we provide the distribution helpers we use directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased and branch-light.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream (for per-thread generators).
  Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lfpr
