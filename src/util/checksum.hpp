// Word-wide FNV-1a checksum shared by the on-disk snapshot formats
// (csr_file, edge_log). Corruption detection only — not cryptographic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace lfpr {

/// 64-bit FNV-1a folding 8 input bytes per multiply (tail zero-padded, so
/// the value is independent of how the input was chunked only if chunks
/// are 8-byte multiples — Checksum64 feeds full words across chunks).
class Checksum64 {
 public:
  /// Absorb bytes. Chunks may have any length; the stream position is
  /// carried so feeding the same bytes in different chunkings yields the
  /// same value.
  void update(std::span<const std::byte> bytes) noexcept {
    const std::byte* p = bytes.data();
    std::size_t n = bytes.size();
    // Fill a pending partial word first.
    while (pending_ != 0 && n != 0) {
      word_ |= static_cast<std::uint64_t>(std::to_integer<unsigned>(*p))
               << (8 * pending_);
      pending_ = (pending_ + 1) % 8;
      if (pending_ == 0) absorb(word_), word_ = 0;
      ++p;
      --n;
    }
    while (n >= 8) {
      std::uint64_t w;
      std::memcpy(&w, p, 8);
      absorb(w);
      p += 8;
      n -= 8;
    }
    while (n != 0) {
      word_ |= static_cast<std::uint64_t>(std::to_integer<unsigned>(*p))
               << (8 * pending_);
      ++pending_;
      ++p;
      --n;
    }
  }

  /// Final value (tail word zero-padded). May be called repeatedly.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t h = h_;
    if (pending_ != 0) {
      h ^= word_;
      h *= kPrime;
    }
    return h;
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  void absorb(std::uint64_t w) noexcept {
    h_ ^= w;
    h_ *= kPrime;
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;
  std::uint64_t word_ = 0;
  unsigned pending_ = 0;
};

inline std::uint64_t checksum64(std::span<const std::byte> bytes) noexcept {
  Checksum64 c;
  c.update(bytes);
  return c.value();
}

/// View a trivially-copyable value as its raw bytes — the journal and
/// checkpoint formats checksum fixed-layout structs this way.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const std::byte> podBytes(const T& value) noexcept {
  return std::as_bytes(std::span<const T, 1>(&value, 1));
}

}  // namespace lfpr
