// Allocator adaptor that default-initializes (rather than
// value-initializes) elements a container creates without explicit
// arguments: resizing a multi-megabyte trivially-copyable buffer that
// is fully overwritten right afterwards should not pay a memset first.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace lfpr {

template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using Traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename Traits::template rebind_alloc<U>>;
  };

  using A::A;

  /// The no-argument case is the whole point: `U u;` leaves trivial
  /// types uninitialized where `U u{};` would zero them.
  template <typename U>
  void construct(U* ptr) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    Traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace lfpr
