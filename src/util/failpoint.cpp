#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace lfpr {

FailPointAbort::FailPointAbort(std::string point)
    : point_(std::move(point)),
      what_("fail point '" + point_ + "' fired (simulated process kill)") {}

const char* FailPointAbort::what() const noexcept { return what_.c_str(); }

struct FailPoints::Impl {
  struct PointState {
    std::uint64_t hits = 0;
    // Kill arm: fire when hits reaches killAt (0 = not armed).
    std::uint64_t killAt = 0;
    // Errno arm: report err for the next errnoTimes executions.
    int err = 0;
    std::uint64_t errnoTimes = 0;
    std::size_t seenOrder = 0;  // 1-based first-execution order, 0 = unseen
  };

  mutable std::mutex mutex;
  std::unordered_map<std::string, PointState> points;
  bool killed = false;
  std::size_t nextSeen = 1;

  PointState& at(const std::string& point) { return points[point]; }

  void noteSeen(PointState& s) {
    if (s.seenOrder == 0) s.seenOrder = nextSeen++;
  }
};

FailPoints::FailPoints() : impl_(new Impl) {
  // Env arming for out-of-process schedules (nightly randomized lanes):
  // LFPR_FAILPOINT="name" or "name:hit".
  if (const char* env = std::getenv("LFPR_FAILPOINT"); env != nullptr && *env) {
    std::string spec(env);
    std::uint64_t hit = 1;
    if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
      hit = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
      if (hit == 0) hit = 1;
      spec.resize(colon);
    }
    impl_->at(spec).killAt = hit;
  }
}

FailPoints& FailPoints::instance() {
  static FailPoints f;
  return f;
}

void FailPoints::armKill(const std::string& point, std::uint64_t hit) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->at(point).killAt = hit == 0 ? 1 : hit;
}

void FailPoints::armErrno(const std::string& point, int err,
                          std::uint64_t times) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& s = impl_->at(point);
  s.err = err;
  s.errnoTimes = times;
}

void FailPoints::disarmAll() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->points.clear();
  impl_->killed = false;
  impl_->nextSeen = 1;
}

bool FailPoints::killed() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->killed;
}

std::vector<std::string> FailPoints::pointsSeen() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> seen;
  for (const auto& [name, s] : impl_->points)
    if (s.seenOrder != 0) seen.push_back(name);
  std::sort(seen.begin(), seen.end(),
            [this](const std::string& a, const std::string& b) {
              return impl_->points.at(a).seenOrder <
                     impl_->points.at(b).seenOrder;
            });
  return seen;
}

std::uint64_t FailPoints::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->points.find(point);
  return it == impl_->points.end() ? 0 : it->second.hits;
}

void FailPoints::onHit(const char* point) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->killed) throw FailPointAbort(point);
  auto& s = impl_->at(point);
  impl_->noteSeen(s);
  ++s.hits;
  if (s.killAt != 0 && s.hits >= s.killAt) {
    impl_->killed = true;
    throw FailPointAbort(point);
  }
}

int FailPoints::consumeErrno(const char* point) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->killed) throw FailPointAbort(point);
  auto& s = impl_->at(point);
  if (s.errnoTimes == 0) return 0;
  --s.errnoTimes;
  return s.err;
}

}  // namespace lfpr
