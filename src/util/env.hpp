// Environment-variable knobs shared by the bench binaries.
//
//   LFPR_BENCH_SCALE   0 = smoke (seconds), 1 = default, 2 = big
//   LFPR_BENCH_THREADS logical worker threads (default: 4x hardware)
//   LFPR_BENCH_REPEATS measurement repeats per configuration
#pragma once

#include <cstdlib>
#include <string>
#include <thread>

namespace lfpr {

inline int envInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

inline double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

/// Bench size scale: 0 smoke, 1 default, 2 big.
inline int benchScale() { return envInt("LFPR_BENCH_SCALE", 1); }

/// Logical worker-thread count for bench runs. The paper uses 64 threads on
/// a 64-core machine; we default to a modest oversubscription of the host
/// so barrier/fault phenomena remain visible on small machines.
inline int benchThreads() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return envInt("LFPR_BENCH_THREADS", hw > 0 ? 4 * hw : 8);
}

inline int benchRepeats(int fallback = 1) { return envInt("LFPR_BENCH_REPEATS", fallback); }

}  // namespace lfpr
