// Retrying POSIX write primitives for the durability subsystem (PR 7).
//
// Every durable writer (csr_file, edge_log, the ingest journal, the
// checkpoint sidecar) funnels its syscalls through these helpers, which
// give three properties in one place:
//
//   - transient failures (EINTR, EAGAIN, short writes) are retried with
//     bounded exponential backoff instead of surfacing as hard errors;
//   - permanent failures throw a typed IoError carrying the errno, so the
//     service can tell "disk full — degrade to serve-stale" (diskFull())
//     from "refuse and report";
//   - every syscall site is a named fail point, so the crash matrix can
//     kill or errno-inject at exactly this write / fsync / rename.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/failpoint.hpp"

namespace lfpr::io {

class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int err)
      : std::runtime_error(what), errno_(err) {}

  [[nodiscard]] int errnoValue() const noexcept { return errno_; }

  /// ENOSPC (and its quota sibling) — the one transient-looking failure
  /// retrying cannot fix; callers degrade instead.
  [[nodiscard]] bool diskFull() const noexcept {
    return errno_ == ENOSPC || errno_ == EDQUOT;
  }

 private:
  int errno_;
};

/// Retry budget for transient failures. 8 attempts with doubling backoff
/// from 50us caps the worst-case stall near 13ms — long enough to ride
/// out signal storms and scheduler hiccups, short enough that the ingest
/// thread's staleness stays bounded.
inline constexpr int kMaxIoRetries = 8;

inline void backoff(int attempt) {
  const auto factor = std::uint64_t{1} << std::min(attempt, kMaxIoRetries);
  std::this_thread::sleep_for(std::chrono::microseconds(50 * factor));
}

inline bool transientErrno(int err) noexcept {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

/// write(2) until `len` bytes are down, retrying transient errnos and
/// continuing across short writes. `point` names the fail-point site.
inline void writeFully(int fd, const void* data, std::size_t len,
                       const std::string& what, const char* point) {
  const char* p = static_cast<const char*>(data);
  int attempt = 0;
  while (len > 0) {
    LFPR_FAILPOINT(point);  // kill-mode crash site: prefix may be on disk
    std::size_t want = len;
    ::ssize_t n;
    if (const int injected = LFPR_FAILPOINT_ERRNO(point); injected != 0) {
      if (injected == kFailPointShortWrite) {
        want = len > 1 ? len / 2 : 1;  // forced short write, real bytes
        n = ::write(fd, p, want);
      } else {
        n = -1;
        errno = injected;
      }
    } else {
      n = ::write(fd, p, want);
    }
    if (n < 0) {
      const int err = errno;
      if (transientErrno(err) && attempt < kMaxIoRetries) {
        backoff(attempt++);
        continue;
      }
      throw IoError(what + ": write failed: " + std::strerror(err), err);
    }
    if (n == 0) {
      if (attempt >= kMaxIoRetries)
        throw IoError(what + ": write made no progress", EIO);
      backoff(attempt++);
      continue;
    }
    attempt = 0;  // progress resets the transient budget
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// pwrite(2) a full buffer at `offset` (header backpatch sites).
inline void pwriteFully(int fd, const void* data, std::size_t len,
                        off_t offset, const std::string& what,
                        const char* point) {
  const char* p = static_cast<const char*>(data);
  int attempt = 0;
  while (len > 0) {
    LFPR_FAILPOINT(point);
    ::ssize_t n;
    if (const int injected = LFPR_FAILPOINT_ERRNO(point); injected != 0) {
      n = -1;
      errno = injected == kFailPointShortWrite ? EAGAIN : injected;
    } else {
      n = ::pwrite(fd, p, len, offset);
    }
    if (n < 0) {
      const int err = errno;
      if (transientErrno(err) && attempt < kMaxIoRetries) {
        backoff(attempt++);
        continue;
      }
      throw IoError(what + ": pwrite failed: " + std::strerror(err), err);
    }
    if (n == 0) {
      if (attempt >= kMaxIoRetries)
        throw IoError(what + ": pwrite made no progress", EIO);
      backoff(attempt++);
      continue;
    }
    attempt = 0;
    p += n;
    offset += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// fsync(2) with EINTR retry.
inline void fsyncRetry(int fd, const std::string& what, const char* point) {
  int attempt = 0;
  for (;;) {
    LFPR_FAILPOINT(point);
    int rc;
    if (const int injected = LFPR_FAILPOINT_ERRNO(point); injected != 0) {
      rc = -1;
      errno = injected == kFailPointShortWrite ? EINTR : injected;
    } else {
      rc = ::fsync(fd);
    }
    if (rc == 0) return;
    const int err = errno;
    if (transientErrno(err) && attempt < kMaxIoRetries) {
      backoff(attempt++);
      continue;
    }
    throw IoError(what + ": fsync failed: " + std::strerror(err), err);
  }
}

/// rename(2) `from` over `to` (the atomic-publish step of tmp-then-rename).
inline void renameFile(const std::string& from, const std::string& to,
                       const std::string& what, const char* point) {
  LFPR_FAILPOINT(point);
  int rc;
  if (const int injected = LFPR_FAILPOINT_ERRNO(point); injected != 0) {
    rc = -1;
    errno = injected == kFailPointShortWrite ? EINTR : injected;
  } else {
    rc = ::rename(from.c_str(), to.c_str());
  }
  if (rc != 0) {
    const int err = errno;
    throw IoError(what + ": rename '" + from + "' -> '" + to +
                      "' failed: " + std::strerror(err),
                  err);
  }
}

/// Best-effort directory fsync after a rename: makes the new name itself
/// durable. Failure is swallowed — the data file's own fsync already
/// bounds the loss to "the rename", which recovery tolerates (the old
/// checkpoint pair / shorter journal is still valid).
inline void fsyncDirectory(const std::string& dir) noexcept {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Write-only RAII fd for the tmp half of tmp-then-rename writers.
class FdFile {
 public:
  FdFile() = default;

  static FdFile create(const std::string& path, const std::string& what,
                       const char* point) {
    LFPR_FAILPOINT(point);
    int fd;
    if (const int injected = LFPR_FAILPOINT_ERRNO(point); injected != 0) {
      fd = -1;
      errno = injected == kFailPointShortWrite ? EINTR : injected;
    } else {
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
    }
    if (fd < 0) {
      const int err = errno;
      throw IoError(what + ": cannot open '" + path +
                        "' for writing: " + std::strerror(err),
                    err);
    }
    FdFile f;
    f.fd_ = fd;
    f.what_ = what;
    return f;
  }

  FdFile(FdFile&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), what_(std::move(other.what_)) {}
  FdFile& operator=(FdFile&& other) noexcept {
    if (this != &other) {
      closeNoThrow();
      fd_ = std::exchange(other.fd_, -1);
      what_ = std::move(other.what_);
    }
    return *this;
  }
  FdFile(const FdFile&) = delete;
  FdFile& operator=(const FdFile&) = delete;
  ~FdFile() { closeNoThrow(); }

  void write(const void* data, std::size_t len, const char* point) {
    writeFully(fd_, data, len, what_, point);
  }

  void pwriteAt(const void* data, std::size_t len, off_t offset,
                const char* point) {
    pwriteFully(fd_, data, len, offset, what_, point);
  }

  void sync(const char* point) { fsyncRetry(fd_, what_, point); }

  /// Close, surfacing failure (deferred write errors land here on some
  /// filesystems). The fd is released either way.
  void close() {
    if (fd_ < 0) return;
    const int fd = std::exchange(fd_, -1);
    if (::close(fd) != 0) {
      const int err = errno;
      throw IoError(what_ + ": close failed: " + std::strerror(err), err);
    }
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  void closeNoThrow() noexcept {
    if (fd_ >= 0) ::close(std::exchange(fd_, -1));
  }

  int fd_ = -1;
  std::string what_;
};

}  // namespace lfpr::io
