// Summary statistics for experiment reporting. The paper reports
// *geometric means* of runtimes across input graphs (Section 5.1.5); the
// helpers here implement that protocol plus the usual descriptive stats.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace lfpr {

/// Arithmetic mean; 0 for an empty range.
inline double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Geometric mean; 0 for an empty range. Non-positive entries are clamped
/// to a tiny epsilon so a single zero timing cannot collapse the mean.
inline double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double logSum = 0.0;
  for (double x : xs) logSum += std::log(std::max(x, 1e-300));
  return std::exp(logSum / static_cast<double>(xs.size()));
}

/// Population standard deviation.
inline double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

inline double minOf(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

inline double maxOf(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

/// Median (by copy; inputs stay untouched).
inline double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lfpr
