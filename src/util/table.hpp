// Plain-text table rendering for the bench harnesses. Every figure/table
// reproduction prints an aligned ASCII table (and optionally CSV) with the
// same rows/series the paper reports.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace lfpr {

/// Column-aligned ASCII table. Collect rows of strings, then stream it.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Format a double with fixed precision, trimming to a compact width.
  static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Format in scientific notation (for tolerances / errors).
  static std::string sci(double v, int precision = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string count(std::uint64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        os << "  " << std::setw(static_cast<int>(widths[c])) << cell;
      }
      os << '\n';
    };

    printRow(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) printRow(row);
  }

  void printCsv(std::ostream& os) const {
    auto printRow = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) os << ',';
        os << row[c];
      }
      os << '\n';
    };
    printRow(header_);
    for (const auto& row : rows_) printRow(row);
  }

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lfpr
