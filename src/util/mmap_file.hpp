// Read-only memory-mapped file, RAII-owned.
//
// The scale subsystem's zero-copy load path: a mapped CSR snapshot's
// offset/target/weight blobs are read in place (no per-load copy, no
// mutexes — the mapping is immutable for its lifetime), so snapshot
// loads cost one mmap plus a checksum pass regardless of graph size,
// and the page cache shares the bytes across processes.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/failpoint.hpp"

namespace lfpr {

class MmapFile {
 public:
  MmapFile() = default;

  /// Map `path` read-only (MAP_SHARED: instances of the same snapshot
  /// share physical pages). Throws std::runtime_error with the path and
  /// errno text on failure. An empty file maps to an empty span.
  static MmapFile open(const std::string& path) {
    LFPR_FAILPOINT("mmap.open");
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
      throw std::runtime_error("MmapFile: cannot open '" + path +
                               "': " + std::strerror(errno));
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("MmapFile: cannot stat '" + path +
                               "': " + std::strerror(err));
    }
    MmapFile f;
    f.size_ = static_cast<std::size_t>(st.st_size);
    if (f.size_ > 0) {
      LFPR_FAILPOINT("mmap.map");
      void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_SHARED, fd, 0);
      if (p == MAP_FAILED) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("MmapFile: mmap of '" + path +
                                 "' failed: " + std::strerror(err));
      }
      f.data_ = static_cast<const std::byte*>(p);
    }
    ::close(fd);  // the mapping keeps the file alive
    return f;
  }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile() { reset(); }

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }

  /// Advise the kernel the mapping will be read sequentially (the
  /// checksum pass and the weighted arc stream) — best effort.
  void adviseSequential() const noexcept {
    if (data_ != nullptr)
      ::madvise(const_cast<std::byte*>(data_), size_, MADV_SEQUENTIAL);
  }

 private:
  void reset() noexcept {
    if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lfpr
