// Deterministic I/O fail-point layer (PR 7).
//
// Every durability-bearing syscall site (write / fsync / rename / mmap in
// csr_file, edge_log, the ingest journal and the checkpoint writer) passes
// through a named fail point. A build with -DLFPR_FAILPOINTS=ON compiles
// the hooks in; the default build compiles them to nothing, so the hot
// paths carry zero overhead and the durability code under test is the
// durability code that ships.
//
// Two injection modes per point:
//
//   Kill   — the point throws FailPointAbort on its N-th execution and
//            latches killed(): every later hit at ANY point also aborts.
//            The latch is what makes an in-process "kill" honest — a dead
//            process writes no further bytes, so neither does a killed
//            service. Cleanup handlers that would not run in a real crash
//            (tmp unlink, journal truncation) must rethrow FailPointAbort
//            without acting.
//
//   Errno  — the point reports an errno value (EINTR, EAGAIN, ENOSPC, or
//            the short-write sentinel) for a bounded number of executions
//            and then heals. This drives the io_retry backoff paths and
//            the serve-stale ENOSPC degradation without filling any disk.
//
// Scheduling is deterministic: a point fires on an exact hit count, never
// on a probability, so the crash matrix in test_durability enumerates
// pointsSeen() from a clean run and replays each one as its own
// kill-restart-verify case. The env hook LFPR_FAILPOINT="name[:hit]"
// arms a kill from outside the process (nightly randomized lanes).
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace lfpr {

/// Thrown when an armed fail point fires in Kill mode. Deliberately not
/// derived from the I/O error hierarchy: retry loops and cleanup paths
/// must treat it as "the process just died here", not as a failure to
/// handle.
class FailPointAbort : public std::exception {
 public:
  explicit FailPointAbort(std::string point);
  [[nodiscard]] const char* what() const noexcept override;
  [[nodiscard]] const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
  std::string what_;
};

/// Short-write sentinel for armErrno: instead of failing, the site writes
/// only part of the buffer, exercising the writeFully continuation path.
inline constexpr int kFailPointShortWrite = -1;

class FailPoints {
 public:
  /// Process-wide registry. On first use, LFPR_FAILPOINT="name[:hit]"
  /// (when set) arms a kill at `name`'s `hit`-th execution (default 1).
  static FailPoints& instance();

  /// Kill mode: `point` throws FailPointAbort on its `hit`-th execution
  /// (1-based) and latches killed().
  void armKill(const std::string& point, std::uint64_t hit = 1);

  /// Errno mode: `point` reports `err` for its next `times` executions,
  /// then heals. `err` may be kFailPointShortWrite.
  void armErrno(const std::string& point, int err, std::uint64_t times = 1);

  /// Clear all arms, the killed latch, and the hit/seen bookkeeping.
  void disarmAll();

  [[nodiscard]] bool killed() const;

  /// Every point executed at least once since the last disarmAll(), in
  /// first-execution order — the crash-matrix enumeration.
  [[nodiscard]] std::vector<std::string> pointsSeen() const;

  [[nodiscard]] std::uint64_t hits(const std::string& point) const;

  // --- site hooks (use the LFPR_FAILPOINT* macros, not these) ---------

  /// Counts a hit; throws FailPointAbort when a kill is due or already
  /// latched.
  void onHit(const char* point);

  /// Counts nothing extra (onHit at the same site already did); returns
  /// the injected errno for this execution, 0 for none. Throws
  /// FailPointAbort when the kill latch is set.
  [[nodiscard]] int consumeErrno(const char* point);

 private:
  FailPoints();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

}  // namespace lfpr

#if defined(LFPR_FAILPOINTS)
#define LFPR_FAILPOINT(point) ::lfpr::FailPoints::instance().onHit(point)
#define LFPR_FAILPOINT_ERRNO(point) \
  ::lfpr::FailPoints::instance().consumeErrno(point)
#else
#define LFPR_FAILPOINT(point) ((void)(point))
#define LFPR_FAILPOINT_ERRNO(point) ((void)(point), 0)
#endif
