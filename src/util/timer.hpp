// Wall-clock measurement helpers used by every bench harness and by the
// barrier wait-time instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace lfpr {

/// Monotonic stopwatch. `elapsed*()` may be called while running.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_);
  }

  [[nodiscard]] double elapsedMs() const noexcept {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsedSec() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  clock::time_point start_;
};

/// Convert a nanosecond duration to fractional milliseconds.
inline double toMs(std::chrono::nanoseconds ns) noexcept {
  return std::chrono::duration<double, std::milli>(ns).count();
}

}  // namespace lfpr
