// Figures 2 & 3 as an executable demonstration: event timelines of
// barrier-based vs lock-free engines processing four vertex chunks on two
// threads, with (a) a random delay and (b) a crash-stop injected into
// thread th1. The barrier-based run shows th2 stalling at the iteration
// barrier (or deadlocking on crash); the lock-free run shows th2
// absorbing th1's chunks and finishing.
//
//   ./fault_trace
#include <cstdio>

#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace lfpr;

namespace {

PageRankOptions traceOptions(VertexId n) {
  PageRankOptions opt;
  opt.numThreads = 2;
  opt.chunkSize = n / 4;  // exactly four chunks: C1..C4 as in the figures
  opt.barrierTimeout = std::chrono::milliseconds(500);
  return opt;
}

CsrGraph traceGraph() {
  Rng rng(5);
  auto es = generateErdosRenyi(4096, 40000, rng);
  appendSelfLoops(es, 4096);
  return CsrGraph::fromEdges(4096, es);
}

}  // namespace

int main() {
  const auto g = traceGraph();
  const auto opt = traceOptions(g.numVertices());
  std::printf("graph: %u vertices in 4 chunks of %zu, 2 threads\n\n",
              g.numVertices(), opt.chunkSize);

  std::printf("--- Figure 2: random thread delays (10ms sleeps on both threads) ---\n");
  {
    FaultConfig cfg;
    cfg.delayProbability = 5e-4;
    cfg.delayDuration = std::chrono::milliseconds(10);

    FaultInjector bbFault(2, cfg);
    const auto bb = staticBB(g, opt, &bbFault);
    std::printf("  barrier-based: %7.1f ms total, %6.1f ms spent waiting at "
                "barriers (%llu sleeps)\n",
                bb.timeMs, bb.waitMs,
                static_cast<unsigned long long>(bbFault.delaysInjected()));

    FaultInjector lfFault(2, cfg);
    const auto lf = staticLF(g, opt, &lfFault);
    std::printf("  lock-free:     %7.1f ms total,    no barrier waits "
                "(%llu sleeps)\n",
                lf.timeMs, static_cast<unsigned long long>(lfFault.delaysInjected()));
    std::printf("  -> the delayed thread stalls the whole barrier-based team; "
                "the lock-free team redistributes chunks.\n\n");
  }

  std::printf("--- Figure 3: crash-stop (th1 dies after 100 vertex updates) ---\n");
  {
    FaultConfig cfg;
    cfg.crashAfterUpdates = {100, FaultConfig::noCrash};

    FaultInjector bbFault(2, cfg);
    const auto bb = staticBB(g, opt, &bbFault);
    std::printf("  barrier-based: dnf=%s  (th2 waits at the barrier for th1 "
                "forever; timeout reports DNF)\n",
                bb.dnf ? "true" : "false");

    FaultInjector lfFault(2, cfg);
    const auto lf = staticLF(g, opt, &lfFault);
    std::printf("  lock-free:     converged=%s in %d rounds  (th2 picks up "
                "th1's unconverged chunks)\n",
                lf.converged ? "yes" : "no", lf.iterations);
    const auto reference = staticLF(g, opt);
    std::printf("  result drift vs fault-free run: %.1e\n",
                linfNorm(lf.ranks, reference.ranks));
  }
  return 0;
}
