// Social/interaction stream scenario (the sx-stackoverflow workload of
// Table 1): a temporal edge stream is replayed with the paper's protocol
// — 90% preload, then insertion-only batches — while influence scores
// (PageRank) are maintained incrementally and the most influential users
// are tracked over time.
//
//   ./social_stream [numBatches]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "generate/generators.hpp"
#include "generate/temporal_replay.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

using namespace lfpr;

int main(int argc, char** argv) {
  const std::size_t numBatches =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  // Synthetic interaction stream: 20k users, 150k timestamped events with
  // repeat interactions, mimicking a Q&A site's activity stream. Narrow
  // temporal-locality windows give the stream the large effective
  // diameter that keeps incremental updates local (see DESIGN.md).
  Rng rng(7);
  TemporalEdgeListData stream;
  stream.numVertices = 20000;
  stream.edges = generateTemporalStream(stream.numVertices, 150000,
                                        /*duplicateFraction=*/0.35, rng,
                                        /*hubFraction=*/0.04,
                                        /*localityWindow=*/stream.numVertices / 250);

  auto replay = makeTemporalReplay(stream, 0.9, 1e-3, numBatches);
  std::printf("stream: %llu events, %llu distinct edges; %zu batches of ~%zu\n",
              static_cast<unsigned long long>(replay.numTemporalEdges),
              static_cast<unsigned long long>(replay.numStaticEdges),
              replay.batches.size(),
              replay.batches.empty() ? 0 : replay.batches.front().insertions.size());

  PageRankOptions opt;
  opt.numThreads = 4;

  auto graph = std::move(replay.initial);
  auto snapshot = graph.toCsr();
  auto ranks = staticLF(snapshot, opt).ranks;

  auto topUser = [&]() {
    return static_cast<VertexId>(
        std::max_element(ranks.begin(), ranks.end()) - ranks.begin());
  };
  std::printf("after preload: most influential user = %u\n", topUser());

  double totalMs = 0.0;
  std::uint64_t totalAffected = 0;
  for (std::size_t b = 0; b < replay.batches.size(); ++b) {
    graph.applyBatch(replay.batches[b]);
    const auto updated = graph.toCsr();
    const auto r = dfLF(snapshot, updated, replay.batches[b], ranks, opt);
    totalMs += r.timeMs;
    totalAffected += r.affectedVertices;
    ranks = r.ranks;
    snapshot = updated;
    std::printf("batch %zu: +%zu events, %.1f ms, affected %llu, top user %u\n",
                b + 1, replay.batches[b].insertions.size(), r.timeMs,
                static_cast<unsigned long long>(r.affectedVertices), topUser());
  }
  if (!replay.batches.empty()) {
    std::printf("\nmean per batch: %.1f ms, %.0f affected of %u users\n",
                totalMs / static_cast<double>(replay.batches.size()),
                static_cast<double>(totalAffected) /
                    static_cast<double>(replay.batches.size()),
                graph.numVertices());
  }
  return 0;
}
