// Social/interaction stream scenario (the sx-stackoverflow workload of
// Table 1): a temporal edge stream is replayed with the paper's protocol
// — 90% preload, then insertion-only batches — while a RankService
// maintains influence scores (PageRank) incrementally and the most
// influential users are tracked over time. Each batch is submitted to
// the resident engine; queries answer against the published epoch with
// its §4.5 certificate, never against in-flight iteration state.
//
//   ./social_stream [numBatches]
#include <cstdio>
#include <cstdlib>

#include "generate/generators.hpp"
#include "generate/temporal_replay.hpp"
#include "pagerank/pagerank.hpp"
#include "service/rank_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace lfpr;

int main(int argc, char** argv) {
  const std::size_t numBatches =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  // Synthetic interaction stream: 20k users, 150k timestamped events with
  // repeat interactions, mimicking a Q&A site's activity stream. Narrow
  // temporal-locality windows give the stream the large effective
  // diameter that keeps incremental updates local (see DESIGN.md).
  Rng rng(7);
  TemporalEdgeListData stream;
  stream.numVertices = 20000;
  stream.edges = generateTemporalStream(stream.numVertices, 150000,
                                        /*duplicateFraction=*/0.35, rng,
                                        /*hubFraction=*/0.04,
                                        /*localityWindow=*/stream.numVertices / 250);

  auto replay = makeTemporalReplay(stream, 0.9, 1e-3, numBatches);
  std::printf("stream: %llu events, %llu distinct edges; %zu batches of ~%zu\n",
              static_cast<unsigned long long>(replay.numTemporalEdges),
              static_cast<unsigned long long>(replay.numStaticEdges),
              replay.batches.size(),
              replay.batches.empty() ? 0 : replay.batches.front().insertions.size());

  ServiceOptions sopt;
  sopt.solver.numThreads = 4;

  RankService service(replay.initial.toCsr(), sopt);
  service.waitForEpoch(1);
  {
    const auto top = service.topK(1);
    std::printf("after preload: most influential user = %u\n",
                top.empty() ? 0u : top.front().first);
  }

  double totalMs = 0.0;
  for (std::size_t b = 0; b < replay.batches.size(); ++b) {
    const std::size_t events = replay.batches[b].insertions.size();
    const Stopwatch sw;
    service.submit(std::move(replay.batches[b]));
    service.waitIdle();
    const double ms = sw.elapsedMs();
    totalMs += ms;
    const SnapshotView snap = service.snapshot();
    const auto top = snap->topK(1);
    std::printf(
        "batch %zu: +%zu events, %.1f ms, epoch %llu (certificate %.1e), "
        "top user %u\n",
        b + 1, events, ms, static_cast<unsigned long long>(snap->epoch),
        snap->toleranceBound, top.empty() ? 0u : top.front().first);
  }
  if (!replay.batches.empty()) {
    const auto stats = service.stats();
    std::printf("\nmean per batch: %.1f ms; %llu publishes over %llu solves, "
                "%llu edges ingested\n",
                totalMs / static_cast<double>(replay.batches.size()),
                static_cast<unsigned long long>(stats.publishes),
                static_cast<unsigned long long>(stats.solves),
                static_cast<unsigned long long>(stats.edgesIngested));
  }
  return 0;
}
