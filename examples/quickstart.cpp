// Quickstart: build a small graph, compute static PageRank, apply a
// batch of edge updates, and refresh the ranks incrementally with the
// lock-free Dynamic Frontier engine (DFLF).
//
//   ./quickstart
#include <cstdio>

#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"

using namespace lfpr;

int main() {
  // A toy web: vertex 0 is a portal everyone links to.
  //   1..5 -> 0, 0 -> 1, 2 -> 3, plus self-loops (dead-end elimination).
  DynamicDigraph graph(6);
  for (VertexId v = 1; v <= 5; ++v) graph.addEdge(v, 0);
  graph.addEdge(0, 1);
  graph.addEdge(2, 3);
  graph.ensureSelfLoops();

  PageRankOptions opt;
  opt.numThreads = 4;
  opt.chunkSize = 2;  // tiny graph; real graphs use the default 2048

  // 1) Static PageRank on the initial snapshot.
  const CsrGraph g0 = graph.toCsr();
  const auto r0 = staticLF(g0, opt);
  std::printf("initial ranks (converged=%s, %d iterations):\n",
              r0.converged ? "yes" : "no", r0.iterations);
  for (VertexId v = 0; v < g0.numVertices(); ++v)
    std::printf("  vertex %u: %.6f\n", v, r0.ranks[v]);

  // 2) The graph evolves: vertex 5 replaces its link to 0 with 3 -> the
  //    batch deletes (5,0) and inserts (5,3).
  BatchUpdate batch;
  batch.deletions = {{5, 0}};
  batch.insertions = {{5, 3}};
  graph.applyBatch(batch);
  const CsrGraph g1 = graph.toCsr();

  // 3) Incremental update with the lock-free Dynamic Frontier engine:
  //    only vertices whose ranks can change are reprocessed.
  const auto r1 = dfLF(g0, g1, batch, r0.ranks, opt);
  std::printf("\nafter update (affected=%llu of %u vertices):\n",
              static_cast<unsigned long long>(r1.affectedVertices),
              g1.numVertices());
  for (VertexId v = 0; v < g1.numVertices(); ++v)
    std::printf("  vertex %u: %.6f  (%+.6f)\n", v, r1.ranks[v],
                r1.ranks[v] - r0.ranks[v]);

  // 4) Sanity: compare with a full static recomputation.
  const auto full = staticLF(g1, opt);
  std::printf("\nmax |incremental - full recompute| = %.2e\n",
              linfNorm(r1.ranks, full.ranks));
  return 0;
}
