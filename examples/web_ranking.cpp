// Web ranking scenario: a search engine maintaining PageRank over an
// evolving crawl. An RMAT web-like graph receives batches of link
// insertions/deletions; after each batch the top pages are refreshed with
// DFLF and compared against a naive full rerun (NDLF) for cost.
//
//   ./web_ranking [numBatches]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace lfpr;

namespace {

void printTop(const std::vector<double>& ranks, int k) {
  std::vector<VertexId> idx(ranks.size());
  for (VertexId v = 0; v < idx.size(); ++v) idx[v] = v;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](VertexId a, VertexId b) { return ranks[a] > ranks[b]; });
  for (int i = 0; i < k; ++i)
    std::printf("    #%d  page %-6u rank %.3e\n", i + 1, idx[static_cast<std::size_t>(i)],
                ranks[idx[static_cast<std::size_t>(i)]]);
}

}  // namespace

int main(int argc, char** argv) {
  const int numBatches = argc > 1 ? std::atoi(argv[1]) : 5;

  // A web-crawl-like graph: power-law in/out degrees, ~27 links/page.
  Rng rng(42);
  constexpr int kScale = 13;  // 8192 pages
  constexpr VertexId kPages = VertexId{1} << kScale;
  auto edges = generateRmat(kScale, 27 * kPages, rng);
  appendSelfLoops(edges, kPages);
  auto graph = DynamicDigraph::fromEdges(kPages, edges);
  std::printf("crawl: %u pages, %llu links\n", graph.numVertices(),
              static_cast<unsigned long long>(graph.numEdges()));

  PageRankOptions opt;
  opt.numThreads = 4;

  CsrGraph snapshot = graph.toCsr();
  Stopwatch sw;
  auto ranks = staticLF(snapshot, opt).ranks;
  std::printf("initial static PageRank: %.1f ms\n  top pages:\n", sw.elapsedMs());
  printTop(ranks, 5);

  double dfTotal = 0.0, ndTotal = 0.0;
  for (int b = 0; b < numBatches; ++b) {
    // ~0.01% of links churn per batch.
    const auto batch = generateBatch(graph, graph.numEdges() / 10000 + 1, rng);
    graph.applyBatch(batch);
    const CsrGraph updated = graph.toCsr();

    const auto nd = ndLF(updated, ranks, opt);
    const auto df = dfLF(snapshot, updated, batch, ranks, opt);
    dfTotal += df.timeMs;
    ndTotal += nd.timeMs;

    std::printf(
        "batch %d: %zu updates | DFLF %.1f ms (affected %llu) | NDLF %.1f ms | "
        "agree %.1e\n",
        b + 1, batch.size(), df.timeMs,
        static_cast<unsigned long long>(df.affectedVertices), nd.timeMs,
        linfNorm(df.ranks, nd.ranks));

    ranks = df.ranks;  // carry the incremental ranks forward
    snapshot = updated;
  }

  std::printf("\ntotals: DFLF %.1f ms vs NDLF %.1f ms (%.1fx)\n  top pages now:\n",
              dfTotal, ndTotal, ndTotal / dfTotal);
  printTop(ranks, 5);
  return 0;
}
