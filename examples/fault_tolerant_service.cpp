// Fault-tolerant ranking service (Sections 5.3/5.4), now through the
// RankService front door: a resident engine keeps PageRank fresh on a
// churning graph while its worker threads suffer random delays and
// crash-stop failures — the "mercurial cores" setting that motivates
// the lock-free design.
//
// What the service layer adds over the one-shot engines:
//
//   - readers query topK/staleness concurrently with ingest and always
//     see one consistent published epoch with its §4.5 certificate;
//   - a crashed solve is never published: readers keep the previous
//     epoch while the service re-solves (service-level recovery on top
//     of PR 5's intra-solve takeover);
//   - the barrier-based engine has no recovery story at all — shown
//     last with a one-shot dfBB for contrast;
//   - with a durability directory (PR 7) the service also survives
//     machine death: acked batches sit in a write-ahead journal, so a
//     restarted process replays them and republishes the same ranks;
//   - under the Monte Carlo engine the resident walk store rides the
//     checkpoints as a sidecar (PR 10), so a restart resumes repairs on
//     the persisted walks instead of regenerating all n*R of them —
//     shown by timing the same restart with and without sidecars.
//
//   ./fault_tolerant_service
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"
#include "service/rank_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace lfpr;

namespace {

void printTop(const RankService& service, std::size_t k) {
  const SnapshotView snap = service.snapshot();
  std::printf("  epoch %llu (certificate %.1e): top-%zu =",
              static_cast<unsigned long long>(snap->epoch),
              snap->toleranceBound, k);
  for (const auto& [v, r] : snap->topK(k)) std::printf(" %u(%.2e)", v, r);
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(11);
  constexpr VertexId kVertices = VertexId{1} << 12;
  auto edges = generateRmat(12, 20 * kVertices, rng);
  appendSelfLoops(edges, kVertices);
  auto graph = DynamicDigraph::fromEdges(kVertices, edges);

  ServiceOptions sopt;
  sopt.solver.numThreads = 8;
  sopt.solver.barrierTimeout = std::chrono::milliseconds(1000);

  // Fault schedule, keyed by solve index (0 = the initial full solve):
  //   solve 1: random delays — a thread sleeps 10 ms after a vertex
  //            update with probability 1e-4 (soft faults: contention,
  //            page faults, thermal throttling);
  //   solve 2: crash-stop — half the team dies mid-computation (hard
  //            faults: mercurial cores, killed threads); the PR 5
  //            takeover protocol finishes the step anyway;
  //   solve 3: crash-stop so early the step cannot converge — the
  //            service refuses to publish, recovers with a full
  //            re-solve, and readers never see the failed attempt.
  sopt.faultFactory = [&](std::uint64_t solveIndex)
      -> std::unique_ptr<FaultInjector> {
    if (solveIndex == 1) {
      FaultConfig cfg;
      cfg.delayProbability = 1e-4;
      cfg.delayDuration = std::chrono::milliseconds(10);
      return std::make_unique<FaultInjector>(sopt.solver.numThreads, cfg);
    }
    if (solveIndex == 2) {
      const auto cfg = makeCrashConfig(sopt.solver.numThreads,
                                       sopt.solver.numThreads / 2,
                                       /*minUpdates=*/10, /*maxUpdates=*/2000,
                                       /*seed=*/3);
      return std::make_unique<FaultInjector>(sopt.solver.numThreads, cfg);
    }
    if (solveIndex == 3) {
      const auto cfg = makeCrashConfig(sopt.solver.numThreads,
                                       sopt.solver.numThreads,
                                       /*minUpdates=*/1, /*maxUpdates=*/8,
                                       /*seed=*/5);
      return std::make_unique<FaultInjector>(sopt.solver.numThreads, cfg);
    }
    return nullptr;
  };
  sopt.onRecovery = [](std::uint64_t solveIndex, int attempt, bool recovered) {
    std::printf("  [recovery] solve %llu attempt %d: %s\n",
                static_cast<unsigned long long>(solveIndex), attempt,
                recovered ? "re-solve converged" : "re-solve failed too");
  };

  RankService service(graph.toCsr(), sopt);
  service.waitForEpoch(1);
  std::printf("initial solve published:\n");
  printTop(service, 3);

  const char* labels[] = {"random delays", "crash half the team",
                          "crash everyone early"};
  for (int step = 0; step < 3; ++step) {
    auto batch = generateBatch(graph, 200, rng);
    graph.applyBatch(batch);
    service.submit(std::move(batch));
    service.waitIdle();
    const auto st = service.staleness();
    std::printf("%s:\n  pending after solve: %llu batches (%s)\n",
                labels[step],
                static_cast<unsigned long long>(st.pendingBatches),
                st.pendingBatches == 0 ? "published" : "held back, not published");
    printTop(service, 3);
  }

  const auto stats = service.stats();
  std::printf(
      "service stats: %llu publishes, %llu solves, %llu recoveries, "
      "%llu failed steps\n",
      static_cast<unsigned long long>(stats.publishes),
      static_cast<unsigned long long>(stats.solves),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.failedSteps));
  service.drainAndStop();

  // --- Act 4 (PR 7): kill-and-restart. Thread crashes above never lose
  //     the process; here the whole process dies. With a durability
  //     directory every acked batch is journaled before it becomes
  //     visible to the solver, so a fresh process pointed at the same
  //     directory recovers the newest checkpoint, replays the journal
  //     tail, and republishes — acked work survives the machine.
  {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "lfpr-fault-tolerant-example";
    fs::remove_all(dir);

    const auto birth = graph.toCsr();  // what a restart would start from
    ServiceOptions dopt;
    dopt.solver = sopt.solver;
    dopt.durability.directory = dir.string();
    dopt.durability.fsync = FsyncPolicy::Batch;
    dopt.durability.checkpointEverySolves = 2;

    std::uint64_t acked = 0;
    std::uint64_t epochBefore = 0;
    {
      RankService doomed(birth, dopt);
      doomed.waitForEpoch(1);
      for (int b = 0; b < 4; ++b) {
        auto batch = generateBatch(graph, 150, rng);
        graph.applyBatch(batch);
        if (doomed.submit(std::move(batch))) ++acked;
      }
      doomed.waitIdle();
      epochBefore = doomed.snapshot()->epoch;
      std::printf("durable service before the \"kill\" (%llu acked batches):\n",
                  static_cast<unsigned long long>(acked));
      printTop(doomed, 3);
    }  // process "dies" here — no drain, just the files in `dir`

    RankService revived(birth, dopt);
    revived.waitIdle();
    const auto s = revived.stats();
    std::printf(
        "restarted from %s:\n  recovered %llu/%llu acked batches "
        "(%llu replayed from the journal, %llu checkpoints written)\n",
        dir.string().c_str(),
        static_cast<unsigned long long>(s.batchesApplied),
        static_cast<unsigned long long>(acked),
        static_cast<unsigned long long>(s.replayedBatches),
        static_cast<unsigned long long>(s.checkpoints));
    printTop(revived, 3);
    std::printf("  epoch before kill: %llu — published ranks survive the "
                "process\n",
                static_cast<unsigned long long>(epochBefore));
    revived.drainAndStop();
    fs::remove_all(dir);
  }

  // --- Act 5 (PR 10): the Monte Carlo engine's walk store survives the
  //     process too. Checkpoints written by an MC service carry a .walks
  //     sidecar (the serialized walk store), so a restart deserializes
  //     the resident walks instead of regenerating all n*R of them
  //     during journal replay. Either path converges to the same ranks —
  //     the store is a deterministic function of (seed, batch schedule) —
  //     the difference is boot time. Deleting the sidecars simulates a
  //     pre-sidecar checkpoint directory and forces the rebuild path.
  {
    namespace fs = std::filesystem;
    const fs::path resumeDir =
        fs::temp_directory_path() / "lfpr-walk-resume-example";
    const fs::path rebuildDir =
        fs::temp_directory_path() / "lfpr-walk-rebuild-example";
    fs::remove_all(resumeDir);
    fs::remove_all(rebuildDir);

    const auto birth = graph.toCsr();
    ServiceOptions mopt;
    mopt.solver = sopt.solver;
    mopt.stepEngine = ServiceOptions::StepEngine::MonteCarlo;
    mopt.maxBatchesPerStep = 1;  // four batches -> four solves -> two ckpts
    mopt.durability.directory = resumeDir.string();
    mopt.durability.fsync = FsyncPolicy::Batch;
    mopt.durability.checkpointEverySolves = 2;

    {
      RankService doomed(birth, mopt);
      doomed.waitForEpoch(1);
      for (int b = 0; b < 4; ++b) {
        auto batch = generateBatch(graph, 150, rng);
        graph.applyBatch(batch);
        doomed.submit(std::move(batch));
        doomed.waitIdle();
      }
      const auto s = doomed.stats();
      std::printf(
          "Monte Carlo service before the \"kill\": %llu checkpoints, "
          "%llu with walk sidecars\n",
          static_cast<unsigned long long>(s.checkpoints),
          static_cast<unsigned long long>(s.walkCheckpoints));
    }  // killed again — checkpoints + walk sidecars remain in resumeDir

    // Rebuild lane: the same checkpoint directory minus the sidecars.
    fs::copy(resumeDir, rebuildDir, fs::copy_options::recursive);
    for (const auto& e : fs::directory_iterator(rebuildDir))
      if (e.path().extension() == ".walks") fs::remove(e.path());

    auto bootMs = [&](const fs::path& dir) {
      ServiceOptions opt = mopt;
      opt.durability.directory = dir.string();
      const Stopwatch sw;
      RankService s(birth, opt);
      // First snapshot that can answer personalized queries: resume
      // publishes it from the recovered store, rebuild only after the
      // replayed repair step regenerated every walk.
      for (;;) {
        const SnapshotView v = s.snapshot();
        if (v && v->monteCarlo) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      const double ms = sw.elapsedMs();
      s.waitIdle();
      const auto st = s.stats();
      std::printf("  %s: %.1f ms to a personalized-capable snapshot\n",
                  st.walkResumes ? "resumed walk store" : "rebuilt walk store",
                  ms);
      s.drainAndStop();
      return ms;
    };
    const double resumeMs = bootMs(resumeDir);
    const double rebuildMs = bootMs(rebuildDir);
    std::printf("restart with sidecars vs without: %.1f ms vs %.1f ms "
                "(%.1fx faster boot)\n",
                resumeMs, rebuildMs,
                resumeMs > 0 ? rebuildMs / resumeMs : 0.0);
    fs::remove_all(resumeDir);
    fs::remove_all(rebuildDir);
  }

  // --- The same crash against the one-shot barrier-based engine: it
  //     cannot finish; the instrumented barrier reports DNF instead of
  //     hanging forever. This is why the service layer is built on the
  //     lock-free engine only.
  {
    PageRankOptions opt = sopt.solver;
    auto snapshot = graph.toCsr();
    PageRankOptions warm = opt;
    warm.tolerance = 1e-15;
    auto ranks = staticBB(snapshot, warm).ranks;
    auto batch = generateBatch(graph, 200, rng);
    graph.applyBatch(batch);
    const auto updated = graph.toCsr();

    FaultConfig cfg;
    cfg.crashAfterUpdates.assign(static_cast<std::size_t>(opt.numThreads),
                                 FaultConfig::noCrash);
    for (std::size_t t = 0; t < static_cast<std::size_t>(opt.numThreads) / 2; ++t)
      cfg.crashAfterUpdates[t] = 2;
    FaultInjector fault(opt.numThreads, cfg);
    const auto r = dfBB(snapshot, updated, batch, ranks, opt, &fault);
    std::printf("contrast:      DFBB dnf=%s (barrier-based cannot survive a "
                "crashed thread)\n",
                r.dnf ? "true" : "false");
  }
  return 0;
}
