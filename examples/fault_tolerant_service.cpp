// Fault-tolerant ranking service scenario (Sections 5.3/5.4): a service
// keeps PageRank fresh on a churning graph while its worker threads
// suffer random delays and crash-stop failures — the "mercurial cores"
// setting that motivates the lock-free design. The barrier-based engine
// deadlocks (reported as DNF by the barrier timeout) while DFLF keeps
// serving correct results.
//
//   ./fault_tolerant_service
#include <cstdio>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

using namespace lfpr;

int main() {
  Rng rng(11);
  constexpr VertexId kVertices = VertexId{1} << 12;
  auto edges = generateRmat(12, 20 * kVertices, rng);
  appendSelfLoops(edges, kVertices);
  auto graph = DynamicDigraph::fromEdges(kVertices, edges);

  PageRankOptions opt;
  opt.numThreads = 8;
  opt.barrierTimeout = std::chrono::milliseconds(1000);

  auto snapshot = graph.toCsr();
  // High-precision warm ranks keep the Dynamic Frontier noise-free.
  PageRankOptions warm = opt;
  warm.tolerance = 1e-15;
  auto ranks = staticBB(snapshot, warm).ranks;

  const auto batch = generateBatch(graph, 200, rng);
  graph.applyBatch(batch);
  const auto updated = graph.toCsr();
  const auto clean = dfLF(snapshot, updated, batch, ranks, opt);
  std::printf("healthy run:   DFLF %.1f ms, converged=%s\n", clean.timeMs,
              clean.converged ? "yes" : "no");

  // --- Random delays: a thread sleeps 10 ms after a vertex update with
  //     probability 1e-4 (soft faults: contention, page faults, thermal
  //     throttling).
  {
    FaultConfig cfg;
    cfg.delayProbability = 1e-4;
    cfg.delayDuration = std::chrono::milliseconds(10);
    FaultInjector fault(opt.numThreads, cfg);
    const auto r = dfLF(snapshot, updated, batch, ranks, opt, &fault);
    std::printf(
        "random delays: DFLF %.1f ms, converged=%s, %llu sleeps injected, "
        "drift vs healthy %.1e\n",
        r.timeMs, r.converged ? "yes" : "no",
        static_cast<unsigned long long>(fault.delaysInjected()),
        linfNorm(r.ranks, clean.ranks));
  }

  // --- Crash-stop: half the team dies mid-computation (hard faults:
  //     mercurial cores, killed threads).
  {
    const auto cfg = makeCrashConfig(opt.numThreads, opt.numThreads / 2,
                                     /*minUpdates=*/10, /*maxUpdates=*/2000,
                                     /*seed=*/3);
    FaultInjector fault(opt.numThreads, cfg);
    const auto r = dfLF(snapshot, updated, batch, ranks, opt, &fault);
    std::printf(
        "crash-stop:    DFLF %.1f ms, converged=%s, %d/%d threads crashed, "
        "drift vs healthy %.1e\n",
        r.timeMs, r.converged ? "yes" : "no", fault.numCrashed(), opt.numThreads,
        linfNorm(r.ranks, clean.ranks));
  }

  // --- The same crash against the barrier-based engine: it cannot finish;
  //     the instrumented barrier reports DNF instead of hanging forever.
  {
    FaultConfig cfg;
    cfg.crashAfterUpdates.assign(static_cast<std::size_t>(opt.numThreads),
                                 FaultConfig::noCrash);
    for (std::size_t t = 0; t < static_cast<std::size_t>(opt.numThreads) / 2; ++t)
      cfg.crashAfterUpdates[t] = 2;
    FaultInjector fault(opt.numThreads, cfg);
    const auto r = dfBB(snapshot, updated, batch, ranks, opt, &fault);
    std::printf("crash-stop:    DFBB dnf=%s (barrier-based cannot survive a "
                "crashed thread)\n",
                r.dnf ? "true" : "false");
  }
  return 0;
}
