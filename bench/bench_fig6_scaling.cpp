// Figure 6: strong scaling of DFBB and DFLF on a fixed batch of size
// 1e-4 |E|, threads swept in powers of two, speedup relative to the
// single-threaded run of the same engine (geometric mean across graphs).
//
// The paper scales 1..64 threads on 64 physical cores (19.5x for DFLF and
// 14.4x for DFBB at 32 threads, NUMA dip at 64). This host has few
// physical cores; the sweep still shows DFLF scaling at least as well as
// DFBB up to the physical core count, then flattening — oversubscribed
// points are reported for completeness, not as paper-comparable speedup.
#include <thread>

#include "bench_common.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Figure 6: strong scaling of DFBB and DFLF (batch 1e-4 |E|)",
      "both engines scale with threads; DFLF scales better than DFBB "
      "(paper: 19.5x vs 14.4x at 32 threads); flattens past physical cores",
      cfg);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "physical hardware concurrency: " << hw << "\n\n";

  std::vector<int> threadCounts;
  for (int t = 1; t <= static_cast<int>(4 * hw); t *= 2) threadCounts.push_back(t);

  // Strong scaling needs enough per-solve work to amortize the team spawn
  // and scheduling, so this bench forces the larger dataset scale and a
  // batch of 1e-3 |E| regardless of LFPR_BENCH_SCALE.
  const auto specs = representativeDatasets(std::max(cfg.scale, 1));
  Table table({"threads", "DFBB_ms(geomean)", "DFBB_speedup", "DFLF_ms(geomean)",
               "DFLF_speedup"});

  // Build scenarios once per dataset.
  std::vector<DynamicScenario> scenarios;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto base = bench::loadGraph(specs[i], cfg);
    const auto scaled = bench::benchOptions(cfg, base.numVertices());
    scenarios.push_back(makeScenario(std::move(base), 1e-3, 100 + i, scaled));
  }

  double baseBB = 0.0, baseLF = 0.0;
  for (int threads : threadCounts) {
    std::vector<double> bbTimes, lfTimes;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const std::size_t n = scenarios[i].curr.numVertices();
      auto opt = bench::benchOptions(cfg, static_cast<VertexId>(n));
      opt.numThreads = threads;
      // Keep enough chunks per thread for dynamic balancing at every
      // point of the sweep.
      opt.chunkSize = std::max<std::size_t>(
          64, std::min<std::size_t>(2048,
                                    n / static_cast<std::size_t>(8 * threads)));
      const auto& s = scenarios[i];
      bbTimes.push_back(bench::timedMs(
          cfg, [&] { dfBB(s.prev, s.curr, s.batch, s.prevRanks, opt); }));
      lfTimes.push_back(bench::timedMs(
          cfg, [&] { dfLF(s.prev, s.curr, s.batch, s.prevRanks, opt); }));
    }
    const double bb = geomean(bbTimes);
    const double lf = geomean(lfTimes);
    if (threads == 1) {
      baseBB = bb;
      baseLF = lf;
    }
    table.addRow({Table::count(static_cast<std::uint64_t>(threads)), bench::fmtMs(bb),
                  Table::num(baseBB / bb, 2) + "x", bench::fmtMs(lf),
                  Table::num(baseLF / lf, 2) + "x"});
  }
  table.print(std::cout);
  return 0;
}
