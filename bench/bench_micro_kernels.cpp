// Micro-kernel benchmarks (google-benchmark): the primitive operations
// the engines are built from. Not a paper figure — an engineering
// baseline for spotting regressions in the hot paths.
//
// The BM_Mapped* group runs the pull kernels from a memory-mapped
// dataset snapshot (csr_file.hpp) sized by LFPR_BENCH_SCALE: at scale 0
// a cache-resident smoke graph, at scale 2 a ~30M-edge web stand-in
// whose working set exceeds L3 — the regime where the cached-CSR vs
// Weighted layout comparison is meaningful (ROADMAP open question). The
// snapshot is generated once into LFPR_DATASET_DIR (defaulted to a temp
// dir by main below) and mmap-loaded on every later run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/csr_file.hpp"
#include "graph/dynamic_digraph.hpp"
#include "graph/pull_csr.hpp"
#include "harness/datasets.hpp"
#include "harness/scenario.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/detail/common.hpp"
#include "pagerank/detail/engine_step.hpp"
#include "sched/barrier.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "sched/work_ring.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

CsrGraph makeGraph(int scale, EdgeId edges) {
  Rng rng(1);
  auto es = generateRmat(scale, edges, rng);
  appendSelfLoops(es, VertexId{1} << scale);
  return CsrGraph::fromEdges(VertexId{1} << scale, es);
}

void BM_RankPullKernel(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(g, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernel);

void BM_RankPullKernelAtomic(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const AtomicF64Vector ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(g, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernelAtomic);

void BM_RankPullKernelWeighted(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const WeightedPullCsr pull(g);
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(pull, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernelWeighted);

void BM_RankPullKernelWeightedAtomic(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const WeightedPullCsr pull(g);
  const AtomicF64Vector ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(pull, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernelWeightedAtomic);

void BM_WeightedLayoutBuild(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  for (auto _ : state) {
    WeightedPullCsr pull(g);
    benchmark::DoNotOptimize(pull.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_WeightedLayoutBuild);

// --- Mapped-snapshot kernels -----------------------------------------------

/// The snapshot file for the first Table-2 stand-in (indochina-2004-sim)
/// at the bench scale, generated once and cached in LFPR_DATASET_DIR
/// (main() below guarantees the cache dir is set).
const std::string& mappedSnapshotPath() {
  static const std::string path = [] {
    const int scale = benchScale();
    const DatasetSpec spec = staticDatasets(scale).front();
    loadDatasetCsr(spec, scale, /*seed=*/1);  // populates the cache
    return datasetCsrPath(spec, scale, /*seed=*/1);
  }();
  return path;
}

const CsrGraph& mappedSnapshot() {
  static const CsrGraph g = mapCsrFile(mappedSnapshotPath());
  return g;
}

void BM_MappedSnapshotLoad(benchmark::State& state) {
  const auto& path = mappedSnapshotPath();
  for (auto _ : state) {
    const CsrGraph g = mapCsrFile(path);  // mmap + header + checksum pass
    benchmark::DoNotOptimize(g.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mappedSnapshot().numEdges()));
}
BENCHMARK(BM_MappedSnapshotLoad);

void BM_MappedRankPullKernel(benchmark::State& state) {
  const CsrGraph& g = mappedSnapshot();
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(g, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_MappedRankPullKernel);

void BM_MappedRankPullKernelAtomic(benchmark::State& state) {
  const CsrGraph& g = mappedSnapshot();
  const AtomicF64Vector ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(g, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_MappedRankPullKernelAtomic);

void BM_MappedRankPullKernelWeighted(benchmark::State& state) {
  const CsrGraph& g = mappedSnapshot();
  static const WeightedPullCsr pull(mappedSnapshot());  // built from the mapping
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(pull, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_MappedRankPullKernelWeighted);

void BM_MappedRankPullKernelWeightedAtomic(benchmark::State& state) {
  const CsrGraph& g = mappedSnapshot();
  static const WeightedPullCsr pull(mappedSnapshot());
  const AtomicF64Vector ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(pull, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_MappedRankPullKernelWeightedAtomic);

// --- Sparse-frontier scheduling: dense scan vs worklist --------------------
//
// Models ONE iteration of a lock-free engine over a dirty set of
// f * |V| vertices (f = Arg() basis points): re-mark the frontier, then
// find-and-process it. Per-vertex processing mirrors updateVertex's
// convergent path in both modes — pull, publish, clear-then-reverify
// re-pull, publish — so the benchmark isolates exactly what
// SchedulingMode changes:
//
//   Dense     sweep all |V| affected bytes + the word-wide convergence
//             scan each iteration, publishes through the RMW exchange.
//   Worklist  drain the dirty ring only, publishes through the owner's
//             plain-store diet. (The worklist's flag scans run once per
//             *solve*, when a ring goes dry — not per iteration — so
//             they are not part of the per-iteration cost modelled
//             here.)
//
// items/s = frontier vertices per second, so the Dense-vs-Worklist ratio
// at equal Arg() is the per-iteration cost advantage. Scale-0 runs a
// cache-resident RMAT; the S1 variants run the first Table-2 stand-in at
// scale 1 through the dataset cache — the acceptance regime for PR 5
// (>= 3x at the 0.1% fraction, Arg() = 10).

constexpr int kFrontierBasisPoints[] = {1, 10, 100, 1000};  // 0.01%..10%

std::vector<VertexId> pickFrontier(const CsrGraph& g, int bp) {
  const std::size_t n = g.numVertices();
  std::size_t count = (n * static_cast<std::size_t>(bp)) / 10000;
  if (count == 0) count = 1;
  std::vector<std::uint8_t> chosen(n, 0);
  std::vector<VertexId> out;
  out.reserve(count);
  Rng rng(99);
  while (out.size() < count) {
    const auto v = static_cast<VertexId>(rng.uniform() * static_cast<double>(n));
    if (v < n && chosen[v] == 0) {
      chosen[v] = 1;
      out.push_back(v);
    }
  }
  return out;
}

/// updateVertex's convergent path, dense flavour: exchange publishes.
inline void processFrontierVertexDense(const CsrGraph& g, AtomicF64Vector& ranks,
                                       AtomicU8Vector& nc, VertexId v,
                                       double alpha, double base) {
  const double r = detail::pullRank(g, ranks, v, alpha, base);
  benchmark::DoNotOptimize(ranks.exchange(v, r));
  if (nc.load(v) == 1 &&
      nc.exchange(v, 0, std::memory_order_acquire) != 0) {
    const double r2 = detail::pullRank(g, ranks, v, alpha, base);
    benchmark::DoNotOptimize(ranks.exchange(v, r2));
  }
}

/// Delta-push flavour (PR 8): drain the parked residual, owner-store
/// publish, push `alpha * d * invOutDeg` into each out-neighbour's
/// residual accumulator with a lock-free fetch-add. The activation
/// threshold is unreachably high so the cascade stays exactly the seeded
/// frontier — like the pull flavours this models per-vertex *visit*
/// cost, not propagation depth (the BM_MidBandEngine* group below
/// measures whole solves). Push visits out(v) with fetchAdd RMWs where
/// pull visits in(v) with plain loads.
inline void processFrontierVertexPush(const CsrGraph& g, AtomicF64Vector& ranks,
                                      AtomicF64Vector& residual, VertexId v,
                                      double alpha) {
  const double d = residual.exchange(v, 0.0);
  benchmark::DoNotOptimize(ranks.load(v));
  ranks.store(v, ranks.load(v) + d);
  const auto out = g.out(v);
  if (out.empty()) return;
  const double w = alpha * d * g.invOutDegree(v);
  for (const VertexId u : out) {
    const double before = residual.fetchAdd(u, w);
    if (WorklistScheduler::crossedThreshold(before, before + w, 1e300))
      benchmark::DoNotOptimize(u);  // never taken: cascade stays bounded
  }
}

/// Same path, worklist diet flavour: owner plain-store publishes.
inline void processFrontierVertexDiet(const CsrGraph& g, AtomicF64Vector& ranks,
                                      AtomicU8Vector& nc, VertexId v,
                                      double alpha, double base) {
  const double r = detail::pullRank(g, ranks, v, alpha, base);
  benchmark::DoNotOptimize(ranks.load(v));
  ranks.store(v, r);
  if (nc.load(v) == 1 &&
      nc.exchange(v, 0, std::memory_order_acquire) != 0) {
    const double r2 = detail::pullRank(g, ranks, v, alpha, base);
    ranks.store(v, r2);
  }
}

void sparseFrontierDense(benchmark::State& state, const CsrGraph& g) {
  const std::size_t n = g.numVertices();
  const auto dirty = pickFrontier(g, static_cast<int>(state.range(0)));
  AtomicF64Vector ranks(n, 1.0 / static_cast<double>(n));
  AtomicU8Vector nc(n, 0);
  AtomicU8Vector affected(n, 0);
  for (VertexId v : dirty) affected.store(v, 1);
  const double base = 0.15 / static_cast<double>(n);
  for (auto _ : state) {
    for (VertexId v : dirty) nc.fetchOr(v, 1, std::memory_order_release);
    for (VertexId v = 0; v < n; ++v) {
      if (affected.load(v) == 0) continue;
      processFrontierVertexDense(g, ranks, nc, v, 0.85, base);
    }
    std::size_t hint = 0;
    benchmark::DoNotOptimize(nc.allZeroFrom(hint));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dirty.size()));
}

void sparseFrontierWorklist(benchmark::State& state, const CsrGraph& g) {
  const std::size_t n = g.numVertices();
  const auto dirty = pickFrontier(g, static_cast<int>(state.range(0)));
  AtomicF64Vector ranks(n, 1.0 / static_cast<double>(n));
  AtomicU8Vector nc(n, 0);
  WorklistScheduler wl(n, /*numThreads=*/1, /*seedSweep=*/false);
  const double base = 0.15 / static_cast<double>(n);
  for (auto _ : state) {
    for (VertexId v : dirty) {
      nc.fetchOr(v, 1, std::memory_order_release);
      wl.enqueue(v);
    }
    VertexId v = 0;
    while (wl.tryPop(0, v))
      processFrontierVertexDiet(g, ranks, nc, v, 0.85, base);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dirty.size()));
}

void sparseFrontierDeltaPush(benchmark::State& state, const CsrGraph& g) {
  const std::size_t n = g.numVertices();
  const auto dirty = pickFrontier(g, static_cast<int>(state.range(0)));
  AtomicF64Vector ranks(n, 1.0 / static_cast<double>(n));
  AtomicF64Vector residual(n, 0.0);
  WorklistScheduler wl(n, /*numThreads=*/1, /*seedSweep=*/false);
  const double seed = 1.0 / static_cast<double>(n);
  for (auto _ : state) {
    for (VertexId v : dirty) {
      residual.fetchAdd(v, seed);
      wl.enqueue(v);
    }
    VertexId v = 0;
    while (wl.tryPop(0, v)) processFrontierVertexPush(g, ranks, residual, v, 0.85);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dirty.size()));
}

const CsrGraph& frontierSmokeGraph() {
  static const CsrGraph g = makeGraph(12, 32000);
  return g;
}

/// First Table-2 stand-in at scale 1 via the dataset cache (generated
/// once, mmap-loaded thereafter) — independent of LFPR_BENCH_SCALE so
/// the acceptance numbers are comparable across hosts and CI.
const CsrGraph& frontierScale1Graph() {
  static const CsrGraph g = [] {
    const DatasetSpec spec = staticDatasets(/*scale=*/1).front();
    return loadDatasetCsr(spec, /*scale=*/1, /*seed=*/1);
  }();
  return g;
}

void BM_SparseFrontierDense(benchmark::State& state) {
  sparseFrontierDense(state, frontierSmokeGraph());
}
BENCHMARK(BM_SparseFrontierDense)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseFrontierWorklist(benchmark::State& state) {
  sparseFrontierWorklist(state, frontierSmokeGraph());
}
BENCHMARK(BM_SparseFrontierWorklist)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseFrontierDenseS1(benchmark::State& state) {
  sparseFrontierDense(state, frontierScale1Graph());
}
BENCHMARK(BM_SparseFrontierDenseS1)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseFrontierWorklistS1(benchmark::State& state) {
  sparseFrontierWorklist(state, frontierScale1Graph());
}
BENCHMARK(BM_SparseFrontierWorklistS1)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseFrontierDeltaPush(benchmark::State& state) {
  sparseFrontierDeltaPush(state, frontierSmokeGraph());
}
BENCHMARK(BM_SparseFrontierDeltaPush)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseFrontierDeltaPushS1(benchmark::State& state) {
  sparseFrontierDeltaPush(state, frontierScale1Graph());
}
BENCHMARK(BM_SparseFrontierDeltaPushS1)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

// --- Mid-band engine gate: dense vs worklist vs delta-push -----------------
//
// Whole engine solves (marking + iteration + convergence scan) on ONE
// shared scenario — the first Table-2 stand-in at scale 1 with a batch
// of 1e-4 |E| edges, the middle of the fig7 band the delta-push engine
// targets — at numThreads=1. Both sides of each CI ratio run in this
// same process, so the PR 8 acceptance relationship (DeltaPush >= 1.1x
// the better of the dense sweep and the worklist in the mid band) is
// enforced host-invariantly, independent of the runner's absolute
// speed and vCPU count. items/s = batch edges per second with an
// identical batch across the three series, so the items/s ratio is
// exactly the runtime ratio.

const DynamicScenario& midBandScenario() {
  static const DynamicScenario s = [] {
    DynamicDigraph base =
        loadDatasetGraph(staticDatasets(/*scale=*/1).front(), /*scale=*/1,
                         /*seed=*/1);
    PageRankOptions opt = scaledOptions(base.numVertices());
    opt.numThreads = 1;
    return makeScenario(std::move(base), /*batchFraction=*/1e-4, /*seed=*/7,
                        opt);
  }();
  return s;
}

void midBandEngine(benchmark::State& state, Approach approach,
                   SchedulingMode scheduling) {
  const DynamicScenario& s = midBandScenario();
  PageRankOptions opt = scaledOptions(s.curr.numVertices());
  opt.numThreads = 1;
  opt.scheduling = scheduling;
  for (auto _ : state) {
    const PageRankResult r = runOnScenario(approach, s, opt);
    benchmark::DoNotOptimize(r.ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.batch.size()));
}

void BM_MidBandEngineDense(benchmark::State& state) {
  midBandEngine(state, Approach::DFLF, SchedulingMode::Chunked);
}
BENCHMARK(BM_MidBandEngineDense);

void BM_MidBandEngineWorklist(benchmark::State& state) {
  midBandEngine(state, Approach::DFLF, SchedulingMode::Worklist);
}
BENCHMARK(BM_MidBandEngineWorklist);

void BM_MidBandEngineDeltaPush(benchmark::State& state) {
  midBandEngine(state, Approach::DeltaPush, SchedulingMode::Chunked);
}
BENCHMARK(BM_MidBandEngineDeltaPush);

// --- Small-batch gate: Monte Carlo walk repair vs exact re-solve -----------
//
// The PR 9 acceptance relationship: on a shared sub-1e-5-fraction
// scenario (here 1e-6 |E| of the same scale-1 stand-in, numThreads=1),
// one steady-state walk-repair step of the resident Monte Carlo store
// must be >= 3x faster than an exact worklist re-solve of the same
// batch. Both series run in this process on an identical batch, so the
// items/s ratio is exactly the runtime ratio — host-invariant like the
// mid-band gate above. The comparison is deliberately asymmetric in
// state: the MC side repairs a persistent store (that persistence IS
// the engine's contract — RankService holds it across steps), while
// the exact side pays the full incremental re-solve the service would
// otherwise run. Approximate-vs-exact accuracy is the test suite's
// business (test_monte_carlo), not this gate's.

const DynamicScenario& smallBatchScenario() {
  static const DynamicScenario s = [] {
    DynamicDigraph base =
        loadDatasetGraph(staticDatasets(/*scale=*/1).front(), /*scale=*/1,
                         /*seed=*/1);
    PageRankOptions opt = scaledOptions(base.numVertices());
    opt.numThreads = 1;
    return makeScenario(std::move(base), /*batchFraction=*/1e-6, /*seed=*/9,
                        opt);
  }();
  return s;
}

PageRankOptions smallBatchMcOptions(const DynamicScenario& s) {
  PageRankOptions opt = scaledOptions(s.curr.numVertices());
  opt.numThreads = 1;
  opt.mcWalksPerVertex = 8;
  opt.mcMaxWalkLength = 32;
  return opt;
}

void BM_SmallBatchWalkRepair(benchmark::State& state) {
  const DynamicScenario& s = smallBatchScenario();
  const PageRankOptions opt = smallBatchMcOptions(s);
  detail::LfEngineState es(s.curr.numVertices());
  // Untimed prime: build the walk store (and absorb the batch once).
  // Every timed iteration is then a pure steady-state repair step — a
  // new epoch re-walking the store's segments through the batch's
  // changed vertices, which is what the resident service pays per batch.
  detail::lfMonteCarloStep(es, s.prev, s.curr, s.batch, opt, nullptr, "bench");
  for (auto _ : state) {
    const PageRankResult r = detail::lfMonteCarloStep(es, s.prev, s.curr,
                                                      s.batch, opt, nullptr,
                                                      "bench");
    benchmark::DoNotOptimize(r.rankUpdates);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.batch.size()));
}
BENCHMARK(BM_SmallBatchWalkRepair);

void BM_SmallBatchExactResolve(benchmark::State& state) {
  const DynamicScenario& s = smallBatchScenario();
  PageRankOptions opt = scaledOptions(s.curr.numVertices());
  opt.numThreads = 1;
  // Worklist is the exact family's best scheduler at this fraction
  // (BM_SparseFrontier*); gating against the strongest baseline.
  opt.scheduling = SchedulingMode::Worklist;
  for (auto _ : state) {
    const PageRankResult r = runOnScenario(Approach::DFLF, s, opt);
    benchmark::DoNotOptimize(r.ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.batch.size()));
}
BENCHMARK(BM_SmallBatchExactResolve);

// ---------------------------------------------------------------------------

void BM_ChunkCursorThroughput(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ChunkCursor cursor(1 << 20, 2048);
    ThreadTeam team(threads);
    team.run([&](int) {
      std::size_t b = 0, e = 0;
      while (cursor.next(b, e)) benchmark::DoNotOptimize(b);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_ChunkCursorThroughput)->Arg(1)->Arg(2)->Arg(4);

void BM_BarrierRoundTrip(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    InstrumentedBarrier barrier(threads);
    ThreadTeam team(threads);
    team.run([&](int tid) {
      for (int i = 0; i < 100; ++i) barrier.arriveAndWait(tid);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_BarrierRoundTrip)->Arg(2)->Arg(4);

void BM_AtomicFlagScan(benchmark::State& state) {
  const AtomicU8Vector flags(1 << 20, 0);
  for (auto _ : state) benchmark::DoNotOptimize(flags.allZero());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_AtomicFlagScan);

void BM_AtomicFlagCount(benchmark::State& state) {
  AtomicU8Vector flags(1 << 20, 0);
  // 1/64 density: a converging frontier, not the all-zero fast path.
  for (std::size_t i = 0; i < flags.size(); i += 64) flags.store(i, 1);
  for (auto _ : state) benchmark::DoNotOptimize(flags.countNonZero());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_AtomicFlagCount);

void BM_CsrConstruction(benchmark::State& state) {
  Rng rng(2);
  auto es = generateRmat(12, 64000, rng);
  appendSelfLoops(es, 4096);
  for (auto _ : state) {
    auto g = CsrGraph::fromEdges(4096, es);
    benchmark::DoNotOptimize(g.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(es.size()));
}
BENCHMARK(BM_CsrConstruction);

void BM_BatchApply(benchmark::State& state) {
  Rng rng(3);
  auto es = generateRmat(12, 64000, rng);
  appendSelfLoops(es, 4096);
  const auto base = DynamicDigraph::fromEdges(4096, es);
  Rng batchRng(4);
  auto batch = generateBatch(base, 1000, batchRng);
  for (auto _ : state) {
    auto g = base;
    g.applyBatch(batch);
    benchmark::DoNotOptimize(g.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_BatchApply);

void BM_SnapshotToCsr(benchmark::State& state) {
  Rng rng(5);
  auto es = generateRmat(12, 64000, rng);
  appendSelfLoops(es, 4096);
  const auto g = DynamicDigraph::fromEdges(4096, es);
  for (auto _ : state) {
    auto csr = g.toCsr();
    benchmark::DoNotOptimize(csr.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_SnapshotToCsr);

}  // namespace
}  // namespace lfpr

// BENCHMARK_MAIN() plus one line: the BM_Mapped* group needs a snapshot
// file, so default LFPR_DATASET_DIR to a temp dir when the user has not
// pointed it at a persistent cache.
int main(int argc, char** argv) {
  if (std::getenv("LFPR_DATASET_DIR") == nullptr) {
    const auto fallback = std::filesystem::temp_directory_path() / "lfpr-datasets";
    ::setenv("LFPR_DATASET_DIR", fallback.c_str(), /*overwrite=*/0);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
