// Micro-kernel benchmarks (google-benchmark): the primitive operations
// the engines are built from. Not a paper figure — an engineering
// baseline for spotting regressions in the hot paths.
#include <benchmark/benchmark.h>

#include <atomic>

#include "generate/batch_gen.hpp"
#include "generate/generators.hpp"
#include "graph/dynamic_digraph.hpp"
#include "graph/pull_csr.hpp"
#include "pagerank/atomics.hpp"
#include "pagerank/detail/common.hpp"
#include "sched/barrier.hpp"
#include "sched/chunk_cursor.hpp"
#include "sched/thread_team.hpp"
#include "util/rng.hpp"

namespace lfpr {
namespace {

CsrGraph makeGraph(int scale, EdgeId edges) {
  Rng rng(1);
  auto es = generateRmat(scale, edges, rng);
  appendSelfLoops(es, VertexId{1} << scale);
  return CsrGraph::fromEdges(VertexId{1} << scale, es);
}

void BM_RankPullKernel(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(g, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernel);

void BM_RankPullKernelAtomic(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const AtomicF64Vector ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(g, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernelAtomic);

void BM_RankPullKernelWeighted(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const WeightedPullCsr pull(g);
  const std::vector<double> ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(pull, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernelWeighted);

void BM_RankPullKernelWeightedAtomic(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  const WeightedPullCsr pull(g);
  const AtomicF64Vector ranks(g.numVertices(), 1.0 / g.numVertices());
  const double base = 0.15 / static_cast<double>(g.numVertices());
  for (auto _ : state) {
    double acc = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      acc += detail::pullRank(pull, ranks, v, 0.85, base);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_RankPullKernelWeightedAtomic);

void BM_WeightedLayoutBuild(benchmark::State& state) {
  const auto g = makeGraph(12, 32000);
  for (auto _ : state) {
    WeightedPullCsr pull(g);
    benchmark::DoNotOptimize(pull.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_WeightedLayoutBuild);

void BM_ChunkCursorThroughput(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ChunkCursor cursor(1 << 20, 2048);
    ThreadTeam team(threads);
    team.run([&](int) {
      std::size_t b = 0, e = 0;
      while (cursor.next(b, e)) benchmark::DoNotOptimize(b);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_ChunkCursorThroughput)->Arg(1)->Arg(2)->Arg(4);

void BM_BarrierRoundTrip(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    InstrumentedBarrier barrier(threads);
    ThreadTeam team(threads);
    team.run([&](int tid) {
      for (int i = 0; i < 100; ++i) barrier.arriveAndWait(tid);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_BarrierRoundTrip)->Arg(2)->Arg(4);

void BM_AtomicFlagScan(benchmark::State& state) {
  const AtomicU8Vector flags(1 << 20, 0);
  for (auto _ : state) benchmark::DoNotOptimize(flags.allZero());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_AtomicFlagScan);

void BM_AtomicFlagCount(benchmark::State& state) {
  AtomicU8Vector flags(1 << 20, 0);
  // 1/64 density: a converging frontier, not the all-zero fast path.
  for (std::size_t i = 0; i < flags.size(); i += 64) flags.store(i, 1);
  for (auto _ : state) benchmark::DoNotOptimize(flags.countNonZero());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_AtomicFlagCount);

void BM_CsrConstruction(benchmark::State& state) {
  Rng rng(2);
  auto es = generateRmat(12, 64000, rng);
  appendSelfLoops(es, 4096);
  for (auto _ : state) {
    auto g = CsrGraph::fromEdges(4096, es);
    benchmark::DoNotOptimize(g.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(es.size()));
}
BENCHMARK(BM_CsrConstruction);

void BM_BatchApply(benchmark::State& state) {
  Rng rng(3);
  auto es = generateRmat(12, 64000, rng);
  appendSelfLoops(es, 4096);
  const auto base = DynamicDigraph::fromEdges(4096, es);
  Rng batchRng(4);
  auto batch = generateBatch(base, 1000, batchRng);
  for (auto _ : state) {
    auto g = base;
    g.applyBatch(batch);
    benchmark::DoNotOptimize(g.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_BatchApply);

void BM_SnapshotToCsr(benchmark::State& state) {
  Rng rng(5);
  auto es = generateRmat(12, 64000, rng);
  appendSelfLoops(es, 4096);
  const auto g = DynamicDigraph::fromEdges(4096, es);
  for (auto _ : state) {
    auto csr = g.toCsr();
    benchmark::DoNotOptimize(csr.numEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_SnapshotToCsr);

}  // namespace
}  // namespace lfpr

BENCHMARK_MAIN();
