// Figure 5: mean runtime of StaticBB, NDBB, DFBB, StaticLF, NDLF and
// DFLF on the real-world temporal networks, replayed with the paper's
// protocol (load 90%, apply the remaining stream as insertion-only
// batches of 1e-4 |E_T| and 1e-3 |E_T|). Each approach carries its own
// rank vector across batches, as a deployed service would.
//
// The stream is replayed out-of-core (TemporalReplayStream over the
// persisted edge log): each approach opens its own cursor and only one
// batch is resident at a time, so the replay works unchanged on logs far
// larger than RAM.
#include "bench_common.hpp"

#include "generate/temporal_replay.hpp"

using namespace lfpr;

namespace {

constexpr Approach kApproaches[] = {Approach::StaticBB, Approach::NDBB,
                                    Approach::DFBB,     Approach::StaticLF,
                                    Approach::NDLF,     Approach::DFLF};

}  // namespace

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Figure 5: runtime on real-world dynamic graphs (temporal replay)",
      "DFLF fastest: ~3.8x over StaticBB, ~3.2x over NDBB, ~4.5x over StaticLF, "
      "~2.5x over NDLF, ~1.6x over DFBB",
      cfg);

  const std::size_t maxBatches = cfg.scale >= 2 ? 16 : (cfg.scale == 1 ? 8 : 4);

  Table table({"dataset", "batch_frac", "approach", "mean_ms_per_batch",
               "dflf_speedup", "iters_mean"});
  for (const auto& spec : temporalDatasets(cfg.scale)) {
    const auto logPath = temporalLogPath(spec, cfg.scale, /*seed=*/1);
    for (double fraction : {1e-4, 1e-3}) {
      const TemporalReplayStream replay(logPath, 0.9, fraction, maxBatches);
      if (replay.numBatches() == 0) continue;
      const auto opt = bench::benchOptions(cfg, replay.initial().numVertices());

      // High-precision initial ranks (see DynamicScenario docs: warm ranks
      // must be converged below tau_f or the frontier floods on noise).
      PageRankOptions initOpt = opt;
      initOpt.tolerance = std::max(1e-16, opt.frontierTolerance / 100.0);
      const auto initialCsr = replay.initial().toCsr();
      const auto initRanks = staticBB(initialCsr, initOpt).ranks;

      std::vector<double> meanMs(std::size(kApproaches), 0.0);
      std::vector<double> meanIters(std::size(kApproaches), 0.0);
      for (std::size_t ai = 0; ai < std::size(kApproaches); ++ai) {
        auto graph = replay.initial();  // fresh copy per approach
        auto prevCsr = initialCsr;
        auto ranks = initRanks;
        double totalMs = 0.0, totalIters = 0.0;
        auto cursor = replay.batches();  // re-streams the log per approach
        BatchUpdate batch;
        while (cursor.next(batch)) {
          graph.applyBatch(batch);
          const auto currCsr = graph.toCsr();
          const auto r =
              runApproach(kApproaches[ai], prevCsr, currCsr, batch, ranks, opt);
          totalMs += r.timeMs;
          totalIters += r.iterations;
          ranks = r.ranks;
          prevCsr = currCsr;
        }
        meanMs[ai] = totalMs / static_cast<double>(replay.numBatches());
        meanIters[ai] = totalIters / static_cast<double>(replay.numBatches());
      }

      const double dflfMs = meanMs.back();
      for (std::size_t ai = 0; ai < std::size(kApproaches); ++ai) {
        table.addRow({spec.name, Table::sci(fraction, 0),
                      approachName(kApproaches[ai]), bench::fmtMs(meanMs[ai]),
                      Table::num(meanMs[ai] / dflfMs, 2) + "x",
                      Table::num(meanIters[ai], 1)});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
