// Figure 7: runtime of the six approaches across batch-update fractions
// (the paper sweeps 1e-8..1e-1; our smallest graphs make 1e-8 a
// sub-single-edge batch, so the sweep starts at 1e-7 and the generator
// clamps to >= 1 update). Reports:
//   (a) per-graph runtimes,
//   (b) the geometric-mean runtime across graphs with DFLF speedup labels
//       over StaticLF and NDLF, and
//   (c) the L-inf error of DFLF/DFBB/NDLF against reference ranks.
//
// Paper shape: DFLF beats everything up to a batch fraction of ~1e-3
// (on average 12.6x/5.4x/12.0x/4.6x over StaticBB/NDBB/StaticLF/NDLF),
// then crosses below ND/Static at large batches where nearly all
// vertices end up affected; DF does best on sparse road/k-mer graphs and
// worst on dense social graphs; error stays within a small band around
// the iteration tolerance.
//
// PR 5 adds a DFLF_wl series — DFLF under SchedulingMode::Worklist (the
// sparse-frontier rings + publish diet) — so the dynamic-engine win of
// the worklist is measured at engine level across batch fractions: it
// should track or beat DFLF at small fractions (iteration cost
// proportional to the frontier, not |V|) and lose at large fractions
// where the frontier is dense and the dense sweep's locality wins.
//
// PR 8 adds a DFLF_push series — the delta-push residual engine
// (Approach::DeltaPush) — targeting the mid-density gap (~1e-5..1e-3)
// where the worklist's per-visit re-pulls and the dense sweep's O(|V|)
// iterations both do redundant work: push cost scales with the injected
// mass (touched edges decay geometrically per hop), so it should win the
// middle of the sweep and concede both ends.
//
// PR 9 adds an MC_repair series — one steady-state walk-repair step of
// the resident Monte Carlo store (detail::lfMonteCarloStep against a
// persistent LfEngineState, primed untimed) per fraction — measuring
// walk-repair throughput vs the exact re-solves across the whole sweep.
// It should dominate below ~1e-5 (repair cost scales with walks through
// the batch's changed vertices, O(1) expected per edge) and converge
// toward rebuild cost at large fractions where most walks are claimed.
// Its error column (MC_l1_err, table (c)) is an L1 distance and sits at
// the engine's *statistical* mcL1ErrorBound scale — orders of magnitude
// above the exact engines' tolerance-band L-inf numbers by design;
// comparable only against mcL1ErrorBound(alpha, R), not tau.
#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "pagerank/detail/engine_step.hpp"
#include "pagerank/reference.hpp"

using namespace lfpr;

namespace {

constexpr Approach kApproaches[] = {Approach::StaticBB, Approach::NDBB,
                                    Approach::DFBB,     Approach::StaticLF,
                                    Approach::NDLF,     Approach::DFLF};

constexpr double kFractions[] = {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};

}  // namespace

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Figure 7: batch-fraction sweep, all approaches, 12 graphs",
      "DFLF fastest up to ~1e-3 |E| (paper avg: 12.6x/5.4x/12.0x/4.6x over "
      "StaticBB/NDBB/StaticLF/NDLF), crossover above 1e-3; best on road/kmer, "
      "worst on social; DF error in a narrow band near the tolerance",
      cfg);

  const auto specs = staticDatasets(cfg.scale);

  // runtimes[approach][fraction] -> per-graph times for the geomean.
  std::map<Approach, std::map<double, std::vector<double>>> runtimes;
  std::map<double, std::vector<double>> dflfWlMs, dflfWlErr;
  std::map<double, std::vector<double>> dflfPushMs, dflfPushErr;
  std::map<double, std::vector<double>> mcRepairMs, mcL1Err;
  std::map<double, std::vector<double>> dflfErr, dfbbErr, ndlfErr;
  std::map<double, std::vector<double>> affectedShare;

  for (std::size_t di = 0; di < specs.size(); ++di) {
    const auto& spec = specs[di];
    auto base = bench::loadGraph(spec, cfg);
    const auto opt = bench::benchOptions(cfg, base.numVertices());

    Table table({"batch_frac", "StaticBB", "NDBB", "DFBB", "StaticLF", "NDLF",
                 "DFLF", "DFLF_wl", "DFLF_push", "MC_repair", "DFLF_affected",
                 "DFLF_err"});

    // MC walk-repair options: R=8, stride 32 keeps the walk store at
    // ~1 KB/vertex so the 12-graph sweep stays RAM-bounded; accuracy at
    // this R is the statistical mcL1ErrorBound(alpha, 8), reported in
    // table (c) as MC_l1_err.
    PageRankOptions mcOpt = opt;
    mcOpt.mcWalksPerVertex = 8;
    mcOpt.mcMaxWalkLength = 32;

    // Static runs do not depend on the batch: time them once per graph.
    const auto currForStatic = base.toCsr();
    double staticBBMs = 0.0, staticLFMs = 0.0;
    staticBBMs = bench::timedMs(cfg, [&] { staticBB(currForStatic, opt); });
    staticLFMs = bench::timedMs(cfg, [&] { staticLF(currForStatic, opt); });

    for (double fraction : kFractions) {
      const auto scenario =
          makeScenario(base, fraction, 1000 * di + static_cast<std::uint64_t>(
                                                       -std::log10(fraction)),
                       opt);
      const auto ref = referenceRanks(scenario.curr, opt.alpha);

      std::map<Approach, double> ms;
      ms[Approach::StaticBB] = staticBBMs;
      ms[Approach::StaticLF] = staticLFMs;
      PageRankResult dfLfResult, dfBbResult, ndLfResult;
      for (Approach a :
           {Approach::NDBB, Approach::NDLF, Approach::DFBB, Approach::DFLF}) {
        PageRankResult r;
        ms[a] = bench::timedMs(cfg, [&] { r = runOnScenario(a, scenario, opt); });
        if (a == Approach::DFLF) dfLfResult = r;
        if (a == Approach::DFBB) dfBbResult = r;
        if (a == Approach::NDLF) ndLfResult = r;
      }

      // DFLF under worklist scheduling (PR 5 sparse-frontier series).
      PageRankOptions wlOpt = opt;
      wlOpt.scheduling = SchedulingMode::Worklist;
      PageRankResult dfLfWlResult;
      const double wlMs = bench::timedMs(
          cfg, [&] { dfLfWlResult = runOnScenario(Approach::DFLF, scenario, wlOpt); });
      dflfWlMs[fraction].push_back(wlMs);
      dflfWlErr[fraction].push_back(linfNorm(dfLfWlResult.ranks, ref));

      // Delta-push residual engine (PR 8 mid-density series).
      PageRankResult pushResult;
      const double pushMs = bench::timedMs(cfg, [&] {
        pushResult = runOnScenario(Approach::DeltaPush, scenario, opt);
      });
      dflfPushMs[fraction].push_back(pushMs);
      dflfPushErr[fraction].push_back(linfNorm(pushResult.ranks, ref));

      // Monte Carlo steady-state walk repair (PR 9 series): prime the
      // store untimed (build on prev + absorb the batch once), then time
      // pure repair steps — each a new epoch re-walking the segments
      // through the batch's changed vertices, the cost the resident
      // service pays per ingested batch.
      detail::LfEngineState mcState(scenario.curr.numVertices());
      detail::lfMonteCarloStep(mcState, scenario.prev, scenario.curr,
                               scenario.batch, mcOpt, nullptr, "fig7");
      const double mcMs = bench::timedMs(cfg, [&] {
        detail::lfMonteCarloStep(mcState, scenario.prev, scenario.curr,
                                 scenario.batch, mcOpt, nullptr, "fig7");
      });
      mcRepairMs[fraction].push_back(mcMs);
      mcL1Err[fraction].push_back(l1Norm(mcState.ranks.toVector(), ref));

      for (Approach a : kApproaches) runtimes[a][fraction].push_back(ms[a]);
      dflfErr[fraction].push_back(linfNorm(dfLfResult.ranks, ref));
      dfbbErr[fraction].push_back(linfNorm(dfBbResult.ranks, ref));
      ndlfErr[fraction].push_back(linfNorm(ndLfResult.ranks, ref));
      affectedShare[fraction].push_back(
          static_cast<double>(dfLfResult.affectedVertices) /
          static_cast<double>(scenario.curr.numVertices()));

      table.addRow({Table::sci(fraction, 0), bench::fmtMs(ms[Approach::StaticBB]),
                    bench::fmtMs(ms[Approach::NDBB]), bench::fmtMs(ms[Approach::DFBB]),
                    bench::fmtMs(ms[Approach::StaticLF]),
                    bench::fmtMs(ms[Approach::NDLF]), bench::fmtMs(ms[Approach::DFLF]),
                    bench::fmtMs(wlMs), bench::fmtMs(pushMs), bench::fmtMs(mcMs),
                    Table::count(dfLfResult.affectedVertices),
                    Table::sci(linfNorm(dfLfResult.ranks, ref), 1)});
      if (fraction == kFractions[0]) {
        bench::printProtocolStats(spec.name + "/DFLF_wl", dfLfWlResult);
        bench::printProtocolStats(spec.name + "/DFLF_push", pushResult);
      }
    }
    std::cout << "--- " << spec.name << " (" << spec.family << ") ---\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "=== (b) geometric-mean runtime across graphs ===\n";
  Table meanTable({"batch_frac", "StaticBB", "NDBB", "DFBB", "StaticLF", "NDLF",
                   "DFLF", "DFLF_wl", "DFLF_push", "MC_repair", "DFLF/StaticLF",
                   "DFLF/NDLF", "DFLF_wl/DFLF", "push/best_pull",
                   "affected_share"});
  for (double fraction : kFractions) {
    std::map<Approach, double> gm;
    for (Approach a : kApproaches) gm[a] = geomean(runtimes[a][fraction]);
    const double gmWl = geomean(dflfWlMs[fraction]);
    const double gmPush = geomean(dflfPushMs[fraction]);
    const double gmMc = geomean(mcRepairMs[fraction]);
    // "push/best_pull" > 1 means delta-push beat BOTH pull schedulers at
    // this fraction — the band-ownership readout behind BENCH_pr8.json.
    const double bestPull = std::min(gm[Approach::DFLF], gmWl);
    meanTable.addRow(
        {Table::sci(fraction, 0), bench::fmtMs(gm[Approach::StaticBB]),
         bench::fmtMs(gm[Approach::NDBB]), bench::fmtMs(gm[Approach::DFBB]),
         bench::fmtMs(gm[Approach::StaticLF]), bench::fmtMs(gm[Approach::NDLF]),
         bench::fmtMs(gm[Approach::DFLF]), bench::fmtMs(gmWl),
         bench::fmtMs(gmPush), bench::fmtMs(gmMc),
         Table::num(gm[Approach::StaticLF] / gm[Approach::DFLF], 2) + "x",
         Table::num(gm[Approach::NDLF] / gm[Approach::DFLF], 2) + "x",
         Table::num(gm[Approach::DFLF] / gmWl, 2) + "x",
         Table::num(bestPull / gmPush, 2) + "x",
         Table::num(mean(affectedShare[fraction]), 2)});
  }
  meanTable.print(std::cout);

  std::cout << "\n=== (c) mean L-inf error vs reference ===\n";
  Table err({"batch_frac", "DFBB_err", "DFLF_err", "DFLF_wl_err",
             "DFLF_push_err", "MC_l1_err", "NDLF_err", "tolerance_note"});
  for (double fraction : kFractions) {
    err.addRow({Table::sci(fraction, 0), Table::sci(mean(dfbbErr[fraction]), 1),
                Table::sci(mean(dflfErr[fraction]), 1),
                Table::sci(mean(dflfWlErr[fraction]), 1),
                Table::sci(mean(dflfPushErr[fraction]), 1),
                Table::sci(mean(mcL1Err[fraction]), 1),
                Table::sci(mean(ndlfErr[fraction]), 1),
                "tau scales as 1e-3/|V| (see DESIGN.md)"});
  }
  err.print(std::cout);
  return 0;
}
