// Section 3.3.2 ablation: dynamic chunk scheduling (our StaticLF) vs the
// Eedi et al. style fixed per-thread partition. The paper reports its
// dynamically scheduled implementation 14% faster than Eedi et al.'s
// No-Sync; beyond speed, the fixed partition's unpaced stripes let
// per-vertex converged flags latch early, degrading accuracy under
// oversubscription — both effects are quantified here.
#include "bench_common.hpp"

#include "pagerank/reference.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Ablation (Section 3.3.2): dynamic chunks vs static partition (StaticLF)",
      "dynamic scheduling is faster (paper: +14% over Eedi et al. No-Sync) "
      "and keeps asynchronous drift bounded; static partitions drift",
      cfg);

  const auto specs = representativeDatasets(cfg.scale);
  Table table({"dataset", "schedule", "runtime_ms", "iterations", "err_vs_ref"});
  for (const auto& spec : specs) {
    const auto g = bench::loadCsr(spec, cfg);
    const auto opt = bench::benchOptions(cfg, g.numVertices());
    const auto ref = referenceRanks(g, opt.alpha);
    for (bool staticSched : {false, true}) {
      auto o = opt;
      o.staticSchedule = staticSched;
      PageRankResult r;
      const double ms = bench::timedMs(cfg, [&] { r = staticLF(g, o); });
      table.addRow({spec.name, staticSched ? "static-partition" : "dynamic-chunks",
                    bench::fmtMs(ms),
                    Table::count(static_cast<std::uint64_t>(r.iterations)),
                    Table::sci(linfNorm(r.ranks, ref), 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
