// Table 1: the two real-world temporal networks (wiki-talk-temporal,
// sx-stackoverflow). We print the paper's published statistics next to
// the generated stand-ins' statistics: |V|, temporal edge count |E_T|
// (with duplicates), and distinct static edge count |E|.
//
// The stand-in stream is persisted as an edge log on first use
// (temporalLogPath); |E_T| and |E| come straight from the log header, so
// a cached run touches 56 bytes of each log instead of regenerating the
// stream.
#include "bench_common.hpp"
#include "graph/edge_log.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Table 1: real-world dynamic graphs (temporal stand-ins)",
      "|E_T| > |E| (duplicate temporal edges); wiki-talk has ~2.4x duplication, "
      "sx-stackoverflow ~1.75x",
      cfg);

  Table table({"dataset", "stands_for", "paper_|V|", "paper_|E_T|", "paper_|E|",
               "sim_|V|", "sim_|E_T|", "sim_|E|", "sim_dup_ratio", "load_ms"});
  for (const auto& spec : temporalDatasets(cfg.scale)) {
    const Stopwatch sw;
    const TemporalEdgeLogReader log(temporalLogPath(spec, cfg.scale, /*seed=*/1));
    const double loadMs = sw.elapsedMs();
    const double dup = static_cast<double>(log.numEdges()) /
                       static_cast<double>(log.numStaticEdges());
    table.addRow({spec.name, spec.paperName, Table::sci(spec.paperVertices, 2),
                  Table::sci(spec.paperTemporalEdges, 2),
                  Table::sci(spec.paperStaticEdges, 2),
                  Table::count(log.numVertices()), Table::count(log.numEdges()),
                  Table::count(log.numStaticEdges()), Table::num(dup, 2),
                  bench::fmtMs(loadMs)});
  }
  table.print(std::cout);
  return 0;
}
