// Table 1: the two real-world temporal networks (wiki-talk-temporal,
// sx-stackoverflow). We print the paper's published statistics next to
// the generated stand-ins' statistics: |V|, temporal edge count |E_T|
// (with duplicates), and distinct static edge count |E|.
#include <unordered_set>

#include "bench_common.hpp"
#include "graph/types.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Table 1: real-world dynamic graphs (temporal stand-ins)",
      "|E_T| > |E| (duplicate temporal edges); wiki-talk has ~2.4x duplication, "
      "sx-stackoverflow ~1.75x",
      cfg);

  Table table({"dataset", "stands_for", "paper_|V|", "paper_|E_T|", "paper_|E|",
               "sim_|V|", "sim_|E_T|", "sim_|E|", "sim_dup_ratio"});
  for (const auto& spec : temporalDatasets(cfg.scale)) {
    const auto data = spec.build(/*seed=*/1);
    std::unordered_set<Edge, EdgeHash> distinct;
    distinct.reserve(data.edges.size() * 2);
    for (const auto& e : data.edges) distinct.insert({e.src, e.dst});
    const double dup = static_cast<double>(data.edges.size()) /
                       static_cast<double>(distinct.size());
    table.addRow({spec.name, spec.paperName, Table::sci(spec.paperVertices, 2),
                  Table::sci(spec.paperTemporalEdges, 2),
                  Table::sci(spec.paperStaticEdges, 2),
                  Table::count(data.numVertices), Table::count(data.edges.size()),
                  Table::count(distinct.size()), Table::num(dup, 2)});
  }
  table.print(std::cout);
  return 0;
}
