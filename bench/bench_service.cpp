// RankService under mixed ingest + query load (PR 6): one service
// instance ingests a stream of edge batches while reader threads hammer
// the snapshot API. Reports, per repetition:
//
//   ingest throughput   edges/s from first submit to drained queue
//                       (includes solve + publish time — the service's
//                       end-to-end rate, not the raw queue rate)
//   query latency       p50 / p99 ns for acquire-snapshot + rank lookup
//                       on the reader threads (wait-free path)
//   rank staleness      age of the published snapshot and the pending
//                       batch/edge backlog sampled during ingest
//
// With --json PATH the numbers are additionally written as a
// google-benchmark-compatible document (one entry per repetition under
// the same name; scripts/compare_bench.py reduces repetitions via
// min-of-repetitions — max items/s, min p50_ns/p99_ns) so the CI
// perf-smoke gate can regression-check the service exactly like the
// micro-kernels.
//
//   ./bench_service [--json out.json]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "generate/batch_gen.hpp"
#include "service/rank_service.hpp"
#include "util/rng.hpp"

using namespace lfpr;

namespace {

constexpr int kReaderThreads = 2;
constexpr int kNumBatches = 16;

double percentileNs(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  return samples[static_cast<std::size_t>(idx)];
}

struct MixedLoadResult {
  double ingestMs = 0.0;
  double edgesPerSec = 0.0;
  std::uint64_t edges = 0;
  std::uint64_t queries = 0;
  double queriesPerSec = 0.0;
  double p50Ns = 0.0;
  double p99Ns = 0.0;
  double meanAgeMs = 0.0;
  double maxAgeMs = 0.0;
  double maxPendingBatches = 0.0;
  std::uint64_t publishes = 0;
};

MixedLoadResult runMixedLoad(const CsrGraph& initial,
                             const bench::BenchConfig& cfg,
                             std::size_t batchEdges, std::uint64_t seed,
                             const std::string& durabilityDir = {}) {
  ServiceOptions sopt;
  sopt.solver = bench::benchOptions(cfg, initial.numVertices());
  if (!durabilityDir.empty()) {
    // Journal-on run (PR 7): measure the write-ahead append + fsync on
    // the submit path in isolation — checkpoint cadence off so the
    // number is journal overhead, not snapshot-write overhead.
    std::filesystem::remove_all(durabilityDir);
    sopt.durability.directory = durabilityDir;
    sopt.durability.fsync = FsyncPolicy::Batch;
    sopt.durability.checkpointEverySolves = 0;
  }
  RankService service(initial, sopt);
  service.waitForEpoch(1);

  std::atomic<bool> stopReaders{false};
  std::vector<std::vector<double>> latencies(kReaderThreads);
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed + 1000 + static_cast<std::uint64_t>(t));
      auto& mine = latencies[static_cast<std::size_t>(t)];
      mine.reserve(1 << 16);
      const auto n = service.numVertices();
      while (!stopReaders.load(std::memory_order_relaxed)) {
        const auto v = static_cast<VertexId>(rng() % n);
        const Stopwatch sw;
        {
          const SnapshotView snap = service.snapshot();
          volatile double r = snap->rank(v);
          (void)r;
        }
        mine.push_back(sw.elapsedMs() * 1e6);  // ns
        std::this_thread::yield();
      }
    });
  }

  // Batches come from an offline twin so the generator sees the graph
  // exactly as the service will after each batch lands.
  auto offline = DynamicDigraph::fromCsr(initial);
  offline.ensureSelfLoops();
  Rng rng(seed);
  MixedLoadResult out;
  double ageSum = 0.0;
  std::size_t ageSamples = 0;

  const Stopwatch ingestTimer;
  for (int b = 0; b < kNumBatches; ++b) {
    auto batch = generateBatch(offline, batchEdges, rng);
    offline.applyBatch(batch);
    out.edges += batch.size();
    service.submit(std::move(batch));
    const Staleness st = service.staleness();
    ageSum += st.ageMs;
    ++ageSamples;
    out.maxAgeMs = std::max(out.maxAgeMs, st.ageMs);
    out.maxPendingBatches =
        std::max(out.maxPendingBatches, static_cast<double>(st.pendingBatches));
  }
  service.waitIdle();
  out.ingestMs = ingestTimer.elapsedMs();

  stopReaders.store(true);
  for (auto& r : readers) r.join();
  service.stop();

  std::vector<double> all;
  for (auto& per : latencies) all.insert(all.end(), per.begin(), per.end());
  out.queries = all.size();
  out.p50Ns = percentileNs(all, 50.0);
  out.p99Ns = percentileNs(all, 99.0);
  out.edgesPerSec = out.ingestMs > 0.0 ? out.edges / (out.ingestMs / 1e3) : 0.0;
  out.queriesPerSec =
      out.ingestMs > 0.0 ? out.queries / (out.ingestMs / 1e3) : 0.0;
  out.meanAgeMs = ageSamples > 0 ? ageSum / static_cast<double>(ageSamples) : 0.0;
  out.publishes = service.stats().publishes;
  return out;
}

/// Restart-recovery lanes (PR 10): stage one durable MonteCarlo service
/// directory — newest checkpoint triple (csr + walks + meta) plus a
/// one-batch journal tail — then measure the time from construction to
/// the first published snapshot that can serve personalized queries,
/// twice over the same bytes:
///
///   Resume   the staged directory as-is: the walk sidecar deserializes
///            and the store resumes; the PPR-capable snapshot publishes
///            from the constructor, before replay even starts
///   Rebuild  a copy with the sidecar deleted (the quarantine shape):
///            exact ranks still recover instantly, but the first
///            personalized-capable snapshot must wait for a full walk
///            rebuild inside the journal-tail replay
///
/// The CI gate checks the Resume/Rebuild boots-per-second ratio within
/// one JSON file, so both lanes must come from the same process.
struct RecoveryLanes {
  double resumeMs = 0.0;
  double rebuildMs = 0.0;
};

RecoveryLanes runRestartRecovery(const CsrGraph& initial,
                                 const bench::BenchConfig& cfg,
                                 std::size_t batchEdges, std::uint64_t seed,
                                 const std::string& scratchRoot) {
  namespace fs = std::filesystem;
  const fs::path resumeDir = fs::path(scratchRoot) / "resume";
  const fs::path rebuildDir = fs::path(scratchRoot) / "rebuild";
  fs::remove_all(resumeDir);
  fs::remove_all(rebuildDir);
  fs::create_directories(resumeDir);

  ServiceOptions sopt;
  sopt.solver = bench::benchOptions(cfg, initial.numVertices());
  sopt.stepEngine = ServiceOptions::StepEngine::MonteCarlo;
  sopt.maxBatchesPerStep = 1;
  sopt.durability.directory = resumeDir.string();
  sopt.durability.fsync = FsyncPolicy::Batch;
  sopt.durability.checkpointEverySolves = 2;

  {
    // Stage: four batches at cadence 2 leave the newest triple covering
    // batches 1..3 with batch 4 on the journal tail — the mid-cadence
    // kill shape.
    RankService s(initial, sopt);
    auto offline = DynamicDigraph::fromCsr(initial);
    offline.ensureSelfLoops();
    Rng rng(seed);
    for (int b = 0; b < 4; ++b) {
      auto batch = generateBatch(offline, batchEdges, rng);
      offline.applyBatch(batch);
      s.submit(std::move(batch));
      s.waitIdle();
    }
    s.drainAndStop();
  }
  fs::copy(resumeDir, rebuildDir, fs::copy_options::recursive);
  for (const auto& e : fs::directory_iterator(rebuildDir))
    if (e.path().extension() == ".walks") fs::remove(e.path());

  RecoveryLanes out;
  for (const bool resume : {true, false}) {
    ServiceOptions opt = sopt;
    opt.durability.directory = (resume ? resumeDir : rebuildDir).string();
    const Stopwatch sw;
    RankService s(initial, opt);
    // First snapshot that answers pprTopK: resume publishes it from the
    // constructor; rebuild publishes it after the replayed repair step
    // rebuilds the store.
    // Sleep-poll rather than yield-spin: a spinning waiter on a small
    // host steals cycles from the very recovery work being timed.
    for (;;) {
      const SnapshotView v = s.snapshot();
      if (v && v->monteCarlo) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    (resume ? out.resumeMs : out.rebuildMs) = sw.elapsedMs();
    s.waitIdle();
    s.stop();
  }
  return out;
}

void appendEntry(std::string& json, const char* name, int repetition,
                 int repetitions, double realTimeNs,
                 const std::string& extraFields) {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"run_name\": \"%s\", "
                "\"run_type\": \"iteration\", \"repetitions\": %d, "
                "\"repetition_index\": %d, \"iterations\": 1, "
                "\"real_time\": %.1f, \"cpu_time\": %.1f, "
                "\"time_unit\": \"ns\"%s%s}",
                name, name, repetitions, repetition, realTimeNs, realTimeNs,
                extraFields.empty() ? "" : ", ", extraFields.c_str());
  if (!json.empty()) json += ",\n";
  json += buf;
}

std::string field(const char* key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key, value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      jsonPath = argv[++i];
  }

  const bench::BenchConfig cfg;
  bench::printHeader(
      "RankService: mixed ingest + query load",
      "query latency stays flat (wait-free snapshot reads) while the "
      "service sustains batch ingest; staleness bounded by solve time",
      cfg);

  const auto spec = representativeDatasets(cfg.scale).front();
  auto base = bench::loadGraph(spec, cfg);
  const auto initial = base.toCsr();
  const std::size_t batchEdges = std::max<std::size_t>(
      64, static_cast<std::size_t>(initial.numEdges()) / 1000);
  std::printf("dataset: %s  |V|=%u |E|=%llu  batches=%d x %zu edges, "
              "readers=%d\n\n",
              spec.name.c_str(), initial.numVertices(),
              static_cast<unsigned long long>(initial.numEdges()), kNumBatches,
              batchEdges, kReaderThreads);

  // Journal-on twin of every repetition (PR 7): same batches, same
  // seeds, durability directory on a scratch path with Batch fsync. The
  // CI gate checks the journaled/plain ingest ratio within one JSON file
  // (host-invariant), so both must come from the same process.
  const std::string journalDir =
      (std::filesystem::temp_directory_path() /
       ("lfpr-bench-journal-" + std::to_string(::getpid())))
          .string();

  Table table({"repetition", "ingest_Medges/s", "journaled_Medges/s",
               "query_p50_us", "query_p99_us", "staleness_mean_ms",
               "staleness_max_ms", "publishes"});
  std::string entries;
  for (int rep = 0; rep < cfg.repeats; ++rep) {
    const auto r = runMixedLoad(initial, cfg, batchEdges,
                                900 + static_cast<std::uint64_t>(rep));
    const auto rj = runMixedLoad(initial, cfg, batchEdges,
                                 900 + static_cast<std::uint64_t>(rep),
                                 journalDir);
    table.addRow({Table::count(static_cast<std::uint64_t>(rep)),
                  Table::num(r.edgesPerSec / 1e6, 3),
                  Table::num(rj.edgesPerSec / 1e6, 3),
                  Table::num(r.p50Ns / 1e3, 2), Table::num(r.p99Ns / 1e3, 2),
                  Table::num(r.meanAgeMs, 2), Table::num(r.maxAgeMs, 2),
                  Table::count(r.publishes)});

    appendEntry(entries, "BM_ServiceIngest", rep, cfg.repeats,
                r.ingestMs * 1e6,
                field("items_per_second", r.edgesPerSec));
    appendEntry(entries, "BM_ServiceIngestJournaled", rep, cfg.repeats,
                rj.ingestMs * 1e6,
                field("items_per_second", rj.edgesPerSec));
    appendEntry(entries, "BM_ServiceQuery", rep, cfg.repeats, r.p50Ns,
                field("items_per_second", r.queriesPerSec) + ", " +
                    field("p50_ns", r.p50Ns) + ", " + field("p99_ns", r.p99Ns));
    appendEntry(entries, "BM_ServiceStaleness", rep, cfg.repeats,
                r.meanAgeMs * 1e6,
                field("mean_age_ms", r.meanAgeMs) + ", " +
                    field("max_age_ms", r.maxAgeMs) + ", " +
                    field("max_pending_batches", r.maxPendingBatches));
  }
  std::filesystem::remove_all(journalDir);
  table.print(std::cout);

  // Restart-recovery lanes (PR 10): resume-from-sidecar vs rebuild.
  const std::string recoveryDir =
      (std::filesystem::temp_directory_path() /
       ("lfpr-bench-recovery-" + std::to_string(::getpid())))
          .string();
  std::printf("\nrestart recovery: time to first personalized-capable "
              "snapshot (resume = walk sidecar, rebuild = sidecar "
              "deleted)\n");
  Table rtable({"repetition", "resume_ms", "rebuild_ms", "speedup"});
  for (int rep = 0; rep < cfg.repeats; ++rep) {
    const auto r = runRestartRecovery(initial, cfg, batchEdges,
                                      1700 + static_cast<std::uint64_t>(rep),
                                      recoveryDir);
    rtable.addRow({Table::count(static_cast<std::uint64_t>(rep)),
                   Table::num(r.resumeMs, 2), Table::num(r.rebuildMs, 2),
                   Table::num(r.resumeMs > 0.0 ? r.rebuildMs / r.resumeMs : 0.0,
                              2)});
    appendEntry(entries, "BM_ServiceRestartRecoveryResume", rep, cfg.repeats,
                r.resumeMs * 1e6,
                field("items_per_second",
                      r.resumeMs > 0.0 ? 1e3 / r.resumeMs : 0.0));
    appendEntry(entries, "BM_ServiceRestartRecoveryRebuild", rep, cfg.repeats,
                r.rebuildMs * 1e6,
                field("items_per_second",
                      r.rebuildMs > 0.0 ? 1e3 / r.rebuildMs : 0.0));
  }
  std::filesystem::remove_all(recoveryDir);
  rtable.print(std::cout);

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\"executable\": \"bench_service\", "
                 "\"scale\": %d, \"threads\": %d, \"repeats\": %d},\n"
                 "  \"benchmarks\": [\n%s\n  ]\n}\n",
                 cfg.scale, cfg.threads, cfg.repeats, entries.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", jsonPath.c_str());
  }
  return 0;
}
