// Figure 8: DFBB vs DFLF under random thread delays, batch 1e-4 |E|.
//
// The paper's stressor is *rare, long* sleeps: 50/100/200 ms delays with
// per-vertex-update probability 1e-9..1e-6, i.e. ~0.01..10 sleeps per
// iteration across 64 threads. A sleeping thread stalls the whole
// barrier-based team once per iteration barrier, while the lock-free team
// redistributes its chunks and keeps the cores busy. Probabilities and
// durations here are rescaled to this host (smaller graphs, shorter
// iterations) so a run sees the same 0..~5 sleeps, each spanning many
// iteration times.
//
// Shape: each engine is compared against its own fault-free baseline;
// DFBB's slowdown grows with delay probability and duration much faster
// than DFLF's (paper: DFLF 2.0x/2.6x/3.5x faster at the highest
// probability for 50/100/200 ms delays).
#include "bench_common.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Figure 8: runtime under random thread delays (batch 1e-4 |E|)",
      "DFBB's slowdown grows with delay probability/duration; DFLF is "
      "minimally affected (paper: DFLF 2.0x/2.6x/3.5x faster at p=1e-6 "
      "for 50/100/200ms)",
      cfg);

  const auto specs = representativeDatasets(cfg.scale);
  // Expected sleeps per run (the paper's axis is ~0.01..10 sleeps per
  // iteration; a run here is a few dozen iterations). Per-update
  // probabilities are derived per engine from its fault-free update count
  // so both engines face the same number of sleep events — DFLF executes
  // more raw updates than DFBB at this scale, and a shared per-update
  // probability would skew all the faults onto the lock-free engine.
  const double targetSleeps[] = {0.0, 1.0, 2.0, 4.0};
  const int durationsMs[] = {5, 10, 20};

  std::vector<DynamicScenario> scenarios;
  std::vector<double> bbCleanUpdates, lfCleanUpdates, bbBase, lfBase;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto base = bench::loadGraph(specs[i], cfg);
    const auto opt = bench::benchOptions(cfg, base.numVertices());
    scenarios.push_back(makeScenario(std::move(base), 1e-4, 300 + i, opt));
    const auto& s = scenarios.back();
    PageRankResult bb, lf;
    bbBase.push_back(bench::timedMs(
        cfg, [&] { bb = dfBB(s.prev, s.curr, s.batch, s.prevRanks, opt); }));
    lfBase.push_back(bench::timedMs(
        cfg, [&] { lf = dfLF(s.prev, s.curr, s.batch, s.prevRanks, opt); }));
    bbCleanUpdates.push_back(static_cast<double>(std::max<std::uint64_t>(1, bb.rankUpdates)));
    lfCleanUpdates.push_back(static_cast<double>(std::max<std::uint64_t>(1, lf.rankUpdates)));
  }
  const double bbBaseMs = geomean(bbBase);
  const double lfBaseMs = geomean(lfBase);

  Table table({"delay_ms", "sleeps_per_run", "DFBB_ms", "DFBB_slowdown", "DFLF_ms",
               "DFLF_slowdown", "DFLF/DFBB", "DFLF_err_vs_clean"});
  for (int durationMs : durationsMs) {
    for (double target : targetSleeps) {
      std::vector<double> bbTimes, lfTimes, errs;
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto& s = scenarios[i];
        const auto opt = bench::benchOptions(cfg, s.curr.numVertices());

        FaultConfig bbFc;
        bbFc.delayProbability = target / bbCleanUpdates[i];
        bbFc.delayDuration = std::chrono::milliseconds(durationMs);
        FaultInjector bbFault(cfg.threads, bbFc);
        {
          const Stopwatch sw;
          dfBB(s.prev, s.curr, s.batch, s.prevRanks, opt, &bbFault);
          bbTimes.push_back(sw.elapsedMs());
        }

        FaultConfig lfFc;
        lfFc.delayProbability = target / lfCleanUpdates[i];
        lfFc.delayDuration = std::chrono::milliseconds(durationMs);
        FaultInjector lfFault(cfg.threads, lfFc);
        PageRankResult lf;
        {
          const Stopwatch sw;
          lf = dfLF(s.prev, s.curr, s.batch, s.prevRanks, opt, &lfFault);
          lfTimes.push_back(sw.elapsedMs());
        }
        const auto clean = dfLF(s.prev, s.curr, s.batch, s.prevRanks, opt);
        errs.push_back(linfNorm(lf.ranks, clean.ranks));
      }
      const double bbMs = geomean(bbTimes);
      const double lfMs = geomean(lfTimes);
      table.addRow({Table::count(static_cast<std::uint64_t>(durationMs)),
                    Table::num(target, 0), bench::fmtMs(bbMs),
                    Table::num(bbMs / bbBaseMs, 2) + "x", bench::fmtMs(lfMs),
                    Table::num(lfMs / lfBaseMs, 2) + "x",
                    Table::num(lfMs / bbMs, 2) + "x", Table::sci(maxOf(errs), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
