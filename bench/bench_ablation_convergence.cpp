// Section 4.3 ablation: per-vertex converged flags RC vs the suggested
// per-chunk alternative ("one may use a per-chunk converged flag for even
// faster detection of convergence"). Per-chunk flags shrink the O(n)
// convergence scan to O(n/chunk) at the cost of coarser tracking.
#include "bench_common.hpp"

#include "pagerank/reference.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Ablation (Section 4.3): per-vertex vs per-chunk convergence flags (DFLF)",
      "per-chunk detection reduces convergence-scan overhead; accuracy stays "
      "within the error band",
      cfg);

  const auto specs = representativeDatasets(cfg.scale);
  Table table({"dataset", "flags", "runtime_ms", "iterations", "err_vs_ref"});
  for (std::size_t di = 0; di < specs.size(); ++di) {
    const auto& spec = specs[di];
    auto base = bench::loadGraph(spec, cfg);
    const auto opt = bench::benchOptions(cfg, base.numVertices());
    const auto scenario = makeScenario(std::move(base), 1e-3, 800 + di, opt);
    const auto ref = referenceRanks(scenario.curr, opt.alpha);

    for (bool perChunk : {false, true}) {
      auto o = opt;
      o.perChunkConvergence = perChunk;
      PageRankResult r;
      const double ms = bench::timedMs(cfg, [&] {
        r = dfLF(scenario.prev, scenario.curr, scenario.batch, scenario.prevRanks,
                 o);
      });
      table.addRow({spec.name, perChunk ? "per-chunk" : "per-vertex",
                    bench::fmtMs(ms),
                    Table::count(static_cast<std::uint64_t>(r.iterations)),
                    Table::sci(linfNorm(r.ranks, ref), 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
