// Figure 9: DFLF under crash-stop failures, batch 1e-4 |E|. The paper
// crashes 0,1,2,4,8..56 of 64 threads at random points during the
// computation; DFLF finishes with graceful degradation (still ~40% of
// full speed with 56/64 crashed) and essentially unchanged error, while
// DFBB cannot complete if even one thread crashes. We sweep crashed
// counts over the logical team (default 8 threads) and include the DFBB
// DNF demonstration.
#include "bench_common.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Figure 9: DFLF under crash-stop failures (batch 1e-4 |E|)",
      "DFLF completes with graceful slowdown as crashes grow (paper: ~40% of "
      "full speed at 56/64 crashed), error flat; DFBB DNFs on a single crash",
      cfg);

  const auto specs = representativeDatasets(cfg.scale);
  std::vector<DynamicScenario> scenarios;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto base = bench::loadGraph(specs[i], cfg);
    const auto opt = bench::benchOptions(cfg, base.numVertices());
    scenarios.push_back(makeScenario(std::move(base), 1e-4, 400 + i, opt));
  }

  std::vector<int> crashCounts;
  for (int c : {0, 1, 2, 4})
    if (c < cfg.threads) crashCounts.push_back(c);
  for (int c = 6; c < cfg.threads; c += 2) crashCounts.push_back(c);

  Table table({"crashed_threads", "DFLF_ms(geomean)", "relative_runtime",
               "crashes_fired", "converged", "err_vs_clean(max)"});
  double baseline = 0.0;
  for (int crashed : crashCounts) {
    std::vector<double> times, errs;
    std::uint64_t fired = 0;
    bool allConverged = true;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const auto& s = scenarios[i];
      auto opt = bench::benchOptions(cfg, s.curr.numVertices());
      // Crash points spread over the run: thresholds drawn from the first
      // ~quarter of the expected per-thread update budget.
      const auto clean = dfLF(s.prev, s.curr, s.batch, s.prevRanks, opt);
      const std::uint64_t budget =
          std::max<std::uint64_t>(200, clean.rankUpdates /
                                           static_cast<std::uint64_t>(cfg.threads));
      const auto fc = makeCrashConfig(cfg.threads, crashed, 10, budget,
                                      500 + static_cast<std::uint64_t>(crashed));
      FaultInjector fault(cfg.threads, fc);
      const Stopwatch sw;
      const auto r = dfLF(s.prev, s.curr, s.batch, s.prevRanks, opt, &fault);
      times.push_back(sw.elapsedMs());
      fired += static_cast<std::uint64_t>(fault.numCrashed());
      allConverged = allConverged && r.converged;
      errs.push_back(linfNorm(r.ranks, clean.ranks));
    }
    const double ms = geomean(times);
    if (crashed == 0) baseline = ms;
    table.addRow({Table::count(static_cast<std::uint64_t>(crashed)), bench::fmtMs(ms),
                  Table::num(ms / baseline, 2) + "x", Table::count(fired),
                  allConverged ? "yes" : "NO", Table::sci(maxOf(errs), 1)});
  }
  table.print(std::cout);

  // DFBB cannot tolerate even one crash: demonstrate the DNF.
  std::cout << "\nDFBB with one crashed thread (expected: DNF via barrier "
               "timeout):\n";
  {
    const auto& s = scenarios.front();
    auto opt = bench::benchOptions(cfg, s.curr.numVertices());
    opt.barrierTimeout = std::chrono::milliseconds(1000);
    FaultConfig fc;
    fc.crashAfterUpdates.assign(static_cast<std::size_t>(cfg.threads),
                                FaultConfig::noCrash);
    for (std::size_t t = 0; t < std::size_t(cfg.threads) / 2; ++t)
      fc.crashAfterUpdates[t] = 2;
    FaultInjector fault(cfg.threads, fc);
    const auto r = dfBB(s.prev, s.curr, s.batch, s.prevRanks, opt, &fault);
    std::cout << "  dnf=" << (r.dnf ? "true" : "false")
              << " converged=" << (r.converged ? "true" : "false") << "\n";
  }
  return 0;
}
