// Section 5.2.3 (stability): generate a deletion-only batch, update the
// ranks, re-insert the same edges, update again, and compare the final
// ranks against the original graph's ranks. Ideally the L-inf difference
// is 0; the paper reports max ~5.7e-10 (BB) / 4.6e-10 (LF) at tau=1e-10.
// Under the bench protocol tolerances scale with 1/|V|, so errors are
// reported both raw and relative to the tolerance.
#include "bench_common.hpp"

#include "generate/batch_gen.hpp"
#include "util/rng.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Stability (Section 5.2.3): delete batch -> update -> re-insert -> update",
      "final ranks match the original graph's ranks to within a few "
      "tolerances (paper: max ~5e-10 at tau=1e-10), for ND and DF alike",
      cfg);

  const auto specs = representativeDatasets(cfg.scale);
  Table table({"dataset", "batch_frac", "approach", "linf_vs_original",
               "err_over_tau"});

  for (std::size_t di = 0; di < specs.size(); ++di) {
    const auto& spec = specs[di];
    for (double fraction : {1e-5, 1e-3, 1e-1}) {
      auto graph = bench::loadGraph(spec, cfg);
      const auto opt = bench::benchOptions(cfg, graph.numVertices());

      PageRankOptions hp = opt;  // high-precision original/warm ranks
      hp.tolerance = std::max(1e-16, opt.frontierTolerance / 100.0);
      const auto g0 = graph.toCsr();
      const auto originalRanks = staticBB(g0, hp).ranks;

      Rng rng(600 + di);
      BatchGenOptions bg;
      bg.deletionShare = 1.0;
      const auto batchSize = static_cast<std::size_t>(std::max(
          1.0, fraction * static_cast<double>(graph.numEdges())));
      const auto delBatch = generateBatch(graph, batchSize, rng, bg);
      const auto insBatch = delBatch.inverted();

      for (Approach a : {Approach::NDLF, Approach::DFBB, Approach::DFLF}) {
        auto work = graph;  // copy; original stays intact for other approaches
        work.applyBatch(delBatch);
        const auto g1 = work.toCsr();
        const auto afterDelete =
            runApproach(a, g0, g1, delBatch, originalRanks, opt);
        work.applyBatch(insBatch);
        const auto g2 = work.toCsr();
        const auto afterReinsert =
            runApproach(a, g1, g2, insBatch, afterDelete.ranks, opt);
        const double err = linfNorm(afterReinsert.ranks, originalRanks);
        table.addRow({spec.name, Table::sci(fraction, 0), approachName(a),
                      Table::sci(err, 2), Table::num(err / opt.tolerance, 2)});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
