// Shared scaffolding for the figure/table reproduction benches: knobs
// from the environment, a standard header, and small timing helpers.
//
// Every bench prints (a) the configuration it ran with, (b) the paper's
// qualitative result ("paper_shape") the series should exhibit, and (c)
// an aligned table with the same rows/series the paper reports.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/datasets.hpp"
#include "harness/scenario.hpp"
#include "pagerank/pagerank.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace lfpr::bench {

struct BenchConfig {
  int scale = benchScale();
  int threads = benchThreads();
  int repeats = benchRepeats();
};

inline void printHeader(const std::string& title, const std::string& paperShape,
                        const BenchConfig& cfg) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "config: scale=" << cfg.scale << " threads=" << cfg.threads
            << " repeats=" << cfg.repeats
            << "  (LFPR_BENCH_SCALE / LFPR_BENCH_THREADS / LFPR_BENCH_REPEATS)\n";
  const std::string cache = datasetCacheDir();
  std::cout << "dataset_dir: " << (cache.empty() ? "(unset: regenerate per run)" : cache)
            << "  (LFPR_DATASET_DIR)\n";
  std::cout << "paper_shape: " << paperShape << "\n\n";
}

/// Snapshot for a dataset bench: mmap-loaded from LFPR_DATASET_DIR when
/// cached, generated (and persisted) otherwise.
inline CsrGraph loadCsr(const DatasetSpec& spec, const BenchConfig& cfg,
                        std::uint64_t seed = 1, bool* generated = nullptr) {
  return loadDatasetCsr(spec, cfg.scale, seed, generated);
}

/// Mutable graph for the batch benches, via the same cache.
inline DynamicDigraph loadGraph(const DatasetSpec& spec, const BenchConfig& cfg,
                                std::uint64_t seed = 1) {
  return loadDatasetGraph(spec, cfg.scale, seed);
}

/// Engine options for a graph of n vertices under the bench protocol
/// (scaled tolerances, bench thread count, paper chunk size scaled to the
/// vertex count so dynamic scheduling has enough chunks to balance).
inline PageRankOptions benchOptions(const BenchConfig& cfg, VertexId numVertices) {
  PageRankOptions opt = scaledOptions(numVertices);
  opt.numThreads = cfg.threads;
  const std::size_t perThread =
      numVertices / static_cast<std::size_t>(std::max(1, 8 * cfg.threads));
  opt.chunkSize = std::max<std::size_t>(64, std::min<std::size_t>(2048, perThread));
  return opt;
}

/// Median-of-repeats engine timing (milliseconds).
template <typename Fn>
double timedMs(const BenchConfig& cfg, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(cfg.repeats));
  for (int r = 0; r < cfg.repeats; ++r) {
    const Stopwatch sw;
    fn();
    times.push_back(sw.elapsedMs());
  }
  return median(times);
}

inline std::string fmtMs(double ms) { return Table::num(ms, 2); }

/// One-line protocol-cost readout (publish-protocol diagnostics without
/// perf tools). Prints nothing unless the build counts them
/// (-DLFPR_STATS=ON); always zero for the barrier-based engines.
inline void printProtocolStats(const std::string& label, const PageRankResult& r) {
  if (!protocolStatsEnabled()) return;
  std::cout << "protocol_stats[" << label
            << "]: rank_publishes=" << r.protocolStats.rankPublishes
            << " re_pulls=" << r.protocolStats.rePulls
            << " flag_rmws=" << r.protocolStats.flagRmws
            << " ring_pushes=" << r.protocolStats.ringPushes
            << " residual_pushes=" << r.protocolStats.residualPushes
            << " activations=" << r.protocolStats.activations << "\n";
}

}  // namespace lfpr::bench
