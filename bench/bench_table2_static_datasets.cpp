// Table 2: the twelve SuiteSparse graphs in four families (web, social,
// road, protein k-mer). We print the paper's published |V|, |E|, D_avg
// next to the generated stand-ins' statistics; what must match is the
// *family regime* (directed power-law web graphs with D_avg 9-39, dense
// social networks, sparse D_avg~3 road/k-mer graphs), not absolute size.
#include "bench_common.hpp"
#include "graph/stats.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Table 2: static graphs from the SuiteSparse collection (stand-ins)",
      "four families; web/social dense (D_avg 9-77), road/k-mer sparse (D_avg ~3)",
      cfg);

  Table table({"dataset", "family", "paper_|V|", "paper_|E|", "paper_Davg",
               "sim_|V|", "sim_|E|", "sim_Davg", "sim_maxdeg", "deadends",
               "load_ms", "source"});
  for (const auto& spec : staticDatasets(cfg.scale)) {
    const Stopwatch sw;
    bool generated = false;
    const auto g = bench::loadCsr(spec, cfg, /*seed=*/1, &generated);
    const double loadMs = sw.elapsedMs();
    const auto s = computeStats(g);
    table.addRow({spec.name, spec.family, Table::sci(spec.paperVertices, 2),
                  Table::sci(spec.paperEdges, 2), Table::num(spec.paperAvgDegree, 1),
                  Table::count(s.numVertices), Table::count(s.numEdges),
                  Table::num(s.avgOutDegree, 1),
                  Table::count(std::max(s.maxOutDegree, s.maxInDegree)),
                  Table::count(s.numDeadEnds), bench::fmtMs(loadMs),
                  generated ? "generated" : "mmap"});
  }
  table.print(std::cout);
  std::cout << "\nnote: sim_Davg includes the +1 self-loop per vertex added for "
               "dead-end elimination (Section 5.1.3).\n"
               "note: source=mmap means the snapshot came zero-copy from "
               "LFPR_DATASET_DIR; a second run with the cache enabled should "
               "show every row mapped with load_ms orders of magnitude below "
               "the generated run.\n";
  return 0;
}
