// Figure 1: computation time vs barrier wait time of barrier-based
// Static PageRank under dynamic work scheduling of vertex chunks, with
// chunk sizes swept 4 .. 16384 in multiples of 16, on three web-class
// graphs. The paper's point: large chunks create stragglers that the
// whole team waits for (up to 73% of execution), while tiny chunks trade
// the waiting for scheduling overhead.
#include "bench_common.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Figure 1: computation vs barrier wait time of StaticBB, chunk-size sweep",
      "wait share grows with chunk size (up to ~73% on skewed web graphs); "
      "small chunks shift time from waiting to scheduling overhead",
      cfg);

  // The paper uses sk-2005, uk-2005, indochina-2004 — the three web
  // crawls with the most skewed chunk loads.
  std::vector<std::string> wanted = {"sk-2005-sim", "uk-2005-sim",
                                     "indochina-2004-sim"};
  Table table({"graph", "chunk", "total_ms", "compute_ms", "wait_ms", "wait_pct",
               "iterations"});
  for (const auto& spec : staticDatasets(cfg.scale)) {
    if (std::find(wanted.begin(), wanted.end(), spec.name) == wanted.end()) continue;
    const auto g = bench::loadCsr(spec, cfg);
    for (std::size_t chunk : {std::size_t{4}, std::size_t{64}, std::size_t{1024},
                              std::size_t{16384}}) {
      auto opt = bench::benchOptions(cfg, g.numVertices());
      opt.chunkSize = chunk;
      PageRankResult result;
      const double totalMs = bench::timedMs(cfg, [&] { result = staticBB(g, opt); });
      // Average per-thread wait as a share of wall-clock execution.
      const double waitShare =
          result.waitMs / (static_cast<double>(cfg.threads) * result.timeMs);
      const double waitMs = waitShare * totalMs;
      table.addRow({spec.name, Table::count(chunk), bench::fmtMs(totalMs),
                    bench::fmtMs(totalMs - waitMs), bench::fmtMs(waitMs),
                    Table::num(100.0 * waitShare, 1) + "%",
                    Table::count(static_cast<std::uint64_t>(result.iterations))});
    }
  }
  table.print(std::cout);
  return 0;
}
