// Section 4.5 ablation: the frontier tolerance tau_f controls the
// accuracy/work trade-off of the Dynamic Frontier. The paper settles on
// tau_f = tau/1000 as the value that preserves the error band while
// keeping the affected set (and hence runtime) small. We sweep tau_f
// from 0 (mark on any change) to 10*tau and report runtime, affected
// set size, and error against reference ranks.
#include "bench_common.hpp"

#include "pagerank/reference.hpp"

using namespace lfpr;

int main() {
  const bench::BenchConfig cfg;
  bench::printHeader(
      "Ablation (Section 4.5): frontier tolerance sweep for DFLF",
      "smaller tau_f -> larger affected set, more work, lower error; "
      "tau_f = tau/1000 keeps error within the acceptable band at much "
      "less work than tau_f = 0",
      cfg);

  const auto specs = representativeDatasets(cfg.scale);
  Table table({"dataset", "tau_f", "runtime_ms", "affected", "affected_share",
               "err_vs_ref", "err_over_tau"});
  for (std::size_t di = 0; di < specs.size(); ++di) {
    const auto& spec = specs[di];
    auto base = bench::loadGraph(spec, cfg);
    const auto opt = bench::benchOptions(cfg, base.numVertices());
    const auto scenario = makeScenario(std::move(base), 1e-4, 700 + di, opt);
    const auto ref = referenceRanks(scenario.curr, opt.alpha);
    const double tau = opt.tolerance;

    const std::pair<const char*, double> sweep[] = {
        {"0", 0.0},          {"tau/1e4", tau / 1e4}, {"tau/1e3", tau / 1e3},
        {"tau/1e2", tau / 1e2}, {"tau", tau},        {"10*tau", 10 * tau}};
    for (const auto& [label, tauF] : sweep) {
      auto o = opt;
      o.frontierTolerance = tauF;
      PageRankResult r;
      const double ms = bench::timedMs(cfg, [&] {
        r = dfLF(scenario.prev, scenario.curr, scenario.batch, scenario.prevRanks,
                 o);
      });
      const double err = linfNorm(r.ranks, ref);
      table.addRow({spec.name, label, bench::fmtMs(ms),
                    Table::count(r.affectedVertices),
                    Table::num(static_cast<double>(r.affectedVertices) /
                                   scenario.curr.numVertices(),
                               3),
                    Table::sci(err, 2), Table::num(err / tau, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
