#!/usr/bin/env python3
"""Diff two benchmark JSON files.

Accepts either wrapped BENCH_*.json documents (scripts/record_baseline.sh
output, google-benchmark results under a section key, default
"bench_micro_kernels") or raw google-benchmark --benchmark_out files
(top-level "benchmarks" array) — CI and local runs share this one code
path. Compares per benchmark name and prints a speedup table (new
items/s over old items/s, falling back to old cpu_time over new cpu_time
for benchmarks without an items_per_second counter). Benchmarks present
in only one file are listed but not compared.

Usage:
  scripts/compare_bench.py OLD.json NEW.json [options]

Options:
  --section NAME      wrapped-document key to read (default
                      bench_micro_kernels; e.g. bench_micro_kernels_scale2
                      for the scale-2 mapped-kernel section)
  --require NAME:RATIO
                      fail unless benchmark NAME achieved a speedup of at
                      least RATIO — e.g. the PR 2 acceptance gate:
                        --require BM_RankPullKernel:1.3
  --max-regression R  fail if any compared benchmark (restricted by
                      --filter) regressed below (1 - R) x the old rate;
                      R=0.65 tolerates a 65% loss — a generous hard gate
                      that still catches complexity-class regressions on
                      noisy shared CI runners
  --filter REGEX      restrict the --max-regression gate to matching
                      benchmark names (the table always shows everything)
"""

import argparse
import json
import re
import sys


def load_results(path, section):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc:  # raw --benchmark_out file
        micro = doc
    else:  # wrapped BENCH_*.json document
        micro = doc.get(section, {})
        if "benchmarks" not in micro:
            sys.exit(f"{path}: no google-benchmark results at top level or under "
                     f"{section!r} (recorded without libbenchmark-dev?)")
    out = {}
    for b in micro["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return doc, out


def speedup(old, new):
    o_items, n_items = old.get("items_per_second"), new.get("items_per_second")
    if o_items and n_items:
        return n_items / o_items, "items/s"
    o_t, n_t = old.get("cpu_time"), new.get("cpu_time")
    if o_t and n_t:
        return o_t / n_t, "cpu_time"
    return None, None


def fmt_rate(b):
    items = b.get("items_per_second")
    if items:
        return f"{items / 1e6:10.1f}M/s"
    return f"{b.get('cpu_time', float('nan')):10.0f}{b.get('time_unit', 'ns')}"


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--section", default="bench_micro_kernels",
                    help="wrapped-document key (default: %(default)s)")
    ap.add_argument("--require", action="append", default=[], metavar="NAME:RATIO",
                    help="fail unless NAME speeds up by at least RATIO")
    ap.add_argument("--max-regression", type=float, default=None, metavar="R",
                    help="fail if any gated benchmark falls below (1-R)x old")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="restrict --max-regression to matching names")
    args = ap.parse_args()

    old_doc, old = load_results(args.old, args.section)
    new_doc, new = load_results(args.new, args.section)

    print(f"old: {args.old}  (commit {old_doc.get('commit', '?')}, "
          f"recorded {old_doc.get('recorded', '?')})")
    print(f"new: {args.new}  (commit {new_doc.get('commit', '?')}, "
          f"recorded {new_doc.get('recorded', '?')})")
    print()
    name_w = max((len(n) for n in set(old) | set(new)), default=4)
    print(f"{'benchmark':<{name_w}}  {'old':>12} {'new':>12} {'speedup':>8}  basis")
    print("-" * (name_w + 45))

    shared = [n for n in old if n in new]
    ratios = {}
    for name in shared:
        ratio, basis = speedup(old[name], new[name])
        if ratio is not None:
            ratios[name] = ratio
        ratio_s = f"{ratio:7.2f}x" if ratio is not None else "      ??"
        print(f"{name:<{name_w}}  {fmt_rate(old[name]):>12} {fmt_rate(new[name]):>12} "
              f"{ratio_s}  {basis or '-'}")
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{name_w}}  {fmt_rate(old[name]):>12} {'(gone)':>12}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{name_w}}  {'(new)':>12} {fmt_rate(new[name]):>12}")

    failed = []
    for req in args.require:
        try:
            name, ratio_s = req.rsplit(":", 1)
            want = float(ratio_s)
        except ValueError:
            sys.exit(f"bad --require {req!r}: expected NAME:RATIO")
        if name not in old or name not in new:
            failed.append(f"{name}: missing from one of the files")
            continue
        got = ratios.get(name)
        if got is None or got < want:
            failed.append(f"{name}: wanted >= {want:.2f}x, got "
                          f"{'n/a' if got is None else f'{got:.2f}x'}")

    if args.max_regression is not None:
        floor = 1.0 - args.max_regression
        pattern = re.compile(args.filter) if args.filter else None
        gated = [n for n in shared if pattern is None or pattern.search(n)]
        if not gated:
            failed.append(f"--max-regression: no benchmark matches "
                          f"--filter {args.filter!r}")
        for name in gated:
            got = ratios.get(name)
            if got is not None and got < floor:
                failed.append(f"{name}: regressed to {got:.2f}x "
                              f"(floor {floor:.2f}x from --max-regression "
                              f"{args.max_regression})")

    if failed:
        print("\nFAILED requirements:", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 1
    if args.require or args.max_regression is not None:
        checks = len(args.require) + (1 if args.max_regression is not None else 0)
        print(f"\nall {checks} requirement(s) met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
