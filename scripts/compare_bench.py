#!/usr/bin/env python3
"""Diff two BENCH_*.json files (scripts/record_baseline.sh output).

Compares the google-benchmark results under "bench_micro_kernels" per
benchmark name and prints a speedup table (new items/s over old items/s,
falling back to old cpu_time over new cpu_time for benchmarks without an
items_per_second counter). Benchmarks present in only one file are listed
but not compared.

Usage:
  scripts/compare_bench.py OLD.json NEW.json [--require NAME:RATIO ...]

--require makes the exit status non-zero unless benchmark NAME achieved a
speedup of at least RATIO — e.g. the PR 2 acceptance gate:
  scripts/compare_bench.py BENCH_baseline.json BENCH_pr2.json \
      --require BM_RankPullKernel:1.3 --require BM_RankPullKernelAtomic:1.3
"""

import argparse
import json
import sys


def load_micro(path):
    with open(path) as f:
        doc = json.load(f)
    micro = doc.get("bench_micro_kernels", {})
    if "benchmarks" not in micro:
        sys.exit(f"{path}: no google-benchmark results under bench_micro_kernels "
                 f"(recorded without libbenchmark-dev?)")
    out = {}
    for b in micro["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return doc, out


def speedup(old, new):
    o_items, n_items = old.get("items_per_second"), new.get("items_per_second")
    if o_items and n_items:
        return n_items / o_items, "items/s"
    o_t, n_t = old.get("cpu_time"), new.get("cpu_time")
    if o_t and n_t:
        return o_t / n_t, "cpu_time"
    return None, None


def fmt_rate(b):
    items = b.get("items_per_second")
    if items:
        return f"{items / 1e6:10.1f}M/s"
    return f"{b.get('cpu_time', float('nan')):10.0f}{b.get('time_unit', 'ns')}"


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--require", action="append", default=[], metavar="NAME:RATIO",
                    help="fail unless NAME speeds up by at least RATIO")
    args = ap.parse_args()

    old_doc, old = load_micro(args.old)
    new_doc, new = load_micro(args.new)

    print(f"old: {args.old}  (commit {old_doc.get('commit', '?')}, "
          f"recorded {old_doc.get('recorded', '?')})")
    print(f"new: {args.new}  (commit {new_doc.get('commit', '?')}, "
          f"recorded {new_doc.get('recorded', '?')})")
    print()
    name_w = max((len(n) for n in set(old) | set(new)), default=4)
    print(f"{'benchmark':<{name_w}}  {'old':>12} {'new':>12} {'speedup':>8}  basis")
    print("-" * (name_w + 45))

    shared = [n for n in old if n in new]
    for name in shared:
        ratio, basis = speedup(old[name], new[name])
        ratio_s = f"{ratio:7.2f}x" if ratio is not None else "      ??"
        print(f"{name:<{name_w}}  {fmt_rate(old[name]):>12} {fmt_rate(new[name]):>12} "
              f"{ratio_s}  {basis or '-'}")
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{name_w}}  {fmt_rate(old[name]):>12} {'(gone)':>12}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{name_w}}  {'(new)':>12} {fmt_rate(new[name]):>12}")

    failed = []
    for req in args.require:
        try:
            name, ratio_s = req.rsplit(":", 1)
            want = float(ratio_s)
        except ValueError:
            sys.exit(f"bad --require {req!r}: expected NAME:RATIO")
        if name not in old or name not in new:
            failed.append(f"{name}: missing from one of the files")
            continue
        got, _ = speedup(old[name], new[name])
        if got is None or got < want:
            failed.append(f"{name}: wanted >= {want:.2f}x, got "
                          f"{'n/a' if got is None else f'{got:.2f}x'}")
    if failed:
        print("\nFAILED requirements:", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 1
    if args.require:
        print(f"\nall {len(args.require)} requirement(s) met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
