#!/usr/bin/env python3
"""Diff two benchmark JSON files.

Accepts either wrapped BENCH_*.json documents (scripts/record_baseline.sh
output, google-benchmark results under a section key, default
"bench_micro_kernels") or raw google-benchmark --benchmark_out files
(top-level "benchmarks" array) — CI and local runs share this one code
path. Compares per benchmark name and prints a speedup table (new
items/s over old items/s, falling back to old cpu_time over new cpu_time
for benchmarks without an items_per_second counter). Benchmarks present
in only one file are listed but not compared.

Runs recorded with --benchmark_repetitions contain one entry per
repetition under the same name; those are reduced to the
min-of-repetitions aggregate (max items/s, min cpu_time, min
p50_ns/p99_ns) before comparing. Scale-0 micro-kernel numbers are heap-placement sensitive —
PR 4 measured a 1182->1351 M/s swing from malloc luck alone — and the
fastest repetition is the run least disturbed by placement and
scheduling noise, which is what makes the tightened CI regression floor
hold. google-benchmark's own aggregate rows (mean/median/stddev) are
ignored.

Usage:
  scripts/compare_bench.py OLD.json NEW.json [options]

Options:
  --section NAME      wrapped-document key to read (default
                      bench_micro_kernels; e.g. bench_micro_kernels_scale2
                      for the scale-2 mapped-kernel section)
  --require NAME:RATIO
                      fail unless benchmark NAME achieved a speedup of at
                      least RATIO — e.g. the PR 2 acceptance gate:
                        --require BM_RankPullKernel:1.3
  --require-new-ratio A/B:MIN
                      fail unless, WITHIN the new file, items/s of
                      benchmark A is at least MIN x items/s of benchmark
                      B. Host-invariant (both sides ran on the same
                      machine), so it gates algorithmic relationships —
                      e.g. the PR 5 sparse-frontier acceptance:
                        --require-new-ratio \\
                          'BM_SparseFrontierWorklistS1/10/BM_SparseFrontierDenseS1/10:2.0'
                      (A and B may contain '/'; the split is at the last
                      ':' and the '/' separating A from B is the one
                      before the second benchmark name, found by matching
                      against the recorded names.)
  --max-regression R  fail if any compared benchmark (restricted by
                      --filter) regressed below (1 - R) x the old rate;
                      R=0.65 tolerates a 65% loss — a generous hard gate
                      that still catches complexity-class regressions on
                      noisy shared CI runners
  --filter REGEX      restrict the --max-regression gate to matching
                      benchmark names (the table always shows everything)
"""

import argparse
import json
import re
import sys


def load_results(path, section):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc:  # raw --benchmark_out file
        micro = doc
    else:  # wrapped BENCH_*.json document
        micro = doc.get(section, {})
        if "benchmarks" not in micro:
            sys.exit(f"{path}: no google-benchmark results at top level or under "
                     f"{section!r} (recorded without libbenchmark-dev?)")
    out = {}
    for b in micro["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue  # mean/median/stddev aggregate rows
        name = b["name"]
        prev = out.get(name)
        if prev is None:
            out[name] = dict(b)
            continue
        # Repetition of an already-seen benchmark: keep the best rate /
        # fastest time (min-of-repetitions). Latency percentiles (the
        # bench_service p50_ns/p99_ns counters) reduce the same way: the
        # lowest-percentile repetition is the least scheduler-disturbed.
        for key, better in (("items_per_second", max), ("cpu_time", min),
                            ("real_time", min), ("p50_ns", min),
                            ("p99_ns", min)):
            if key in b and key in prev:
                prev[key] = better(prev[key], b[key])
            elif key in b:
                prev[key] = b[key]
    return doc, out


def speedup(old, new):
    o_items, n_items = old.get("items_per_second"), new.get("items_per_second")
    if o_items and n_items:
        return n_items / o_items, "items/s"
    o_t, n_t = old.get("cpu_time"), new.get("cpu_time")
    if o_t and n_t:
        return o_t / n_t, "cpu_time"
    return None, None


def fmt_rate(b):
    items = b.get("items_per_second")
    if items:
        return f"{items / 1e6:10.1f}M/s"
    return f"{b.get('cpu_time', float('nan')):10.0f}{b.get('time_unit', 'ns')}"


def fmt_percentiles(b):
    """Secondary latency columns for benchmarks that record them."""
    p50, p99 = b.get("p50_ns"), b.get("p99_ns")
    if p50 is None and p99 is None:
        return ""
    return (f"  p50={p50 / 1e3:.2f}us" if p50 is not None else "") + \
           (f" p99={p99 / 1e3:.2f}us" if p99 is not None else "")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--section", default="bench_micro_kernels",
                    help="wrapped-document key (default: %(default)s)")
    ap.add_argument("--require", action="append", default=[], metavar="NAME:RATIO",
                    help="fail unless NAME speeds up by at least RATIO")
    ap.add_argument("--require-new-ratio", action="append", default=[],
                    metavar="A/B:MIN",
                    help="fail unless new items/s of A >= MIN x new items/s of B")
    ap.add_argument("--max-regression", type=float, default=None, metavar="R",
                    help="fail if any gated benchmark falls below (1-R)x old")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="restrict --max-regression to matching names")
    args = ap.parse_args()

    old_doc, old = load_results(args.old, args.section)
    new_doc, new = load_results(args.new, args.section)

    print(f"old: {args.old}  (commit {old_doc.get('commit', '?')}, "
          f"recorded {old_doc.get('recorded', '?')})")
    print(f"new: {args.new}  (commit {new_doc.get('commit', '?')}, "
          f"recorded {new_doc.get('recorded', '?')})")
    print()
    name_w = max((len(n) for n in set(old) | set(new)), default=4)
    print(f"{'benchmark':<{name_w}}  {'old':>12} {'new':>12} {'speedup':>8}  basis")
    print("-" * (name_w + 45))

    shared = [n for n in old if n in new]
    ratios = {}
    for name in shared:
        ratio, basis = speedup(old[name], new[name])
        if ratio is not None:
            ratios[name] = ratio
        ratio_s = f"{ratio:7.2f}x" if ratio is not None else "      ??"
        print(f"{name:<{name_w}}  {fmt_rate(old[name]):>12} {fmt_rate(new[name]):>12} "
              f"{ratio_s}  {basis or '-'}{fmt_percentiles(new[name])}")
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{name_w}}  {fmt_rate(old[name]):>12} {'(gone)':>12}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{name_w}}  {'(new)':>12} {fmt_rate(new[name]):>12}")

    failed = []
    for req in args.require:
        try:
            name, ratio_s = req.rsplit(":", 1)
            want = float(ratio_s)
        except ValueError:
            sys.exit(f"bad --require {req!r}: expected NAME:RATIO")
        if name not in old or name not in new:
            failed.append(f"{name}: missing from one of the files")
            continue
        got = ratios.get(name)
        if got is None or got < want:
            failed.append(f"{name}: wanted >= {want:.2f}x, got "
                          f"{'n/a' if got is None else f'{got:.2f}x'}")

    for req in args.require_new_ratio:
        try:
            pair, min_s = req.rsplit(":", 1)
            want = float(min_s)
        except ValueError:
            sys.exit(f"bad --require-new-ratio {req!r}: expected A/B:MIN")
        # A and B may themselves contain '/': find the split whose halves
        # are both recorded benchmark names.
        split = None
        for idx in (i for i, c in enumerate(pair) if c == "/"):
            a, b = pair[:idx], pair[idx + 1:]
            if a in new and b in new:
                split = (a, b)
                break
        if split is None:
            failed.append(f"--require-new-ratio {pair!r}: no split into two "
                          f"benchmarks present in {args.new}")
            continue
        a, b = split
        a_items, b_items = new[a].get("items_per_second"), new[b].get("items_per_second")
        if not a_items or not b_items:
            failed.append(f"{pair}: missing items_per_second")
            continue
        got = a_items / b_items
        if got < want:
            failed.append(f"{a} vs {b}: wanted >= {want:.2f}x, got {got:.2f}x")
        else:
            print(f"\nratio {a} / {b} = {got:.2f}x (>= {want:.2f}x)")

    if args.max_regression is not None:
        floor = 1.0 - args.max_regression
        pattern = re.compile(args.filter) if args.filter else None
        gated = [n for n in shared if pattern is None or pattern.search(n)]
        if not gated:
            failed.append(f"--max-regression: no benchmark matches "
                          f"--filter {args.filter!r}")
        for name in gated:
            got = ratios.get(name)
            if got is not None and got < floor:
                failed.append(f"{name}: regressed to {got:.2f}x "
                              f"(floor {floor:.2f}x from --max-regression "
                              f"{args.max_regression})")

    if failed:
        print("\nFAILED requirements:", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 1
    if args.require or args.require_new_ratio or args.max_regression is not None:
        checks = (len(args.require) + len(args.require_new_ratio) +
                  (1 if args.max_regression is not None else 0))
        print(f"\nall {checks} requirement(s) met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
