#!/usr/bin/env bash
# Record a BENCH_*.json snapshot — the trajectory anchor perf PRs diff
# against (scripts/compare_bench.py). Runs the Table-2 dataset bench,
# the micro-kernel bench, and the RankService mixed-load bench from the
# Release preset and wraps their output plus the machine/config
# fingerprint into one JSON document.
#
# With LFPR_RECORD_SCALE2=1 it additionally runs the mapped-snapshot
# kernel group (BM_Mapped*) at LFPR_BENCH_SCALE=2 — the larger-than-L3
# cached-CSR vs Weighted comparison — into a "bench_micro_kernels_scale2"
# section. Point LFPR_DATASET_DIR at a persistent cache first: the
# scale-2 snapshot generates once (minutes) and mmap-loads thereafter.
#
# Usage: scripts/record_baseline.sh [build-dir] [out.json]
#   build-dir defaults to build/release; out.json to BENCH_baseline.json
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build/release}"
out="${2:-$repo/BENCH_baseline.json}"

scale="${LFPR_BENCH_SCALE:-0}"
threads="${LFPR_BENCH_THREADS:-4}"
repeats="${LFPR_BENCH_REPEATS:-3}"
scale2="${LFPR_RECORD_SCALE2:-0}"
export LFPR_BENCH_SCALE="$scale" LFPR_BENCH_THREADS="$threads" LFPR_BENCH_REPEATS="$repeats"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$build/bench/bench_table2_static_datasets" > "$workdir/table2.txt"

# Microbenches run with repetitions; compare_bench.py reduces the
# per-repetition entries to min-of-repetitions, which damps the
# heap-placement jitter PR 4 documented (same binary, ~15% swings).
micro_json="$workdir/micro.json"
if [[ -x "$build/bench/bench_micro_kernels" ]]; then
  "$build/bench/bench_micro_kernels" \
    --benchmark_repetitions="$repeats" \
    --benchmark_format=json --benchmark_out="$micro_json" \
    --benchmark_out_format=json >/dev/null
else
  printf '{"skipped": "google-benchmark not available at build time"}' > "$micro_json"
fi

# Service bench (PR 6): mixed ingest+query load. Emits its own
# google-benchmark-compatible JSON (one entry per repetition), so the
# same min-of-repetitions reduction applies to ingest items/s and the
# query p50_ns/p99_ns latency counters.
service_json="$workdir/service.json"
"$build/bench/bench_service" --json "$service_json" > "$workdir/service.txt"

micro2_json=""
if [[ "$scale2" == "1" && -x "$build/bench/bench_micro_kernels" ]]; then
  micro2_json="$workdir/micro_scale2.json"
  LFPR_BENCH_SCALE=2 "$build/bench/bench_micro_kernels" \
    --benchmark_filter='BM_Mapped' \
    --benchmark_repetitions="$repeats" \
    --benchmark_format=json --benchmark_out="$micro2_json" \
    --benchmark_out_format=json >/dev/null
fi

commit="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)"
recorded="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

python3 - "$out" "$workdir/table2.txt" "$micro_json" "$commit" "$recorded" \
    "$scale" "$threads" "$repeats" "$service_json" "${micro2_json:-}" <<'PYEOF'
import json, os, platform, sys

(out, table2_path, micro_path, commit, recorded,
 scale, threads, repeats, service_path, micro2_path) = sys.argv[1:11]

with open(micro_path) as f:
    micro = json.load(f)

doc = {
    "recorded": recorded,
    "commit": commit,
    "config": {
        "LFPR_BENCH_SCALE": int(scale),
        "LFPR_BENCH_THREADS": int(threads),
        "LFPR_BENCH_REPEATS": int(repeats),
        "build": "Release",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    },
    "bench_table2_static_datasets": open(table2_path).read().splitlines(),
    "bench_micro_kernels": micro,
}
with open(service_path) as f:
    doc["bench_service"] = json.load(f)
if micro2_path:
    with open(micro2_path) as f:
        doc["bench_micro_kernels_scale2"] = json.load(f)
    doc["config"]["scale2_section"] = {
        "LFPR_BENCH_SCALE": 2,
        "benchmark_filter": "BM_Mapped",
        "note": "mapped-snapshot kernels on the >L3 scale-2 web stand-in",
    }
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote", out)
PYEOF
