#!/usr/bin/env bash
# Record a BENCH_*.json snapshot — the trajectory anchor perf PRs diff
# against (scripts/compare_bench.py). Runs the Table-2 dataset bench and
# the micro-kernel bench from the Release preset and wraps their raw
# output plus the machine/config fingerprint into one JSON document.
#
# Usage: scripts/record_baseline.sh [build-dir] [out.json]
#   build-dir defaults to build/release; out.json to BENCH_baseline.json
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build/release}"
out="${2:-$repo/BENCH_baseline.json}"

scale="${LFPR_BENCH_SCALE:-0}"
threads="${LFPR_BENCH_THREADS:-4}"
repeats="${LFPR_BENCH_REPEATS:-3}"
export LFPR_BENCH_SCALE="$scale" LFPR_BENCH_THREADS="$threads" LFPR_BENCH_REPEATS="$repeats"

table2="$("$build/bench/bench_table2_static_datasets")"
if [[ -x "$build/bench/bench_micro_kernels" ]]; then
  micro="$("$build/bench/bench_micro_kernels" --benchmark_format=json 2>/dev/null)"
else
  micro='{"skipped": "google-benchmark not available at build time"}'
fi

python3 - "$out" <<PYEOF
import json, os, platform, subprocess, sys

table2 = '''$(printf '%s' "$table2" | sed "s/'''/ /g")'''
micro = json.loads(r'''$micro''')

doc = {
    "recorded": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
    "commit": "$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)",
    "config": {
        "LFPR_BENCH_SCALE": int("$scale"),
        "LFPR_BENCH_THREADS": int("$threads"),
        "LFPR_BENCH_REPEATS": int("$repeats"),
        "build": "Release",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    },
    "bench_table2_static_datasets": table2.splitlines(),
    "bench_micro_kernels": micro,
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote", sys.argv[1])
PYEOF
